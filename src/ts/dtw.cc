#include "ts/dtw.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "simd/simd.h"
#include "util/error.h"

namespace cminer::ts {

namespace {

constexpr double infinity = std::numeric_limits<double>::infinity();

std::size_t
bandHalfWidth(std::size_t n, std::size_t m, double fraction)
{
    if (fraction <= 0.0)
        return std::max(n, m); // effectively unconstrained
    const std::size_t base = static_cast<std::size_t>(
        std::ceil(fraction * static_cast<double>(std::max(n, m))));
    // The band must at least cover the length difference or no path exists.
    const std::size_t diff = n > m ? n - m : m - n;
    return std::max(base, diff + 1);
}

} // namespace

double
dtwDistance(std::span<const double> a, std::span<const double> b,
            const DtwOptions &options)
{
    CM_ASSERT(!a.empty() && !b.empty());
    const std::size_t n = a.size();
    const std::size_t m = b.size();
    const std::size_t band = bandHalfWidth(n, m, options.bandFraction);

    // Two-row dynamic program; rows indexed by i over a, columns by j
    // over b. prev[j] = D(i-1, j), curr[j] = D(i, j). The inner row
    // update runs on the SIMD layer's dtwRowUpdate, which is
    // bit-identical to the classic three-way recurrence at every
    // dispatch level.
    std::vector<double> prev(m, infinity);
    std::vector<double> curr(m, infinity);
    std::vector<double> scratch(m);

    for (std::size_t i = 0; i < n; ++i) {
        std::fill(curr.begin(), curr.end(), infinity);
        // Column range allowed by the band around the diagonal.
        const double center =
            static_cast<double>(i) * static_cast<double>(m) /
            static_cast<double>(n);
        const std::size_t j_lo = center > static_cast<double>(band)
            ? static_cast<std::size_t>(center) - band : 0;
        const std::size_t j_hi =
            std::min(m, static_cast<std::size_t>(center) + band + 1);
        simd::dtwRowUpdate(a[i], b, prev, curr, j_lo, j_hi, i == 0,
                           scratch);
        std::swap(prev, curr);
    }

    double distance = prev[m - 1];
    CM_ASSERT(std::isfinite(distance));
    if (options.normalizeByPathLength)
        distance /= static_cast<double>(n + m);
    return distance;
}

double
dtwDistance(const TimeSeries &a, const TimeSeries &b,
            const DtwOptions &options)
{
    return dtwDistance(a.span(), b.span(), options);
}

DtwResult
dtwAlign(std::span<const double> a, std::span<const double> b,
         const DtwOptions &options)
{
    CM_ASSERT(!a.empty() && !b.empty());
    const std::size_t n = a.size();
    const std::size_t m = b.size();

    // Full matrix for traceback; fine for the series sizes the tests and
    // examples align (use dtwDistance for the hot path).
    std::vector<std::vector<double>> d(
        n, std::vector<double>(m, infinity));
    const std::size_t band = bandHalfWidth(n, m, options.bandFraction);

    for (std::size_t i = 0; i < n; ++i) {
        const double center =
            static_cast<double>(i) * static_cast<double>(m) /
            static_cast<double>(n);
        const std::size_t j_lo = center > static_cast<double>(band)
            ? static_cast<std::size_t>(center) - band : 0;
        const std::size_t j_hi =
            std::min(m, static_cast<std::size_t>(center) + band + 1);
        for (std::size_t j = j_lo; j < j_hi; ++j) {
            const double cost = std::abs(a[i] - b[j]);
            double best;
            if (i == 0 && j == 0) {
                best = 0.0;
            } else {
                best = infinity;
                if (i > 0)
                    best = std::min(best, d[i - 1][j]);
                if (j > 0)
                    best = std::min(best, d[i][j - 1]);
                if (i > 0 && j > 0)
                    best = std::min(best, d[i - 1][j - 1]);
            }
            d[i][j] = cost + best;
        }
    }

    DtwResult result;
    result.distance = d[n - 1][m - 1];
    CM_ASSERT(std::isfinite(result.distance));
    if (options.normalizeByPathLength)
        result.distance /= static_cast<double>(n + m);

    // Greedy traceback along minimal predecessors.
    std::size_t i = n - 1;
    std::size_t j = m - 1;
    result.path.emplace_back(i, j);
    while (i > 0 || j > 0) {
        double best = infinity;
        std::size_t ni = i;
        std::size_t nj = j;
        if (i > 0 && j > 0 && d[i - 1][j - 1] <= best) {
            best = d[i - 1][j - 1];
            ni = i - 1;
            nj = j - 1;
        }
        if (i > 0 && d[i - 1][j] < best) {
            best = d[i - 1][j];
            ni = i - 1;
            nj = j;
        }
        if (j > 0 && d[i][j - 1] < best) {
            best = d[i][j - 1];
            ni = i;
            nj = j - 1;
        }
        i = ni;
        j = nj;
        result.path.emplace_back(i, j);
    }
    std::reverse(result.path.begin(), result.path.end());
    return result;
}

} // namespace cminer::ts

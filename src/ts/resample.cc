#include "ts/resample.h"

#include <cmath>

#include "util/error.h"

namespace cminer::ts {

std::vector<double>
resampleLinear(const std::vector<double> &values, std::size_t target_length)
{
    CM_ASSERT(!values.empty());
    CM_ASSERT(target_length >= 1);
    std::vector<double> out(target_length);
    if (values.size() == 1) {
        std::fill(out.begin(), out.end(), values[0]);
        return out;
    }
    const double scale = static_cast<double>(values.size() - 1) /
                         static_cast<double>(
                             target_length > 1 ? target_length - 1 : 1);
    for (std::size_t i = 0; i < target_length; ++i) {
        const double pos = static_cast<double>(i) * scale;
        const std::size_t lo = static_cast<std::size_t>(pos);
        const std::size_t hi = std::min(lo + 1, values.size() - 1);
        const double frac = pos - static_cast<double>(lo);
        out[i] = values[lo] * (1.0 - frac) + values[hi] * frac;
    }
    return out;
}

TimeSeries
resampleLinear(const TimeSeries &series, std::size_t target_length)
{
    const double total_ms = series.durationMs();
    auto values = resampleLinear(series.values(), target_length);
    const double new_interval =
        total_ms / static_cast<double>(target_length);
    return TimeSeries(series.eventName(), std::move(values),
                      new_interval > 0.0 ? new_interval
                                         : series.intervalMs());
}

std::vector<double>
downsampleMean(const std::vector<double> &values, std::size_t factor)
{
    CM_ASSERT(factor >= 1);
    if (factor == 1)
        return values;
    std::vector<double> out;
    out.reserve((values.size() + factor - 1) / factor);
    for (std::size_t start = 0; start < values.size(); start += factor) {
        const std::size_t end = std::min(start + factor, values.size());
        double sum = 0.0;
        for (std::size_t i = start; i < end; ++i)
            sum += values[i];
        out.push_back(sum / static_cast<double>(end - start));
    }
    return out;
}

} // namespace cminer::ts

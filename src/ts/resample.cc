#include "ts/resample.h"

#include <cmath>

#include "util/error.h"

namespace cminer::ts {

std::vector<double>
resampleLinear(const std::vector<double> &values, std::size_t target_length)
{
    CM_ASSERT(!values.empty());
    CM_ASSERT(target_length >= 1);
    std::vector<double> out(target_length);
    if (values.size() == 1) {
        std::fill(out.begin(), out.end(), values[0]);
        return out;
    }
    const double scale = static_cast<double>(values.size() - 1) /
                         static_cast<double>(
                             target_length > 1 ? target_length - 1 : 1);
    const double last = static_cast<double>(values.size() - 1);
    for (std::size_t i = 0; i < target_length; ++i) {
        double pos = static_cast<double>(i) * scale;
        // i * scale carries rounding error that can land past the last
        // index at the top of the range (an out-of-bounds read once
        // the truncated position reaches values.size()). Clamp, which
        // also pins the final sample to exactly values.back().
        if (!(pos < last))
            pos = last;
        const std::size_t lo = static_cast<std::size_t>(pos);
        const std::size_t hi = std::min(lo + 1, values.size() - 1);
        const double frac = pos - static_cast<double>(lo);
        out[i] = values[lo] * (1.0 - frac) + values[hi] * frac;
    }
    return out;
}

TimeSeries
resampleLinear(const TimeSeries &series, std::size_t target_length)
{
    const double total_ms = series.durationMs();
    auto values = resampleLinear(series.values(), target_length);
    // Preserve the covered wall-clock time: durationMs() must
    // round-trip through any resample, including upsampling past the
    // source length. Only a degenerate source (non-positive duration,
    // where no positive interval can reproduce it) keeps the old
    // interval instead of silently drifting it to 0 or negative.
    const double new_interval =
        total_ms > 0.0 ? total_ms / static_cast<double>(target_length)
                       : series.intervalMs();
    return TimeSeries(series.eventName(), std::move(values),
                      new_interval);
}

std::vector<double>
downsampleMean(const std::vector<double> &values, std::size_t factor)
{
    CM_ASSERT(factor >= 1);
    if (factor == 1)
        return values;
    std::vector<double> out;
    out.reserve((values.size() + factor - 1) / factor);
    for (std::size_t start = 0; start < values.size(); start += factor) {
        const std::size_t end = std::min(start + factor, values.size());
        double sum = 0.0;
        for (std::size_t i = start; i < end; ++i)
            sum += values[i];
        out.push_back(sum / static_cast<double>(end - start));
    }
    return out;
}

} // namespace cminer::ts

/**
 * @file
 * The TimeSeries container at the heart of CounterMiner.
 *
 * Eq. 5 of the paper: TS_ei = {V_i1 ... V_in} — the sampled values of one
 * event during one run of one program. Lengths vary between runs of the
 * same program (OS nondeterminism), which is exactly why DTW rather than
 * pointwise distance is used downstream.
 */

#ifndef CMINER_TS_TIME_SERIES_H
#define CMINER_TS_TIME_SERIES_H

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace cminer::ts {

/**
 * A sampled event-value sequence with identifying metadata.
 *
 * Values are stored per sampling interval; the interval length in
 * milliseconds is carried so series can be re-anchored onto wall-clock
 * time when needed.
 */
class TimeSeries
{
  public:
    TimeSeries() = default;

    /**
     * @param event_name name of the sampled event ("ICACHE.MISSES")
     * @param values one value per sampling interval
     * @param interval_ms sampling interval length in milliseconds
     */
    TimeSeries(std::string event_name, std::vector<double> values,
               double interval_ms = 10.0);

    /** Name of the event this series samples. */
    const std::string &eventName() const { return eventName_; }

    /** All sampled values. */
    const std::vector<double> &values() const { return values_; }

    /** Mutable access for in-place cleaning. */
    std::vector<double> &mutableValues() { return values_; }

    /** Values as a span, for the stats routines. */
    std::span<const double> span() const { return values_; }

    /** Number of sampled intervals. */
    std::size_t size() const { return values_.size(); }

    /** True when no samples were collected. */
    bool empty() const { return values_.empty(); }

    /** Value at interval i (bounds-checked). */
    double at(std::size_t i) const;

    /** Set the value at interval i (bounds-checked). */
    void set(std::size_t i, double value);

    /** Append one sampled value. */
    void append(double value) { values_.push_back(value); }

    /** Sampling interval in milliseconds. */
    double intervalMs() const { return intervalMs_; }

    /** Total covered wall-clock time in milliseconds. */
    double durationMs() const
    {
        return intervalMs_ * static_cast<double>(values_.size());
    }

    /** Sum of all values (total event count over the run). */
    double total() const;

    /** Return a copy restricted to [first, first+count). */
    TimeSeries slice(std::size_t first, std::size_t count) const;

  private:
    std::string eventName_;
    std::vector<double> values_;
    double intervalMs_ = 10.0;
};

} // namespace cminer::ts

#endif // CMINER_TS_TIME_SERIES_H

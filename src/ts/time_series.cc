#include "ts/time_series.h"

#include "util/error.h"

namespace cminer::ts {

TimeSeries::TimeSeries(std::string event_name, std::vector<double> values,
                       double interval_ms)
    : eventName_(std::move(event_name)),
      values_(std::move(values)),
      intervalMs_(interval_ms)
{
    CM_ASSERT(intervalMs_ > 0.0);
}

double
TimeSeries::at(std::size_t i) const
{
    CM_ASSERT(i < values_.size());
    return values_[i];
}

void
TimeSeries::set(std::size_t i, double value)
{
    CM_ASSERT(i < values_.size());
    values_[i] = value;
}

double
TimeSeries::total() const
{
    double sum = 0.0;
    for (double v : values_)
        sum += v;
    return sum;
}

TimeSeries
TimeSeries::slice(std::size_t first, std::size_t count) const
{
    CM_ASSERT(first <= values_.size());
    const std::size_t end = std::min(first + count, values_.size());
    return TimeSeries(eventName_,
                      std::vector<double>(values_.begin() +
                                              static_cast<long>(first),
                                          values_.begin() +
                                              static_cast<long>(end)),
                      intervalMs_);
}

} // namespace cminer::ts

/**
 * @file
 * Dynamic time warping distance (Eq. 1 of the paper).
 *
 * Two runs of the same program produce event series of different lengths;
 * DTW aligns them before measuring distance. The paper computes
 *   dist_ref = DTW(S_ocoe1, S_ocoe2)    (Eq. 2)
 *   dist_mea = DTW(S_mlpx,  S_ocoe)     (Eq. 3)
 *   error    = |1 - dist_ref/dist_mea|  (Eq. 4)
 * Implementation: classic O(n*m) dynamic program over |a_i - b_j| with an
 * optional Sakoe-Chiba band for long series.
 */

#ifndef CMINER_TS_DTW_H
#define CMINER_TS_DTW_H

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "ts/time_series.h"

namespace cminer::ts {

/** Options for the DTW dynamic program. */
struct DtwOptions
{
    /**
     * Sakoe-Chiba band half-width as a fraction of max(n, m); 0 disables
     * the constraint. 0.1 is a common speed/accuracy tradeoff.
     */
    double bandFraction = 0.0;

    /** When true, normalize the distance by the warping-path length. */
    bool normalizeByPathLength = false;
};

/** DTW result: distance plus, optionally, the alignment path. */
struct DtwResult
{
    double distance = 0.0;
    /** Alignment path as (i, j) index pairs, first to last. */
    std::vector<std::pair<std::size_t, std::size_t>> path;
};

/**
 * DTW distance between two value sequences.
 *
 * @param a first sequence (length n >= 1)
 * @param b second sequence (length m >= 1)
 * @param options band / normalization controls
 */
double dtwDistance(std::span<const double> a, std::span<const double> b,
                   const DtwOptions &options = {});

/** DTW distance between two TimeSeries. */
double dtwDistance(const TimeSeries &a, const TimeSeries &b,
                   const DtwOptions &options = {});

/**
 * DTW with path recovery (needed for alignment inspection and tests).
 */
DtwResult dtwAlign(std::span<const double> a, std::span<const double> b,
                   const DtwOptions &options = {});

} // namespace cminer::ts

#endif // CMINER_TS_DTW_H

#include "ts/lb_keogh.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "simd/simd.h"
#include "stats/descriptive.h"
#include "ts/dtw.h"
#include "ts/resample.h"
#include "util/error.h"

namespace cminer::ts {

Envelope
computeEnvelope(std::span<const double> values, std::size_t radius)
{
    CM_ASSERT(!values.empty());
    const std::size_t n = values.size();
    Envelope env;
    env.upper.resize(n);
    env.lower.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t lo = i > radius ? i - radius : 0;
        const std::size_t hi = std::min(n - 1, i + radius);
        simd::windowMinMax(values.subspan(lo, hi - lo + 1), env.lower[i],
                           env.upper[i]);
    }
    return env;
}

double
lbKeogh(const Envelope &envelope, std::span<const double> candidate)
{
    CM_ASSERT(envelope.upper.size() == candidate.size());
    CM_ASSERT(envelope.lower.size() == candidate.size());
    return simd::lbKeoghSum(envelope.lower, envelope.upper, candidate);
}

util::StatusOr<double>
lbKeoghChecked(const Envelope &envelope, std::span<const double> candidate)
{
    if (envelope.upper.size() != candidate.size() ||
        envelope.lower.size() != candidate.size()) {
        return util::Status::dataError(
            "lbKeogh: envelope sizes (upper " +
            std::to_string(envelope.upper.size()) + ", lower " +
            std::to_string(envelope.lower.size()) +
            ") do not match candidate length " +
            std::to_string(candidate.size()));
    }
    for (std::size_t i = 0; i < candidate.size(); ++i) {
        if (!(envelope.lower[i] <= envelope.upper[i])) {
            return util::Status::dataError(
                "lbKeogh: envelope inverted at index " +
                std::to_string(i) + " (lower " +
                std::to_string(envelope.lower[i]) + " > upper " +
                std::to_string(envelope.upper[i]) + ")");
        }
    }
    return simd::lbKeoghSum(envelope.lower, envelope.upper, candidate);
}

NearestResult
nearestNeighborDtw(const TimeSeries &query,
                   const std::vector<TimeSeries> &candidates,
                   double band_fraction)
{
    CM_ASSERT(!candidates.empty());
    CM_ASSERT(!query.empty());
    const std::size_t n = query.size();
    // The envelope radius must be at least as wide as the DTW band or
    // the "bound" could exceed the true distance; +1 covers the DTW
    // implementation's minimum band.
    const std::size_t radius =
        static_cast<std::size_t>(
            std::ceil(band_fraction * static_cast<double>(n))) +
        1;
    const Envelope envelope = computeEnvelope(query.span(), radius);

    DtwOptions options;
    options.bandFraction = band_fraction;

    // Compute all lower bounds first and visit candidates bound-first:
    // the best true distance is found early, so later candidates are
    // pruned by their bound alone.
    std::vector<std::pair<double, std::size_t>> order;
    std::vector<std::vector<double>> resampled(candidates.size());
    order.reserve(candidates.size());
    for (std::size_t c = 0; c < candidates.size(); ++c) {
        CM_ASSERT(!candidates[c].empty());
        resampled[c] = resampleLinear(candidates[c].values(), n);
        order.emplace_back(lbKeogh(envelope, resampled[c]), c);
    }
    std::sort(order.begin(), order.end());

    NearestResult result;
    result.distance = std::numeric_limits<double>::infinity();
    for (const auto &[bound, c] : order) {
        if (bound >= result.distance)
            break; // every remaining candidate is bounded out
        const double distance =
            dtwDistance(query.span(), resampled[c], options);
        ++result.dtwEvaluations;
        if (distance < result.distance) {
            result.distance = distance;
            result.index = c;
        }
    }
    return result;
}

void
zNormalize(std::vector<double> &values)
{
    if (values.empty())
        return;
    const double mu = stats::mean(values);
    double sigma = stats::stddev(values, false);
    // Constant-series carve-out. sigma is exactly 0 only when the
    // two-pass variance saw zero deviations; a constant series whose
    // mean does not round-trip in binary (all 0.1, say) instead
    // yields a tiny nonzero sigma that would amplify pure rounding
    // noise to unit scale. Relative spread below FP noise is treated
    // as constant, and a non-finite sigma (Inf/NaN inputs) must never
    // become a divisor.
    if (!(sigma > std::abs(mu) * 1e-12) || !std::isfinite(sigma))
        sigma = 1.0; // constant series normalizes to ~all zeros
    for (auto &v : values)
        v = (v - mu) / sigma;
}

TimeSeries
zNormalized(const TimeSeries &series)
{
    std::vector<double> values = series.values();
    zNormalize(values);
    return TimeSeries(series.eventName(), std::move(values),
                      series.intervalMs());
}

} // namespace cminer::ts

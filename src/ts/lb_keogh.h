/**
 * @file
 * LB_Keogh lower bound for DTW (Keogh & Ratanamahatana 2005) and
 * z-normalization helpers.
 *
 * When scanning a database of runs for the nearest OCOE reference (e.g.
 * matching an MLPX run against a library of golden series), computing
 * full DTW against every candidate is wasteful. LB_Keogh gives a cheap
 * O(n) lower bound: candidates whose bound already exceeds the best
 * distance so far can be skipped without running the O(n*m) dynamic
 * program.
 */

#ifndef CMINER_TS_LB_KEOGH_H
#define CMINER_TS_LB_KEOGH_H

#include <cstddef>
#include <span>
#include <vector>

#include "ts/time_series.h"
#include "util/status.h"

namespace cminer::ts {

/**
 * Upper/lower envelope of a series under a Sakoe-Chiba band of the given
 * radius (in samples).
 */
struct Envelope
{
    std::vector<double> upper;
    std::vector<double> lower;
};

/**
 * Compute the band envelope of a query series.
 *
 * @param values query series
 * @param radius band half-width in samples (>= 0)
 */
Envelope computeEnvelope(std::span<const double> values,
                         std::size_t radius);

/**
 * LB_Keogh lower bound of DTW(query, candidate) for equal-length series.
 *
 * @param envelope precomputed envelope of the query
 * @param candidate candidate series; must match the envelope length
 * @return a value <= the true DTW distance under the same band
 */
double lbKeogh(const Envelope &envelope,
               std::span<const double> candidate);

/**
 * Validating variant of lbKeogh for untrusted envelopes: checks that
 * both envelope sides match the candidate length and that
 * lower[i] <= upper[i] everywhere, returning a data error instead of
 * asserting. Use this when the envelope comes from external data
 * rather than computeEnvelope.
 */
util::StatusOr<double> lbKeoghChecked(const Envelope &envelope,
                                      std::span<const double> candidate);

/**
 * Nearest-neighbor search under DTW accelerated by LB_Keogh.
 *
 * Candidates are resampled to the query length first (DTW tolerates
 * small length differences; the bound requires equal lengths).
 *
 * @param query the series to match
 * @param candidates candidate series
 * @param band_fraction Sakoe-Chiba band as a fraction of the length
 * @return index of the nearest candidate and its DTW distance, plus the
 *         number of full DTW evaluations that were actually run
 */
struct NearestResult
{
    std::size_t index = 0;
    double distance = 0.0;
    std::size_t dtwEvaluations = 0;
};
NearestResult nearestNeighborDtw(
    const TimeSeries &query, const std::vector<TimeSeries> &candidates,
    double band_fraction = 0.1);

/** Z-normalize a series in place (zero mean, unit variance). */
void zNormalize(std::vector<double> &values);

/** Z-normalized copy of a TimeSeries. */
TimeSeries zNormalized(const TimeSeries &series);

} // namespace cminer::ts

#endif // CMINER_TS_LB_KEOGH_H

/**
 * @file
 * Resampling helpers: stretch/compress a series to a target length and
 * aggregate adjacent intervals. Used when comparing series from runs with
 * very different lengths and by the bench plots.
 */

#ifndef CMINER_TS_RESAMPLE_H
#define CMINER_TS_RESAMPLE_H

#include <cstddef>
#include <vector>

#include "ts/time_series.h"

namespace cminer::ts {

/**
 * Linear-interpolation resample to exactly `target_length` points.
 *
 * @param values source values (non-empty)
 * @param target_length desired length (>= 1)
 */
std::vector<double> resampleLinear(const std::vector<double> &values,
                                   std::size_t target_length);

/** Resample a TimeSeries, preserving metadata and adjusting intervalMs. */
TimeSeries resampleLinear(const TimeSeries &series,
                          std::size_t target_length);

/**
 * Downsample by averaging groups of `factor` adjacent intervals (the last
 * group may be smaller).
 */
std::vector<double> downsampleMean(const std::vector<double> &values,
                                   std::size_t factor);

} // namespace cminer::ts

#endif // CMINER_TS_RESAMPLE_H

/**
 * @file
 * The microarchitectural event catalog.
 *
 * The paper's testbed (Xeon E5-2630 v3, Haswell-E) exposes 229 measurable
 * events; every abbreviation from the paper's Table III appears here with
 * a plausible Haswell event name. The catalog also records, per event, the
 * statistical family its values follow (the paper found ~100 Gaussian and
 * 129 long-tailed/GEV events) and a burstiness level that drives the MLPX
 * artifact model.
 */

#ifndef CMINER_PMU_EVENT_H
#define CMINER_PMU_EVENT_H

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace cminer::pmu {

/** Index of an event within the catalog. */
using EventId = std::size_t;

/** Broad grouping used for base rates and reporting. */
enum class EventCategory
{
    Fixed,     ///< fixed-counter events (cycles, retired instructions)
    Frontend,  ///< icache, decode, DSB/MITE, instruction queue
    Branch,    ///< branch execution / retirement / misprediction
    Cache,     ///< L1/L2/LLC demand traffic
    Tlb,       ///< ITLB, DTLB, STLB, page walks
    Memory,    ///< load/store uops, memory stalls
    Remote,    ///< remote DRAM / remote cache (NUMA) traffic
    Uops,      ///< uop issue/execute/retire and ports
    Stall,     ///< stall-cycle accounting
    Other,     ///< assists, machine clears, miscellaneous
};

/** Value-distribution family of an event (paper Section III-B). */
enum class DistFamily
{
    Gaussian,
    LongTail, ///< GEV-like heavy right tail
};

/** Static description of one measurable event. */
struct EventInfo
{
    std::string name;        ///< full vendor-style name ("ICACHE.MISSES")
    std::string abbrev;      ///< short code used in the paper's figures
    std::string description; ///< human-readable meaning
    EventCategory category = EventCategory::Other;
    DistFamily family = DistFamily::Gaussian;
    /**
     * Typical per-interval magnitude for the synthetic workload model
     * (arbitrary units; what matters downstream is relative variation).
     */
    double baseRate = 1.0;
    /**
     * Within-interval burstiness in [0, 1]; high values concentrate the
     * event's activity into few time quanta, which is what makes MLPX
     * extrapolation produce outliers.
     */
    double burstiness = 0.2;
    bool fixedCounter = false; ///< measurable only on a fixed counter
};

/** Human-readable category name. */
std::string categoryName(EventCategory category);

/**
 * The full event catalog of the simulated processor.
 *
 * Singleton-by-value: construct once and share by reference. Contents are
 * deterministic — no RNG involved — so EventIds are stable across runs.
 */
class EventCatalog
{
  public:
    /** Build the full 229-event Haswell-E-like catalog. */
    EventCatalog();

    /** Number of events (229 for the default catalog). */
    std::size_t size() const { return events_.size(); }

    /** Event description by id. */
    const EventInfo &info(EventId id) const;

    /** Lookup by full name; empty when unknown. */
    std::optional<EventId> findByName(const std::string &name) const;

    /** Lookup by abbreviation; empty when unknown. */
    std::optional<EventId> findByAbbrev(const std::string &abbrev) const;

    /** Id for a full name; fatal when unknown. */
    EventId idOf(const std::string &name) const;

    /** Id for an abbreviation; fatal when unknown. */
    EventId idOfAbbrev(const std::string &abbrev) const;

    /** All ids in a category. */
    std::vector<EventId> byCategory(EventCategory category) const;

    /** Ids of all programmable (non-fixed) events. */
    std::vector<EventId> programmableEvents() const;

    /** Number of events following a given distribution family. */
    std::size_t countFamily(DistFamily family) const;

    /** Shared default catalog instance. */
    static const EventCatalog &instance();

  private:
    void add(EventInfo info);

    std::vector<EventInfo> events_;
};

} // namespace cminer::pmu

#endif // CMINER_PMU_EVENT_H

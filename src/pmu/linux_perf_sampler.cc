#include "pmu/linux_perf_sampler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <string>
#include <vector>

#include "util/error.h"
#include "util/string_util.h"

#if defined(CMINER_HAVE_PERF)
#include <cerrno>
#include <cstring>
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace cminer::pmu {

using cminer::ts::TimeSeries;
using cminer::util::Rng;
using cminer::util::Status;

namespace {

/** Fallback spin when no load callback is injected. */
std::uint64_t
builtinSpin()
{
    static std::uint64_t acc = 1;
    for (int i = 0; i < 20000; ++i) {
        acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
        acc ^= acc >> 29;
    }
    return acc;
}

} // namespace

#if defined(CMINER_HAVE_PERF)

namespace {

/** One perf event attribute candidate: (type, config). */
struct AttrSpec
{
    std::uint32_t type = 0;
    std::uint64_t config = 0;
};

constexpr std::uint64_t
cacheConfig(unsigned cache, unsigned op, unsigned result)
{
    return static_cast<std::uint64_t>(cache) |
           (static_cast<std::uint64_t>(op) << 8) |
           (static_cast<std::uint64_t>(result) << 16);
}

int
perfEventOpen(perf_event_attr &attr, int group_fd)
{
    return static_cast<int>(syscall(__NR_perf_event_open, &attr, 0, -1,
                                    group_fd, 0));
}

perf_event_attr
makeAttr(const AttrSpec &spec, bool disabled)
{
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.size = sizeof(attr);
    attr.type = spec.type;
    attr.config = spec.config;
    attr.disabled = disabled ? 1 : 0;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.read_format =
        PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
    return attr;
}

/**
 * Candidate perf events for one catalog event, most faithful first.
 *
 * The catalog names simulated Haswell events; real collection projects
 * them onto the portable perf vocabulary by category. Categories with
 * several plausible projections rotate by event id so neighbouring
 * catalog events do not all collapse onto a single hardware event.
 * Every chain ends in events that open nearly everywhere.
 */
std::vector<AttrSpec>
candidatesFor(const EventInfo &info, EventId id)
{
    using Cat = EventCategory;
    std::vector<AttrSpec> c;
    auto hw = [&](std::uint64_t config) {
        c.push_back({PERF_TYPE_HARDWARE, config});
    };
    auto cache = [&](unsigned which, unsigned op, unsigned result) {
        c.push_back({PERF_TYPE_HW_CACHE, cacheConfig(which, op, result)});
    };
    const std::size_t pick = id; // rotation salt within a category
    switch (info.category) {
      case Cat::Fixed:
        if (info.name == "CPU_CLK_UNHALTED.THREAD")
            hw(PERF_COUNT_HW_CPU_CYCLES);
        else if (info.name == "CPU_CLK_UNHALTED.REF_TSC")
            hw(PERF_COUNT_HW_REF_CPU_CYCLES);
        else
            hw(PERF_COUNT_HW_INSTRUCTIONS);
        break;
      case Cat::Frontend:
        if (pick % 2 == 0)
            cache(PERF_COUNT_HW_CACHE_L1I, PERF_COUNT_HW_CACHE_OP_READ,
                  PERF_COUNT_HW_CACHE_RESULT_MISS);
        else
            cache(PERF_COUNT_HW_CACHE_L1I, PERF_COUNT_HW_CACHE_OP_READ,
                  PERF_COUNT_HW_CACHE_RESULT_ACCESS);
        break;
      case Cat::Branch:
        if (pick % 2 == 0)
            hw(PERF_COUNT_HW_BRANCH_INSTRUCTIONS);
        else
            hw(PERF_COUNT_HW_BRANCH_MISSES);
        break;
      case Cat::Cache:
        if (pick % 2 == 0)
            hw(PERF_COUNT_HW_CACHE_REFERENCES);
        else
            hw(PERF_COUNT_HW_CACHE_MISSES);
        break;
      case Cat::Tlb:
        if (pick % 2 == 0)
            cache(PERF_COUNT_HW_CACHE_DTLB, PERF_COUNT_HW_CACHE_OP_READ,
                  PERF_COUNT_HW_CACHE_RESULT_MISS);
        else
            cache(PERF_COUNT_HW_CACHE_ITLB, PERF_COUNT_HW_CACHE_OP_READ,
                  PERF_COUNT_HW_CACHE_RESULT_MISS);
        break;
      case Cat::Memory:
        if (pick % 2 == 0)
            cache(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_OP_READ,
                  PERF_COUNT_HW_CACHE_RESULT_ACCESS);
        else
            cache(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_OP_READ,
                  PERF_COUNT_HW_CACHE_RESULT_MISS);
        break;
      case Cat::Remote:
        cache(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
              PERF_COUNT_HW_CACHE_RESULT_MISS);
        break;
      case Cat::Uops:
        hw(PERF_COUNT_HW_INSTRUCTIONS);
        break;
      case Cat::Stall:
        if (pick % 2 == 0)
            hw(PERF_COUNT_HW_STALLED_CYCLES_FRONTEND);
        else
            hw(PERF_COUNT_HW_STALLED_CYCLES_BACKEND);
        break;
      case Cat::Other:
        c.push_back({PERF_TYPE_SOFTWARE, PERF_COUNT_SW_CONTEXT_SWITCHES});
        break;
    }
    // Universal degradation chain: a PMU that lacks the projection still
    // measures *something* real rather than failing the whole group.
    hw(PERF_COUNT_HW_INSTRUCTIONS);
    c.push_back({PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK});
    return c;
}

/** An open counter fd with its last absolute reading. */
struct OpenCounter
{
    int fd = -1;
    bool leader = false;    ///< owns group enable/reset
    bool grouped = false;   ///< scheduled as part of a leader's group
    std::uint64_t value = 0;
    std::uint64_t enabled = 0;
    std::uint64_t running = 0;
};

/** Non-group read layout for TOTAL_TIME_ENABLED|TOTAL_TIME_RUNNING. */
struct ReadSample
{
    std::uint64_t value = 0;
    std::uint64_t enabled = 0;
    std::uint64_t running = 0;
};

bool
readCounter(const OpenCounter &counter, ReadSample &out)
{
    ReadSample sample;
    const ssize_t got = read(counter.fd, &sample, sizeof(sample));
    if (got != static_cast<ssize_t>(sizeof(sample)))
        return false;
    out = sample;
    return true;
}

} // namespace

bool
LinuxPerfSampler::compiledIn()
{
    return true;
}

Status
LinuxPerfSampler::probe()
{
    std::ifstream paranoid_file("/proc/sys/kernel/perf_event_paranoid");
    int paranoid = 0;
    if (!(paranoid_file >> paranoid)) {
        return Status::dataError(
            "perf probe: no perf_event subsystem "
            "(/proc/sys/kernel/perf_event_paranoid missing)");
    }
    AttrSpec spec{PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS};
    perf_event_attr attr = makeAttr(spec, /*disabled=*/true);
    int fd = perfEventOpen(attr, -1);
    if (fd < 0 && (errno == ENOENT || errno == ENODEV ||
                   errno == EOPNOTSUPP)) {
        // No hardware PMU (common in VMs); cycles sometimes differs.
        spec.config = PERF_COUNT_HW_CPU_CYCLES;
        attr = makeAttr(spec, true);
        fd = perfEventOpen(attr, -1);
    }
    if (fd >= 0) {
        close(fd);
        return Status::okStatus();
    }
    const int err = errno;
    if (err == EACCES || err == EPERM) {
        return Status::dataError(util::format(
            "perf probe: perf_event_paranoid=%d blocks unprivileged "
            "hardware counter access",
            paranoid));
    }
    if (err == ENOSYS) {
        return Status::dataError(
            "perf probe: perf_event_open syscall unavailable");
    }
    return Status::dataError(
        std::string("perf probe: hardware counters unavailable: ") +
        std::strerror(err));
}

/** Per-measurement state: the cached fixed-counter IPC series. */
struct LinuxPerfSampler::Impl
{
    TimeSeries lastIpc;
    bool hasLastIpc = false;

    /**
     * The shared measurement loop: open one fd per event (grouped per
     * `groups` so the kernel co-schedules and rotates them), drive the
     * load for each interval, read deltas, extrapolate by duty cycle.
     */
    MlpxMeasurement
    measure(const TrueTrace &window,
            const std::vector<EventId> &events,
            const std::vector<std::vector<std::size_t>> &groups,
            const EventCatalog &catalog, const LoadFn &load)
    {
        const std::size_t intervals = window.intervalCount();
        const double interval_ms = window.intervalMs();

        // Fixed-counter IPC group: instructions leader + cycles.
        std::vector<OpenCounter> fixed(2);
        {
            perf_event_attr inst = makeAttr(
                {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS}, true);
            fixed[0].fd = perfEventOpen(inst, -1);
            fixed[0].leader = true;
            if (fixed[0].fd < 0) {
                util::fatal(std::string(
                    "perf backend: cannot open the instructions "
                    "counter: ") + std::strerror(errno));
            }
            perf_event_attr cyc = makeAttr(
                {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES}, false);
            fixed[1].fd = perfEventOpen(cyc, fixed[0].fd);
            fixed[1].grouped = true;
            if (fixed[1].fd < 0) {
                // Fall back to a standalone cycles counter.
                cyc.disabled = 1;
                fixed[1].fd = perfEventOpen(cyc, -1);
                fixed[1].leader = fixed[1].fd >= 0;
                fixed[1].grouped = false;
            }
        }

        // One fd per scheduled event, grouped by the MLPX plan. A
        // sibling the PMU cannot co-host degrades to its own singleton
        // group — the kernel still rotates it, duty scaling still holds.
        std::vector<OpenCounter> counters(events.size());
        for (const auto &group : groups) {
            int group_fd = -1;
            for (std::size_t member : group) {
                OpenCounter &counter = counters[member];
                const auto specs =
                    candidatesFor(catalog.info(events[member]),
                                  events[member]);
                for (const AttrSpec &spec : specs) {
                    perf_event_attr attr =
                        makeAttr(spec, group_fd < 0);
                    counter.fd = perfEventOpen(attr, group_fd);
                    if (counter.fd < 0 && group_fd >= 0) {
                        // Retry outside the group before giving up on
                        // this candidate.
                        attr.disabled = 1;
                        counter.fd = perfEventOpen(attr, -1);
                        if (counter.fd >= 0) {
                            counter.leader = true;
                            break;
                        }
                    } else if (counter.fd >= 0) {
                        counter.leader = group_fd < 0;
                        counter.grouped = group_fd >= 0;
                        break;
                    }
                }
                if (counter.fd < 0) {
                    util::fatal(util::format(
                        "perf backend: cannot open any counter for "
                        "event %s: %s",
                        catalog.info(events[member]).name.c_str(),
                        std::strerror(errno)));
                }
                if (counter.leader && group_fd < 0)
                    group_fd = counter.fd;
            }
        }

        auto enableAll = [&](std::vector<OpenCounter> &set) {
            for (OpenCounter &counter : set) {
                if (!counter.leader)
                    continue;
                ioctl(counter.fd, PERF_EVENT_IOC_RESET,
                      PERF_IOC_FLAG_GROUP);
                ioctl(counter.fd, PERF_EVENT_IOC_ENABLE,
                      PERF_IOC_FLAG_GROUP);
            }
        };
        enableAll(fixed);
        enableAll(counters);

        auto baseline = [&](std::vector<OpenCounter> &set) {
            for (OpenCounter &counter : set) {
                ReadSample sample;
                if (readCounter(counter, sample)) {
                    counter.value = sample.value;
                    counter.enabled = sample.enabled;
                    counter.running = sample.running;
                }
            }
        };
        baseline(fixed);
        baseline(counters);

        std::vector<std::vector<double>> measured(
            events.size(), std::vector<double>(intervals, 0.0));
        std::vector<double> duty_total(events.size(), 0.0);
        std::vector<double> ipc(intervals, 0.0);

        // Consume the load's checksum so the work cannot be elided.
        std::uint64_t sink = 0;
        const auto start = std::chrono::steady_clock::now();
        for (std::size_t t = 0; t < intervals; ++t) {
            const auto target =
                start + std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double, std::milli>(
                                interval_ms *
                                static_cast<double>(t + 1)));
            do {
                sink ^= load ? load() : builtinSpin();
            } while (std::chrono::steady_clock::now() < target);

            // Interval read: delta counts scaled by the interval's duty
            // cycle, exactly the simulator's extrapolation shape.
            for (std::size_t i = 0; i < counters.size(); ++i) {
                OpenCounter &counter = counters[i];
                ReadSample sample;
                if (!readCounter(counter, sample))
                    continue; // keeps the interval's 0.0 (missing)
                const std::uint64_t d_value =
                    sample.value - counter.value;
                const std::uint64_t d_enabled =
                    sample.enabled - counter.enabled;
                const std::uint64_t d_running =
                    sample.running - counter.running;
                counter.value = sample.value;
                counter.enabled = sample.enabled;
                counter.running = sample.running;
                if (d_running == 0) {
                    measured[i][t] = 0.0; // the paper's missing value
                    continue;
                }
                const double scale =
                    static_cast<double>(d_enabled) /
                    static_cast<double>(d_running);
                measured[i][t] =
                    static_cast<double>(d_value) * scale;
                duty_total[i] +=
                    d_enabled > 0
                        ? static_cast<double>(d_running) /
                              static_cast<double>(d_enabled)
                        : 1.0;
            }

            double inst_delta = 0.0;
            double cyc_delta = 0.0;
            for (std::size_t f = 0; f < fixed.size(); ++f) {
                OpenCounter &counter = fixed[f];
                ReadSample sample;
                if (counter.fd < 0 || !readCounter(counter, sample))
                    continue;
                const std::uint64_t d_value =
                    sample.value - counter.value;
                const std::uint64_t d_enabled =
                    sample.enabled - counter.enabled;
                const std::uint64_t d_running =
                    sample.running - counter.running;
                counter.value = sample.value;
                counter.enabled = sample.enabled;
                counter.running = sample.running;
                double scaled = 0.0;
                if (d_running > 0) {
                    scaled = static_cast<double>(d_value) *
                             static_cast<double>(d_enabled) /
                             static_cast<double>(d_running);
                }
                if (f == 0)
                    inst_delta = scaled;
                else
                    cyc_delta = scaled;
            }
            ipc[t] = cyc_delta > 0.0 ? inst_delta / cyc_delta : 0.0;
        }
        (void)sink;

        for (OpenCounter &counter : counters) {
            if (counter.fd >= 0)
                close(counter.fd);
        }
        for (OpenCounter &counter : fixed) {
            if (counter.fd >= 0)
                close(counter.fd);
        }

        MlpxMeasurement out;
        out.series.reserve(events.size());
        out.dutyCycles.reserve(events.size());
        for (std::size_t i = 0; i < events.size(); ++i) {
            out.series.emplace_back(catalog.info(events[i]).name,
                                    std::move(measured[i]), interval_ms);
            out.dutyCycles.push_back(
                intervals > 0
                    ? duty_total[i] / static_cast<double>(intervals)
                    : 1.0);
        }
        lastIpc = TimeSeries("IPC", std::move(ipc), interval_ms);
        hasLastIpc = true;
        return out;
    }
};

LinuxPerfSampler::LinuxPerfSampler(const EventCatalog &catalog,
                                   PmuConfig config, LoadFn load)
    : catalog_(catalog),
      config_(config),
      load_(std::move(load)),
      impl_(std::make_unique<Impl>())
{
    validatePmuConfig(config_).throwIfError();
}

LinuxPerfSampler::~LinuxPerfSampler() = default;

std::vector<TimeSeries>
LinuxPerfSampler::measureOcoe(const TrueTrace &window,
                              const std::vector<EventId> &events,
                              Rng & /*rng*/)
{
    // OCOE: every event is its own singleton group — a dedicated
    // counter when the PMU has room, duty-scaled truth when it does not.
    std::vector<std::vector<std::size_t>> groups;
    groups.reserve(events.size());
    for (std::size_t i = 0; i < events.size(); ++i)
        groups.push_back({i});
    return impl_->measure(window, events, groups, catalog_, load_)
        .series;
}

MlpxMeasurement
LinuxPerfSampler::measureMlpx(const TrueTrace &window,
                              const MlpxSchedule &schedule, Rng & /*rng*/)
{
    std::vector<std::vector<std::size_t>> groups;
    groups.reserve(schedule.groupCount());
    for (std::size_t g = 0; g < schedule.groupCount(); ++g)
        groups.push_back(schedule.groupMembers(g));
    return impl_->measure(window, schedule.events(), groups, catalog_,
                          load_);
}

TimeSeries
LinuxPerfSampler::measuredIpc(const TrueTrace &window, Rng &rng)
{
    // The fixed-counter group measured alongside the most recent event
    // measurement *is* this window's IPC — one real execution produced
    // both, mirroring the simulator deriving both from one trace.
    if (impl_->hasLastIpc &&
        impl_->lastIpc.size() == window.intervalCount()) {
        return impl_->lastIpc;
    }
    // No matching measurement cached: measure a standalone window with
    // the fixed counters only.
    MlpxMeasurement unused = impl_->measure(
        window, {}, {}, catalog_, load_);
    (void)unused;
    (void)rng;
    return impl_->lastIpc;
}

#else // !CMINER_HAVE_PERF

/** Stub: the build has no <linux/perf_event.h>. */
struct LinuxPerfSampler::Impl
{
};

bool
LinuxPerfSampler::compiledIn()
{
    return false;
}

Status
LinuxPerfSampler::probe()
{
    return Status::dataError(
        "perf probe: built without perf_event support "
        "(<linux/perf_event.h> was unavailable at configure time)");
}

LinuxPerfSampler::LinuxPerfSampler(const EventCatalog &catalog,
                                   PmuConfig config, LoadFn load)
    : catalog_(catalog), config_(config), load_(std::move(load))
{
    (void)builtinSpin; // silence unused-function on stub builds
    util::fatal("perf backend not compiled in; probe before construction");
}

LinuxPerfSampler::~LinuxPerfSampler() = default;

std::vector<TimeSeries>
LinuxPerfSampler::measureOcoe(const TrueTrace &, const std::vector<EventId> &,
                              Rng &)
{
    util::fatal("perf backend not compiled in");
}

MlpxMeasurement
LinuxPerfSampler::measureMlpx(const TrueTrace &, const MlpxSchedule &,
                              Rng &)
{
    util::fatal("perf backend not compiled in");
}

TimeSeries
LinuxPerfSampler::measuredIpc(const TrueTrace &, Rng &)
{
    util::fatal("perf backend not compiled in");
}

#endif // CMINER_HAVE_PERF

} // namespace cminer::pmu

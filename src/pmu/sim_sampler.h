/**
 * @file
 * The simulated-PMU backend: the paper's measurement-error model behind
 * the SamplerBackend seam.
 *
 * SimSampler delegates to the pre-seam Sampler unchanged — its series
 * are bit-identical to the legacy `DataCollector`-owned sampler for the
 * same RNG stream (locked by the hexfloat pipeline goldens and the
 * determinism tests). The duty cycles it reports are derived from the
 * schedule arithmetic alone, never from the RNG, so adding them cannot
 * perturb the series.
 */

#ifndef CMINER_PMU_SIM_SAMPLER_H
#define CMINER_PMU_SIM_SAMPLER_H

#include "pmu/backend.h"
#include "pmu/sampler.h"

namespace cminer::pmu {

/**
 * Observes synthetic TrueTraces through the simulated PMU.
 */
class SimSampler : public SamplerBackend
{
  public:
    /**
     * @param catalog event catalog (lifetime must cover the sampler's)
     * @param config PMU description; validated (fatal on a bad field)
     */
    SimSampler(const EventCatalog &catalog, PmuConfig config = {});

    BackendKind kind() const override { return BackendKind::Sim; }

    const PmuConfig &config() const override
    {
        return sampler_.config();
    }

    /** The wrapped simulation engine (for tests). */
    const Sampler &sampler() const { return sampler_; }

    std::vector<cminer::ts::TimeSeries>
    measureOcoe(const TrueTrace &window,
                const std::vector<EventId> &events,
                cminer::util::Rng &rng) override;

    MlpxMeasurement measureMlpx(const TrueTrace &window,
                                const MlpxSchedule &schedule,
                                cminer::util::Rng &rng) override;

    cminer::ts::TimeSeries measuredIpc(const TrueTrace &window,
                                       cminer::util::Rng &rng) override;

  private:
    Sampler sampler_;
};

} // namespace cminer::pmu

#endif // CMINER_PMU_SIM_SAMPLER_H

/**
 * @file
 * The collection seam: how counters are measured is a backend, not a
 * hard-coded class.
 *
 * A SamplerBackend measures an OCOE event list or an MLPX schedule over
 * a sampling window and reports per-interval counts (duty-cycle
 * extrapolated, perf's time_enabled/time_running scaling), the per-event
 * duty cycles themselves, and the fixed-counter IPC. Two backends exist:
 *
 *  - SimSampler (sim_sampler.h): the paper's simulated PMU observing a
 *    synthetic TrueTrace — bit-identical to the pre-seam pipeline.
 *  - LinuxPerfSampler (linux_perf_sampler.h): real perf_event_open
 *    group FDs measuring an in-process synthetic load, grouped by the
 *    same MlpxSchedule plans.
 *
 * The window of a measurement is carried by the TrueTrace argument: the
 * simulator reads it as ground truth; a hardware backend reads only its
 * shape (interval count and interval length) — real hardware is its own
 * ground truth.
 */

#ifndef CMINER_PMU_BACKEND_H
#define CMINER_PMU_BACKEND_H

#include <memory>
#include <string>
#include <vector>

#include "pmu/counter.h"
#include "pmu/event.h"
#include "pmu/schedule.h"
#include "pmu/trace.h"
#include "ts/time_series.h"
#include "util/rng.h"
#include "util/status.h"

namespace cminer::pmu {

/** Which collection backend to use. */
enum class BackendKind
{
    Sim,  ///< simulated PMU over synthetic traces (always available)
    Perf, ///< perf_event_open on real hardware (Linux, probed at runtime)
};

/** Stable backend name ("sim", "perf"). */
const char *backendKindName(BackendKind kind);

/**
 * Parse a backend name. Unknown names come back as a DataError whose
 * message lists the valid choices.
 */
cminer::util::StatusOr<BackendKind>
parseBackendKind(const std::string &name);

/**
 * One MLPX measurement: the extrapolated series plus the duty cycles
 * that scaled them.
 */
struct MlpxMeasurement
{
    /** One series per scheduled event, in schedule order. */
    std::vector<cminer::ts::TimeSeries> series;
    /**
     * Mean time_running/time_enabled per event, in schedule order.
     * 1.0 means the event was counted the whole run (no multiplexing);
     * the extrapolation scale applied per interval is its reciprocal.
     */
    std::vector<double> dutyCycles;
};

/**
 * A way of measuring hardware events over a sampling window.
 *
 * Implementations must keep the duty-cycle extrapolation contract: an
 * interval during which an event's group never counted reports 0.0 (the
 * paper's missing value); a partially counted interval reports
 * observed / duty (perf's time_enabled/time_running scaling).
 */
class SamplerBackend
{
  public:
    virtual ~SamplerBackend() = default;

    /** Which backend this is. */
    virtual BackendKind kind() const = 0;

    /** Stable name, for logs and reports. */
    const char *name() const { return backendKindName(kind()); }

    /** PMU description in use. */
    virtual const PmuConfig &config() const = 0;

    /**
     * OCOE measurement: each event gets a dedicated counter for the
     * whole window — accurate up to read noise. The caller is
     * responsible for respecting the physical counter limit across
     * runs (see OcoePlan).
     *
     * @param window window shape (and, for the simulator, ground truth)
     * @param events events to measure
     * @param rng noise source (unused by hardware backends)
     * @return one TimeSeries per event, in input order
     */
    virtual std::vector<cminer::ts::TimeSeries>
    measureOcoe(const TrueTrace &window,
                const std::vector<EventId> &events,
                cminer::util::Rng &rng) = 0;

    /**
     * MLPX measurement with duty-cycle extrapolation: the schedule's
     * groups share the programmable counters and rotate; per-interval
     * counts are scaled by time_enabled/time_running.
     *
     * @param window window shape (and, for the simulator, ground truth)
     * @param schedule the multiplexing schedule (events + rotation)
     * @param rng noise source (unused by hardware backends)
     */
    virtual MlpxMeasurement measureMlpx(const TrueTrace &window,
                                        const MlpxSchedule &schedule,
                                        cminer::util::Rng &rng) = 0;

    /**
     * Per-interval IPC observed through the fixed counters. Fixed
     * counters are never multiplexed, so this is accurate in both
     * modes.
     */
    virtual cminer::ts::TimeSeries measuredIpc(const TrueTrace &window,
                                               cminer::util::Rng &rng) = 0;
};

} // namespace cminer::pmu

#endif // CMINER_PMU_BACKEND_H

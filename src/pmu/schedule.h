/**
 * @file
 * Event-to-counter scheduling for OCOE and MLPX measurement.
 *
 * MLPX follows the Linux perf default: events are packed into groups of
 * at most `counters` events, and groups rotate round-robin on every
 * scheduler quantum. OCOE instead plans one *run* per group, dedicating a
 * counter to each event for the whole execution (accurate but needing
 * ceil(E/C) runs).
 */

#ifndef CMINER_PMU_SCHEDULE_H
#define CMINER_PMU_SCHEDULE_H

#include <cstddef>
#include <vector>

#include "pmu/event.h"

namespace cminer::pmu {

/** Group rotation policy for MLPX. */
enum class RotationPolicy
{
    RoundRobin, ///< perf default: groups rotate in a fixed cycle
    Strided,    ///< deterministic stride-2 rotation (ablation baseline)
};

/**
 * A multiplexing schedule: which events share which counters and which
 * group is live during a given scheduler quantum.
 */
class MlpxSchedule
{
  public:
    /**
     * @param events the events to measure, in priority order
     * @param counters number of programmable counters available
     * @param policy group rotation policy
     */
    MlpxSchedule(std::vector<EventId> events, std::size_t counters,
                 RotationPolicy policy = RotationPolicy::RoundRobin);

    /** Events being measured. */
    const std::vector<EventId> &events() const { return events_; }

    /** Number of counter-sized groups. */
    std::size_t groupCount() const { return groupCount_; }

    /** Group an event (by position in events()) belongs to. */
    std::size_t groupOf(std::size_t event_index) const;

    /** Members of one group, as positions into events(). */
    std::vector<std::size_t> groupMembers(std::size_t group) const;

    /** The group scheduled onto the counters during a global quantum. */
    std::size_t activeGroup(std::size_t quantum) const;

    /**
     * Fraction of time an event is scheduled (its duty cycle),
     * 1/groupCount for the rotation policies implemented here.
     */
    double dutyCycle() const;

  private:
    std::vector<EventId> events_;
    std::size_t counters_;
    std::size_t groupCount_;
    RotationPolicy policy_;
};

/**
 * An OCOE measurement plan: the runs needed to cover all events with a
 * dedicated counter each.
 */
class OcoePlan
{
  public:
    /**
     * @param events events to cover
     * @param counters programmable counters per run
     */
    OcoePlan(std::vector<EventId> events, std::size_t counters);

    /** Number of runs required (ceil(E / C)). */
    std::size_t runCount() const { return runs_.size(); }

    /** Events measured in the given run. */
    const std::vector<EventId> &run(std::size_t index) const;

  private:
    std::vector<std::vector<EventId>> runs_;
};

} // namespace cminer::pmu

#endif // CMINER_PMU_SCHEDULE_H

/**
 * @file
 * The real-hardware backend: perf_event_open group FDs behind the
 * SamplerBackend seam.
 *
 * Event groups follow the same src/pmu/schedule MLPX plans as the
 * simulator: each MlpxSchedule group becomes one perf event group
 * (leader + siblings), all groups are enabled at once, and the kernel's
 * own rotation multiplexes them across the physical counters. Interval
 * reads return PERF_FORMAT_TOTAL_TIME_ENABLED / _TIME_RUNNING alongside
 * the counts, and each interval's count is extrapolated by the duty
 * cycle exactly the way the simulator extrapolates — an interval whose
 * group never ran reports 0.0 (the paper's missing value).
 *
 * Because the catalog describes a simulated Haswell-E, catalog events
 * map onto portable perf events by category (branch events onto
 * PERF_COUNT_HW_BRANCH_*, cache events onto the HW_CACHE encodings, and
 * so on); events the PMU cannot host degrade through a candidate chain
 * ending in a software event. The mapping is honest about being a
 * projection: the *measurements* are real, the names keep the catalog's
 * vocabulary.
 *
 * What executes while counters run is an injected load callback —
 * usually workload::SyntheticLoad, wired in by the collection factory
 * (core/collector.h) so this layer never depends on the workload
 * library.
 *
 * Availability is probed at runtime (perf_event_paranoid, a trial
 * counter open); on hosts without access the factory falls back to the
 * simulator with a logged, metric-counted reason. On non-Linux builds
 * the class compiles to a stub whose probe always fails.
 */

#ifndef CMINER_PMU_LINUX_PERF_SAMPLER_H
#define CMINER_PMU_LINUX_PERF_SAMPLER_H

#include <functional>
#include <memory>

#include "pmu/backend.h"

namespace cminer::pmu {

/**
 * Work to execute while the counters measure. Called repeatedly between
 * interval reads; each call should run tens of microseconds of real
 * work and return a checksum (consumed internally to keep the work
 * alive).
 */
using LoadFn = std::function<std::uint64_t()>;

/**
 * Measures real hardware counters around an in-process load.
 */
class LinuxPerfSampler : public SamplerBackend
{
  public:
    /** True when the build has perf_event support compiled in. */
    static bool compiledIn();

    /**
     * Runtime availability: Ok when a hardware counter can actually be
     * opened; otherwise a DataError naming the obstacle
     * (perf_event_paranoid setting, missing syscall, no PMU).
     */
    static cminer::util::Status probe();

    /**
     * @param catalog event catalog (names and categories for mapping)
     * @param config PMU description; intervalMs paces the real reads
     * @param load work to run while measuring; when empty, a small
     *        built-in arithmetic spin is used
     */
    LinuxPerfSampler(const EventCatalog &catalog, PmuConfig config,
                     LoadFn load = {});
    ~LinuxPerfSampler() override;

    BackendKind kind() const override { return BackendKind::Perf; }

    const PmuConfig &config() const override { return config_; }

    std::vector<cminer::ts::TimeSeries>
    measureOcoe(const TrueTrace &window,
                const std::vector<EventId> &events,
                cminer::util::Rng &rng) override;

    MlpxMeasurement measureMlpx(const TrueTrace &window,
                                const MlpxSchedule &schedule,
                                cminer::util::Rng &rng) override;

    /**
     * The IPC measured by the fixed-counter group *during the most
     * recent* measureOcoe/measureMlpx call with the same window shape —
     * the series and the IPC describe one real execution, mirroring how
     * the simulator derives both from one trace. Falls back to a
     * standalone measurement when no matching window was measured.
     */
    cminer::ts::TimeSeries measuredIpc(const TrueTrace &window,
                                       cminer::util::Rng &rng) override;

  private:
    struct Impl;

    const EventCatalog &catalog_;
    PmuConfig config_;
    LoadFn load_;
    std::unique_ptr<Impl> impl_;
};

} // namespace cminer::pmu

#endif // CMINER_PMU_LINUX_PERF_SAMPLER_H

#include "pmu/sampler.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace cminer::pmu {

using cminer::ts::TimeSeries;
using cminer::util::Rng;

namespace {

/** Probability multiplier: burstiness -> chance of a concentrated
 *  interval (all activity inside one scheduler quantum). */
constexpr double burst_prob_scale = 0.26;

/** Log-weight sigma of the smooth within-interval split. */
constexpr double smooth_sigma_base = 0.02;
constexpr double smooth_sigma_slope = 0.04;

} // namespace

Sampler::Sampler(const EventCatalog &catalog, PmuConfig config)
    : catalog_(catalog), config_(config)
{
    // A bad config is caller input, not a library invariant: reject it
    // with the named DataError instead of aborting in schedule math.
    validatePmuConfig(config_).throwIfError();
}

std::vector<double>
Sampler::splitAcrossQuanta(double count, double level_ratio,
                           double burstiness, std::size_t quanta,
                           Rng &rng) const
{
    std::vector<double> split(quanta, 0.0);

    // Bursty interval: the event fires inside a single scheduler quantum
    // (think a code-phase transition or a batched flush). Bursts are
    // activity-correlated — flushes and phase transitions happen while
    // the event is hot — so the probability scales with how far the
    // interval sits above the run's median level. If the burst quantum
    // is not one the event's group owns, MLPX observes zero — the
    // paper's missing value; if it is, duty-cycle extrapolation inflates
    // the full count — the paper's outlier.
    const double level_factor = std::clamp(level_ratio - 1.0, 0.0, 2.5);
    const double burst_prob = std::min(
        0.9, burst_prob_scale * burstiness * level_factor);
    if (quanta > 1 && rng.bernoulli(burst_prob)) {
        const std::size_t q = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(quanta) - 1));
        split[q] = count;
        return split;
    }

    // Smooth interval: activity spread over all quanta with mild
    // lognormal weight noise (the residual duty-cycle sampling error
    // that cleaning cannot remove).
    const double sigma =
        smooth_sigma_base + smooth_sigma_slope * burstiness;
    double total = 0.0;
    std::vector<double> weights(quanta);
    for (auto &w : weights) {
        w = std::exp(sigma * rng.gaussian());
        total += w;
    }
    for (std::size_t q = 0; q < quanta; ++q)
        split[q] = count * weights[q] / total;
    return split;
}

std::vector<TimeSeries>
Sampler::measureOcoe(const TrueTrace &trace,
                     const std::vector<EventId> &events, Rng &rng) const
{
    CM_ASSERT(!events.empty());
    std::vector<TimeSeries> out;
    out.reserve(events.size());
    for (EventId event : events) {
        HardwareCounter counter(config_);
        counter.program(event);
        std::vector<double> values;
        values.reserve(trace.intervalCount());
        for (std::size_t t = 0; t < trace.intervalCount(); ++t) {
            counter.accumulate(trace.count(event, t));
            values.push_back(counter.readAndClear(rng));
        }
        out.emplace_back(catalog_.info(event).name, std::move(values),
                         trace.intervalMs());
    }
    return out;
}

std::vector<TimeSeries>
Sampler::measureMlpx(const TrueTrace &trace, const MlpxSchedule &schedule,
                     Rng &rng) const
{
    const auto &events = schedule.events();
    // The scheduler rotates fast enough to visit every group within a
    // sampling interval when there are more groups than the configured
    // quanta (Linux perf rotates on every timer tick, ~1 ms or faster).
    const std::size_t quanta =
        std::max(config_.rotationQuanta, schedule.groupCount());

    std::vector<std::vector<double>> measured(
        events.size(),
        std::vector<double>(trace.intervalCount(), 0.0));

    std::vector<HardwareCounter> counters(
        events.size(), HardwareCounter(config_));
    for (std::size_t i = 0; i < events.size(); ++i)
        counters[i].program(events[i]);

    // Per-event median level of the run, for the activity-correlated
    // burst model.
    std::vector<double> median_level(events.size(), 1.0);
    for (std::size_t i = 0; i < events.size(); ++i) {
        std::vector<double> sorted = trace.eventRow(events[i]);
        std::sort(sorted.begin(), sorted.end());
        const double median = sorted[sorted.size() / 2];
        median_level[i] = median > 0.0 ? median : 1.0;
    }

    for (std::size_t t = 0; t < trace.intervalCount(); ++t) {
        // Which quanta of this interval each group owns.
        std::vector<std::size_t> active_quanta(schedule.groupCount(), 0);
        std::vector<std::size_t> quantum_group(quanta);
        for (std::size_t q = 0; q < quanta; ++q) {
            const std::size_t group = schedule.activeGroup(t * quanta + q);
            quantum_group[q] = group;
            ++active_quanta[group];
        }

        for (std::size_t i = 0; i < events.size(); ++i) {
            const EventId event = events[i];
            const double true_count = trace.count(event, t);
            const std::size_t group = schedule.groupOf(i);
            const std::size_t running = active_quanta[group];
            if (running == 0) {
                // Group never scheduled this interval: perf reports the
                // sample as not counted; the stored value is zero — the
                // paper's "missing value".
                measured[i][t] = 0.0;
                continue;
            }
            // Distribute the interval's activity over the quanta and
            // accumulate only what happens while this group is live.
            const auto split = splitAcrossQuanta(
                true_count, true_count / median_level[i],
                catalog_.info(event).burstiness, quanta, rng);
            double observed = 0.0;
            for (std::size_t q = 0; q < quanta; ++q) {
                if (quantum_group[q] == group)
                    observed += split[q];
            }
            counters[i].accumulate(observed);
            const double read = counters[i].readAndClear(rng);
            // Duty-cycle extrapolation (perf time_enabled/time_running).
            const double scale = static_cast<double>(quanta) /
                                 static_cast<double>(running);
            measured[i][t] = read * scale;
        }
    }

    std::vector<TimeSeries> out;
    out.reserve(events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
        out.emplace_back(catalog_.info(events[i]).name,
                         std::move(measured[i]), trace.intervalMs());
    }
    return out;
}

TimeSeries
Sampler::measuredIpc(const TrueTrace &trace, Rng &rng) const
{
    // The fixed counters observe the truth up to read noise; IPC is their
    // ratio. The trace carries true IPC directly, so apply read noise to
    // it rather than reconstructing instruction counts.
    std::vector<double> values;
    values.reserve(trace.intervalCount());
    for (std::size_t t = 0; t < trace.intervalCount(); ++t) {
        const double noisy =
            trace.ipc(t) *
            std::max(0.0, 1.0 + rng.gaussian(0.0, config_.readNoise));
        values.push_back(noisy);
    }
    return TimeSeries("IPC", std::move(values), trace.intervalMs());
}

} // namespace cminer::pmu

#include "pmu/backend.h"

namespace cminer::pmu {

const char *
backendKindName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::Sim:
        return "sim";
      case BackendKind::Perf:
        return "perf";
    }
    return "unknown";
}

cminer::util::StatusOr<BackendKind>
parseBackendKind(const std::string &name)
{
    if (name == "sim")
        return BackendKind::Sim;
    if (name == "perf")
        return BackendKind::Perf;
    return cminer::util::Status::dataError(
        "unknown backend '" + name + "' (valid choices: sim, perf)");
}

} // namespace cminer::pmu

/**
 * @file
 * The ground-truth trace interface between the workload model and the PMU.
 *
 * A workload run produces a TrueTrace: for every catalog event, the true
 * number of occurrences in each sampling interval, plus the true IPC per
 * interval. The PMU sampler then *observes* this trace either exactly
 * (OCOE) or through multiplexed counters (MLPX). Keeping the truth
 * separate from the observation is what lets the benches quantify
 * measurement error the way the paper does.
 */

#ifndef CMINER_PMU_TRACE_H
#define CMINER_PMU_TRACE_H

#include <cstddef>
#include <string>
#include <vector>

#include "pmu/event.h"
#include "ts/time_series.h"

namespace cminer::pmu {

/**
 * Ground-truth event activity of one program run.
 *
 * counts[e][t] is the true count of catalog event e during interval t.
 * Interval counts are non-negative; lengths are uniform across events
 * within a run but differ *between* runs (OS nondeterminism).
 */
class TrueTrace
{
  public:
    TrueTrace() = default;

    /**
     * @param interval_count number of sampling intervals in the run
     * @param event_count number of catalog events (usually 229)
     * @param interval_ms sampling interval in milliseconds
     */
    TrueTrace(std::size_t interval_count, std::size_t event_count,
              double interval_ms);

    /** Number of sampling intervals. */
    std::size_t intervalCount() const { return intervalCount_; }

    /** Number of events carried (catalog size). */
    std::size_t eventCount() const { return counts_.size(); }

    /** Sampling interval in milliseconds. */
    double intervalMs() const { return intervalMs_; }

    /** Run duration in milliseconds. */
    double durationMs() const
    {
        return intervalMs_ * static_cast<double>(intervalCount_);
    }

    /** True count of event e in interval t. */
    double count(EventId event, std::size_t interval) const;

    /** Set the true count of event e in interval t. */
    void setCount(EventId event, std::size_t interval, double value);

    /** Whole row for one event. */
    const std::vector<double> &eventRow(EventId event) const;

    /** Mutable row for one event. */
    std::vector<double> &mutableEventRow(EventId event);

    /** True IPC in interval t. */
    double ipc(std::size_t interval) const;

    /** Set true IPC in interval t. */
    void setIpc(std::size_t interval, double value);

    /** Whole IPC row. */
    const std::vector<double> &ipcRow() const { return ipc_; }

    /** The true (noise-free) series of one event as a TimeSeries. */
    cminer::ts::TimeSeries trueSeries(EventId event,
                                      const EventCatalog &catalog) const;

  private:
    std::size_t intervalCount_ = 0;
    double intervalMs_ = 10.0;
    std::vector<std::vector<double>> counts_; ///< [event][interval]
    std::vector<double> ipc_;                 ///< [interval]
};

} // namespace cminer::pmu

#endif // CMINER_PMU_TRACE_H

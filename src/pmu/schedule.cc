#include "pmu/schedule.h"

#include "util/error.h"

namespace cminer::pmu {

MlpxSchedule::MlpxSchedule(std::vector<EventId> events, std::size_t counters,
                           RotationPolicy policy)
    : events_(std::move(events)), counters_(counters), policy_(policy)
{
    CM_ASSERT(!events_.empty());
    CM_ASSERT(counters_ >= 1);
    groupCount_ = (events_.size() + counters_ - 1) / counters_;
}

std::size_t
MlpxSchedule::groupOf(std::size_t event_index) const
{
    CM_ASSERT(event_index < events_.size());
    return event_index / counters_;
}

std::vector<std::size_t>
MlpxSchedule::groupMembers(std::size_t group) const
{
    CM_ASSERT(group < groupCount_);
    std::vector<std::size_t> members;
    const std::size_t first = group * counters_;
    const std::size_t last = std::min(first + counters_, events_.size());
    for (std::size_t i = first; i < last; ++i)
        members.push_back(i);
    return members;
}

std::size_t
MlpxSchedule::activeGroup(std::size_t quantum) const
{
    switch (policy_) {
      case RotationPolicy::RoundRobin:
        return quantum % groupCount_;
      case RotationPolicy::Strided:
        // Stride-2 walk over the group ring; covers every group when the
        // count is odd, degenerates to half coverage when even — which is
        // exactly the pathology the ablation bench demonstrates.
        return (quantum * 2) % groupCount_;
    }
    CM_PANIC("unhandled rotation policy");
}

double
MlpxSchedule::dutyCycle() const
{
    return 1.0 / static_cast<double>(groupCount_);
}

OcoePlan::OcoePlan(std::vector<EventId> events, std::size_t counters)
{
    CM_ASSERT(!events.empty());
    CM_ASSERT(counters >= 1);
    for (std::size_t first = 0; first < events.size(); first += counters) {
        const std::size_t last =
            std::min(first + counters, events.size());
        runs_.emplace_back(events.begin() + static_cast<long>(first),
                           events.begin() + static_cast<long>(last));
    }
}

const std::vector<EventId> &
OcoePlan::run(std::size_t index) const
{
    CM_ASSERT(index < runs_.size());
    return runs_[index];
}

} // namespace cminer::pmu

#include "pmu/trace.h"

#include "util/error.h"

namespace cminer::pmu {

TrueTrace::TrueTrace(std::size_t interval_count, std::size_t event_count,
                     double interval_ms)
    : intervalCount_(interval_count),
      intervalMs_(interval_ms),
      counts_(event_count, std::vector<double>(interval_count, 0.0)),
      ipc_(interval_count, 0.0)
{
    CM_ASSERT(interval_count > 0);
    CM_ASSERT(event_count > 0);
    CM_ASSERT(interval_ms > 0.0);
}

double
TrueTrace::count(EventId event, std::size_t interval) const
{
    CM_ASSERT(event < counts_.size());
    CM_ASSERT(interval < intervalCount_);
    return counts_[event][interval];
}

void
TrueTrace::setCount(EventId event, std::size_t interval, double value)
{
    CM_ASSERT(event < counts_.size());
    CM_ASSERT(interval < intervalCount_);
    CM_ASSERT(value >= 0.0);
    counts_[event][interval] = value;
}

const std::vector<double> &
TrueTrace::eventRow(EventId event) const
{
    CM_ASSERT(event < counts_.size());
    return counts_[event];
}

std::vector<double> &
TrueTrace::mutableEventRow(EventId event)
{
    CM_ASSERT(event < counts_.size());
    return counts_[event];
}

double
TrueTrace::ipc(std::size_t interval) const
{
    CM_ASSERT(interval < intervalCount_);
    return ipc_[interval];
}

void
TrueTrace::setIpc(std::size_t interval, double value)
{
    CM_ASSERT(interval < intervalCount_);
    CM_ASSERT(value >= 0.0);
    ipc_[interval] = value;
}

cminer::ts::TimeSeries
TrueTrace::trueSeries(EventId event, const EventCatalog &catalog) const
{
    return cminer::ts::TimeSeries(catalog.info(event).name,
                                  eventRow(event), intervalMs_);
}

} // namespace cminer::pmu

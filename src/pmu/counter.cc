#include "pmu/counter.h"

#include <cmath>

#include "util/error.h"
#include "util/string_util.h"

namespace cminer::pmu {

using cminer::util::Status;

Status
validatePmuConfig(const PmuConfig &config)
{
    if (config.programmableCounters == 0) {
        return Status::dataError(
            "pmu config: programmableCounters must be >= 1");
    }
    if (config.rotationQuanta == 0) {
        return Status::dataError(
            "pmu config: rotationQuanta must be >= 1");
    }
    if (!(config.intervalMs > 0.0) || !std::isfinite(config.intervalMs)) {
        return Status::dataError(util::format(
            "pmu config: intervalMs must be positive and finite, got %g",
            config.intervalMs));
    }
    if (!(config.readNoise >= 0.0) || !std::isfinite(config.readNoise)) {
        return Status::dataError(util::format(
            "pmu config: readNoise must be non-negative and finite, "
            "got %g",
            config.readNoise));
    }
    if (config.counterWidth < 32 || config.counterWidth > 64) {
        return Status::dataError(util::format(
            "pmu config: counterWidth must be in [32, 64], got %u",
            config.counterWidth));
    }
    return Status::okStatus();
}

HardwareCounter::HardwareCounter(const PmuConfig &config)
    : readNoise_(config.readNoise),
      wrapLimit_(std::pow(2.0, static_cast<double>(config.counterWidth)))
{
    CM_ASSERT(config.counterWidth >= 32 && config.counterWidth <= 64);
}

void
HardwareCounter::program(EventId event)
{
    event_ = event;
    programmed_ = true;
    accumulated_ = 0.0;
}

void
HardwareCounter::accumulate(double count)
{
    CM_ASSERT(programmed_);
    CM_ASSERT(count >= 0.0);
    accumulated_ += count;
}

double
HardwareCounter::readAndClear(cminer::util::Rng &rng)
{
    CM_ASSERT(programmed_);
    double value = accumulated_;
    accumulated_ = 0.0;
    if (readNoise_ > 0.0)
        value *= std::max(0.0, 1.0 + rng.gaussian(0.0, readNoise_));
    // Register wrap: counts are reported modulo the register width.
    if (value >= wrapLimit_)
        value = std::fmod(value, wrapLimit_);
    return value;
}

} // namespace cminer::pmu

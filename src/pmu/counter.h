/**
 * @file
 * Hardware-counter model: a small PMU description plus the per-counter
 * accumulate/read behaviour, including the read jitter real counters show
 * (Weaver et al. measured nondeterminism and overcount on real PMUs).
 */

#ifndef CMINER_PMU_COUNTER_H
#define CMINER_PMU_COUNTER_H

#include <cstdint>

#include "pmu/event.h"
#include "util/rng.h"
#include "util/status.h"

namespace cminer::pmu {

/** Static PMU configuration (per SMT thread). */
struct PmuConfig
{
    /** Programmable counters per thread (Haswell with SMT on: 4). */
    std::size_t programmableCounters = 4;
    /** Fixed counters (cycles, instructions, ref cycles). */
    std::size_t fixedCounters = 3;
    /** Sampling interval in milliseconds (perf stat -I style). */
    double intervalMs = 10.0;
    /**
     * Rotation quanta per sampling interval: how many times the MLPX
     * scheduler can switch event groups within one interval.
     */
    std::size_t rotationQuanta = 3;
    /** Relative read noise (sigma) applied to every counter read. */
    double readNoise = 0.005;
    /** Counter register width in bits (reads wrap at 2^width). */
    unsigned counterWidth = 48;
};

/**
 * Check a PmuConfig before it reaches schedule math: zero counters or
 * rotation quanta, a non-positive sampling interval, a negative or
 * non-finite read noise, or an out-of-range register width come back as
 * a DataError naming the offending field. Every sampler backend and the
 * collector validate at construction.
 */
cminer::util::Status validatePmuConfig(const PmuConfig &config);

/**
 * One hardware counter register.
 *
 * Counts accumulate until read; reads apply multiplicative jitter and
 * wrap at the register width, mimicking a real PMU programmed in
 * counting (non-sampling) mode.
 */
class HardwareCounter
{
  public:
    /** @param config PMU description this counter belongs to */
    explicit HardwareCounter(const PmuConfig &config);

    /** Program the counter to count the given event and clear it. */
    void program(EventId event);

    /** Currently programmed event (valid only when programmed()). */
    EventId event() const { return event_; }

    /** True when an event has been programmed. */
    bool programmed() const { return programmed_; }

    /** Accumulate `count` occurrences of the programmed event. */
    void accumulate(double count);

    /**
     * Read and clear, applying read jitter and register wrap.
     *
     * @param rng noise source
     * @return observed count since the last read
     */
    double readAndClear(cminer::util::Rng &rng);

    /** Raw accumulated value (test hook; no noise, no clear). */
    double raw() const { return accumulated_; }

  private:
    EventId event_ = 0;
    bool programmed_ = false;
    double accumulated_ = 0.0;
    double readNoise_;
    double wrapLimit_;
};

} // namespace cminer::pmu

#endif // CMINER_PMU_COUNTER_H

/**
 * @file
 * The PMU sampler: observes a ground-truth trace through the counter
 * model, in OCOE or MLPX mode.
 *
 * This is where the paper's measurement-error mechanism lives. In MLPX
 * mode, event groups rotate across scheduler quanta within each sampling
 * interval; an event's observed count is extrapolated by its duty cycle
 * (perf's time_enabled/time_running scaling). Two artifact types emerge
 * naturally:
 *  - outliers: a bursty event whose activity lands in its own scheduled
 *    quantum gets its full count extrapolated upward by 1/duty;
 *  - missing values: activity that falls entirely outside the event's
 *    scheduled quanta is never seen, so the interval reports zero.
 */

#ifndef CMINER_PMU_SAMPLER_H
#define CMINER_PMU_SAMPLER_H

#include <vector>

#include "pmu/counter.h"
#include "pmu/event.h"
#include "pmu/schedule.h"
#include "pmu/trace.h"
#include "ts/time_series.h"
#include "util/rng.h"

namespace cminer::pmu {

/**
 * Observes TrueTraces through the simulated PMU.
 */
class Sampler
{
  public:
    /**
     * @param catalog event catalog (lifetime must cover the sampler's)
     * @param config PMU description
     */
    Sampler(const EventCatalog &catalog, PmuConfig config = {});

    /** PMU description in use. */
    const PmuConfig &config() const { return config_; }

    /**
     * OCOE measurement: each event gets a dedicated counter for the whole
     * run — accurate up to read noise. The caller is responsible for
     * respecting the physical counter limit across runs (see OcoePlan);
     * this method measures whatever list it is given.
     *
     * @param trace ground truth
     * @param events events to measure
     * @param rng noise source
     * @return one TimeSeries per event, in input order
     */
    std::vector<cminer::ts::TimeSeries>
    measureOcoe(const TrueTrace &trace, const std::vector<EventId> &events,
                cminer::util::Rng &rng) const;

    /**
     * MLPX measurement with duty-cycle extrapolation.
     *
     * @param trace ground truth
     * @param schedule the multiplexing schedule (events + rotation)
     * @param rng noise source
     * @return one TimeSeries per scheduled event, in schedule order
     */
    std::vector<cminer::ts::TimeSeries>
    measureMlpx(const TrueTrace &trace, const MlpxSchedule &schedule,
                cminer::util::Rng &rng) const;

    /**
     * Per-interval IPC observed through the fixed counters
     * (INST_RETIRED.ANY / CPU_CLK_UNHALTED.THREAD). Fixed counters are
     * never multiplexed, so this is accurate in both modes.
     */
    cminer::ts::TimeSeries measuredIpc(const TrueTrace &trace,
                                       cminer::util::Rng &rng) const;

  private:
    /**
     * Split an interval's true count across rotation quanta with the
     * event's burstiness (higher burstiness concentrates the activity
     * into fewer quanta).
     */
    std::vector<double> splitAcrossQuanta(double count,
                                          double level_ratio,
                                          double burstiness,
                                          std::size_t quanta,
                                          cminer::util::Rng &rng) const;

    const EventCatalog &catalog_;
    PmuConfig config_;
};

} // namespace cminer::pmu

#endif // CMINER_PMU_SAMPLER_H

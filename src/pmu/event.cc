#include "pmu/event.h"

#include <unordered_map>

#include "util/error.h"
#include "util/string_util.h"

namespace cminer::pmu {

std::string
categoryName(EventCategory category)
{
    switch (category) {
      case EventCategory::Fixed: return "fixed";
      case EventCategory::Frontend: return "frontend";
      case EventCategory::Branch: return "branch";
      case EventCategory::Cache: return "cache";
      case EventCategory::Tlb: return "tlb";
      case EventCategory::Memory: return "memory";
      case EventCategory::Remote: return "remote";
      case EventCategory::Uops: return "uops";
      case EventCategory::Stall: return "stall";
      case EventCategory::Other: return "other";
    }
    return "?";
}

namespace {

/** Default per-interval magnitude and burstiness per category. */
struct CategoryDefaults
{
    double baseRate;
    double burstiness;
    DistFamily family;
};

CategoryDefaults
defaultsFor(EventCategory category)
{
    switch (category) {
      case EventCategory::Fixed:
        return {2.4e7, 0.05, DistFamily::Gaussian};
      case EventCategory::Frontend:
        return {5.0e4, 0.35, DistFamily::Gaussian};
      case EventCategory::Branch:
        return {8.0e4, 0.15, DistFamily::Gaussian};
      case EventCategory::Cache:
        return {1.2e4, 0.45, DistFamily::LongTail};
      case EventCategory::Tlb:
        return {1.5e3, 0.50, DistFamily::LongTail};
      case EventCategory::Memory:
        return {5.0e4, 0.40, DistFamily::LongTail};
      case EventCategory::Remote:
        return {6.0e2, 0.60, DistFamily::LongTail};
      case EventCategory::Uops:
        return {9.0e5, 0.10, DistFamily::Gaussian};
      case EventCategory::Stall:
        return {1.5e5, 0.20, DistFamily::Gaussian};
      case EventCategory::Other:
        return {2.0e2, 0.55, DistFamily::LongTail};
    }
    return {1.0, 0.2, DistFamily::Gaussian};
}

constexpr std::size_t catalog_size = 229;

} // namespace

void
EventCatalog::add(EventInfo info)
{
    events_.push_back(std::move(info));
}

EventCatalog::EventCatalog()
{
    // Shorthand for a fully specified (Table III) event.
    auto named = [this](const std::string &name, const std::string &abbrev,
                        const std::string &description,
                        EventCategory category, DistFamily family,
                        double base_rate, double burstiness) {
        EventInfo info;
        info.name = name;
        info.abbrev = abbrev;
        info.description = description;
        info.category = category;
        info.family = family;
        info.baseRate = base_rate;
        info.burstiness = burstiness;
        add(std::move(info));
    };

    // Shorthand for a family of related events with category defaults.
    // Abbreviations are positional codes ("E042") — only the Table III
    // events have paper abbreviations.
    auto family = [this](const std::string &prefix,
                         const std::vector<std::string> &members,
                         EventCategory category) {
        for (const auto &member : members) {
            const CategoryDefaults d = defaultsFor(category);
            EventInfo info;
            info.name = prefix + "." + member;
            info.abbrev = util::format("E%03zu", events_.size());
            info.description = prefix + " / " + member;
            info.category = category;
            info.family = d.family;
            info.baseRate = d.baseRate;
            info.burstiness = d.burstiness;
            add(std::move(info));
        }
    };

    // --- fixed counters ------------------------------------------------
    {
        EventInfo ins;
        ins.name = "INST_RETIRED.ANY";
        ins.abbrev = "INS";
        ins.description = "Instructions retired (fixed counter 0)";
        ins.category = EventCategory::Fixed;
        ins.family = DistFamily::Gaussian;
        ins.baseRate = 2.9e7;
        ins.burstiness = 0.05;
        ins.fixedCounter = true;
        add(ins);

        EventInfo cyc;
        cyc.name = "CPU_CLK_UNHALTED.THREAD";
        cyc.abbrev = "CYC";
        cyc.description = "Core clock cycles when not halted (fixed 1)";
        cyc.category = EventCategory::Fixed;
        cyc.family = DistFamily::Gaussian;
        cyc.baseRate = 2.4e7;
        cyc.burstiness = 0.02;
        cyc.fixedCounter = true;
        add(cyc);

        EventInfo ref;
        ref.name = "CPU_CLK_UNHALTED.REF_TSC";
        ref.abbrev = "REF";
        ref.description = "Reference cycles at TSC rate (fixed 2)";
        ref.category = EventCategory::Fixed;
        ref.family = DistFamily::Gaussian;
        ref.baseRate = 2.4e7;
        ref.burstiness = 0.02;
        ref.fixedCounter = true;
        add(ref);
    }

    // --- Table III events (paper abbreviations) -------------------------
    named("RESOURCE_STALLS.IQ_FULL", "ISF",
          "Stall cycles: instruction queue full",
          EventCategory::Stall, DistFamily::Gaussian, 2.0e5, 0.15);
    named("BR_INST_EXEC.ALL_BRANCHES", "BRE",
          "Branch instructions executed",
          EventCategory::Branch, DistFamily::Gaussian, 1.5e5, 0.12);
    named("BR_INST_RETIRED.ALL_BRANCHES", "BRB",
          "Branch instructions successfully retired",
          EventCategory::Branch, DistFamily::Gaussian, 1.4e5, 0.12);
    named("BR_MISP_RETIRED.ALL_BRANCHES", "BMP",
          "Mispredicted branches that finally retired",
          EventCategory::Branch, DistFamily::Gaussian, 6.0e3, 0.25);
    named("BR_INST_RETIRED.CONDITIONAL", "BRC",
          "Conditional branch instructions retired",
          EventCategory::Branch, DistFamily::Gaussian, 9.0e4, 0.12);
    named("BR_INST_RETIRED.NOT_TAKEN", "BNT",
          "Not-taken branch instructions retired",
          EventCategory::Branch, DistFamily::Gaussian, 5.0e4, 0.12);
    named("BACLEARS.ANY", "BAA",
          "Front-end resteers due to branch address clears",
          EventCategory::Frontend, DistFamily::LongTail, 1.2e3, 0.50);
    named("OFFCORE_RESPONSE.ALL_READS.LLC_MISS.REMOTE_DRAM", "ORA",
          "Reads served from remote DRAM",
          EventCategory::Remote, DistFamily::LongTail, 8.0e2, 0.60);
    named("OFFCORE_RESPONSE.ALL_RFO.LLC_MISS.REMOTE_HITM", "ORO",
          "RFOs hitting modified lines in a remote cache",
          EventCategory::Remote, DistFamily::LongTail, 3.0e2, 0.65);
    named("MEM_LOAD_UOPS_L3_MISS_RETIRED.REMOTE_DRAM", "LRA",
          "Retired load uops served from remote DRAM",
          EventCategory::Remote, DistFamily::LongTail, 6.0e2, 0.60);
    named("MEM_LOAD_UOPS_L3_MISS_RETIRED.REMOTE_HITM", "LRC",
          "Retired load uops served from a remote dirty cache line",
          EventCategory::Remote, DistFamily::LongTail, 2.5e2, 0.65);
    named("MACHINE_CLEARS.MEMORY_ORDERING", "MMR",
          "Machine clears due to memory-ordering conflicts",
          EventCategory::Memory, DistFamily::LongTail, 1.5e2, 0.55);
    named("MACHINE_CLEARS.COUNT", "MCO",
          "All machine clears",
          EventCategory::Other, DistFamily::LongTail, 1.8e2, 0.55);
    named("MEM_LOAD_UOPS_RETIRED.L3_MISS", "MSL",
          "Retired load uops missing the last-level cache",
          EventCategory::Memory, DistFamily::LongTail, 2.0e3, 0.50);
    named("MEM_UOPS_RETIRED.ALL_STORES", "MST",
          "All retired store uops",
          EventCategory::Memory, DistFamily::Gaussian, 3.0e5, 0.10);
    named("MEM_UOPS_RETIRED.ALL_LOADS", "MUL",
          "All retired load uops",
          EventCategory::Memory, DistFamily::Gaussian, 6.0e5, 0.10);
    named("MEM_UOPS_RETIRED.LOCK_LOADS", "MLL",
          "Retired locked load uops",
          EventCategory::Memory, DistFamily::LongTail, 4.0e2, 0.55);
    named("MEM_LOAD_UOPS_RETIRED.L3_HIT", "LMH",
          "Retired load uops hitting the last-level cache",
          EventCategory::Memory, DistFamily::LongTail, 8.0e3, 0.40);
    named("MEM_LOAD_UOPS_L3_HIT_RETIRED.XSNP_NONE", "LHN",
          "L3-hit loads needing no cross-core snoop",
          EventCategory::Memory, DistFamily::LongTail, 3.0e3, 0.45);
    named("ITLB_MISSES.MISS_CAUSES_A_WALK", "ITM",
          "ITLB misses causing a page walk",
          EventCategory::Tlb, DistFamily::LongTail, 9.0e2, 0.50);
    named("ITLB_MISSES.WALK_COMPLETED", "IMT",
          "Completed ITLB page walks",
          EventCategory::Tlb, DistFamily::LongTail, 7.0e2, 0.50);
    named("TLB_FLUSH.STLB_ANY", "TFA",
          "Second-level TLB flushes",
          EventCategory::Tlb, DistFamily::LongTail, 6.0e1, 0.60);
    named("DTLB_LOAD_MISSES.WALK_DURATION", "IPD",
          "Cycles spent in DTLB load page walks",
          EventCategory::Tlb, DistFamily::LongTail, 5.0e3, 0.45);
    named("PAGE_WALKER_LOADS.DTLB_L3", "PI3",
          "Page-walker loads served from L3",
          EventCategory::Tlb, DistFamily::LongTail, 3.5e2, 0.55);
    named("ICACHE.MISSES", "IMC",
          "Instruction cache misses",
          EventCategory::Frontend, DistFamily::LongTail, 4.0e3, 0.55);
    named("ICACHE.IFETCH_STALL", "IM4",
          "Cycles with an icache-miss fetch stall outstanding",
          EventCategory::Frontend, DistFamily::Gaussian, 2.0e4, 0.30);
    named("IDQ.MITE_UOPS", "MIE",
          "Uops delivered via the legacy decode pipeline (MITE)",
          EventCategory::Frontend, DistFamily::Gaussian, 4.0e5, 0.20);
    named("IDQ.DSB_UOPS", "IDU",
          "Uops delivered from the Decode Stream Buffer",
          EventCategory::Frontend, DistFamily::Gaussian, 6.0e5, 0.70);
    named("ILD_STALL.LCP", "ISL",
          "Length-changing-prefix decode stalls",
          EventCategory::Frontend, DistFamily::LongTail, 1.2e2, 0.55);
    named("DSB2MITE_SWITCHES.PENALTY_CYCLES", "DSP",
          "Penalty cycles of DSB-to-MITE switches",
          EventCategory::Frontend, DistFamily::LongTail, 2.5e3, 0.45);
    named("DSB_FILL.EXCEED_DSB_LINES", "DSH",
          "DSB fills evicted for exceeding way capacity",
          EventCategory::Frontend, DistFamily::LongTail, 6.0e2, 0.50);
    named("UOPS_RETIRED.ALL", "URA",
          "All retired uops",
          EventCategory::Uops, DistFamily::Gaussian, 1.2e6, 0.08);
    named("UOPS_RETIRED.RETIRE_SLOTS", "URS",
          "Retirement slots used",
          EventCategory::Uops, DistFamily::Gaussian, 1.1e6, 0.08);
    named("CYCLE_ACTIVITY.CYCLES_L2_PENDING", "CAC",
          "Cycles with an outstanding L2 miss",
          EventCategory::Stall, DistFamily::Gaussian, 1.0e5, 0.25);
    named("OTHER_ASSISTS.ANY_WB_ASSIST", "OTS",
          "Microcode assists",
          EventCategory::Other, DistFamily::LongTail, 4.0e1, 0.60);
    named("OFFCORE_REQUESTS.DEMAND_RFO", "CRX",
          "Demand RFO requests sent off-core",
          EventCategory::Cache, DistFamily::LongTail, 5.0e3, 0.45);
    named("IDQ_UOPS_NOT_DELIVERED.CYCLES_LE_4_UOPS", "I4U",
          "Cycles with fewer than four uops delivered",
          EventCategory::Frontend, DistFamily::Gaussian, 8.0e4, 0.20);
    named("L2_RQSTS.DEMAND_DATA_RD_HIT", "L2H",
          "L2 demand data-read hits",
          EventCategory::Cache, DistFamily::LongTail, 2.0e4, 0.40);
    named("L2_RQSTS.ALL_DEMAND_DATA_RD", "L2R",
          "All L2 demand data reads",
          EventCategory::Cache, DistFamily::LongTail, 3.0e4, 0.40);
    named("L2_RQSTS.CODE_RD_HIT", "L2C",
          "L2 code-read hits",
          EventCategory::Cache, DistFamily::LongTail, 8.0e3, 0.40);
    named("L2_RQSTS.ALL_CODE_RD", "L2A",
          "All L2 code reads",
          EventCategory::Cache, DistFamily::LongTail, 1.0e4, 0.40);
    named("L2_RQSTS.DEMAND_DATA_RD_MISS", "L2M",
          "L2 demand data-read misses",
          EventCategory::Cache, DistFamily::LongTail, 6.0e3, 0.45);
    named("L2_RQSTS.ALL_RFO", "L2S",
          "All L2 RFO (store) requests",
          EventCategory::Cache, DistFamily::LongTail, 7.0e3, 0.45);

    // --- generated families to fill out the Haswell-E event list --------
    family("UOPS_DISPATCHED_PORT",
           {"PORT_0", "PORT_1", "PORT_2", "PORT_3", "PORT_4", "PORT_5",
            "PORT_6", "PORT_7"},
           EventCategory::Uops);
    family("UOPS_EXECUTED",
           {"CORE", "THREAD", "CYCLES_GE_1_UOP_EXEC",
            "CYCLES_GE_2_UOPS_EXEC", "CYCLES_GE_3_UOPS_EXEC",
            "CYCLES_GE_4_UOPS_EXEC", "STALL_CYCLES"},
           EventCategory::Uops);
    family("UOPS_ISSUED",
           {"ANY", "FLAGS_MERGE", "SLOW_LEA", "SINGLE_MUL",
            "STALL_CYCLES", "CORE_STALL_CYCLES"},
           EventCategory::Uops);
    family("UOPS_RETIRED",
           {"TOTAL_CYCLES", "STALL_CYCLES", "CYCLES_GE_1_UOP",
            "CYCLES_GE_2_UOPS"},
           EventCategory::Uops);
    family("IDQ",
           {"EMPTY", "MITE_CYCLES", "DSB_CYCLES", "MS_UOPS", "MS_CYCLES",
            "MS_DSB_UOPS", "MS_DSB_CYCLES", "MS_MITE_UOPS",
            "ALL_DSB_CYCLES_ANY_UOPS", "ALL_DSB_CYCLES_4_UOPS",
            "ALL_MITE_CYCLES_ANY_UOPS", "ALL_MITE_CYCLES_4_UOPS"},
           EventCategory::Frontend);
    family("IDQ_UOPS_NOT_DELIVERED",
           {"CORE", "CYCLES_0_UOPS_DELIV_CORE", "CYCLES_FE_WAS_OK"},
           EventCategory::Frontend);
    family("ICACHE", {"HIT"}, EventCategory::Frontend);
    family("DSB2MITE_SWITCHES", {"COUNT"}, EventCategory::Frontend);
    family("ILD_STALL", {"IQ_FULL"}, EventCategory::Frontend);
    family("LSD", {"UOPS", "CYCLES_ACTIVE", "CYCLES_4_UOPS"},
           EventCategory::Frontend);
    family("INST_RETIRED", {"PREC_DIST", "X87"}, EventCategory::Uops);
    family("ARITH", {"DIVIDER_UOPS"}, EventCategory::Uops);
    family("MOVE_ELIMINATION",
           {"INT_ELIMINATED", "SIMD_ELIMINATED", "INT_NOT_ELIMINATED",
            "SIMD_NOT_ELIMINATED"},
           EventCategory::Uops);
    family("FP_ASSIST",
           {"ANY", "X87_OUTPUT", "X87_INPUT", "SIMD_OUTPUT", "SIMD_INPUT"},
           EventCategory::Other);
    family("L1D", {"REPLACEMENT"}, EventCategory::Cache);
    family("L1D_PEND_MISS",
           {"PENDING", "PENDING_CYCLES", "REQUEST_FB_FULL", "FB_FULL"},
           EventCategory::Cache);
    family("L2_TRANS",
           {"DEMAND_DATA_RD", "RFO", "CODE_RD", "ALL_PF", "L1D_WB",
            "L2_FILL", "L2_WB", "ALL_REQUESTS"},
           EventCategory::Cache);
    family("L2_LINES_IN", {"I", "S", "E", "ALL"}, EventCategory::Cache);
    family("L2_LINES_OUT", {"DEMAND_CLEAN", "DEMAND_DIRTY"},
           EventCategory::Cache);
    family("L2_RQSTS",
           {"RFO_HIT", "RFO_MISS", "CODE_RD_MISS", "L2_PF_HIT",
            "L2_PF_MISS", "ALL_PF", "MISS", "REFERENCES"},
           EventCategory::Cache);
    family("LONGEST_LAT_CACHE", {"MISS", "REFERENCE"},
           EventCategory::Cache);
    family("OFFCORE_REQUESTS",
           {"DEMAND_DATA_RD", "DEMAND_CODE_RD", "ALL_DATA_RD"},
           EventCategory::Cache);
    family("OFFCORE_REQUESTS_BUFFER", {"SQ_FULL"}, EventCategory::Cache);
    family("OFFCORE_REQUESTS_OUTSTANDING",
           {"DEMAND_DATA_RD", "DEMAND_RFO", "DEMAND_CODE_RD", "ALL_DATA_RD",
            "CYCLES_WITH_DEMAND_DATA_RD", "CYCLES_WITH_DATA_RD"},
           EventCategory::Cache);
    family("OFFCORE_RESPONSE.DEMAND_DATA_RD",
           {"LLC_HIT.ANY_RESPONSE", "LLC_MISS.LOCAL_DRAM",
            "LLC_MISS.REMOTE_DRAM", "LLC_MISS.REMOTE_HITM",
            "LLC_MISS.ANY_RESPONSE"},
           EventCategory::Remote);
    family("OFFCORE_RESPONSE.DEMAND_RFO",
           {"LLC_HIT.ANY_RESPONSE", "LLC_MISS.LOCAL_DRAM",
            "LLC_MISS.REMOTE_DRAM", "LLC_MISS.ANY_RESPONSE"},
           EventCategory::Remote);
    family("OFFCORE_RESPONSE.DEMAND_CODE_RD",
           {"LLC_HIT.ANY_RESPONSE", "LLC_MISS.LOCAL_DRAM",
            "LLC_MISS.REMOTE_DRAM", "LLC_MISS.ANY_RESPONSE"},
           EventCategory::Remote);
    family("OFFCORE_RESPONSE.ALL_READS",
           {"LLC_HIT.ANY_RESPONSE", "LLC_MISS.LOCAL_DRAM",
            "LLC_MISS.ANY_RESPONSE"},
           EventCategory::Remote);
    family("BR_INST_EXEC",
           {"COND", "DIRECT_JMP", "INDIRECT_JMP_NON_CALL_RET",
            "RETURN_NEAR", "DIRECT_NEAR_CALL", "INDIRECT_NEAR_CALL",
            "TAKEN"},
           EventCategory::Branch);
    family("BR_MISP_EXEC",
           {"COND", "INDIRECT_JMP_NON_CALL_RET", "RETURN_NEAR",
            "INDIRECT_NEAR_CALL", "TAKEN"},
           EventCategory::Branch);
    family("BR_INST_RETIRED",
           {"NEAR_CALL", "NEAR_RETURN", "NEAR_TAKEN", "FAR_BRANCH"},
           EventCategory::Branch);
    family("BR_MISP_RETIRED", {"CONDITIONAL", "NEAR_TAKEN"},
           EventCategory::Branch);
    family("MEM_LOAD_UOPS_RETIRED",
           {"L1_HIT", "L2_HIT", "L1_MISS", "L2_MISS", "HIT_LFB"},
           EventCategory::Memory);
    family("MEM_LOAD_UOPS_L3_HIT_RETIRED",
           {"XSNP_HIT", "XSNP_HITM", "XSNP_MISS"},
           EventCategory::Memory);
    family("MEM_UOPS_RETIRED",
           {"STLB_MISS_LOADS", "STLB_MISS_STORES", "SPLIT_LOADS",
            "SPLIT_STORES", "LOCK_STORES"},
           EventCategory::Memory);
    family("LD_BLOCKS", {"STORE_FORWARD", "NO_SR"},
           EventCategory::Memory);
    family("LD_BLOCKS_PARTIAL", {"ADDRESS_ALIAS"},
           EventCategory::Memory);
    family("MISALIGN_MEM_REF", {"LOADS", "STORES"},
           EventCategory::Memory);
    family("DTLB_LOAD_MISSES",
           {"MISS_CAUSES_A_WALK", "WALK_COMPLETED", "STLB_HIT",
            "PDE_CACHE_MISS"},
           EventCategory::Tlb);
    family("DTLB_STORE_MISSES",
           {"MISS_CAUSES_A_WALK", "WALK_COMPLETED", "WALK_DURATION",
            "STLB_HIT"},
           EventCategory::Tlb);
    family("PAGE_WALKER_LOADS",
           {"DTLB_L1", "DTLB_L2", "DTLB_MEMORY", "ITLB_L1", "ITLB_L2",
            "ITLB_L3", "ITLB_MEMORY"},
           EventCategory::Tlb);
    family("TLB_FLUSH", {"DTLB_THREAD"}, EventCategory::Tlb);
    family("CYCLE_ACTIVITY",
           {"STALLS_L1D_PENDING", "STALLS_L2_PENDING", "STALLS_LDM_PENDING",
            "CYCLES_NO_EXECUTE", "CYCLES_L1D_PENDING",
            "CYCLES_LDM_PENDING", "CYCLES_MEM_ANY"},
           EventCategory::Stall);
    family("RESOURCE_STALLS", {"ANY", "RS", "SB", "ROB"},
           EventCategory::Stall);
    family("RS_EVENTS", {"EMPTY_CYCLES", "EMPTY_END"},
           EventCategory::Stall);
    family("LOCK_CYCLES",
           {"SPLIT_LOCK_UC_LOCK_DURATION", "CACHE_LOCK_DURATION"},
           EventCategory::Stall);
    family("MACHINE_CLEARS", {"SMC", "MASKMOV", "CYCLES"},
           EventCategory::Other);

    // Pad with uncore CBox lookups until the Haswell-E count is reached.
    CM_ASSERT(events_.size() <= catalog_size);
    std::size_t cbo = 0;
    while (events_.size() < catalog_size) {
        const CategoryDefaults d = defaultsFor(EventCategory::Cache);
        EventInfo info;
        info.name = util::format("UNC_CBO_%zu_CACHE_LOOKUP.ANY", cbo);
        info.abbrev = util::format("E%03zu", events_.size());
        info.description =
            util::format("Uncore CBox %zu cache lookups", cbo);
        info.category = EventCategory::Cache;
        info.family = d.family;
        info.baseRate = d.baseRate;
        info.burstiness = d.burstiness;
        add(std::move(info));
        ++cbo;
    }
    CM_ASSERT(events_.size() == catalog_size);
}

const EventInfo &
EventCatalog::info(EventId id) const
{
    CM_ASSERT(id < events_.size());
    return events_[id];
}

std::optional<EventId>
EventCatalog::findByName(const std::string &name) const
{
    for (EventId id = 0; id < events_.size(); ++id) {
        if (events_[id].name == name)
            return id;
    }
    return std::nullopt;
}

std::optional<EventId>
EventCatalog::findByAbbrev(const std::string &abbrev) const
{
    for (EventId id = 0; id < events_.size(); ++id) {
        if (events_[id].abbrev == abbrev)
            return id;
    }
    return std::nullopt;
}

EventId
EventCatalog::idOf(const std::string &name) const
{
    auto id = findByName(name);
    if (!id)
        util::fatal("pmu: unknown event name: " + name);
    return *id;
}

EventId
EventCatalog::idOfAbbrev(const std::string &abbrev) const
{
    auto id = findByAbbrev(abbrev);
    if (!id)
        util::fatal("pmu: unknown event abbreviation: " + abbrev);
    return *id;
}

std::vector<EventId>
EventCatalog::byCategory(EventCategory category) const
{
    std::vector<EventId> ids;
    for (EventId id = 0; id < events_.size(); ++id) {
        if (events_[id].category == category)
            ids.push_back(id);
    }
    return ids;
}

std::vector<EventId>
EventCatalog::programmableEvents() const
{
    std::vector<EventId> ids;
    for (EventId id = 0; id < events_.size(); ++id) {
        if (!events_[id].fixedCounter)
            ids.push_back(id);
    }
    return ids;
}

std::size_t
EventCatalog::countFamily(DistFamily family) const
{
    std::size_t count = 0;
    for (const auto &e : events_) {
        if (e.family == family)
            ++count;
    }
    return count;
}

const EventCatalog &
EventCatalog::instance()
{
    static const EventCatalog catalog;
    return catalog;
}

} // namespace cminer::pmu

#include "pmu/sim_sampler.h"

#include <algorithm>

namespace cminer::pmu {

using cminer::ts::TimeSeries;
using cminer::util::Rng;

SimSampler::SimSampler(const EventCatalog &catalog, PmuConfig config)
    : sampler_(catalog, config)
{
}

std::vector<TimeSeries>
SimSampler::measureOcoe(const TrueTrace &window,
                        const std::vector<EventId> &events, Rng &rng)
{
    return sampler_.measureOcoe(window, events, rng);
}

MlpxMeasurement
SimSampler::measureMlpx(const TrueTrace &window,
                        const MlpxSchedule &schedule, Rng &rng)
{
    MlpxMeasurement out;
    out.series = sampler_.measureMlpx(window, schedule, rng);

    // Duty cycles from the schedule arithmetic alone (no RNG): the mean
    // share of each interval's quanta owned by the event's group, the
    // exact quantity the simulator's extrapolation divides by. Mirrors
    // the quanta choice in Sampler::measureMlpx.
    const std::size_t quanta =
        std::max(sampler_.config().rotationQuanta, schedule.groupCount());
    const std::size_t intervals = window.intervalCount();
    std::vector<double> group_duty(schedule.groupCount(), 0.0);
    for (std::size_t t = 0; t < intervals; ++t) {
        std::vector<std::size_t> active(schedule.groupCount(), 0);
        for (std::size_t q = 0; q < quanta; ++q)
            ++active[schedule.activeGroup(t * quanta + q)];
        for (std::size_t g = 0; g < schedule.groupCount(); ++g) {
            group_duty[g] += static_cast<double>(active[g]) /
                             static_cast<double>(quanta);
        }
    }
    out.dutyCycles.reserve(schedule.events().size());
    for (std::size_t i = 0; i < schedule.events().size(); ++i) {
        const double total = group_duty[schedule.groupOf(i)];
        out.dutyCycles.push_back(
            intervals > 0 ? total / static_cast<double>(intervals) : 1.0);
    }
    return out;
}

TimeSeries
SimSampler::measuredIpc(const TrueTrace &window, Rng &rng)
{
    return sampler_.measuredIpc(window, rng);
}

} // namespace cminer::pmu

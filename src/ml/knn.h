/**
 * @file
 * K-nearest-neighbor regression, in two flavors:
 *  - a general brute-force KNN regressor on feature vectors;
 *  - the 1-D temporal imputer the cleaner uses: a missing value in a
 *    time series is replaced by the average of the k nearest *observed*
 *    neighbors by time index (paper Section III-B2, k = 5).
 */

#ifndef CMINER_ML_KNN_H
#define CMINER_ML_KNN_H

#include <cstddef>
#include <span>
#include <vector>

#include "ml/dataset_view.h"

namespace cminer::ml {

/** Brute-force KNN regressor with Euclidean distance. */
class KnnRegressor
{
  public:
    /** @param k neighborhood size (>= 1) */
    explicit KnnRegressor(std::size_t k = 5);

    /** Store the training data (lazy learner; gathers one flat copy). */
    void fit(const DatasetView &data);

    /** Mean target of the k nearest training rows. */
    double predict(std::span<const double> features) const;

    /** predict() convenience for braced literals. */
    double predict(std::initializer_list<double> features) const
    {
        return predict(
            std::span<const double>(features.begin(), features.size()));
    }

    /** Predictions for every visible row of a dataset view. */
    std::vector<double> predictAll(const DatasetView &data) const;

  private:
    std::size_t k_;
    /** Training rows, row-major in one contiguous block. */
    std::vector<double> trainX_;
    std::vector<double> trainY_;
    std::size_t dim_ = 0;
};

/**
 * Impute missing entries of a series by temporal KNN.
 *
 * @param values the series; entries at `missing` indices are ignored as
 *        inputs and overwritten with imputed values
 * @param missing distinct indices to impute (sorted or not; must not
 *        repeat — imputations run concurrently, one writer per slot)
 * @param k neighborhood size
 * @return number of entries actually imputed (0 when every index was
 *         missing, in which case nothing can be inferred)
 */
std::size_t knnImputeSeries(std::span<double> values,
                            const std::vector<std::size_t> &missing,
                            std::size_t k);

} // namespace cminer::ml

#endif // CMINER_ML_KNN_H

#include "ml/dataset_view.h"

#include "util/error.h"

namespace cminer::ml {

DatasetView::DatasetView(const Dataset &base)
    : base_(&base), rowCount_(base.rowCount())
{
    cols_.resize(base.featureCount());
    for (std::size_t i = 0; i < cols_.size(); ++i)
        cols_[i] = i;
}

DatasetView
DatasetView::withFeatures(const std::vector<std::string> &keep) const
{
    DatasetView out(*this);
    out.cols_.clear();
    out.cols_.reserve(keep.size());
    for (const auto &name : keep)
        out.cols_.push_back(cols_[featureIndex(name)]);
    out.identityCols_ = false;
    out.colOfBase_.clear();
    out.colOfBase_.reserve(out.cols_.size());
    for (std::size_t i = 0; i < out.cols_.size(); ++i) {
        if (!out.colOfBase_.emplace(out.cols_[i], i).second)
            util::fatal("ml: duplicate feature in view projection: " +
                        base_->featureNames()[out.cols_[i]]);
    }
    return out;
}

DatasetView
DatasetView::withRows(std::vector<std::size_t> rows) const
{
    DatasetView out(*this);
    for (auto &r : rows) {
        CM_ASSERT(r < rowCount_);
        r = baseRow(r); // compose with this view's row subset
    }
    out.rows_ = std::move(rows);
    out.rowCount_ = out.rows_.size();
    return out;
}

std::vector<std::string>
DatasetView::featureNames() const
{
    std::vector<std::string> names;
    names.reserve(cols_.size());
    for (std::size_t c : cols_)
        names.push_back(base_->featureNames()[c]);
    return names;
}

std::size_t
DatasetView::featureIndex(const std::string &name) const
{
    const std::size_t base_idx = base_->featureIndex(name);
    if (identityCols_)
        return base_idx;
    auto it = colOfBase_.find(base_idx);
    if (it == colOfBase_.end())
        util::fatal("ml: feature not in view: " + name);
    return it->second;
}

std::vector<double>
DatasetView::targets() const
{
    if (rows_.empty())
        return base_->targets();
    std::vector<double> out;
    out.reserve(rows_.size());
    for (std::size_t r : rows_)
        out.push_back(base_->targets()[r]);
    return out;
}

std::span<const double>
DatasetView::columnSpan(std::size_t feature) const
{
    CM_ASSERT(rows_.empty());
    return base_->column(cols_[feature]);
}

std::vector<double>
DatasetView::column(std::size_t feature) const
{
    std::vector<double> out;
    gatherColumn(feature, out);
    return out;
}

void
DatasetView::gatherColumn(std::size_t feature, std::vector<double> &out) const
{
    const std::vector<double> &col = base_->column(cols_[feature]);
    if (rows_.empty()) {
        out = col;
        return;
    }
    out.clear();
    out.reserve(rows_.size());
    for (std::size_t r : rows_)
        out.push_back(col[r]);
}

void
DatasetView::gatherRow(std::size_t row, std::span<double> out) const
{
    CM_ASSERT(out.size() == cols_.size());
    const std::size_t base_row = baseRow(row);
    for (std::size_t f = 0; f < cols_.size(); ++f)
        out[f] = base_->column(cols_[f])[base_row];
}

std::vector<double>
DatasetView::row(std::size_t index) const
{
    std::vector<double> out(cols_.size());
    gatherRow(index, out);
    return out;
}

std::vector<double>
DatasetView::featureMeans() const
{
    std::vector<double> means(cols_.size(), 0.0);
    if (rowCount_ == 0)
        return means;
    // Per-feature sums accumulate in view row order, matching what a
    // materialized copy of this window would produce bit for bit.
    for (std::size_t f = 0; f < cols_.size(); ++f) {
        const std::vector<double> &col = base_->column(cols_[f]);
        if (rows_.empty()) {
            for (double v : col)
                means[f] += v;
        } else {
            for (std::size_t r : rows_)
                means[f] += col[r];
        }
    }
    for (auto &m : means)
        m /= static_cast<double>(rowCount_);
    return means;
}

Dataset
DatasetView::materialize() const
{
    std::vector<std::vector<double>> columns(cols_.size());
    for (std::size_t f = 0; f < cols_.size(); ++f)
        gatherColumn(f, columns[f]);
    return Dataset::fromColumns(featureNames(), std::move(columns),
                                targets());
}

} // namespace cminer::ml

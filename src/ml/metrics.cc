#include "ml/metrics.h"

#include <cmath>

#include "stats/descriptive.h"
#include "util/error.h"

namespace cminer::ml {

double
mape(std::span<const double> actual, std::span<const double> predicted)
{
    CM_ASSERT(actual.size() == predicted.size());
    CM_ASSERT(!actual.empty());
    double total = 0.0;
    std::size_t used = 0;
    for (std::size_t i = 0; i < actual.size(); ++i) {
        if (std::abs(actual[i]) < 1e-12)
            continue;
        total += std::abs(actual[i] - predicted[i]) / std::abs(actual[i]);
        ++used;
    }
    if (used == 0)
        return 0.0;
    return 100.0 * total / static_cast<double>(used);
}

double
rmse(std::span<const double> actual, std::span<const double> predicted)
{
    CM_ASSERT(actual.size() == predicted.size());
    CM_ASSERT(!actual.empty());
    double total = 0.0;
    for (std::size_t i = 0; i < actual.size(); ++i) {
        const double d = actual[i] - predicted[i];
        total += d * d;
    }
    return std::sqrt(total / static_cast<double>(actual.size()));
}

double
r2(std::span<const double> actual, std::span<const double> predicted)
{
    CM_ASSERT(actual.size() == predicted.size());
    CM_ASSERT(!actual.empty());
    const double mu = stats::mean(actual);
    double ss_res = 0.0;
    double ss_tot = 0.0;
    for (std::size_t i = 0; i < actual.size(); ++i) {
        const double res = actual[i] - predicted[i];
        const double dev = actual[i] - mu;
        ss_res += res * res;
        ss_tot += dev * dev;
    }
    if (ss_tot <= 0.0)
        return ss_res <= 0.0 ? 1.0 : 0.0;
    return 1.0 - ss_res / ss_tot;
}

double
residualVariance(std::span<const double> actual,
                 std::span<const double> predicted)
{
    CM_ASSERT(actual.size() == predicted.size());
    CM_ASSERT(!actual.empty());
    double total = 0.0;
    for (std::size_t i = 0; i < actual.size(); ++i) {
        const double d = predicted[i] - actual[i];
        total += d * d;
    }
    return total / static_cast<double>(actual.size());
}

} // namespace cminer::ml

/**
 * @file
 * Non-owning column/row subsets of a Dataset — the currency of the
 * mining layer.
 *
 * A DatasetView is a (base dataset, column subset, row-index subset)
 * triple. Deriving a view copies nothing: `withFeatures` shrinks the
 * column mask, `withRows` composes row-index subsets, and the EIR
 * drop-10-retrain loop, CV folds, and pairwise interaction fits all run
 * over views of one base Dataset instead of materializing copies.
 *
 * Ownership rules:
 *  - A view never outlives its base Dataset; it borrows, it never owns.
 *    Moving or destroying the base invalidates every view of it.
 *  - Views are read-only. Mutation (e.g. cleaning) goes through the
 *    owning Dataset's mutableColumn(); any view sees the change.
 *  - Views are cheap to copy and safe to share across threads as long
 *    as the base is not concurrently mutated.
 */

#ifndef CMINER_ML_DATASET_VIEW_H
#define CMINER_ML_DATASET_VIEW_H

#include <cstddef>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "ml/dataset.h"

namespace cminer::ml {

/**
 * A zero-copy window onto a Dataset: a subset of its columns and
 * (optionally) a subset of its rows, in a caller-chosen order.
 */
class DatasetView
{
  public:
    /**
     * Whole-dataset view: every column, every row. Implicit so any
     * function taking a view also accepts a Dataset lvalue directly.
     * The base must outlive the view.
     */
    DatasetView(const Dataset &base); // NOLINT(google-explicit-constructor)

    /**
     * Derived view keeping only the named features, in the given
     * order; fatal when a name is not in this view.
     */
    DatasetView withFeatures(const std::vector<std::string> &keep) const;

    /**
     * Derived view keeping only the given rows (indices are positions
     * in THIS view, so row subsets compose).
     */
    DatasetView withRows(std::vector<std::size_t> rows) const;

    /** Number of visible feature columns. */
    std::size_t featureCount() const { return cols_.size(); }

    /** Number of visible rows. */
    std::size_t rowCount() const { return rowCount_; }

    /** Name of one visible feature. */
    const std::string &featureName(std::size_t feature) const
    {
        return base_->featureNames()[cols_[feature]];
    }

    /** Names of all visible features, in view order (materialized). */
    std::vector<std::string> featureNames() const;

    /**
     * Position of a named feature within this view (O(1)); fatal when
     * the feature is absent or masked out.
     */
    std::size_t featureIndex(const std::string &name) const;

    /** One cell. */
    double value(std::size_t row, std::size_t feature) const
    {
        return base_->column(cols_[feature])[baseRow(row)];
    }

    /** Target of one visible row. */
    double target(std::size_t row) const
    {
        return base_->targets()[baseRow(row)];
    }

    /** All visible targets, gathered in view row order. */
    std::vector<double> targets() const;

    /** True when the view exposes the base's rows unpermuted. */
    bool identityRows() const { return rows_.empty(); }

    /**
     * Zero-copy span over one column's contiguous storage. Only valid
     * for identity-row views (CM_ASSERT otherwise) — a row subset has
     * no contiguous storage to point at; use gatherColumn then.
     */
    std::span<const double> columnSpan(std::size_t feature) const;

    /** One visible column, gathered into a fresh vector. */
    std::vector<double> column(std::size_t feature) const;

    /** Gather one visible column into `out` (resized to rowCount()). */
    void gatherColumn(std::size_t feature, std::vector<double> &out) const;

    /**
     * Gather one visible row's features into `out`, which must have
     * featureCount() elements. Lets hot loops reuse one buffer.
     */
    void gatherRow(std::size_t row, std::span<double> out) const;

    /** Feature vector of one visible row (gathered copy). */
    std::vector<double> row(std::size_t index) const;

    /** Per-feature means over the visible rows, in view order. */
    std::vector<double> featureMeans() const;

    /** The underlying dataset. */
    const Dataset &base() const { return *base_; }

    /** Base column index of a view feature. */
    std::size_t baseColumn(std::size_t feature) const
    {
        return cols_[feature];
    }

    /** Base row index of a view row. */
    std::size_t baseRow(std::size_t row) const
    {
        return rows_.empty() ? row : rows_[row];
    }

    /** Deep-copy the visible window into an owning Dataset. */
    Dataset materialize() const;

  private:
    const Dataset *base_;
    /** View feature position -> base column index. */
    std::vector<std::size_t> cols_;
    /** True when cols_ is 0..featureCount-1 of the base, untouched. */
    bool identityCols_ = true;
    /** Base column index -> view position; empty for identity cols. */
    std::unordered_map<std::size_t, std::size_t> colOfBase_;
    /** View row -> base row; empty means identity. */
    std::vector<std::size_t> rows_;
    std::size_t rowCount_ = 0;
};

} // namespace cminer::ml

#endif // CMINER_ML_DATASET_VIEW_H

/**
 * @file
 * Train/test and k-fold splitting utilities.
 *
 * The paper's EIR loop trains on m examples and evaluates on m/4 unseen
 * ones; trainTestSplit with fraction 0.8 reproduces that protocol.
 *
 * Splits are zero-copy: each fold is a row-index DatasetView over the
 * caller's data, so k-fold CV allocates k index vectors instead of k
 * dataset copies. The views borrow the caller's base Dataset — it must
 * outlive every returned split.
 */

#ifndef CMINER_ML_CV_H
#define CMINER_ML_CV_H

#include <utility>
#include <vector>

#include "ml/dataset_view.h"
#include "util/rng.h"

namespace cminer::ml {

/** A train/test pair of row-subset views over one base dataset. */
struct TrainTest
{
    DatasetView train;
    DatasetView test;
};

/**
 * Shuffled train/test split.
 *
 * @param data source view (a Dataset converts implicitly)
 * @param train_fraction fraction of rows for training (0, 1)
 * @param rng shuffle source
 */
TrainTest trainTestSplit(const DatasetView &data, double train_fraction,
                         cminer::util::Rng &rng);

/**
 * k-fold partition: fold i is the test set of split i, the rest train.
 *
 * @param data source view (a Dataset converts implicitly)
 * @param folds number of folds (>= 2, <= rows)
 * @param rng shuffle source
 */
std::vector<TrainTest> kFold(const DatasetView &data, std::size_t folds,
                             cminer::util::Rng &rng);

} // namespace cminer::ml

#endif // CMINER_ML_CV_H

/**
 * @file
 * Train/test and k-fold splitting utilities.
 *
 * The paper's EIR loop trains on m examples and evaluates on m/4 unseen
 * ones; trainTestSplit with fraction 0.8 reproduces that protocol.
 */

#ifndef CMINER_ML_CV_H
#define CMINER_ML_CV_H

#include <utility>
#include <vector>

#include "ml/dataset.h"
#include "util/rng.h"

namespace cminer::ml {

/** A train/test pair. */
struct TrainTest
{
    Dataset train;
    Dataset test;
};

/**
 * Shuffled train/test split.
 *
 * @param data source dataset
 * @param train_fraction fraction of rows for training (0, 1)
 * @param rng shuffle source
 */
TrainTest trainTestSplit(const Dataset &data, double train_fraction,
                         cminer::util::Rng &rng);

/**
 * k-fold partition: fold i is the test set of split i, the rest train.
 *
 * @param data source dataset
 * @param folds number of folds (>= 2, <= rows)
 * @param rng shuffle source
 */
std::vector<TrainTest> kFold(const Dataset &data, std::size_t folds,
                             cminer::util::Rng &rng);

} // namespace cminer::ml

#endif // CMINER_ML_CV_H

#include "ml/permutation.h"

#include <algorithm>

#include "ml/metrics.h"
#include "util/error.h"

namespace cminer::ml {

std::vector<FeatureImportance>
permutationImportance(const Gbrt &model, const DatasetView &data,
                      cminer::util::Rng &rng, std::size_t repeats)
{
    CM_ASSERT(model.fitted());
    CM_ASSERT(data.rowCount() >= 2);
    CM_ASSERT(repeats >= 1);

    const std::vector<double> targets = data.targets();
    const double baseline = rmse(targets, model.predictAll(data));

    std::vector<double> deltas(data.featureCount(), 0.0);
    std::vector<std::vector<double>> rows;
    rows.reserve(data.rowCount());
    for (std::size_t r = 0; r < data.rowCount(); ++r)
        rows.push_back(data.row(r));

    std::vector<double> shuffled(data.rowCount());
    std::vector<double> predictions(data.rowCount());
    for (std::size_t f = 0; f < data.featureCount(); ++f) {
        double delta = 0.0;
        for (std::size_t rep = 0; rep < repeats; ++rep) {
            for (std::size_t r = 0; r < rows.size(); ++r)
                shuffled[r] = rows[r][f];
            rng.shuffle(shuffled);
            for (std::size_t r = 0; r < rows.size(); ++r) {
                const double original = rows[r][f];
                rows[r][f] = shuffled[r];
                predictions[r] = model.predict(rows[r]);
                rows[r][f] = original;
            }
            delta += rmse(targets, predictions) - baseline;
        }
        deltas[f] =
            std::max(0.0, delta / static_cast<double>(repeats));
    }

    double total = 0.0;
    for (double d : deltas)
        total += d;

    const std::vector<std::string> names = data.featureNames();
    std::vector<FeatureImportance> out;
    out.reserve(deltas.size());
    for (std::size_t f = 0; f < deltas.size(); ++f) {
        out.push_back({names[f],
                       total > 0.0 ? 100.0 * deltas[f] / total : 0.0});
    }
    sortByImportance(out);
    return out;
}

} // namespace cminer::ml

/**
 * @file
 * Histogram-based regression trees — the weak learner inside SGBRT.
 *
 * Split quality is the squared-error reduction of the split; per Friedman
 * (2003), accumulating these improvements per splitting feature across an
 * ensemble yields the event-importance measure of the paper's Eqs. 10-11.
 * Features are pre-discretized into quantile bins (FeatureBinner) so each
 * node's split search is one pass over its rows plus one pass over bins.
 */

#ifndef CMINER_ML_DECISION_TREE_H
#define CMINER_ML_DECISION_TREE_H

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset_view.h"
#include "util/rng.h"

namespace cminer::util {
class BinaryWriter;
class BinaryReader;
} // namespace cminer::util

namespace cminer::ml {

/** Hyperparameters of one regression tree. */
struct TreeParams
{
    std::size_t maxDepth = 4;
    std::size_t minSamplesLeaf = 5;
    /** Fraction of features examined per node, in (0, 1]. */
    double featureFraction = 1.0;
    /** Minimum squared-error reduction to accept a split. */
    double minImprovement = 1e-12;
    /** Maximum histogram bins per feature. */
    std::size_t maxBins = 32;
};

/**
 * Quantile discretization of a dataset's features, shared by all trees of
 * an ensemble.
 */
class FeatureBinner
{
  public:
    /**
     * @param data dataset view to discretize (rows/columns as visible)
     * @param max_bins bins per feature (2..255)
     */
    FeatureBinner(const DatasetView &data, std::size_t max_bins);

    /** Number of features. */
    std::size_t featureCount() const { return edges_.size(); }

    /** Number of rows. */
    std::size_t rowCount() const { return rowCount_; }

    /** Number of bins for a feature (may be < max for ties). */
    std::size_t binCount(std::size_t feature) const;

    /** Bin index of a stored row. */
    std::uint8_t bin(std::size_t feature, std::size_t row) const;

    /**
     * One feature's whole bin column as a contiguous span — the split
     * scan's hot path walks this directly.
     */
    std::span<const std::uint8_t> binColumn(std::size_t feature) const;

    /**
     * Raw-value threshold for "bin <= b goes left": the upper edge of
     * bin b. Nodes store this so prediction works on raw features.
     */
    double upperEdge(std::size_t feature, std::size_t bin) const;

  private:
    std::size_t rowCount_ = 0;
    /** edges_[f][b] = upper edge of bin b for feature f. */
    std::vector<std::vector<double>> edges_;
    /** bins_[f][r] = bin of row r on feature f (column-major). */
    std::vector<std::vector<std::uint8_t>> bins_;
};

/** One recorded split, for Friedman importance accounting. */
struct SplitRecord
{
    std::size_t feature = 0;
    double improvement = 0.0; ///< squared-error reduction of the split
};

/**
 * A fitted regression tree. Trains on (dataset rows, external targets) so
 * a boosting loop can pass residuals as targets.
 */
class RegressionTree
{
  public:
    explicit RegressionTree(TreeParams params = {});

    /**
     * Fit on a subset of rows.
     *
     * @param data feature source (row indices are view positions)
     * @param binner shared discretization of `data`
     * @param targets regression targets, one per view row
     * @param rows view-row indices to train on (stochastic subsample)
     * @param rng feature-subsampling source
     */
    void fit(const DatasetView &data, const FeatureBinner &binner,
             std::span<const double> targets,
             std::span<const std::size_t> rows, cminer::util::Rng &rng);

    /** Predict one raw feature vector. */
    double predict(std::span<const double> features) const;

    /** predict() convenience for braced literals. */
    double predict(std::initializer_list<double> features) const
    {
        return predict(
            std::span<const double>(features.begin(), features.size()));
    }

    /** All splits made while fitting (for importance accounting). */
    const std::vector<SplitRecord> &splits() const { return splits_; }

    /** Number of leaves (diagnostics). */
    std::size_t leafCount() const;

    /** True after fit(). */
    bool fitted() const { return !nodes_.empty(); }

    /**
     * Append the fitted structure (nodes + split records) to a
     * checkpoint writer. Hyperparameters are not part of the artifact;
     * a deserialized tree predicts and reports importances, it does
     * not refit.
     */
    void serialize(cminer::util::BinaryWriter &out) const;

    /**
     * Read a tree written by serialize(), validating the node graph:
     * child and feature indices are range-checked (children must point
     * forward, so prediction always terminates). On damage the reader
     * latches a Status naming the byte offset and an empty tree is
     * returned — callers check `in.ok()`.
     *
     * @param in bounded checkpoint reader positioned at a tree
     * @param feature_count width of the feature space for validation
     */
    static RegressionTree deserialize(cminer::util::BinaryReader &in,
                                      std::size_t feature_count);

  private:
    struct Node
    {
        bool leaf = true;
        double value = 0.0;       ///< leaf prediction
        std::size_t feature = 0;  ///< split feature (internal nodes)
        double threshold = 0.0;   ///< raw-value split threshold
        std::size_t left = 0;     ///< index of left child
        std::size_t right = 0;    ///< index of right child
    };

    /** Recursively grow the tree; returns the new node's index. */
    std::size_t grow(const DatasetView &data, const FeatureBinner &binner,
                     std::span<const double> targets,
                     std::vector<std::size_t> &rows, std::size_t depth,
                     cminer::util::Rng &rng);

    TreeParams params_;
    std::vector<Node> nodes_;
    std::vector<SplitRecord> splits_;
};

} // namespace cminer::ml

#endif // CMINER_ML_DECISION_TREE_H

/**
 * @file
 * The tabular dataset the regressors train on.
 *
 * Rows are observations (sampling intervals of a run, or whole runs for
 * the configuration-tuning study); columns are named features (event
 * values, configuration parameters); the target is performance (IPC or
 * execution time).
 */

#ifndef CMINER_ML_DATASET_H
#define CMINER_ML_DATASET_H

#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.h"

namespace cminer::ml {

/**
 * A dense row-major feature matrix with a named column per feature and a
 * regression target.
 */
class Dataset
{
  public:
    Dataset() = default;

    /** @param feature_names one name per column, unique */
    explicit Dataset(std::vector<std::string> feature_names);

    /** Number of feature columns. */
    std::size_t featureCount() const { return featureNames_.size(); }

    /** Number of rows. */
    std::size_t rowCount() const { return targets_.size(); }

    /** Column names. */
    const std::vector<std::string> &featureNames() const
    {
        return featureNames_;
    }

    /** Index of a named feature; fatal when absent. */
    std::size_t featureIndex(const std::string &name) const;

    /** Append one observation. Row width must match featureCount(). */
    void addRow(std::vector<double> features, double target);

    /** Feature vector of one row. */
    const std::vector<double> &row(std::size_t index) const;

    /** Target of one row. */
    double target(std::size_t index) const;

    /** All targets. */
    const std::vector<double> &targets() const { return targets_; }

    /** One feature column as a vector. */
    std::vector<double> column(std::size_t feature) const;

    /** Per-feature means (used to hold "other events at their means"). */
    std::vector<double> featureMeans() const;

    /**
     * New dataset containing only the named features (column projection).
     */
    Dataset project(const std::vector<std::string> &keep) const;

    /** New dataset from a subset of row indices. */
    Dataset subset(const std::vector<std::size_t> &rows) const;

    /**
     * Random split into train/test.
     *
     * @param train_fraction fraction of rows for training, in (0, 1)
     * @param rng shuffle source
     * @return {train, test}
     */
    std::pair<Dataset, Dataset> split(double train_fraction,
                                      cminer::util::Rng &rng) const;

  private:
    std::vector<std::string> featureNames_;
    std::vector<std::vector<double>> rows_;
    std::vector<double> targets_;
};

} // namespace cminer::ml

#endif // CMINER_ML_DATASET_H

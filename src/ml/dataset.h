/**
 * @file
 * The tabular dataset the regressors train on.
 *
 * Rows are observations (sampling intervals of a run, or whole runs for
 * the configuration-tuning study); columns are named features (event
 * values, configuration parameters); the target is performance (IPC or
 * execution time).
 *
 * Storage is struct-of-arrays: one contiguous vector<double> per feature
 * column plus one for the target, so the mining layer can borrow whole
 * columns as spans without materializing rows. The row-oriented API
 * (addRow/row) is kept on top of that layout; row() gathers on demand.
 * Non-owning column/row subsets are expressed with DatasetView
 * (dataset_view.h) — a Dataset owns its storage and is the only way to
 * mutate it.
 */

#ifndef CMINER_ML_DATASET_H
#define CMINER_ML_DATASET_H

#include <cstddef>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/rng.h"

namespace cminer::ml {

/**
 * A dense columnar feature matrix with a named column per feature and a
 * regression target.
 */
class Dataset
{
  public:
    Dataset() = default;

    /** @param feature_names one name per column, unique and non-empty */
    explicit Dataset(std::vector<std::string> feature_names);

    /**
     * Build directly from pre-assembled columns (the zero-copy ingest
     * path from the store). All columns and the target must have the
     * same length.
     */
    static Dataset fromColumns(std::vector<std::string> feature_names,
                               std::vector<std::vector<double>> columns,
                               std::vector<double> targets);

    /** Number of feature columns. */
    std::size_t featureCount() const { return featureNames_.size(); }

    /** Number of rows. */
    std::size_t rowCount() const { return targets_.size(); }

    /** Column names. */
    const std::vector<std::string> &featureNames() const
    {
        return featureNames_;
    }

    /** Index of a named feature (O(1) hash lookup); fatal when absent. */
    std::size_t featureIndex(const std::string &name) const;

    /** True when a feature with this name exists. */
    bool hasFeature(const std::string &name) const;

    /** Append one observation. Row width must match featureCount(). */
    void addRow(const std::vector<double> &features, double target);

    /** Feature vector of one row, gathered from the columns. */
    std::vector<double> row(std::size_t index) const;

    /** Target of one row. */
    double target(std::size_t index) const;

    /** All targets. */
    const std::vector<double> &targets() const { return targets_; }

    /** One feature column, zero-copy. */
    const std::vector<double> &column(std::size_t feature) const;

    /**
     * Mutable span over one feature column, for in-place passes such as
     * cleaning. Mutation goes through the owning Dataset only — views
     * never write.
     */
    std::span<double> mutableColumn(std::size_t feature);

    /** Mutable span over the target column. */
    std::span<double> mutableTargets() { return targets_; }

    /** Per-feature means (used to hold "other events at their means"). */
    std::vector<double> featureMeans() const;

    /**
     * New dataset containing only the named features (materialized
     * column projection). Prefer DatasetView::withFeatures when the
     * copy is not needed.
     */
    Dataset project(const std::vector<std::string> &keep) const;

    /** New dataset from a subset of row indices (materialized). */
    Dataset subset(const std::vector<std::size_t> &rows) const;

    /**
     * Random split into train/test (materialized copies; the CV layer
     * uses row-index views instead).
     *
     * @param train_fraction fraction of rows for training, in (0, 1)
     * @param rng shuffle source
     * @return {train, test}
     */
    std::pair<Dataset, Dataset> split(double train_fraction,
                                      cminer::util::Rng &rng) const;

  private:
    void checkNamesAndBuildIndex();

    std::vector<std::string> featureNames_;
    std::unordered_map<std::string, std::size_t> index_;
    std::vector<std::vector<double>> columns_;
    std::vector<double> targets_;
};

} // namespace cminer::ml

#endif // CMINER_ML_DATASET_H

/**
 * @file
 * Permutation importance — a model-agnostic alternative to Friedman's
 * split-improvement influence: shuffle one feature column, measure how
 * much the model's error grows. Used by the ablation benches to
 * cross-check the paper's importance measure.
 */

#ifndef CMINER_ML_PERMUTATION_H
#define CMINER_ML_PERMUTATION_H

#include <vector>

#include "ml/dataset_view.h"
#include "ml/gbrt.h"
#include "util/rng.h"

namespace cminer::ml {

/**
 * Permutation importance of every feature, normalized to sum to 100%.
 *
 * @param model fitted model
 * @param data evaluation data (ideally held-out)
 * @param rng shuffle source
 * @param repeats shuffles averaged per feature
 * @return importances sorted descending; negative raw deltas clamp to 0
 */
std::vector<FeatureImportance>
permutationImportance(const Gbrt &model, const DatasetView &data,
                      cminer::util::Rng &rng, std::size_t repeats = 3);

} // namespace cminer::ml

#endif // CMINER_ML_PERMUTATION_H

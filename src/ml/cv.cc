#include "ml/cv.h"

#include <algorithm>

#include "util/error.h"

namespace cminer::ml {

TrainTest
trainTestSplit(const DatasetView &data, double train_fraction,
               cminer::util::Rng &rng)
{
    CM_ASSERT(train_fraction > 0.0 && train_fraction < 1.0);
    // Same shuffle-then-cut protocol (and the same rng draws) as
    // Dataset::split, but the halves are row-index views, not copies.
    std::vector<std::size_t> order(data.rowCount());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    rng.shuffle(order);

    const std::size_t train_count = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               train_fraction * static_cast<double>(order.size())));
    std::vector<std::size_t> train_rows(order.begin(),
                                        order.begin() +
                                            static_cast<long>(train_count));
    std::vector<std::size_t> test_rows(order.begin() +
                                           static_cast<long>(train_count),
                                       order.end());
    return {data.withRows(std::move(train_rows)),
            data.withRows(std::move(test_rows))};
}

std::vector<TrainTest>
kFold(const DatasetView &data, std::size_t folds, cminer::util::Rng &rng)
{
    CM_ASSERT(folds >= 2);
    CM_ASSERT(folds <= data.rowCount());

    std::vector<std::size_t> order(data.rowCount());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    rng.shuffle(order);

    std::vector<TrainTest> splits;
    splits.reserve(folds);
    for (std::size_t fold = 0; fold < folds; ++fold) {
        std::vector<std::size_t> train_rows;
        std::vector<std::size_t> test_rows;
        for (std::size_t i = 0; i < order.size(); ++i) {
            if (i % folds == fold)
                test_rows.push_back(order[i]);
            else
                train_rows.push_back(order[i]);
        }
        splits.push_back({data.withRows(std::move(train_rows)),
                          data.withRows(std::move(test_rows))});
    }
    return splits;
}

} // namespace cminer::ml

#include "ml/cv.h"

#include "util/error.h"

namespace cminer::ml {

TrainTest
trainTestSplit(const Dataset &data, double train_fraction,
               cminer::util::Rng &rng)
{
    auto [train, test] = data.split(train_fraction, rng);
    return {std::move(train), std::move(test)};
}

std::vector<TrainTest>
kFold(const Dataset &data, std::size_t folds, cminer::util::Rng &rng)
{
    CM_ASSERT(folds >= 2);
    CM_ASSERT(folds <= data.rowCount());

    std::vector<std::size_t> order(data.rowCount());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    rng.shuffle(order);

    std::vector<TrainTest> splits;
    splits.reserve(folds);
    for (std::size_t fold = 0; fold < folds; ++fold) {
        std::vector<std::size_t> train_rows;
        std::vector<std::size_t> test_rows;
        for (std::size_t i = 0; i < order.size(); ++i) {
            if (i % folds == fold)
                test_rows.push_back(order[i]);
            else
                train_rows.push_back(order[i]);
        }
        splits.push_back(
            {data.subset(train_rows), data.subset(test_rows)});
    }
    return splits;
}

} // namespace cminer::ml

#include "ml/knn.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "simd/simd.h"
#include "util/error.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace cminer::ml {

KnnRegressor::KnnRegressor(std::size_t k)
    : k_(k)
{
    CM_ASSERT(k >= 1);
}

void
KnnRegressor::fit(const DatasetView &data)
{
    CM_ASSERT(data.rowCount() >= 1);
    dim_ = data.featureCount();
    trainX_.resize(data.rowCount() * dim_);
    for (std::size_t r = 0; r < data.rowCount(); ++r)
        data.gatherRow(r, std::span<double>(trainX_).subspan(r * dim_,
                                                             dim_));
    trainY_ = data.targets();
}

double
KnnRegressor::predict(std::span<const double> features) const
{
    CM_ASSERT(!trainY_.empty());
    CM_ASSERT(features.size() == dim_);

    // Equidistant neighbors tie-break by training-row index. Sorting
    // (distance, target) pairs instead would order exact ties by target
    // value and bias the k-subset toward small targets.
    std::vector<std::pair<double, std::size_t>> dist_row;
    dist_row.reserve(trainY_.size());
    for (std::size_t r = 0; r < trainY_.size(); ++r) {
        const double d2 = simd::squaredDistance(
            features, std::span<const double>(
                          trainX_.data() + r * dim_, dim_));
        dist_row.emplace_back(d2, r);
    }
    const std::size_t k = std::min(k_, dist_row.size());
    std::partial_sort(dist_row.begin(),
                      dist_row.begin() + static_cast<long>(k),
                      dist_row.end());
    double total = 0.0;
    for (std::size_t i = 0; i < k; ++i)
        total += trainY_[dist_row[i].second];
    return total / static_cast<double>(k);
}

std::vector<double>
KnnRegressor::predictAll(const DatasetView &data) const
{
    std::vector<double> out(data.rowCount(), 0.0);
    // Each query is an independent read-only scan of the training set;
    // one gather buffer is reused per chunk.
    cminer::util::parallelFor(
        0, data.rowCount(), 16,
        [&](std::size_t lo, std::size_t hi) {
            std::vector<double> row(data.featureCount());
            for (std::size_t r = lo; r < hi; ++r) {
                data.gatherRow(r, row);
                out[r] = predict(row);
            }
        });
    return out;
}

std::size_t
knnImputeSeries(std::span<double> values,
                const std::vector<std::size_t> &missing, std::size_t k)
{
    CM_ASSERT(k >= 1);
    if (missing.empty())
        return 0;

    std::unordered_set<std::size_t> missing_set(missing.begin(),
                                                missing.end());
    // Observed indices, in order.
    std::vector<std::size_t> observed;
    observed.reserve(values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (!missing_set.count(i))
            observed.push_back(i);
    }
    if (observed.empty()) {
        // Nothing to impute from. Returning the values untouched would
        // let NaN/negative samples survive into the dataset and poison
        // every model fit downstream; fall back to the paper's "no
        // information" value of 0.0 for the whole series and report the
        // repairs so the caller's accounting stays exact.
        for (std::size_t idx : missing) {
            CM_ASSERT(idx < values.size());
            values[idx] = 0.0;
        }
        cminer::util::count("knn.all_missing_zero_filled",
                            missing.size());
        return missing.size();
    }

    // Every imputation reads only *observed* positions (never another
    // missing slot, imputed or not) and writes its own missing slot, so
    // the missing indices — which are distinct — can be processed in any
    // order, chunked across threads, with bit-identical results.
    cminer::util::parallelFor(
        0, missing.size(), 64,
        [&](std::size_t chunk_lo, std::size_t chunk_hi) {
            for (std::size_t m = chunk_lo; m < chunk_hi; ++m) {
                const std::size_t idx = missing[m];
                CM_ASSERT(idx < values.size());
                // Locate the insertion point among observed indices and
                // expand outward to collect the k nearest by index
                // distance.
                auto it = std::lower_bound(observed.begin(),
                                           observed.end(), idx);
                std::size_t right = static_cast<std::size_t>(
                    it - observed.begin());
                std::size_t left = right; // left nbr is observed[left-1]
                double total = 0.0;
                std::size_t taken = 0;
                while (taken < k && (left > 0 || right < observed.size())) {
                    const bool has_left = left > 0;
                    const bool has_right = right < observed.size();
                    bool take_left;
                    if (has_left && has_right) {
                        const std::size_t dl = idx - observed[left - 1];
                        const std::size_t dr = observed[right] - idx;
                        take_left = dl <= dr;
                    } else {
                        take_left = has_left;
                    }
                    if (take_left) {
                        total += values[observed[left - 1]];
                        --left;
                    } else {
                        total += values[observed[right]];
                        ++right;
                    }
                    ++taken;
                }
                values[idx] = total / static_cast<double>(taken);
            }
        });
    return missing.size();
}

} // namespace cminer::ml

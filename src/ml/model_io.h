/**
 * @file
 * Standalone model checkpoints: a trained ml::Gbrt as one file in the
 * checkpoint container format (util/binary_io.h, DESIGN.md §12).
 *
 * The artifact holds everything prediction and importance reporting
 * need — baseline, shrinkage, feature names, FeatureBinner bin edges,
 * and the fitted trees — so a model saved by a training process scores
 * byte-identically when reloaded by a serving process. Loading does
 * only bounded, validated reads: truncated or corrupt files come back
 * as Status errors naming the byte offset.
 *
 * The MAPM-level artifact (model plus kept-event list, ranking, and CV
 * error) lives one layer up in core/checkpoint.h and embeds the same
 * model section.
 */

#ifndef CMINER_ML_MODEL_IO_H
#define CMINER_ML_MODEL_IO_H

#include <string>

#include "ml/gbrt.h"
#include "util/status.h"

namespace cminer::ml {

/** Artifact kind tag of a bare model checkpoint. */
inline constexpr const char *gbrt_artifact_kind = "gbrt-model";

/** Schema version of the model payload (shared with MAPM artifacts). */
inline constexpr std::uint32_t gbrt_artifact_version = 1;

/** Name of the section holding the serialized ensemble. */
inline constexpr const char *model_section_name = "model";

/**
 * Save a fitted model to `path` atomically (temp file + rename; a
 * failure leaves any previous file untouched).
 */
cminer::util::Status saveModel(const Gbrt &model, const std::string &path);

/**
 * Load a model written by saveModel().
 * @return the model, or a Status naming the path and byte offset
 */
cminer::util::StatusOr<Gbrt> loadModel(const std::string &path);

} // namespace cminer::ml

#endif // CMINER_ML_MODEL_IO_H

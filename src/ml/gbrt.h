/**
 * @file
 * Stochastic Gradient Boosted Regression Trees (Friedman 2002) — the
 * performance model of the paper's importance ranker (Section III-C).
 *
 * Squared-error boosting: F_0 is the target mean; each stage fits a
 * regression tree to the current residuals on a random row subsample and
 * adds it with shrinkage. Event importance follows Friedman's relative
 * influence (paper Eqs. 10-11): per-feature squared improvements summed
 * over each tree's splits, averaged over trees, normalized to 100%.
 */

#ifndef CMINER_ML_GBRT_H
#define CMINER_ML_GBRT_H

#include <string>
#include <vector>

#include "ml/dataset_view.h"
#include "ml/decision_tree.h"
#include "util/rng.h"

namespace cminer::ml {

/** SGBRT hyperparameters. */
struct GbrtParams
{
    std::size_t treeCount = 150;
    double learningRate = 0.1;
    /** Row subsample fraction per stage (the "stochastic" part). */
    double subsample = 0.4;
    TreeParams tree = {.maxDepth = 5,
                       .minSamplesLeaf = 3,
                       .featureFraction = 0.25,
                       .minImprovement = 1e-12,
                       .maxBins = 32};
};

/** One entry of a normalized importance ranking. */
struct FeatureImportance
{
    std::string feature;
    double importance = 0.0; ///< percent; all entries sum to 100
};

/**
 * Sort a ranking by descending importance with ties broken by ascending
 * feature name. Importance alone under-determines the order: equal
 * importances (duplicated events, all-zero rankings) would land in
 * whatever order the STL's unstable sort leaves them, differing across
 * implementations. The secondary key makes every ranking surface
 * bitwise-reproducible.
 */
void sortByImportance(std::vector<FeatureImportance> &ranking);

/** Stochastic gradient boosted regression tree ensemble. */
class Gbrt
{
  public:
    explicit Gbrt(GbrtParams params = {});

    /**
     * Fit the ensemble.
     *
     * @param data training data (a Dataset converts implicitly)
     * @param rng subsampling source (deterministic given the seed)
     */
    void fit(const DatasetView &data, cminer::util::Rng &rng);

    /** Predict one raw feature vector. */
    double predict(std::span<const double> features) const;

    /** predict() convenience for braced literals. */
    double predict(std::initializer_list<double> features) const
    {
        return predict(
            std::span<const double>(features.begin(), features.size()));
    }

    /** Predictions for every visible row of a dataset view. */
    std::vector<double> predictAll(const DatasetView &data) const;

    /**
     * Friedman relative influence per feature, normalized so the sum is
     * 100% (paper Eqs. 10-11), sorted descending.
     */
    std::vector<FeatureImportance> featureImportances() const;

    /** Number of fitted trees. */
    std::size_t treeCount() const { return trees_.size(); }

    /** True after fit(). */
    bool fitted() const { return fitted_; }

    /** Feature names captured at fit time, in model column order. */
    const std::vector<std::string> &featureNames() const
    {
        return featureNames_;
    }

    /** Stage shrinkage (the learning rate predictions multiply by). */
    double shrinkage() const { return params_.learningRate; }

    /**
     * Per-feature quantile bin upper edges of the FeatureBinner the
     * ensemble trained on — part of the checkpoint so a reloaded model
     * carries its own discretization.
     */
    const std::vector<std::vector<double>> &binEdges() const
    {
        return binEdges_;
    }

    /**
     * Append the fitted ensemble (baseline, shrinkage, feature names,
     * bin edges, trees) to a checkpoint writer. See model_io.h for the
     * file-level wrappers.
     */
    void serialize(cminer::util::BinaryWriter &out) const;

    /**
     * Read an ensemble written by serialize(). Every count is bounds-
     * checked by the reader and the tree graphs are validated; on
     * damage the reader latches a Status and an unfitted model is
     * returned — callers check `in.ok()`.
     */
    static Gbrt deserialize(cminer::util::BinaryReader &in);

  private:
    GbrtParams params_;
    double baseline_ = 0.0;
    std::vector<RegressionTree> trees_;
    std::vector<std::string> featureNames_;
    std::vector<std::vector<double>> binEdges_;
    bool fitted_ = false;
};

} // namespace cminer::ml

#endif // CMINER_ML_GBRT_H

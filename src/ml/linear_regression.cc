#include "ml/linear_regression.h"

#include <cmath>

#include "util/error.h"

namespace cminer::ml {

std::vector<double>
solveLinearSystem(std::vector<std::vector<double>> a, std::vector<double> b)
{
    const std::size_t n = b.size();
    CM_ASSERT(a.size() == n);
    for (const auto &row : a)
        CM_ASSERT(row.size() == n);

    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivoting.
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; ++r) {
            if (std::abs(a[r][col]) > std::abs(a[pivot][col]))
                pivot = r;
        }
        if (std::abs(a[pivot][col]) < 1e-14)
            util::fatal("ml: singular system in linear regression");
        std::swap(a[pivot], a[col]);
        std::swap(b[pivot], b[col]);

        const double diag = a[col][col];
        for (std::size_t r = col + 1; r < n; ++r) {
            const double factor = a[r][col] / diag;
            if (factor == 0.0)
                continue;
            for (std::size_t c = col; c < n; ++c)
                a[r][c] -= factor * a[col][c];
            b[r] -= factor * b[col];
        }
    }

    std::vector<double> x(n, 0.0);
    for (std::size_t i = n; i-- > 0;) {
        double accum = b[i];
        for (std::size_t c = i + 1; c < n; ++c)
            accum -= a[i][c] * x[c];
        x[i] = accum / a[i][i];
    }
    return x;
}

LinearRegression::LinearRegression(double ridge)
    : ridge_(ridge)
{
    CM_ASSERT(ridge >= 0.0);
}

void
LinearRegression::fit(const DatasetView &data)
{
    const std::size_t p = data.featureCount();
    const std::size_t n = data.rowCount();
    if (n < p + 1)
        util::fatal("ml: too few rows to fit a linear model");

    // Augmented design: p features plus the intercept column.
    const std::size_t dim = p + 1;
    std::vector<std::vector<double>> xtx(dim,
                                         std::vector<double>(dim, 0.0));
    std::vector<double> xty(dim, 0.0);

    std::vector<double> row(p);
    for (std::size_t r = 0; r < n; ++r) {
        data.gatherRow(r, row);
        const double y = data.target(r);
        for (std::size_t i = 0; i < dim; ++i) {
            const double xi = i < p ? row[i] : 1.0;
            xty[i] += xi * y;
            for (std::size_t j = i; j < dim; ++j) {
                const double xj = j < p ? row[j] : 1.0;
                xtx[i][j] += xi * xj;
            }
        }
    }
    for (std::size_t i = 0; i < dim; ++i) {
        for (std::size_t j = 0; j < i; ++j)
            xtx[i][j] = xtx[j][i];
        if (i < p)
            xtx[i][i] += ridge_ * (xtx[i][i] + 1.0);
    }

    const auto solution = solveLinearSystem(std::move(xtx), std::move(xty));
    coef_.assign(solution.begin(), solution.begin() + static_cast<long>(p));
    intercept_ = solution[p];
    fitted_ = true;
}

double
LinearRegression::predict(std::span<const double> features) const
{
    CM_ASSERT(fitted_);
    CM_ASSERT(features.size() == coef_.size());
    double y = intercept_;
    for (std::size_t i = 0; i < coef_.size(); ++i)
        y += coef_[i] * features[i];
    return y;
}

std::vector<double>
LinearRegression::predictAll(const DatasetView &data) const
{
    std::vector<double> out;
    out.reserve(data.rowCount());
    std::vector<double> row(data.featureCount());
    for (std::size_t r = 0; r < data.rowCount(); ++r) {
        data.gatherRow(r, row);
        out.push_back(predict(row));
    }
    return out;
}

} // namespace cminer::ml

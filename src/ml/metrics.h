/**
 * @file
 * Regression quality metrics.
 *
 * The paper's model error (Eq. 14) is the mean absolute percentage error
 * between measured and predicted IPC; RMSE and R^2 are provided for the
 * tests and ablations.
 */

#ifndef CMINER_ML_METRICS_H
#define CMINER_ML_METRICS_H

#include <span>

namespace cminer::ml {

/**
 * Mean absolute percentage error (paper Eq. 14), in percent.
 *
 * Rows whose actual value is ~0 are skipped to keep the ratio defined.
 */
double mape(std::span<const double> actual,
            std::span<const double> predicted);

/** Root mean squared error. */
double rmse(std::span<const double> actual,
            std::span<const double> predicted);

/** Coefficient of determination. */
double r2(std::span<const double> actual,
          std::span<const double> predicted);

/**
 * Residual variance per the interaction ranker (paper Eq. 12):
 * mean squared residual between predictions and observations.
 */
double residualVariance(std::span<const double> actual,
                        std::span<const double> predicted);

} // namespace cminer::ml

#endif // CMINER_ML_METRICS_H

#include "ml/dataset.h"

#include <algorithm>

#include "util/error.h"

namespace cminer::ml {

Dataset::Dataset(std::vector<std::string> feature_names)
    : featureNames_(std::move(feature_names)),
      columns_(featureNames_.size())
{
    checkNamesAndBuildIndex();
}

Dataset
Dataset::fromColumns(std::vector<std::string> feature_names,
                     std::vector<std::vector<double>> columns,
                     std::vector<double> targets)
{
    Dataset out(std::move(feature_names));
    if (columns.size() != out.featureCount())
        util::fatal("ml: fromColumns column count mismatch");
    for (const auto &col : columns) {
        if (col.size() != targets.size())
            util::fatal("ml: fromColumns column length mismatch");
    }
    out.columns_ = std::move(columns);
    out.targets_ = std::move(targets);
    return out;
}

void
Dataset::checkNamesAndBuildIndex()
{
    index_.reserve(featureNames_.size());
    for (std::size_t i = 0; i < featureNames_.size(); ++i) {
        const auto &name = featureNames_[i];
        if (name.empty())
            util::fatal("ml: empty feature name");
        if (!index_.emplace(name, i).second)
            util::fatal("ml: duplicate feature name: " + name);
    }
}

std::size_t
Dataset::featureIndex(const std::string &name) const
{
    auto it = index_.find(name);
    if (it == index_.end())
        util::fatal("ml: no such feature: " + name);
    return it->second;
}

bool
Dataset::hasFeature(const std::string &name) const
{
    return index_.find(name) != index_.end();
}

void
Dataset::addRow(const std::vector<double> &features, double target)
{
    if (features.size() != featureNames_.size())
        util::fatal("ml: row width mismatch");
    for (std::size_t f = 0; f < features.size(); ++f)
        columns_[f].push_back(features[f]);
    targets_.push_back(target);
}

std::vector<double>
Dataset::row(std::size_t index) const
{
    CM_ASSERT(index < targets_.size());
    std::vector<double> out;
    out.reserve(columns_.size());
    for (const auto &col : columns_)
        out.push_back(col[index]);
    return out;
}

double
Dataset::target(std::size_t index) const
{
    CM_ASSERT(index < targets_.size());
    return targets_[index];
}

const std::vector<double> &
Dataset::column(std::size_t feature) const
{
    CM_ASSERT(feature < columns_.size());
    return columns_[feature];
}

std::span<double>
Dataset::mutableColumn(std::size_t feature)
{
    CM_ASSERT(feature < columns_.size());
    return columns_[feature];
}

std::vector<double>
Dataset::featureMeans() const
{
    std::vector<double> means(featureNames_.size(), 0.0);
    if (targets_.empty())
        return means;
    // Per-feature sums accumulate in row order, matching the historical
    // row-major loop bit for bit.
    for (std::size_t f = 0; f < means.size(); ++f) {
        for (double v : columns_[f])
            means[f] += v;
    }
    for (auto &m : means)
        m /= static_cast<double>(targets_.size());
    return means;
}

Dataset
Dataset::project(const std::vector<std::string> &keep) const
{
    Dataset out(keep);
    for (std::size_t i = 0; i < keep.size(); ++i)
        out.columns_[i] = columns_[featureIndex(keep[i])];
    out.targets_ = targets_;
    return out;
}

Dataset
Dataset::subset(const std::vector<std::size_t> &rows) const
{
    Dataset out(featureNames_);
    for (std::size_t f = 0; f < columns_.size(); ++f) {
        auto &col = out.columns_[f];
        col.reserve(rows.size());
        for (std::size_t r : rows) {
            CM_ASSERT(r < targets_.size());
            col.push_back(columns_[f][r]);
        }
    }
    out.targets_.reserve(rows.size());
    for (std::size_t r : rows)
        out.targets_.push_back(targets_[r]);
    return out;
}

std::pair<Dataset, Dataset>
Dataset::split(double train_fraction, cminer::util::Rng &rng) const
{
    CM_ASSERT(train_fraction > 0.0 && train_fraction < 1.0);
    std::vector<std::size_t> order(targets_.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    rng.shuffle(order);

    const std::size_t train_count = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               train_fraction * static_cast<double>(order.size())));
    std::vector<std::size_t> train_rows(order.begin(),
                                        order.begin() +
                                            static_cast<long>(train_count));
    std::vector<std::size_t> test_rows(order.begin() +
                                           static_cast<long>(train_count),
                                       order.end());
    return {subset(train_rows), subset(test_rows)};
}

} // namespace cminer::ml

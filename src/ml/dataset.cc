#include "ml/dataset.h"

#include <unordered_map>
#include <unordered_set>

#include "util/error.h"

namespace cminer::ml {

Dataset::Dataset(std::vector<std::string> feature_names)
    : featureNames_(std::move(feature_names))
{
    std::unordered_set<std::string> seen;
    for (const auto &name : featureNames_) {
        if (name.empty())
            util::fatal("ml: empty feature name");
        if (!seen.insert(name).second)
            util::fatal("ml: duplicate feature name: " + name);
    }
}

std::size_t
Dataset::featureIndex(const std::string &name) const
{
    for (std::size_t i = 0; i < featureNames_.size(); ++i) {
        if (featureNames_[i] == name)
            return i;
    }
    util::fatal("ml: no such feature: " + name);
}

void
Dataset::addRow(std::vector<double> features, double target)
{
    if (features.size() != featureNames_.size())
        util::fatal("ml: row width mismatch");
    rows_.push_back(std::move(features));
    targets_.push_back(target);
}

const std::vector<double> &
Dataset::row(std::size_t index) const
{
    CM_ASSERT(index < rows_.size());
    return rows_[index];
}

double
Dataset::target(std::size_t index) const
{
    CM_ASSERT(index < targets_.size());
    return targets_[index];
}

std::vector<double>
Dataset::column(std::size_t feature) const
{
    CM_ASSERT(feature < featureNames_.size());
    std::vector<double> out;
    out.reserve(rows_.size());
    for (const auto &r : rows_)
        out.push_back(r[feature]);
    return out;
}

std::vector<double>
Dataset::featureMeans() const
{
    std::vector<double> means(featureNames_.size(), 0.0);
    if (rows_.empty())
        return means;
    for (const auto &r : rows_) {
        for (std::size_t f = 0; f < means.size(); ++f)
            means[f] += r[f];
    }
    for (auto &m : means)
        m /= static_cast<double>(rows_.size());
    return means;
}

Dataset
Dataset::project(const std::vector<std::string> &keep) const
{
    std::vector<std::size_t> indices;
    indices.reserve(keep.size());
    for (const auto &name : keep)
        indices.push_back(featureIndex(name));

    Dataset out(keep);
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        std::vector<double> features;
        features.reserve(indices.size());
        for (std::size_t idx : indices)
            features.push_back(rows_[r][idx]);
        out.addRow(std::move(features), targets_[r]);
    }
    return out;
}

Dataset
Dataset::subset(const std::vector<std::size_t> &rows) const
{
    Dataset out(featureNames_);
    for (std::size_t r : rows) {
        CM_ASSERT(r < rows_.size());
        out.addRow(rows_[r], targets_[r]);
    }
    return out;
}

std::pair<Dataset, Dataset>
Dataset::split(double train_fraction, cminer::util::Rng &rng) const
{
    CM_ASSERT(train_fraction > 0.0 && train_fraction < 1.0);
    std::vector<std::size_t> order(rows_.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    rng.shuffle(order);

    const std::size_t train_count = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               train_fraction * static_cast<double>(order.size())));
    std::vector<std::size_t> train_rows(order.begin(),
                                        order.begin() +
                                            static_cast<long>(train_count));
    std::vector<std::size_t> test_rows(order.begin() +
                                           static_cast<long>(train_count),
                                       order.end());
    return {subset(train_rows), subset(test_rows)};
}

} // namespace cminer::ml

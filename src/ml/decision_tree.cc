#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "simd/simd.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace cminer::ml {

namespace {

/** Winning (improvement, bin) of one candidate feature's split scan. */
struct CandidateBest
{
    double improvement = 0.0;
    std::size_t bin = 0;
    bool valid = false;
};

/**
 * Best split of one feature over the node's rows via per-bin histograms.
 *
 * Depends only on this feature's bins plus the node aggregates, so the
 * result is bitwise identical whether candidates are scanned serially or
 * concurrently.
 */
CandidateBest
scanCandidate(const FeatureBinner &binner, std::size_t feature,
              std::span<const double> targets,
              const std::vector<std::size_t> &rows, double sum,
              double parent_score, const TreeParams &params)
{
    CandidateBest best;
    best.improvement = params.minImprovement;
    const std::size_t bins = binner.binCount(feature);
    if (bins < 2)
        return best;
    std::vector<double> bin_sum(bins, 0.0);
    std::vector<std::size_t> bin_count(bins, 0);
    const std::span<const std::uint8_t> bin_col =
        binner.binColumn(feature);
    // Order-preserving SIMD histogram fill: bit-identical to the naive
    // scatter loop at every dispatch level.
    simd::splitScanHistogram(bin_col, targets, rows, bin_sum, bin_count);
    double left_sum = 0.0;
    std::size_t left_count = 0;
    for (std::size_t b = 0; b + 1 < bins; ++b) {
        left_sum += bin_sum[b];
        left_count += bin_count[b];
        const std::size_t right_count = rows.size() - left_count;
        if (left_count < params.minSamplesLeaf ||
            right_count < params.minSamplesLeaf)
            continue;
        const double right_sum = sum - left_sum;
        const double improvement =
            left_sum * left_sum / static_cast<double>(left_count) +
            right_sum * right_sum / static_cast<double>(right_count) -
            parent_score;
        if (improvement > best.improvement) {
            best.improvement = improvement;
            best.bin = b;
            best.valid = true;
        }
    }
    return best;
}

} // namespace

FeatureBinner::FeatureBinner(const DatasetView &data, std::size_t max_bins)
    : rowCount_(data.rowCount())
{
    CM_ASSERT(max_bins >= 2 && max_bins <= 255);
    const std::size_t features = data.featureCount();
    edges_.resize(features);
    bins_.resize(features);

    std::vector<double> values;
    for (std::size_t f = 0; f < features; ++f) {
        data.gatherColumn(f, values);
        std::vector<double> sorted = values;
        std::sort(sorted.begin(), sorted.end());

        // Quantile edges; deduplicate so constant stretches collapse.
        std::vector<double> edges;
        for (std::size_t b = 1; b < max_bins; ++b) {
            const double rank =
                static_cast<double>(b) / static_cast<double>(max_bins);
            const std::size_t idx = std::min(
                sorted.size() - 1,
                static_cast<std::size_t>(
                    rank * static_cast<double>(sorted.size())));
            const double edge = sorted[idx];
            if (edges.empty() || edge > edges.back())
                edges.push_back(edge);
        }
        // Final catch-all edge above the max (not needed when the last
        // quantile edge already equals the max, e.g. constant features).
        const double top = sorted.back();
        if (edges.empty() || top > edges.back())
            edges.push_back(std::nextafter(
                top, std::numeric_limits<double>::infinity()));
        edges_[f] = std::move(edges);

        bins_[f].resize(values.size());
        simd::lowerBoundBins(values, edges_[f], bins_[f]);
    }
}

std::size_t
FeatureBinner::binCount(std::size_t feature) const
{
    CM_ASSERT(feature < edges_.size());
    return edges_[feature].size();
}

std::uint8_t
FeatureBinner::bin(std::size_t feature, std::size_t row) const
{
    CM_ASSERT(feature < bins_.size());
    CM_ASSERT(row < bins_[feature].size());
    return bins_[feature][row];
}

std::span<const std::uint8_t>
FeatureBinner::binColumn(std::size_t feature) const
{
    if (feature >= bins_.size()) {
        cminer::util::fatal(
            "FeatureBinner::binColumn: feature index " +
            std::to_string(feature) + " out of range (binner holds " +
            std::to_string(bins_.size()) + " features)");
    }
    return bins_[feature];
}

double
FeatureBinner::upperEdge(std::size_t feature, std::size_t bin) const
{
    CM_ASSERT(feature < edges_.size());
    CM_ASSERT(bin < edges_[feature].size());
    return edges_[feature][bin];
}

RegressionTree::RegressionTree(TreeParams params)
    : params_(params)
{
    CM_ASSERT(params_.maxDepth >= 1);
    CM_ASSERT(params_.minSamplesLeaf >= 1);
    CM_ASSERT(params_.featureFraction > 0.0 &&
              params_.featureFraction <= 1.0);
}

void
RegressionTree::fit(const DatasetView &data, const FeatureBinner &binner,
                    std::span<const double> targets,
                    std::span<const std::size_t> rows,
                    cminer::util::Rng &rng)
{
    CM_ASSERT(targets.size() == data.rowCount());
    CM_ASSERT(!rows.empty());
    CM_ASSERT(binner.rowCount() == data.rowCount());
    nodes_.clear();
    splits_.clear();
    std::vector<std::size_t> row_vec(rows.begin(), rows.end());
    grow(data, binner, targets, row_vec, 0, rng);
}

std::size_t
RegressionTree::grow(const DatasetView &data, const FeatureBinner &binner,
                     std::span<const double> targets,
                     std::vector<std::size_t> &rows, std::size_t depth,
                     cminer::util::Rng &rng)
{
    const std::size_t node_index = nodes_.size();
    nodes_.emplace_back();

    double sum = 0.0;
    for (std::size_t r : rows)
        sum += targets[r];
    const double count = static_cast<double>(rows.size());
    const double node_mean = sum / count;
    nodes_[node_index].value = node_mean;

    const bool can_split = depth < params_.maxDepth &&
                           rows.size() >= 2 * params_.minSamplesLeaf;
    if (!can_split)
        return node_index;

    // Feature subsample for this node.
    const std::size_t features = data.featureCount();
    std::size_t take = static_cast<std::size_t>(
        std::ceil(params_.featureFraction *
                  static_cast<double>(features)));
    take = std::max<std::size_t>(1, std::min(take, features));
    std::vector<std::size_t> candidates =
        rng.sampleIndices(features, take);

    // Best split over candidate features via per-bin histograms. Each
    // candidate scan is independent; the winner is reduced serially in
    // candidate order (strict >, first wins ties) so the selection is
    // bit-identical to the serial loop for any thread count. Small nodes
    // stay serial: the scan is cheaper than the fork.
    const double parent_score = sum * sum / count;
    std::vector<CandidateBest> bests(candidates.size());
    const bool parallel_scan =
        candidates.size() >= 4 && rows.size() * candidates.size() >= 8192;
    if (parallel_scan) {
        cminer::util::parallelFor(
            0, candidates.size(), 1,
            [&](std::size_t lo, std::size_t hi) {
                for (std::size_t i = lo; i < hi; ++i)
                    bests[i] = scanCandidate(binner, candidates[i],
                                             targets, rows, sum,
                                             parent_score, params_);
            });
    } else {
        for (std::size_t i = 0; i < candidates.size(); ++i)
            bests[i] = scanCandidate(binner, candidates[i], targets,
                                     rows, sum, parent_score, params_);
    }

    double best_improvement = params_.minImprovement;
    std::size_t best_feature = 0;
    std::size_t best_bin = 0;
    bool found = false;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (bests[i].valid && bests[i].improvement > best_improvement) {
            best_improvement = bests[i].improvement;
            best_feature = candidates[i];
            best_bin = bests[i].bin;
            found = true;
        }
    }

    if (!found)
        return node_index; // no acceptable split: stay a leaf

    // Partition rows by the winning split.
    std::vector<std::size_t> left_rows;
    std::vector<std::size_t> right_rows;
    left_rows.reserve(rows.size());
    right_rows.reserve(rows.size());
    for (std::size_t r : rows) {
        if (binner.bin(best_feature, r) <= best_bin)
            left_rows.push_back(r);
        else
            right_rows.push_back(r);
    }
    CM_ASSERT(!left_rows.empty() && !right_rows.empty());
    rows.clear();
    rows.shrink_to_fit();

    splits_.push_back({best_feature, best_improvement});
    nodes_[node_index].leaf = false;
    nodes_[node_index].feature = best_feature;
    nodes_[node_index].threshold =
        binner.upperEdge(best_feature, best_bin);

    const std::size_t left_child =
        grow(data, binner, targets, left_rows, depth + 1, rng);
    nodes_[node_index].left = left_child;
    const std::size_t right_child =
        grow(data, binner, targets, right_rows, depth + 1, rng);
    nodes_[node_index].right = right_child;
    return node_index;
}

double
RegressionTree::predict(std::span<const double> features) const
{
    CM_ASSERT(fitted());
    std::size_t index = 0;
    while (!nodes_[index].leaf) {
        const Node &node = nodes_[index];
        CM_ASSERT(node.feature < features.size());
        index = features[node.feature] <= node.threshold ? node.left
                                                         : node.right;
    }
    return nodes_[index].value;
}

std::size_t
RegressionTree::leafCount() const
{
    std::size_t count = 0;
    for (const auto &node : nodes_) {
        if (node.leaf)
            ++count;
    }
    return count;
}

} // namespace cminer::ml

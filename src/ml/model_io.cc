/**
 * @file
 * Serialization of the fitted tree ensemble, plus the file-level model
 * checkpoint wrappers. The member serialize()/deserialize() methods of
 * RegressionTree and Gbrt live here so the training code in gbrt.cc /
 * decision_tree.cc stays free of I/O concerns.
 */

#include "ml/model_io.h"

#include "util/string_util.h"

#include <cmath>

#include "ml/decision_tree.h"
#include "util/binary_io.h"
#include "util/error.h"

namespace cminer::ml {

using cminer::util::BinaryReader;
using cminer::util::BinaryWriter;
using cminer::util::Status;
using cminer::util::StatusOr;

// --- RegressionTree -------------------------------------------------------

void
RegressionTree::serialize(BinaryWriter &out) const
{
    out.u64(nodes_.size());
    for (const Node &node : nodes_) {
        out.u8(node.leaf ? 1 : 0);
        out.f64(node.value);
        out.u64(node.feature);
        out.f64(node.threshold);
        out.u64(node.left);
        out.u64(node.right);
    }
    out.u64(splits_.size());
    for (const SplitRecord &split : splits_) {
        out.u64(split.feature);
        out.f64(split.improvement);
    }
}

RegressionTree
RegressionTree::deserialize(BinaryReader &in, std::size_t feature_count)
{
    RegressionTree tree;
    // One node is 1 + 8 + 8 + 8 + 8 + 8 bytes on disk.
    const std::uint64_t node_count = in.count(41);
    tree.nodes_.reserve(node_count);
    for (std::uint64_t i = 0; i < node_count && in.ok(); ++i) {
        Node node;
        node.leaf = in.u8() != 0;
        node.value = in.f64();
        node.feature = in.u64();
        node.threshold = in.f64();
        node.left = in.u64();
        node.right = in.u64();
        if (!in.ok())
            break;
        if (!node.leaf) {
            if (node.feature >= feature_count) {
                in.fail(cminer::util::format(
                    "tree node %llu splits on feature %zu of %zu",
                    static_cast<unsigned long long>(i), node.feature,
                    feature_count));
                break;
            }
            // grow() appends children after their parent, so forward
            // pointers are an invariant — and the loop in predict()
            // provably terminates on a tree that satisfies it.
            if (node.left <= i || node.right <= i ||
                node.left >= node_count || node.right >= node_count) {
                in.fail(cminer::util::format(
                    "tree node %llu has out-of-order children "
                    "(%zu, %zu of %llu nodes)",
                    static_cast<unsigned long long>(i), node.left,
                    node.right,
                    static_cast<unsigned long long>(node_count)));
                break;
            }
        }
        tree.nodes_.push_back(node);
    }
    const std::uint64_t split_count = in.count(16);
    tree.splits_.reserve(split_count);
    for (std::uint64_t i = 0; i < split_count && in.ok(); ++i) {
        SplitRecord split;
        split.feature = in.u64();
        split.improvement = in.f64();
        if (in.ok() && split.feature >= feature_count) {
            in.fail(cminer::util::format(
                "split record %llu names feature %zu of %zu",
                static_cast<unsigned long long>(i), split.feature,
                feature_count));
            break;
        }
        tree.splits_.push_back(split);
    }
    if (!in.ok())
        return RegressionTree();
    return tree;
}

// --- Gbrt -----------------------------------------------------------------

void
Gbrt::serialize(BinaryWriter &out) const
{
    out.u8(fitted_ ? 1 : 0);
    out.f64(baseline_);
    out.f64(params_.learningRate);
    out.u64(featureNames_.size());
    for (const auto &name : featureNames_)
        out.str(name);
    out.u64(binEdges_.size());
    for (const auto &edges : binEdges_) {
        out.u64(edges.size());
        out.f64Span(edges);
    }
    out.u64(trees_.size());
    for (const auto &tree : trees_)
        tree.serialize(out);
}

Gbrt
Gbrt::deserialize(BinaryReader &in)
{
    Gbrt model;
    const bool fitted = in.u8() != 0;
    model.baseline_ = in.f64();
    model.params_.learningRate = in.f64();
    if (in.ok() && (!std::isfinite(model.params_.learningRate) ||
                    model.params_.learningRate <= 0.0 ||
                    model.params_.learningRate > 1.0)) {
        in.fail("model shrinkage is outside (0, 1]");
        return Gbrt();
    }

    // A feature record is at least its 8-byte name length.
    const std::uint64_t feature_count = in.count(8);
    model.featureNames_.reserve(feature_count);
    for (std::uint64_t f = 0; f < feature_count && in.ok(); ++f) {
        std::string name = in.str();
        if (in.ok() && name.empty()) {
            in.fail("model feature name is empty");
            break;
        }
        model.featureNames_.push_back(std::move(name));
    }

    const std::uint64_t edge_lists = in.count(8);
    if (in.ok() && edge_lists != feature_count) {
        in.fail(cminer::util::format(
            "model has %llu bin-edge lists for %llu features",
            static_cast<unsigned long long>(edge_lists),
            static_cast<unsigned long long>(feature_count)));
        return Gbrt();
    }
    model.binEdges_.reserve(edge_lists);
    for (std::uint64_t f = 0; f < edge_lists && in.ok(); ++f) {
        const std::uint64_t edges = in.count(8);
        model.binEdges_.push_back(in.f64Vec(edges));
    }

    // A serialized tree is at least its two count fields.
    const std::uint64_t tree_count = in.count(16);
    model.trees_.reserve(tree_count);
    for (std::uint64_t t = 0; t < tree_count && in.ok(); ++t) {
        model.trees_.push_back(RegressionTree::deserialize(
            in, model.featureNames_.size()));
    }
    if (!in.ok())
        return Gbrt();
    model.fitted_ = fitted;
    return model;
}

// --- file wrappers --------------------------------------------------------

Status
saveModel(const Gbrt &model, const std::string &path)
{
    if (!model.fitted())
        return Status::dataError("refusing to checkpoint an unfitted "
                                 "model");
    BinaryWriter out(gbrt_artifact_kind, gbrt_artifact_version);
    out.beginSection(model_section_name);
    model.serialize(out);
    out.endSection();
    Status status = out.writeFile(path);
    if (!status.ok())
        return status.withContext("save model " + path);
    return status;
}

StatusOr<Gbrt>
loadModel(const std::string &path)
{
    auto opened = BinaryReader::open(path, gbrt_artifact_kind);
    if (!opened.ok())
        return opened.status().withContext("load model " + path);
    BinaryReader in = std::move(opened).value();
    if (in.artifactVersion() != gbrt_artifact_version)
        return in
            .fail(cminer::util::format(
                "unsupported model version %u (this build reads %u)",
                in.artifactVersion(), gbrt_artifact_version))
            .withContext("load model " + path);

    Gbrt model;
    bool seen_model = false;
    for (std::uint64_t s = 0; s < in.sectionCount() && in.ok(); ++s) {
        const std::string section = in.beginSection();
        if (!in.ok())
            break;
        if (section == model_section_name) {
            model = Gbrt::deserialize(in);
            seen_model = in.ok();
        }
        // Unknown sections from newer writers are skipped by size.
        in.endSection();
    }
    if (!in.ok())
        return in.status().withContext("load model " + path);
    if (!seen_model)
        return Status::dataError("no '" +
                                 std::string(model_section_name) +
                                 "' section")
            .withContext("load model " + path);
    return model;
}

} // namespace cminer::ml

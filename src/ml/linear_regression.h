/**
 * @file
 * Ordinary least squares linear regression.
 *
 * The interaction ranker (paper Section III-D) fits a *linear* model of
 * IPC on each pair of events; a large residual variance means the pair's
 * combined effect is not additive, i.e. the events interact.
 */

#ifndef CMINER_ML_LINEAR_REGRESSION_H
#define CMINER_ML_LINEAR_REGRESSION_H

#include <span>
#include <vector>

#include "ml/dataset_view.h"

namespace cminer::ml {

/**
 * OLS with an intercept, solved by normal equations with a tiny ridge
 * term for numerical safety on collinear features.
 */
class LinearRegression
{
  public:
    /** @param ridge L2 regularization added to the diagonal (>= 0) */
    explicit LinearRegression(double ridge = 1e-9);

    /** Fit on a dataset view. Requires at least featureCount()+1 rows. */
    void fit(const DatasetView &data);

    /** Predict one row (width must match the training features). */
    double predict(std::span<const double> features) const;

    /** predict() convenience for braced literals. */
    double predict(std::initializer_list<double> features) const
    {
        return predict(
            std::span<const double>(features.begin(), features.size()));
    }

    /** Predictions for every visible row of a dataset view. */
    std::vector<double> predictAll(const DatasetView &data) const;

    /** Fitted coefficients, one per feature (valid after fit). */
    const std::vector<double> &coefficients() const { return coef_; }

    /** Fitted intercept (valid after fit). */
    double intercept() const { return intercept_; }

    /** True after a successful fit. */
    bool fitted() const { return fitted_; }

  private:
    double ridge_;
    std::vector<double> coef_;
    double intercept_ = 0.0;
    bool fitted_ = false;
};

/**
 * Solve the dense symmetric positive-definite system A x = b in place via
 * Gaussian elimination with partial pivoting. Exposed for tests.
 *
 * @param a row-major n x n matrix (destroyed)
 * @param b right-hand side (destroyed)
 * @return solution vector x
 */
std::vector<double> solveLinearSystem(std::vector<std::vector<double>> a,
                                      std::vector<double> b);

} // namespace cminer::ml

#endif // CMINER_ML_LINEAR_REGRESSION_H

#include "ml/gbrt.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"
#include "util/error.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace cminer::ml {

void
sortByImportance(std::vector<FeatureImportance> &ranking)
{
    std::sort(ranking.begin(), ranking.end(),
              [](const FeatureImportance &a, const FeatureImportance &b) {
                  if (a.importance != b.importance)
                      return a.importance > b.importance;
                  return a.feature < b.feature;
              });
}

Gbrt::Gbrt(GbrtParams params)
    : params_(params)
{
    CM_ASSERT(params_.treeCount >= 1);
    CM_ASSERT(params_.learningRate > 0.0 && params_.learningRate <= 1.0);
    CM_ASSERT(params_.subsample > 0.0 && params_.subsample <= 1.0);
}

void
Gbrt::fit(const DatasetView &data, cminer::util::Rng &rng)
{
    CM_ASSERT(data.rowCount() >= 2 * params_.tree.minSamplesLeaf);
    featureNames_ = data.featureNames();
    trees_.clear();

    const FeatureBinner binner(data, params_.tree.maxBins);
    binEdges_.assign(featureNames_.size(), {});
    for (std::size_t f = 0; f < featureNames_.size(); ++f) {
        binEdges_[f].reserve(binner.binCount(f));
        for (std::size_t b = 0; b < binner.binCount(f); ++b)
            binEdges_[f].push_back(binner.upperEdge(f, b));
    }

    const std::vector<double> targets = data.targets();
    baseline_ = stats::mean(targets);
    std::vector<double> predictions(data.rowCount(), baseline_);
    std::vector<double> residuals(data.rowCount(), 0.0);

    const std::size_t sample_size = std::max<std::size_t>(
        2 * params_.tree.minSamplesLeaf,
        static_cast<std::size_t>(params_.subsample *
                                 static_cast<double>(data.rowCount())));

    // Split-scan time is the fit's hot section; meter it only when a
    // metrics registry is installed so the steady-clock reads cost
    // nothing otherwise.
    const bool metered = cminer::util::globalMetrics() != nullptr;
    cminer::util::SteadyClock clock;
    double scan_ms = 0.0;

    for (std::size_t stage = 0; stage < params_.treeCount; ++stage) {
        for (std::size_t r = 0; r < data.rowCount(); ++r)
            residuals[r] = targets[r] - predictions[r];

        const std::vector<std::size_t> rows =
            rng.sampleIndices(data.rowCount(),
                              std::min(sample_size, data.rowCount()));

        RegressionTree tree(params_.tree);
        const double t0 = metered ? clock.nowMs() : 0.0;
        tree.fit(data, binner, residuals, rows, rng);
        if (metered)
            scan_ms += clock.nowMs() - t0;
        if (tree.splits().empty()) {
            // Residuals have no structure left; further stages would all
            // be stumps predicting ~0.
            break;
        }

        // Each row's update reads only the new tree and writes its own
        // slot, so chunked execution is bit-identical to the serial loop.
        // Rows are gathered into one reusable buffer per chunk instead
        // of materializing a vector per row.
        cminer::util::parallelFor(
            0, data.rowCount(), 512,
            [&](std::size_t lo, std::size_t hi) {
                std::vector<double> row(data.featureCount());
                for (std::size_t r = lo; r < hi; ++r) {
                    data.gatherRow(r, row);
                    predictions[r] +=
                        params_.learningRate * tree.predict(row);
                }
            });
        trees_.push_back(std::move(tree));
    }
    fitted_ = true;
    cminer::util::count("gbrt.fits");
    cminer::util::count("gbrt.trees_fit", trees_.size());
    if (metered)
        cminer::util::recordDuration("gbrt.split_scan_ms", scan_ms);
}

double
Gbrt::predict(std::span<const double> features) const
{
    CM_ASSERT(fitted_);
    double y = baseline_;
    for (const auto &tree : trees_)
        y += params_.learningRate * tree.predict(features);
    return y;
}

std::vector<double>
Gbrt::predictAll(const DatasetView &data) const
{
    CM_ASSERT(fitted_);
    std::vector<double> out(data.rowCount(), 0.0);
    // Row-major accumulation in the same tree order as predict() (so the
    // two agree bitwise), with the fitted check hoisted out of the loop
    // and one gather buffer reused per chunk.
    cminer::util::parallelFor(
        0, data.rowCount(), 256,
        [&](std::size_t lo, std::size_t hi) {
            std::vector<double> row(data.featureCount());
            for (std::size_t r = lo; r < hi; ++r) {
                data.gatherRow(r, row);
                double y = baseline_;
                for (const auto &tree : trees_)
                    y += params_.learningRate * tree.predict(row);
                out[r] = y;
            }
        });
    return out;
}

std::vector<FeatureImportance>
Gbrt::featureImportances() const
{
    CM_ASSERT(fitted_);
    std::vector<double> influence(featureNames_.size(), 0.0);
    for (const auto &tree : trees_) {
        for (const auto &split : tree.splits())
            influence[split.feature] += split.improvement;
    }
    if (!trees_.empty()) {
        for (auto &v : influence)
            v /= static_cast<double>(trees_.size());
    }

    double total = 0.0;
    for (double v : influence)
        total += v;

    std::vector<FeatureImportance> ranking;
    ranking.reserve(featureNames_.size());
    for (std::size_t f = 0; f < featureNames_.size(); ++f) {
        FeatureImportance fi;
        fi.feature = featureNames_[f];
        fi.importance = total > 0.0 ? 100.0 * influence[f] / total : 0.0;
        ranking.push_back(std::move(fi));
    }
    sortByImportance(ranking);
    return ranking;
}

} // namespace cminer::ml

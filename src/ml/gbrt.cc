#include "ml/gbrt.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"
#include "util/error.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace cminer::ml {

void
sortByImportance(std::vector<FeatureImportance> &ranking)
{
    std::sort(ranking.begin(), ranking.end(),
              [](const FeatureImportance &a, const FeatureImportance &b) {
                  if (a.importance != b.importance)
                      return a.importance > b.importance;
                  return a.feature < b.feature;
              });
}

Gbrt::Gbrt(GbrtParams params)
    : params_(params)
{
    CM_ASSERT(params_.treeCount >= 1);
    CM_ASSERT(params_.learningRate > 0.0 && params_.learningRate <= 1.0);
    CM_ASSERT(params_.subsample > 0.0 && params_.subsample <= 1.0);
}

void
Gbrt::fit(const Dataset &data, cminer::util::Rng &rng)
{
    CM_ASSERT(data.rowCount() >= 2 * params_.tree.minSamplesLeaf);
    featureNames_ = data.featureNames();
    trees_.clear();

    const FeatureBinner binner(data, params_.tree.maxBins);

    baseline_ = stats::mean(data.targets());
    std::vector<double> predictions(data.rowCount(), baseline_);
    std::vector<double> residuals(data.rowCount(), 0.0);

    const std::size_t sample_size = std::max<std::size_t>(
        2 * params_.tree.minSamplesLeaf,
        static_cast<std::size_t>(params_.subsample *
                                 static_cast<double>(data.rowCount())));

    for (std::size_t stage = 0; stage < params_.treeCount; ++stage) {
        for (std::size_t r = 0; r < data.rowCount(); ++r)
            residuals[r] = data.target(r) - predictions[r];

        const std::vector<std::size_t> rows =
            rng.sampleIndices(data.rowCount(),
                              std::min(sample_size, data.rowCount()));

        RegressionTree tree(params_.tree);
        tree.fit(data, binner, residuals, rows, rng);
        if (tree.splits().empty()) {
            // Residuals have no structure left; further stages would all
            // be stumps predicting ~0.
            break;
        }

        // Each row's update reads only the new tree and writes its own
        // slot, so chunked execution is bit-identical to the serial loop.
        cminer::util::parallelFor(
            0, data.rowCount(), 512,
            [&](std::size_t lo, std::size_t hi) {
                for (std::size_t r = lo; r < hi; ++r)
                    predictions[r] += params_.learningRate *
                                      tree.predict(data.row(r));
            });
        trees_.push_back(std::move(tree));
    }
    fitted_ = true;
    cminer::util::count("gbrt.fits");
    cminer::util::count("gbrt.trees_fit", trees_.size());
}

double
Gbrt::predict(const std::vector<double> &features) const
{
    CM_ASSERT(fitted_);
    double y = baseline_;
    for (const auto &tree : trees_)
        y += params_.learningRate * tree.predict(features);
    return y;
}

std::vector<double>
Gbrt::predictAll(const Dataset &data) const
{
    CM_ASSERT(fitted_);
    std::vector<double> out(data.rowCount(), 0.0);
    // Row-major accumulation in the same tree order as predict() (so the
    // two agree bitwise), with the fitted check hoisted out of the loop
    // and each row's feature vector bound once by reference.
    cminer::util::parallelFor(
        0, data.rowCount(), 256,
        [&](std::size_t lo, std::size_t hi) {
            for (std::size_t r = lo; r < hi; ++r) {
                const std::vector<double> &row = data.row(r);
                double y = baseline_;
                for (const auto &tree : trees_)
                    y += params_.learningRate * tree.predict(row);
                out[r] = y;
            }
        });
    return out;
}

std::vector<FeatureImportance>
Gbrt::featureImportances() const
{
    CM_ASSERT(fitted_);
    std::vector<double> influence(featureNames_.size(), 0.0);
    for (const auto &tree : trees_) {
        for (const auto &split : tree.splits())
            influence[split.feature] += split.improvement;
    }
    if (!trees_.empty()) {
        for (auto &v : influence)
            v /= static_cast<double>(trees_.size());
    }

    double total = 0.0;
    for (double v : influence)
        total += v;

    std::vector<FeatureImportance> ranking;
    ranking.reserve(featureNames_.size());
    for (std::size_t f = 0; f < featureNames_.size(); ++f) {
        FeatureImportance fi;
        fi.feature = featureNames_[f];
        fi.importance = total > 0.0 ? 100.0 * influence[f] / total : 0.0;
        ranking.push_back(std::move(fi));
    }
    sortByImportance(ranking);
    return ranking;
}

} // namespace cminer::ml

#include "mining/kmedoids.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/error.h"
#include "util/thread_pool.h"

namespace cminer::mining {

namespace {

/**
 * Assignment cost of a medoid set: per-item nearest medoid (ties break
 * by the lowest cluster slot) computed in parallel into per-item slots,
 * then summed serially in item order so the floating-point reduction
 * order never depends on the thread count.
 */
double
assignmentCost(const std::vector<double> &matrix, std::size_t n,
               const std::vector<std::size_t> &medoids,
               std::vector<std::size_t> *assignment)
{
    std::vector<double> nearest(n);
    std::vector<std::size_t> slot(n);
    util::parallelFor(0, n, 256, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            double best = std::numeric_limits<double>::infinity();
            std::size_t best_slot = 0;
            for (std::size_t s = 0; s < medoids.size(); ++s) {
                const double d = matrix[i * n + medoids[s]];
                if (d < best) {
                    best = d;
                    best_slot = s;
                }
            }
            nearest[i] = best;
            slot[i] = best_slot;
        }
    });
    double cost = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        cost += nearest[i];
    if (assignment)
        *assignment = std::move(slot);
    return cost;
}

} // namespace

KMedoidsResult
kMedoids(const std::vector<double> &matrix, std::size_t n,
         const KMedoidsOptions &options, cminer::util::Rng &rng)
{
    CM_ASSERT(n >= 1);
    CM_ASSERT(matrix.size() == n * n);
    CM_ASSERT(options.k >= 1);
    const std::size_t k = std::min(options.k, n);

    KMedoidsResult result;
    result.medoids = rng.sampleIndices(n, k);
    std::sort(result.medoids.begin(), result.medoids.end());
    result.totalCost =
        assignmentCost(matrix, n, result.medoids, &result.assignment);

    // PAM SWAP: evaluate every (cluster slot, non-medoid item) swap,
    // apply the best strict improvement, repeat until none improves.
    std::vector<bool> is_medoid(n, false);
    for (std::size_t m : result.medoids)
        is_medoid[m] = true;
    for (std::size_t iter = 0; iter < options.maxIterations; ++iter) {
        std::vector<std::pair<std::size_t, std::size_t>> candidates;
        candidates.reserve(k * (n - k));
        for (std::size_t s = 0; s < k; ++s)
            for (std::size_t c = 0; c < n; ++c)
                if (!is_medoid[c])
                    candidates.emplace_back(s, c);
        if (candidates.empty())
            break;

        // Per-candidate cost slots: any thread may fill any slot, but
        // each candidate's cost is a self-contained serial reduction
        // and the argmin below walks slots in candidate order.
        std::vector<double> swap_cost(candidates.size());
        util::parallelFor(
            0, candidates.size(), 4,
            [&](std::size_t begin, std::size_t end) {
                std::vector<std::size_t> trial = result.medoids;
                for (std::size_t p = begin; p < end; ++p) {
                    trial = result.medoids;
                    trial[candidates[p].first] = candidates[p].second;
                    swap_cost[p] =
                        assignmentCost(matrix, n, trial, nullptr);
                }
            });

        std::size_t best_candidate = candidates.size();
        double best_cost = result.totalCost;
        for (std::size_t p = 0; p < candidates.size(); ++p) {
            if (swap_cost[p] < best_cost) {
                best_cost = swap_cost[p];
                best_candidate = p;
            }
        }
        if (best_candidate == candidates.size())
            break; // local optimum: no strict improvement left
        const auto [slot, item] = candidates[best_candidate];
        is_medoid[result.medoids[slot]] = false;
        is_medoid[item] = true;
        result.medoids[slot] = item;
        std::sort(result.medoids.begin(), result.medoids.end());
        result.totalCost = assignmentCost(matrix, n, result.medoids,
                                          &result.assignment);
        result.iterations = iter + 1;
    }
    return result;
}

} // namespace cminer::mining

#include "mining/anomaly.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/collector.h"
#include "ml/dataset.h"
#include "stats/descriptive.h"
#include "util/binary_io.h"
#include "util/error.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace cminer::mining {

using cminer::util::BinaryReader;
using cminer::util::BinaryWriter;
using cminer::util::Status;
using cminer::util::StatusOr;

namespace {

/** Shared structural validation for save and load. */
Status
validateArtifact(const ClusterArtifact &artifact)
{
    if (artifact.signature.event.empty())
        return Status::dataError("cluster artifact has no signature "
                                 "event");
    if (artifact.signature.length < 2)
        return Status::dataError(util::format(
            "cluster signature length %zu is below the minimum of 2",
            artifact.signature.length));
    if (!(artifact.signature.bandFraction >= 0.0 &&
          artifact.signature.bandFraction <= 1.0))
        return Status::dataError(util::format(
            "cluster band fraction %g is outside [0, 1]",
            artifact.signature.bandFraction));
    for (std::size_t f = 0; f < artifact.families.size(); ++f) {
        if (artifact.families[f].signature.size() !=
            artifact.signature.length)
            return Status::dataError(util::format(
                "family %zu signature has %zu samples (artifact "
                "length %zu)",
                f, artifact.families[f].signature.size(),
                artifact.signature.length));
    }
    const double thresholds[] = {
        artifact.residualMean, artifact.residualStddev,
        artifact.residualZThreshold, artifact.signatureThreshold};
    for (double v : thresholds)
        if (!std::isfinite(v))
            return Status::dataError(
                "cluster calibration carries a non-finite value");
    if (artifact.residualStddev < 0.0 ||
        artifact.residualZThreshold < 0.0 ||
        artifact.signatureThreshold < 0.0)
        return Status::dataError(
            "cluster calibration carries a negative threshold");
    if (artifact.residualZThreshold > 0.0 &&
        artifact.residualStddev <= 0.0)
        return Status::dataError("calibrated cluster artifact has a "
                                 "zero residual stddev");
    return Status::okStatus();
}

} // namespace

Status
saveClusterArtifact(const ClusterArtifact &artifact,
                    const std::string &path)
{
    util::Span span("mining.cluster_save");
    span.label("path", path);
    if (Status valid = validateArtifact(artifact); !valid.ok())
        return valid.withContext("save cluster " + path);

    BinaryWriter out(cluster_artifact_kind, cluster_artifact_version);

    out.beginSection("meta");
    out.str(artifact.benchmark);
    out.str(artifact.microarch);
    out.str(artifact.signature.event);
    out.u64(artifact.signature.length);
    out.u8(artifact.signature.zNormalize ? 1 : 0);
    out.f64(artifact.signature.bandFraction);
    out.endSection();

    out.beginSection("families");
    out.u64(artifact.families.size());
    for (const auto &family : artifact.families) {
        out.u64(family.medoidRun);
        out.str(family.program);
        out.u64(family.memberCount);
        out.u64(family.signature.size());
        out.f64Span(family.signature);
    }
    out.endSection();

    out.beginSection("calibration");
    out.f64(artifact.residualMean);
    out.f64(artifact.residualStddev);
    out.f64(artifact.residualZThreshold);
    out.f64(artifact.signatureThreshold);
    out.endSection();

    Status status = out.writeFile(path);
    if (!status.ok())
        return status.withContext("save cluster " + path);
    util::count("mining.cluster_saves");
    return status;
}

StatusOr<ClusterArtifact>
loadClusterArtifact(const std::string &path)
{
    util::Span span("mining.cluster_load");
    span.label("path", path);
    auto opened = BinaryReader::open(path, cluster_artifact_kind);
    if (!opened.ok())
        return opened.status().withContext("load cluster " + path);
    BinaryReader in = std::move(opened).value();
    if (in.artifactVersion() != cluster_artifact_version)
        return in
            .fail(util::format("unsupported cluster artifact version "
                               "%u (this build reads %u)",
                               in.artifactVersion(),
                               cluster_artifact_version))
            .withContext("load cluster " + path);

    ClusterArtifact artifact;
    bool seen_meta = false;
    bool seen_families = false;
    bool seen_calibration = false;
    for (std::uint64_t s = 0; s < in.sectionCount() && in.ok(); ++s) {
        const std::string section = in.beginSection();
        if (!in.ok())
            break;
        if (section == "meta") {
            artifact.benchmark = in.str();
            artifact.microarch = in.str();
            artifact.signature.event = in.str();
            artifact.signature.length =
                static_cast<std::size_t>(in.u64());
            artifact.signature.zNormalize = in.u8() != 0;
            artifact.signature.bandFraction = in.f64();
            seen_meta = in.ok();
        } else if (section == "families") {
            // Each family is at least 4 u64 fields, so the declared
            // count is bounded by the bytes remaining.
            const std::uint64_t n = in.count(32);
            artifact.families.reserve(n);
            for (std::uint64_t f = 0; f < n && in.ok(); ++f) {
                ClusterFamily family;
                family.medoidRun = in.u64();
                family.program = in.str();
                family.memberCount = in.u64();
                const std::uint64_t samples = in.count(sizeof(double));
                family.signature = in.f64Vec(samples);
                artifact.families.push_back(std::move(family));
            }
            seen_families = in.ok();
        } else if (section == "calibration") {
            artifact.residualMean = in.f64();
            artifact.residualStddev = in.f64();
            artifact.residualZThreshold = in.f64();
            artifact.signatureThreshold = in.f64();
            seen_calibration = in.ok();
        }
        // Unknown sections from newer writers are skipped by size.
        in.endSection();
    }
    if (!in.ok())
        return in.status().withContext("load cluster " + path);
    if (!seen_meta || !seen_families || !seen_calibration)
        return Status::dataError("missing required section "
                                 "(meta/families/calibration)")
            .withContext("load cluster " + path);
    if (Status valid = validateArtifact(artifact); !valid.ok())
        return valid.withContext("load cluster " + path);
    util::count("mining.cluster_loads");
    return artifact;
}

// ---- AnomalyScorer --------------------------------------------------

AnomalyScorer::AnomalyScorer(
    std::shared_ptr<const cminer::core::MapmArtifact> model,
    ClusterArtifact clusters)
    : model_(std::move(model)), clusters_(std::move(clusters))
{
    CM_ASSERT(model_ != nullptr);
    CM_ASSERT(model_->model.fitted());
}

double
AnomalyScorer::runResidual(std::span<const double> predicted,
                           std::span<const double> measured)
{
    CM_ASSERT(predicted.size() == measured.size());
    CM_ASSERT(!predicted.empty());
    double sum = 0.0;
    for (std::size_t i = 0; i < predicted.size(); ++i)
        sum += measured[i] - predicted[i];
    return sum / static_cast<double>(predicted.size());
}

StatusOr<ScoreResult>
AnomalyScorer::scoreColumns(
    const std::vector<std::vector<double>> &columns,
    std::span<const double> measured) const
{
    const std::size_t rows = measured.size();
    std::vector<std::vector<double>> owned = columns;
    const ml::Dataset data = ml::Dataset::fromColumns(
        model_->events, std::move(owned),
        std::vector<double>(rows, 0.0));
    const std::vector<double> predictions =
        model_->model.predictAll(data);

    ScoreResult result;
    result.meanResidual = runResidual(predictions, measured);
    result.residualZ =
        std::abs(result.meanResidual - clusters_.residualMean) /
        clusters_.residualStddev;
    result.residualFlag =
        result.residualZ > clusters_.residualZThreshold;

    if (!clusters_.families.empty()) {
        std::vector<std::vector<double>> medoids;
        medoids.reserve(clusters_.families.size());
        for (const auto &family : clusters_.families)
            medoids.push_back(family.signature);
        const std::vector<double> signature =
            makeSignature(measured, clusters_.signature);
        const NearestMedoid nearest =
            nearestMedoid(signature, medoids, clusters_.signature);
        result.signatureDistance = nearest.distance;
        result.familyIndex = nearest.index;
        result.dtwEvaluations = nearest.dtwEvaluations;
        result.signatureFlag =
            nearest.distance > clusters_.signatureThreshold;
    }
    result.anomalous = result.residualFlag || result.signatureFlag;
    return result;
}

StatusOr<ScoreResult>
AnomalyScorer::score(std::span<const double> values,
                     std::size_t row_count,
                     std::span<const double> measured) const
{
    util::Span span("mining.score");
    span.number("rows", static_cast<double>(row_count));
    if (clusters_.residualZThreshold <= 0.0)
        return Status::dataError(
            "cluster artifact is uncalibrated; refusing to score");
    if (row_count == 0)
        return Status::dataError("score: run carries no rows");
    const std::size_t events = model_->events.size();
    if (values.size() != row_count * events)
        return Status::dataError(util::format(
            "score: value count %zu != rows %zu x events %zu",
            values.size(), row_count, events));
    if (measured.size() != row_count)
        return Status::dataError(util::format(
            "score: measured count %zu != rows %zu", measured.size(),
            row_count));
    if (!clusters_.families.empty() &&
        clusters_.signature.event != core::ipc_series_name)
        return Status::dataError(
            "score: cluster signatures were built over '" +
            clusters_.signature.event +
            "', but the wire path only carries the measured IPC "
            "series");

    std::vector<std::vector<double>> columns(
        events, std::vector<double>(row_count));
    for (std::size_t row = 0; row < row_count; ++row)
        for (std::size_t e = 0; e < events; ++e)
            columns[e][row] = values[row * events + e];
    auto scored = scoreColumns(columns, measured);
    if (!scored.ok())
        return scored;
    util::count("mining.scores");
    if (scored.value().anomalous)
        util::count("mining.anomalies_flagged");
    return scored;
}

namespace {

/**
 * Gather one stored run's feature columns in model event order plus
 * its measured IPC. Event names resolve through the catalog's paper
 * abbreviations, matching the dataset-build convention.
 */
Status
gatherRunColumns(const cminer::store::StoreSnapshot &snap,
                 cminer::store::RunId id,
                 const cminer::pmu::EventCatalog &catalog,
                 const cminer::core::MapmArtifact &model,
                 std::vector<std::vector<double>> &columns,
                 std::span<const double> &measured)
{
    const auto &events = snap.runInfo(id).events;
    if (events.size() < 2 || events.back() != core::ipc_series_name)
        return Status::dataError(util::format(
            "run %llu does not end in the %s series",
            static_cast<unsigned long long>(id),
            core::ipc_series_name));
    columns.clear();
    columns.reserve(model.events.size());
    for (const auto &wanted : model.events) {
        bool found = false;
        for (std::size_t s = 0; s + 1 < events.size(); ++s) {
            const auto eid = catalog.findByName(events[s]);
            const std::string &name =
                eid ? catalog.info(*eid).abbrev : events[s];
            if (name == wanted) {
                const auto span = snap.values(id, s);
                columns.emplace_back(span.begin(), span.end());
                found = true;
                break;
            }
        }
        if (!found)
            return Status::dataError(util::format(
                "run %llu lacks model event '%s'",
                static_cast<unsigned long long>(id), wanted.c_str()));
    }
    measured = snap.values(id, events.size() - 1);
    return Status::okStatus();
}

} // namespace

StatusOr<ScoreResult>
AnomalyScorer::scoreRun(const cminer::store::StoreSnapshot &snap,
                        cminer::store::RunId id,
                        const cminer::pmu::EventCatalog &catalog) const
{
    util::Span span("mining.score");
    if (clusters_.residualZThreshold <= 0.0)
        return Status::dataError(
            "cluster artifact is uncalibrated; refusing to score");
    std::vector<std::vector<double>> columns;
    std::span<const double> measured;
    if (Status gathered = gatherRunColumns(snap, id, catalog, *model_,
                                           columns, measured);
        !gathered.ok())
        return gathered;
    auto scored = scoreColumns(columns, measured);
    if (!scored.ok())
        return scored;
    util::count("mining.scores");
    if (scored.value().anomalous)
        util::count("mining.anomalies_flagged");
    return scored;
}

StatusOr<AnomalyScorer>
AnomalyScorer::calibrate(
    std::shared_ptr<const cminer::core::MapmArtifact> model,
    ClusterArtifact clusters, const cminer::store::StoreSnapshot &snap,
    const std::vector<cminer::store::RunId> &ids,
    const cminer::pmu::EventCatalog &catalog,
    const CalibrationOptions &options)
{
    if (model == nullptr || !model->model.fitted())
        return Status::dataError(
            "calibrate: the MAPM model is missing or unfitted");
    if (ids.size() < 2)
        return Status::dataError(util::format(
            "calibrate: %zu training runs (need at least 2 for a "
            "residual distribution)",
            ids.size()));
    if (Status valid = validateArtifact(clusters); !valid.ok())
        return valid.withContext("calibrate");

    std::vector<std::vector<double>> medoids;
    medoids.reserve(clusters.families.size());
    for (const auto &family : clusters.families)
        medoids.push_back(family.signature);

    std::vector<double> residuals;
    residuals.reserve(ids.size());
    double max_distance = 0.0;
    for (const auto id : ids) {
        std::vector<std::vector<double>> columns;
        std::span<const double> measured;
        if (Status gathered = gatherRunColumns(snap, id, catalog,
                                               *model, columns,
                                               measured);
            !gathered.ok())
            return gathered.withContext("calibrate");
        std::vector<std::vector<double>> owned = columns;
        const ml::Dataset data = ml::Dataset::fromColumns(
            model->events, std::move(owned),
            std::vector<double>(measured.size(), 0.0));
        const std::vector<double> predictions =
            model->model.predictAll(data);
        residuals.push_back(runResidual(predictions, measured));
        if (!medoids.empty()) {
            const std::vector<double> signature =
                makeSignature(measured, clusters.signature);
            const NearestMedoid nearest =
                nearestMedoid(signature, medoids, clusters.signature);
            max_distance = std::max(max_distance, nearest.distance);
        }
    }

    clusters.residualMean = stats::mean(residuals);
    // Floor the spread: a degenerate training set (bit-identical
    // replays) must not turn every future run into a division by ~0.
    clusters.residualStddev =
        std::max(stats::stddev(residuals, false), 1e-9);
    double max_z = 0.0;
    for (double r : residuals)
        max_z = std::max(max_z,
                         std::abs(r - clusters.residualMean) /
                             clusters.residualStddev);
    clusters.residualZThreshold =
        std::max(options.zThresholdFloor, options.zMargin * max_z);
    clusters.signatureThreshold =
        medoids.empty()
            ? 0.0
            : std::max(options.signatureMargin * max_distance, 1e-9);
    return AnomalyScorer(std::move(model), std::move(clusters));
}

} // namespace cminer::mining

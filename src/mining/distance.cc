#include "mining/distance.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "ts/dtw.h"
#include "ts/lb_keogh.h"
#include "ts/resample.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace cminer::mining {

std::vector<double>
makeSignature(std::span<const double> values,
              const SignatureOptions &options)
{
    CM_ASSERT(!values.empty());
    CM_ASSERT(options.length >= 2);
    std::vector<double> source(values.begin(), values.end());
    std::vector<double> signature =
        ts::resampleLinear(source, options.length);
    if (options.zNormalize)
        ts::zNormalize(signature);
    return signature;
}

std::vector<double>
runSignature(const cminer::store::StoreSnapshot &snap,
             cminer::store::RunId id, const SignatureOptions &options)
{
    return makeSignature(snap.values(id, options.event), options);
}

double
signatureDistance(std::span<const double> a, std::span<const double> b,
                  const SignatureOptions &options)
{
    ts::DtwOptions dtw;
    dtw.bandFraction = options.bandFraction;
    return ts::dtwDistance(a, b, dtw);
}

std::vector<double>
dtwDistanceMatrix(const std::vector<std::vector<double>> &signatures,
                  const SignatureOptions &options)
{
    const std::size_t n = signatures.size();
    for (const auto &s : signatures)
        CM_ASSERT(s.size() == options.length);
    std::vector<double> matrix(n * n, 0.0);
    if (n < 2)
        return matrix;
    // Flatten the strict upper triangle: pair p -> (i, j), i < j. The
    // mapping depends only on p, and each pair owns its two mirror
    // slots, so chunking the pair range over the pool cannot change a
    // single bit of the result.
    const std::size_t pairs = n * (n - 1) / 2;
    ts::DtwOptions dtw;
    dtw.bandFraction = options.bandFraction;
    util::parallelFor(0, pairs, 8, [&](std::size_t begin,
                                       std::size_t end) {
        for (std::size_t p = begin; p < end; ++p) {
            // Invert p = i*n - i*(i+1)/2 + (j - i - 1) by walking rows;
            // rows are short (< n) so the scan is cheap relative to a
            // DTW evaluation.
            std::size_t i = 0;
            std::size_t offset = p;
            while (offset >= n - i - 1) {
                offset -= n - i - 1;
                ++i;
            }
            const std::size_t j = i + 1 + offset;
            const double d =
                ts::dtwDistance(signatures[i], signatures[j], dtw);
            matrix[i * n + j] = d;
            matrix[j * n + i] = d;
        }
    });
    return matrix;
}

NearestMedoid
nearestMedoid(std::span<const double> signature,
              const std::vector<std::vector<double>> &medoids,
              const SignatureOptions &options)
{
    CM_ASSERT(!medoids.empty());
    CM_ASSERT(signature.size() == options.length);
    const std::size_t n = signature.size();
    // The envelope radius must cover the DTW band or the "bound" could
    // exceed the true distance; +1 covers the DTW implementation's
    // minimum band (mirrors ts::nearestNeighborDtw).
    const std::size_t radius =
        static_cast<std::size_t>(
            std::ceil(options.bandFraction * static_cast<double>(n))) +
        1;
    const ts::Envelope envelope = ts::computeEnvelope(signature, radius);

    ts::DtwOptions dtw;
    dtw.bandFraction = options.bandFraction;

    // Bound-first visiting order: the best true distance is found
    // early, so later candidates are pruned by their bound alone. Ties
    // on the bound break by ascending medoid index, keeping the visit
    // order — and therefore dtwEvaluations — deterministic.
    std::vector<std::pair<double, std::size_t>> order;
    order.reserve(medoids.size());
    for (std::size_t m = 0; m < medoids.size(); ++m) {
        CM_ASSERT(medoids[m].size() == options.length);
        order.emplace_back(ts::lbKeogh(envelope, medoids[m]), m);
    }
    std::sort(order.begin(), order.end());

    NearestMedoid result;
    result.distance = std::numeric_limits<double>::infinity();
    for (const auto &[bound, m] : order) {
        // Strict comparison: a bound *equal* to the best distance could
        // hide an exact tie at a lower medoid index, and the result is
        // pinned to brute force's minimal (distance, index).
        if (bound > result.distance)
            break; // every remaining medoid is bounded out
        const double distance =
            ts::dtwDistance(signature, medoids[m], dtw);
        ++result.dtwEvaluations;
        if (distance < result.distance ||
            (distance == result.distance && m < result.index)) {
            result.distance = distance;
            result.index = m;
        }
    }
    return result;
}

} // namespace cminer::mining

/**
 * @file
 * Counter-signature distances for workload clustering (DESIGN.md §17).
 *
 * A run's *signature* is one event series (IPC by default) resampled to
 * a fixed length and optionally z-normalized, so runs of different
 * durations and absolute rates become comparable shapes. Distances
 * between signatures are DTW under a Sakoe-Chiba band (ts/dtw.h);
 * LB_Keogh (ts/lb_keogh.h) gives an admissible lower bound used to
 * prune full DTW evaluations wherever only the *nearest* medoid is
 * needed. The pairwise matrix feeding PAM needs every entry exactly,
 * so it is computed in full — but in parallel on the PR-1 pool with a
 * decomposition that depends only on the pair index, never the thread
 * count, keeping results bit-identical at 1/2/8 threads.
 */

#ifndef CMINER_MINING_DISTANCE_H
#define CMINER_MINING_DISTANCE_H

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "store/store_index.h"

namespace cminer::mining {

/** How run signatures are built and compared. */
struct SignatureOptions
{
    /** Event series the signature is built from. */
    std::string event = "IPC";
    /** Fixed signature length every series is resampled to (>= 2). */
    std::size_t length = 128;
    /** Z-normalize signatures (shape-only comparison). */
    bool zNormalize = true;
    /**
     * Sakoe-Chiba band half-width as a fraction of the signature
     * length, for both DTW and the LB_Keogh envelope radius.
     */
    double bandFraction = 0.1;
};

/**
 * Build a signature from raw sampled values.
 *
 * @param values one event's samples (non-empty)
 * @param options resample length / normalization policy
 */
std::vector<double> makeSignature(std::span<const double> values,
                                  const SignatureOptions &options);

/**
 * Signature of one stored run, read zero-copy from a snapshot span.
 * Fatal when the run lacks the configured event.
 */
std::vector<double> runSignature(const cminer::store::StoreSnapshot &snap,
                                 cminer::store::RunId id,
                                 const SignatureOptions &options);

/**
 * Exact DTW distance between two equal-length signatures under the
 * options' band.
 */
double signatureDistance(std::span<const double> a,
                         std::span<const double> b,
                         const SignatureOptions &options);

/**
 * Full pairwise DTW distance matrix over signatures (row-major n*n,
 * symmetric, zero diagonal). Every signature must have the same
 * length. Pairs are computed in parallel on the global pool; each
 * (i, j) pair writes only its own two mirror slots, so the result is
 * bit-identical for any thread count.
 */
std::vector<double>
dtwDistanceMatrix(const std::vector<std::vector<double>> &signatures,
                  const SignatureOptions &options);

/** Nearest-medoid result with pruning accounting. */
struct NearestMedoid
{
    /** Index into the medoid list. */
    std::size_t index = 0;
    /** Exact DTW distance to that medoid. */
    double distance = 0.0;
    /** Full DTW evaluations actually run (<= medoid count). */
    std::size_t dtwEvaluations = 0;
};

/**
 * Find the nearest medoid to a signature under DTW, pruning candidates
 * with LB_Keogh. The envelope radius is at least the DTW band width
 * (+1 for the DTW implementation's minimum band), so the bound is
 * admissible: the returned medoid is identical to brute force.
 *
 * @param signature query signature (options.length samples)
 * @param medoids candidate medoid signatures (same length)
 */
NearestMedoid
nearestMedoid(std::span<const double> signature,
              const std::vector<std::vector<double>> &medoids,
              const SignatureOptions &options);

} // namespace cminer::mining

#endif // CMINER_MINING_DISTANCE_H

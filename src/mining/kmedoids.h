/**
 * @file
 * Deterministic k-medoids (PAM) over a precomputed distance matrix
 * (DESIGN.md §17).
 *
 * Kadiyala et al. (PAPERS.md) cluster runs by counter-series similarity
 * before modeling; we do the same over the DTW matrix from
 * mining/distance.h. PAM is chosen over k-means because medoids are
 * actual runs (a family is represented by a real signature, which the
 * anomaly scorer compares against) and because it needs only the
 * distance matrix, not a vector-space mean of warped series.
 *
 * Determinism contract: the medoid initialization is drawn from the
 * caller's Rng stream (never a global), every argmin breaks ties by the
 * lowest index, and the parallel swap evaluation writes per-candidate
 * slots reduced serially in candidate order — so the clustering is
 * bit-identical for any thread count and reproducible from the seed.
 */

#ifndef CMINER_MINING_KMEDOIDS_H
#define CMINER_MINING_KMEDOIDS_H

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace cminer::mining {

/** PAM policy knobs. */
struct KMedoidsOptions
{
    /** Number of clusters (clamped to the item count). */
    std::size_t k = 2;
    /** Upper bound on SWAP iterations (each strictly lowers cost). */
    std::size_t maxIterations = 64;
};

/** Outcome of a PAM run. */
struct KMedoidsResult
{
    /** Item index of each cluster's medoid, ascending. */
    std::vector<std::size_t> medoids;
    /** Cluster slot (index into medoids) per item. */
    std::vector<std::size_t> assignment;
    /** Sum over items of the distance to their medoid. */
    double totalCost = 0.0;
    /** SWAP iterations performed. */
    std::size_t iterations = 0;
};

/**
 * Cluster `n` items into k medoids by PAM: seeded random init from
 * `rng`, then greedy best-improvement swaps until no swap lowers the
 * total cost (or maxIterations).
 *
 * @param matrix row-major n*n symmetric distance matrix with a zero
 *        diagonal (mining::dtwDistanceMatrix output)
 * @param n item count (matrix.size() == n*n)
 * @param options cluster count and iteration cap
 * @param rng the run's own randomness stream (medoid init)
 */
KMedoidsResult kMedoids(const std::vector<double> &matrix, std::size_t n,
                        const KMedoidsOptions &options,
                        cminer::util::Rng &rng);

} // namespace cminer::mining

#endif // CMINER_MINING_KMEDOIDS_H

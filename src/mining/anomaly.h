/**
 * @file
 * Anomaly surveillance against a mined MAPM (DESIGN.md §17).
 *
 * Following the HPC-security survey's monitoring framing (PAPERS.md),
 * an incoming run is scored on two independent axes:
 *
 *  1. **Prediction residual**: the run's mean (measured - predicted)
 *     IPC under the benchmark's MAPM, standardized against the
 *     residual distribution observed on the training runs. A run whose
 *     z-score exceeds the calibrated threshold performs differently
 *     than the model says it should.
 *  2. **Counter signature**: DTW distance from the run's signature
 *     (mining/distance.h) to the nearest workload-family medoid,
 *     against a threshold calibrated from the training runs' own
 *     distances. A run whose shape left every known family is
 *     anomalous even when its average behavior still fits the model —
 *     e.g. a time-reversed or phase-scrambled run.
 *
 * Both the family medoids and the calibrated thresholds persist in one
 * `cluster-artifact` checkpoint (PR-5 container), so a serve daemon
 * can score without the training store. Scoring emits the
 * `mining.scores` / `mining.anomalies_flagged` counters and a
 * `mining.score` trace span.
 */

#ifndef CMINER_MINING_ANOMALY_H
#define CMINER_MINING_ANOMALY_H

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "mining/distance.h"
#include "pmu/event.h"
#include "store/database.h"
#include "util/status.h"

namespace cminer::mining {

/** Artifact kind tag of a cluster/surveillance checkpoint. */
inline constexpr const char *cluster_artifact_kind = "cluster-artifact";

/** Schema version of the cluster payload. */
inline constexpr std::uint32_t cluster_artifact_version = 1;

/** One workload family: a medoid run and its signature. */
struct ClusterFamily
{
    /** Store run id of the medoid. */
    std::uint64_t medoidRun = 0;
    /** Program of the medoid run. */
    std::string program;
    /** Runs assigned to this family when it was built. */
    std::uint64_t memberCount = 0;
    /** The medoid's signature (signature options' length samples). */
    std::vector<double> signature;
};

/**
 * Everything anomaly surveillance needs from one clustering run: the
 * family medoids plus the thresholds calibrated from the training
 * residual/distance distributions. residualZThreshold == 0 marks an
 * uncalibrated artifact (clustering only; scoring refuses it).
 */
struct ClusterArtifact
{
    /** Benchmark scope of the calibration ("" = whole store). */
    std::string benchmark;
    /** Microarchitecture of the profiled machine. */
    std::string microarch;
    /** How signatures were built (and must be built when scoring). */
    SignatureOptions signature;
    /** Workload families, in medoid order. */
    std::vector<ClusterFamily> families;

    /** Mean per-run residual over the training runs. */
    double residualMean = 0.0;
    /** Stddev of per-run residuals over the training runs (floored). */
    double residualStddev = 0.0;
    /** Flag when |r - mean| / stddev exceeds this; 0 = uncalibrated. */
    double residualZThreshold = 0.0;
    /** Flag when the nearest-medoid DTW distance exceeds this. */
    double signatureThreshold = 0.0;
};

/** Save atomically as a `cluster-artifact` checkpoint container. */
cminer::util::Status saveClusterArtifact(const ClusterArtifact &artifact,
                                         const std::string &path);

/** Bounded, validated load of saveClusterArtifact() output. */
cminer::util::StatusOr<ClusterArtifact>
loadClusterArtifact(const std::string &path);

/** Verdict for one scored run. */
struct ScoreResult
{
    /** residualFlag || signatureFlag. */
    bool anomalous = false;
    /** The residual z-score exceeded its threshold. */
    bool residualFlag = false;
    /** The signature distance exceeded its threshold. */
    bool signatureFlag = false;
    /** Mean (measured - predicted) over the run's rows. */
    double meanResidual = 0.0;
    /** Standardized residual |r - mean| / stddev. */
    double residualZ = 0.0;
    /** DTW distance to the nearest family medoid (0 if no families). */
    double signatureDistance = 0.0;
    /** Index of the nearest family. */
    std::size_t familyIndex = 0;
    /** Full DTW evaluations spent on the medoid search. */
    std::size_t dtwEvaluations = 0;
};

/** Calibration policy (thresholds learned from training runs). */
struct CalibrationOptions
{
    /** Lower bound on the learned z threshold. */
    double zThresholdFloor = 6.0;
    /** Learned z threshold = max(floor, margin * worst training z). */
    double zMargin = 1.5;
    /** Signature threshold = margin * worst training distance. */
    double signatureMargin = 1.5;
};

/**
 * Scores runs against one benchmark's MAPM + cluster artifact pair.
 * Immutable after construction; safe to share across threads.
 */
class AnomalyScorer
{
  public:
    /**
     * @param model the benchmark's MAPM (must be fitted)
     * @param clusters calibrated cluster artifact
     *        (residualZThreshold > 0)
     */
    AnomalyScorer(std::shared_ptr<const cminer::core::MapmArtifact> model,
                  ClusterArtifact clusters);

    const ClusterArtifact &clusters() const { return clusters_; }
    const cminer::core::MapmArtifact &model() const { return *model_; }

    /**
     * Score one run from its raw feature matrix.
     *
     * @param values row-major row_count x model-events feature matrix,
     *        columns exactly the artifact's kept-event list in order
     * @param row_count sampled intervals in the run (>= 1)
     * @param measured the run's measured IPC, one value per row; also
     *        the signature source, so the cluster artifact must have
     *        been built over the IPC series
     */
    cminer::util::StatusOr<ScoreResult>
    score(std::span<const double> values, std::size_t row_count,
          std::span<const double> measured) const;

    /**
     * Score one stored run, projecting its events onto the model's
     * kept-event list (names resolved through the catalog's paper
     * abbreviations, the dataset-build convention).
     */
    cminer::util::StatusOr<ScoreResult>
    scoreRun(const cminer::store::StoreSnapshot &snap,
             cminer::store::RunId id,
             const cminer::pmu::EventCatalog &catalog) const;

    /** Per-run residual statistic: mean(measured - predicted). */
    static double runResidual(std::span<const double> predicted,
                              std::span<const double> measured);

    /**
     * Learn the thresholds from training runs: per-run residuals give
     * (mean, stddev, z threshold); nearest-medoid distances give the
     * signature threshold. Returns the scorer with the calibration
     * written back into its cluster artifact (ready to save).
     *
     * @param model the benchmark's MAPM
     * @param clusters families from the clustering pass (calibration
     *        fields are overwritten)
     * @param snap pinned view of the training store
     * @param ids training runs (the ones the model was mined from)
     * @param catalog event-name resolution for the dataset build
     */
    static cminer::util::StatusOr<AnomalyScorer>
    calibrate(std::shared_ptr<const cminer::core::MapmArtifact> model,
              ClusterArtifact clusters,
              const cminer::store::StoreSnapshot &snap,
              const std::vector<cminer::store::RunId> &ids,
              const cminer::pmu::EventCatalog &catalog,
              const CalibrationOptions &options = {});

  private:
    /** Prediction + residual + signature for one run's columns. */
    cminer::util::StatusOr<ScoreResult>
    scoreColumns(const std::vector<std::vector<double>> &columns,
                 std::span<const double> measured) const;

    std::shared_ptr<const cminer::core::MapmArtifact> model_;
    ClusterArtifact clusters_;
};

} // namespace cminer::mining

#endif // CMINER_MINING_ANOMALY_H

/**
 * @file
 * The interaction ranker (paper Section III-D).
 *
 * For each pair of important events, predictions of the performance
 * model are collected while the pair takes its observed values and every
 * other event is pinned to its mean. A *linear* model is fit to those
 * predictions; its residual variance (Eq. 12) is the pair's interaction
 * intensity — zero when the pair's combined effect is additive, large
 * when it is not. Intensities are normalized across pairs (Eq. 13).
 *
 * The same machinery ranks (configuration parameter, event) pairs for
 * the tuning case study (Fig. 13) when the dataset carries parameter
 * columns.
 */

#ifndef CMINER_CORE_INTERACTION_H
#define CMINER_CORE_INTERACTION_H

#include <string>
#include <utility>
#include <vector>

#include "ml/dataset_view.h"
#include "ml/gbrt.h"

namespace cminer::core {

/** Interaction-ranking knobs. */
struct InteractionOptions
{
    /** How many top-ranked events to pair up in rankTopEvents. */
    std::size_t topEvents = 10;
    /** Max observation rows sampled per pair (stride-sampled). */
    std::size_t maxSamples = 400;
};

/** One ranked pair. */
struct PairInteraction
{
    std::string first;
    std::string second;
    double residualVariance = 0.0;  ///< Eq. 12
    double importancePercent = 0.0; ///< Eq. 13, sums to 100 across pairs
};

/** All pairs, sorted by descending importance. */
struct InteractionResult
{
    std::vector<PairInteraction> pairs;

    /** The `n` most intense pairs. */
    std::vector<PairInteraction> top(std::size_t n) const;
};

/**
 * Quantifies pairwise interaction intensity through a fitted
 * performance model.
 */
class InteractionRanker
{
  public:
    explicit InteractionRanker(InteractionOptions options = {});

    /** Options in effect. */
    const InteractionOptions &options() const { return options_; }

    /**
     * Rank explicit feature pairs.
     *
     * @param model fitted performance model (the MAPM)
     * @param data the dataset the model was trained on (supplies the
     *        observed pair values and the feature means)
     * @param pairs feature-name pairs to evaluate
     */
    InteractionResult
    rankPairs(const cminer::ml::Gbrt &model,
              const cminer::ml::DatasetView &data,
              const std::vector<std::pair<std::string, std::string>>
                  &pairs) const;

    /**
     * Rank all pairs among the given events (typically the MAPM's top-10
     * importance ranking).
     */
    InteractionResult
    rankTopEvents(const cminer::ml::Gbrt &model,
                  const cminer::ml::DatasetView &data,
                  const std::vector<std::string> &events) const;

  private:
    InteractionOptions options_;
};

} // namespace cminer::core

#endif // CMINER_CORE_INTERACTION_H

#include "core/importance.h"

#include <algorithm>

#include "ml/cv.h"
#include "ml/metrics.h"
#include "util/error.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace cminer::core {

using cminer::ml::Dataset;
using cminer::ml::DatasetView;
using cminer::ml::FeatureImportance;
using cminer::ml::Gbrt;
using cminer::util::Rng;

ImportanceRanker::ImportanceRanker(ImportanceOptions options)
    : options_(std::move(options))
{
    CM_ASSERT(options_.dropPerIteration >= 1);
    CM_ASSERT(options_.trainFraction > 0.0 &&
              options_.trainFraction < 1.0);
    CM_ASSERT(options_.cvFolds >= 1);
}

Dataset
ImportanceRanker::buildDataset(const std::vector<CollectedRun> &runs,
                               const cminer::pmu::EventCatalog &catalog)
{
    CM_ASSERT(!runs.empty());
    const auto &first = runs.front().series;
    CM_ASSERT(first.size() >= 2); // at least one event plus IPC

    // Feature names: paper abbreviations where known, else full names.
    std::vector<std::string> names;
    for (std::size_t s = 0; s + 1 < first.size(); ++s) {
        const auto id = catalog.findByName(first[s].eventName());
        names.push_back(id ? catalog.info(*id).abbrev
                           : first[s].eventName());
    }

    // Fill whole columns, run after run — same row order the old
    // row-major build produced, without materializing any row.
    std::size_t total_rows = 0;
    for (const auto &run : runs) {
        CM_ASSERT(run.series.size() == first.size());
        CM_ASSERT(run.ipc().eventName() == ipc_series_name);
        total_rows += run.ipc().size();
    }
    std::vector<std::vector<double>> columns(names.size());
    for (auto &col : columns)
        col.reserve(total_rows);
    std::vector<double> targets;
    targets.reserve(total_rows);
    for (const auto &run : runs) {
        const auto &ipc = run.ipc();
        for (std::size_t s = 0; s + 1 < run.series.size(); ++s) {
            CM_ASSERT(run.series[s].size() == ipc.size());
            const auto &values = run.series[s].values();
            columns[s].insert(columns[s].end(), values.begin(),
                              values.end());
        }
        const auto &ipc_values = ipc.values();
        targets.insert(targets.end(), ipc_values.begin(),
                       ipc_values.end());
    }
    return Dataset::fromColumns(std::move(names), std::move(columns),
                                std::move(targets));
}

Dataset
ImportanceRanker::buildDatasetFromStore(
    const cminer::store::Database &db,
    const std::vector<cminer::store::RunId> &ids,
    const cminer::pmu::EventCatalog &catalog)
{
    CM_ASSERT(!ids.empty());
    // Pin one consistent view for the whole build: the dataset must
    // come from a single store state even when ingest or segment
    // compaction runs concurrently, and the pinned snapshot keeps
    // every zero-copy span below valid while we read it.
    const cminer::store::StoreSnapshot snap = db.snapshot();
    const auto &events = snap.runInfo(ids.front()).events;
    CM_ASSERT(events.size() >= 2); // at least one event plus IPC
    CM_ASSERT(events.back() == ipc_series_name);

    // Feature names: paper abbreviations where known, else full names.
    std::vector<std::string> names;
    for (std::size_t s = 0; s + 1 < events.size(); ++s) {
        const auto id = catalog.findByName(events[s]);
        names.push_back(id ? catalog.info(*id).abbrev : events[s]);
    }

    std::size_t total_rows = 0;
    for (const auto run_id : ids) {
        CM_ASSERT(snap.runInfo(run_id).events == events);
        total_rows += snap.length(run_id);
    }
    std::vector<std::vector<double>> columns(names.size());
    for (auto &col : columns)
        col.reserve(total_rows);
    std::vector<double> targets;
    targets.reserve(total_rows);
    for (const auto run_id : ids) {
        for (std::size_t s = 0; s + 1 < events.size(); ++s) {
            const auto values = snap.values(run_id, s);
            columns[s].insert(columns[s].end(), values.begin(),
                              values.end());
        }
        const auto ipc_values = snap.values(run_id, events.size() - 1);
        targets.insert(targets.end(), ipc_values.begin(),
                       ipc_values.end());
    }
    return Dataset::fromColumns(std::move(names), std::move(columns),
                                std::move(targets));
}

std::pair<std::vector<FeatureImportance>, double>
ImportanceRanker::fitOnce(const DatasetView &data, Rng &rng) const
{
    if (options_.cvFolds <= 1) {
        auto split =
            ml::trainTestSplit(data, options_.trainFraction, rng);
        Gbrt model(options_.gbrt);
        model.fit(split.train, rng);
        const auto predicted = model.predictAll(split.test);
        const double error =
            ml::mape(split.test.targets(), predicted);
        return {model.featureImportances(), error};
    }

    // k-fold protocol. All parent-rng draws happen serially up front
    // (the fold shuffle, then one child seed per fold); the folds then
    // train concurrently on independent Rng streams and their results
    // are reduced in fold order — bit-identical for any thread count.
    const std::size_t folds = options_.cvFolds;
    auto splits = ml::kFold(data, folds, rng);
    std::vector<std::uint64_t> seeds(folds);
    for (auto &seed : seeds)
        seed = rng.next();

    std::vector<double> errors(folds, 0.0);
    std::vector<std::vector<FeatureImportance>> rankings(folds);
    cminer::util::parallelFor(
        0, folds, 1, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t f = lo; f < hi; ++f) {
                Rng fold_rng(seeds[f]);
                Gbrt model(options_.gbrt);
                model.fit(splits[f].train, fold_rng);
                const auto predicted = model.predictAll(splits[f].test);
                errors[f] =
                    ml::mape(splits[f].test.targets(), predicted);
                rankings[f] = model.featureImportances();
            }
        });

    // Average per-feature importance percents and errors in fold order.
    const std::vector<std::string> names = data.featureNames();
    std::vector<double> sums(names.size(), 0.0);
    for (std::size_t f = 0; f < folds; ++f) {
        CM_ASSERT(rankings[f].size() == names.size());
        for (const auto &entry : rankings[f])
            sums[data.featureIndex(entry.feature)] += entry.importance;
    }
    std::vector<FeatureImportance> averaged;
    averaged.reserve(names.size());
    for (std::size_t i = 0; i < names.size(); ++i)
        averaged.push_back(
            {names[i], sums[i] / static_cast<double>(folds)});
    ml::sortByImportance(averaged);

    double error_sum = 0.0;
    for (double e : errors)
        error_sum += e;
    return {std::move(averaged), error_sum / static_cast<double>(folds)};
}

ImportanceResult
ImportanceRanker::run(const Dataset &data, Rng &rng) const
{
    cminer::util::Span span("eir");
    span.number("events", static_cast<double>(data.featureCount()));
    span.number("rows", static_cast<double>(data.rowCount()));

    ImportanceResult result;
    std::vector<std::string> features = data.featureNames();
    double best_error = -1.0;
    std::size_t since_best = 0;

    // The whole refinement loop runs over views of one base dataset:
    // dropping events shrinks a column mask, nothing is re-copied.
    const DatasetView base(data);
    while (true) {
        cminer::util::Span iteration("eir.iteration");
        iteration.number("events",
                         static_cast<double>(features.size()));
        const DatasetView current =
            features.size() == data.featureCount()
                ? base
                : base.withFeatures(features);
        auto [ranking, error] = fitOnce(current, rng);
        iteration.number("cv_error_percent", error);
        cminer::util::count("eir.iterations");

        result.curve.push_back({features.size(), error});
        if (best_error < 0.0 || error < best_error) {
            best_error = error;
            since_best = 0;
            result.ranking = ranking;
            result.mapmErrorPercent = error;
            result.mapmEventCount = features.size();
            result.mapmFeatures = features;
        } else {
            ++since_best;
        }

        if (options_.earlyStopPatience > 0 &&
            since_best >= options_.earlyStopPatience)
            break;
        if (features.size() <=
            options_.minEvents + options_.dropPerIteration)
            break;

        // Drop the `dropPerIteration` least important events. The
        // ranking is sorted descending, so the tail goes.
        CM_ASSERT(ranking.size() == features.size());
        std::vector<std::string> keep;
        keep.reserve(features.size() - options_.dropPerIteration);
        for (std::size_t i = 0;
             i + options_.dropPerIteration < ranking.size(); ++i)
            keep.push_back(ranking[i].feature);
        // Preserve the dataset's original column order for determinism.
        std::vector<std::string> next;
        for (const auto &name : features) {
            if (std::find(keep.begin(), keep.end(), name) != keep.end())
                next.push_back(name);
        }
        features = std::move(next);
    }
    cminer::util::gaugeSet("eir.best_error_percent",
                           result.mapmErrorPercent);
    cminer::util::gaugeSet("eir.mapm_events",
                           static_cast<double>(result.mapmEventCount));
    span.number("iterations", static_cast<double>(result.curve.size()));
    return result;
}

Gbrt
ImportanceRanker::trainMapm(const Dataset &data,
                            const ImportanceResult &result,
                            Rng &rng) const
{
    CM_ASSERT(!result.mapmFeatures.empty());
    const DatasetView mapm_view =
        DatasetView(data).withFeatures(result.mapmFeatures);
    Gbrt model(options_.gbrt);
    model.fit(mapm_view, rng);
    return model;
}

} // namespace cminer::core

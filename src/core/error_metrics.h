/**
 * @file
 * The DTW-based MLPX measurement-error metric (paper Eqs. 1-4).
 *
 *   dist_ref = DTW(S_ocoe1, S_ocoe2)   — run-to-run noise floor
 *   dist_mea = DTW(S_mlpx,  S_ocoe)    — multiplexing distortion
 *   error    = |1 - dist_ref / dist_mea| * 100%
 */

#ifndef CMINER_CORE_ERROR_METRICS_H
#define CMINER_CORE_ERROR_METRICS_H

#include "ts/dtw.h"
#include "ts/time_series.h"

namespace cminer::core {

/** Inputs/outputs of one error evaluation. */
struct MlpxErrorResult
{
    double distRef = 0.0;  ///< DTW(OCOE run 1, OCOE run 2)
    double distMea = 0.0;  ///< DTW(MLPX run, OCOE run)
    double errorPercent = 0.0;
};

/**
 * Paper Eq. 4.
 *
 * @param ocoe1 OCOE series of the event, run 1
 * @param ocoe2 OCOE series of the same event, run 2
 * @param mlpx MLPX series of the same event
 * @param options DTW options shared by both distance computations
 */
MlpxErrorResult
mlpxError(const cminer::ts::TimeSeries &ocoe1,
          const cminer::ts::TimeSeries &ocoe2,
          const cminer::ts::TimeSeries &mlpx,
          const cminer::ts::DtwOptions &options = {});

} // namespace cminer::core

#endif // CMINER_CORE_ERROR_METRICS_H

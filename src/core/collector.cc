#include "core/collector.h"

#include <memory>
#include <utility>

#include "pmu/linux_perf_sampler.h"
#include "pmu/sim_sampler.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"
#include "workload/synthetic_load.h"

namespace cminer::core {

using cminer::pmu::EventId;
using cminer::pmu::MlpxSchedule;
using cminer::pmu::OcoePlan;
using cminer::pmu::RotationPolicy;
using cminer::pmu::TrueTrace;
using cminer::ts::TimeSeries;
using cminer::util::Rng;
using cminer::util::Status;
using cminer::util::StatusOr;
using cminer::workload::SparkConfig;
using cminer::workload::SyntheticBenchmark;

std::unique_ptr<cminer::pmu::SamplerBackend>
makeSamplerBackend(cminer::pmu::BackendKind kind,
                   const cminer::pmu::EventCatalog &catalog,
                   cminer::pmu::PmuConfig config)
{
    if (kind == cminer::pmu::BackendKind::Perf) {
        const Status probed = cminer::pmu::LinuxPerfSampler::probe();
        if (probed.ok()) {
            // The perf backend measures something real: the built-in
            // phase-rotating synthetic load, injected here so pmu never
            // links the workload library.
            auto load =
                std::make_shared<cminer::workload::SyntheticLoad>();
            return std::make_unique<cminer::pmu::LinuxPerfSampler>(
                catalog, config,
                [load]() { return load->runChunk(); });
        }
        cminer::util::count("collector.backend_fallbacks");
        cminer::util::warn("collector: perf backend unavailable, "
                           "falling back to sim: " +
                           probed.message());
    }
    return std::make_unique<cminer::pmu::SimSampler>(catalog, config);
}

DataCollector::DataCollector(cminer::store::Database &db,
                             const cminer::pmu::EventCatalog &catalog,
                             cminer::pmu::PmuConfig pmu_config)
    : db_(db),
      catalog_(catalog),
      backend_(std::make_unique<cminer::pmu::SimSampler>(catalog,
                                                         pmu_config))
{
}

DataCollector::DataCollector(
    cminer::store::Database &db, const cminer::pmu::EventCatalog &catalog,
    std::unique_ptr<cminer::pmu::SamplerBackend> backend)
    : db_(db), catalog_(catalog), backend_(std::move(backend))
{
    CM_ASSERT(backend_ != nullptr);
}

Status
DataCollector::withTransientRetry(const std::function<Status()> &attempt)
{
    const auto result = cminer::util::retryWithBackoff(
        retryOptions_, retryClock_, retryRng_, attempt);
    transientRetries_ += result.attempts - 1;
    cminer::util::count("collector.transient_retries",
                        result.attempts - 1);
    return result.status;
}

StatusOr<CollectedRun>
DataCollector::tryRecord(const std::string &program,
                         const std::string &suite, const std::string &mode,
                         const TrueTrace &trace,
                         std::vector<TimeSeries> series, Rng &rng)
{
    // Injected damage lands on the event series only — the fixed
    // counters behind the IPC series are never multiplexed and model
    // noise there is already part of the sampler.
    if (injector_ != nullptr)
        injector_->corruptSeries(series);
    series.push_back(backend_->measuredIpc(trace, rng));

    CollectedRun run;
    // The store insertion is retried as a unit: a transient store
    // failure leaves nothing recorded, so re-inserting is safe.
    const Status status = withTransientRetry([&]() -> Status {
        if (injector_ != nullptr) {
            const Status fault = injector_->transientFault("store");
            if (!fault.ok())
                return fault;
        }
        auto added = db_.tryAddRun(program, suite, mode,
                                   trace.durationMs(), series);
        if (!added.ok())
            return added.status();
        run.id = added.value();
        return Status::okStatus();
    });
    if (!status.ok()) {
        cminer::util::count("collector.runs_failed");
        return status.withContext("collector: recording run for " +
                                  program);
    }
    cminer::util::count("collector.runs_recorded");
    run.series = std::move(series);
    return run;
}

CollectedRun
DataCollector::record(const std::string &program, const std::string &suite,
                      const std::string &mode, const TrueTrace &trace,
                      std::vector<TimeSeries> series, Rng &rng)
{
    auto result =
        tryRecord(program, suite, mode, trace, std::move(series), rng);
    result.status().throwIfError();
    return std::move(result).value();
}

CollectedRun
DataCollector::collectOcoe(const SyntheticBenchmark &benchmark,
                           const std::vector<EventId> &events, Rng &rng,
                           const SparkConfig &config)
{
    if (events.size() > backend_->config().programmableCounters) {
        util::fatal("collector: OCOE run asked to measure more events "
                    "than there are programmable counters; use "
                    "collectOcoePlan");
    }
    const TrueTrace trace = benchmark.generateTrace(rng, config);
    auto series = backend_->measureOcoe(trace, events, rng);
    return record(benchmark.name(), benchmark.suite(), "ocoe", trace,
                  std::move(series), rng);
}

std::vector<CollectedRun>
DataCollector::collectOcoePlan(const SyntheticBenchmark &benchmark,
                               const std::vector<EventId> &events,
                               Rng &rng, const SparkConfig &config)
{
    const OcoePlan plan(events, backend_->config().programmableCounters);
    std::vector<CollectedRun> runs;
    runs.reserve(plan.runCount());
    for (std::size_t r = 0; r < plan.runCount(); ++r)
        runs.push_back(collectOcoe(benchmark, plan.run(r), rng, config));
    return runs;
}

StatusOr<CollectedRun>
DataCollector::tryCollectMlpx(const SyntheticBenchmark &benchmark,
                              const std::vector<EventId> &events, Rng &rng,
                              const SparkConfig &config,
                              RotationPolicy policy)
{
    cminer::util::Span span("collect.run");
    span.label("benchmark", benchmark.name());
    // A transient sampler-launch failure happens *before* the trace is
    // drawn, so a successful retry consumes the caller's Rng stream
    // exactly as an undisturbed run would.
    const Status launch = withTransientRetry([&]() -> Status {
        return injector_ != nullptr
            ? injector_->transientFault("sampler")
            : Status::okStatus();
    });
    if (!launch.ok())
        return launch.withContext("collector: launching MLPX run for " +
                                  benchmark.name());

    const TrueTrace trace = benchmark.generateTrace(rng, config);
    const MlpxSchedule schedule(events,
                                backend_->config().programmableCounters,
                                policy);
    auto measured = backend_->measureMlpx(trace, schedule, rng);
    return tryRecord(benchmark.name(), benchmark.suite(), "mlpx", trace,
                     std::move(measured.series), rng);
}

CollectedRun
DataCollector::collectMlpx(const SyntheticBenchmark &benchmark,
                           const std::vector<EventId> &events, Rng &rng,
                           const SparkConfig &config,
                           RotationPolicy policy)
{
    auto result = tryCollectMlpx(benchmark, events, rng, config, policy);
    result.status().throwIfError();
    return std::move(result).value();
}

StatusOr<CollectedRun>
DataCollector::tryCollectMlpxFromTrace(const TrueTrace &trace,
                                       const std::string &program,
                                       const std::string &suite,
                                       const std::vector<EventId> &events,
                                       Rng &rng)
{
    cminer::util::Span span("collect.run");
    span.label("benchmark", program);
    const Status launch = withTransientRetry([&]() -> Status {
        return injector_ != nullptr
            ? injector_->transientFault("sampler")
            : Status::okStatus();
    });
    if (!launch.ok())
        return launch.withContext("collector: launching MLPX run for " +
                                  program);

    const MlpxSchedule schedule(events,
                                backend_->config().programmableCounters);
    auto measured = backend_->measureMlpx(trace, schedule, rng);
    return tryRecord(program, suite, "mlpx", trace,
                     std::move(measured.series), rng);
}

CollectedRun
DataCollector::collectMlpxFromTrace(const TrueTrace &trace,
                                    const std::string &program,
                                    const std::string &suite,
                                    const std::vector<EventId> &events,
                                    Rng &rng)
{
    auto result =
        tryCollectMlpxFromTrace(trace, program, suite, events, rng);
    result.status().throwIfError();
    return std::move(result).value();
}

CollectedRun
DataCollector::collectOcoeFromTrace(const TrueTrace &trace,
                                    const std::string &program,
                                    const std::string &suite,
                                    const std::vector<EventId> &events,
                                    Rng &rng)
{
    if (events.size() > backend_->config().programmableCounters) {
        util::fatal("collector: OCOE run asked to measure more events "
                    "than there are programmable counters");
    }
    auto series = backend_->measureOcoe(trace, events, rng);
    return record(program, suite, "ocoe", trace, std::move(series), rng);
}

} // namespace cminer::core

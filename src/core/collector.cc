#include "core/collector.h"

#include "util/error.h"

namespace cminer::core {

using cminer::pmu::EventId;
using cminer::pmu::MlpxSchedule;
using cminer::pmu::OcoePlan;
using cminer::pmu::RotationPolicy;
using cminer::pmu::TrueTrace;
using cminer::ts::TimeSeries;
using cminer::util::Rng;
using cminer::workload::SparkConfig;
using cminer::workload::SyntheticBenchmark;

DataCollector::DataCollector(cminer::store::Database &db,
                             const cminer::pmu::EventCatalog &catalog,
                             cminer::pmu::PmuConfig pmu_config)
    : db_(db), catalog_(catalog), sampler_(catalog, pmu_config)
{
}

CollectedRun
DataCollector::record(const std::string &program, const std::string &suite,
                      const std::string &mode, const TrueTrace &trace,
                      std::vector<TimeSeries> series, Rng &rng)
{
    series.push_back(sampler_.measuredIpc(trace, rng));
    CollectedRun run;
    run.id = db_.addRun(program, suite, mode, trace.durationMs(), series);
    run.series = std::move(series);
    return run;
}

CollectedRun
DataCollector::collectOcoe(const SyntheticBenchmark &benchmark,
                           const std::vector<EventId> &events, Rng &rng,
                           const SparkConfig &config)
{
    if (events.size() > sampler_.config().programmableCounters) {
        util::fatal("collector: OCOE run asked to measure more events "
                    "than there are programmable counters; use "
                    "collectOcoePlan");
    }
    const TrueTrace trace = benchmark.generateTrace(rng, config);
    auto series = sampler_.measureOcoe(trace, events, rng);
    return record(benchmark.name(), benchmark.suite(), "ocoe", trace,
                  std::move(series), rng);
}

std::vector<CollectedRun>
DataCollector::collectOcoePlan(const SyntheticBenchmark &benchmark,
                               const std::vector<EventId> &events,
                               Rng &rng, const SparkConfig &config)
{
    const OcoePlan plan(events, sampler_.config().programmableCounters);
    std::vector<CollectedRun> runs;
    runs.reserve(plan.runCount());
    for (std::size_t r = 0; r < plan.runCount(); ++r)
        runs.push_back(collectOcoe(benchmark, plan.run(r), rng, config));
    return runs;
}

CollectedRun
DataCollector::collectMlpx(const SyntheticBenchmark &benchmark,
                           const std::vector<EventId> &events, Rng &rng,
                           const SparkConfig &config,
                           RotationPolicy policy)
{
    const TrueTrace trace = benchmark.generateTrace(rng, config);
    const MlpxSchedule schedule(events,
                                sampler_.config().programmableCounters,
                                policy);
    auto series = sampler_.measureMlpx(trace, schedule, rng);
    return record(benchmark.name(), benchmark.suite(), "mlpx", trace,
                  std::move(series), rng);
}

CollectedRun
DataCollector::collectMlpxFromTrace(const TrueTrace &trace,
                                    const std::string &program,
                                    const std::string &suite,
                                    const std::vector<EventId> &events,
                                    Rng &rng)
{
    const MlpxSchedule schedule(events,
                                sampler_.config().programmableCounters);
    auto series = sampler_.measureMlpx(trace, schedule, rng);
    return record(program, suite, "mlpx", trace, std::move(series), rng);
}

CollectedRun
DataCollector::collectOcoeFromTrace(const TrueTrace &trace,
                                    const std::string &program,
                                    const std::string &suite,
                                    const std::vector<EventId> &events,
                                    Rng &rng)
{
    if (events.size() > sampler_.config().programmableCounters) {
        util::fatal("collector: OCOE run asked to measure more events "
                    "than there are programmable counters");
    }
    auto series = sampler_.measureOcoe(trace, events, rng);
    return record(program, suite, "ocoe", trace, std::move(series), rng);
}

} // namespace cminer::core

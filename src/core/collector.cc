#include "core/collector.h"

#include "util/error.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace cminer::core {

using cminer::pmu::EventId;
using cminer::pmu::MlpxSchedule;
using cminer::pmu::OcoePlan;
using cminer::pmu::RotationPolicy;
using cminer::pmu::TrueTrace;
using cminer::ts::TimeSeries;
using cminer::util::Rng;
using cminer::util::Status;
using cminer::util::StatusOr;
using cminer::workload::SparkConfig;
using cminer::workload::SyntheticBenchmark;

DataCollector::DataCollector(cminer::store::Database &db,
                             const cminer::pmu::EventCatalog &catalog,
                             cminer::pmu::PmuConfig pmu_config)
    : db_(db), catalog_(catalog), sampler_(catalog, pmu_config)
{
}

Status
DataCollector::withTransientRetry(const std::function<Status()> &attempt)
{
    const auto result = cminer::util::retryWithBackoff(
        retryOptions_, retryClock_, retryRng_, attempt);
    transientRetries_ += result.attempts - 1;
    cminer::util::count("collector.transient_retries",
                        result.attempts - 1);
    return result.status;
}

StatusOr<CollectedRun>
DataCollector::tryRecord(const std::string &program,
                         const std::string &suite, const std::string &mode,
                         const TrueTrace &trace,
                         std::vector<TimeSeries> series, Rng &rng)
{
    // Injected damage lands on the event series only — the fixed
    // counters behind the IPC series are never multiplexed and model
    // noise there is already part of the sampler.
    if (injector_ != nullptr)
        injector_->corruptSeries(series);
    series.push_back(sampler_.measuredIpc(trace, rng));

    CollectedRun run;
    // The store insertion is retried as a unit: a transient store
    // failure leaves nothing recorded, so re-inserting is safe.
    const Status status = withTransientRetry([&]() -> Status {
        if (injector_ != nullptr) {
            const Status fault = injector_->transientFault("store");
            if (!fault.ok())
                return fault;
        }
        auto added = db_.tryAddRun(program, suite, mode,
                                   trace.durationMs(), series);
        if (!added.ok())
            return added.status();
        run.id = added.value();
        return Status::okStatus();
    });
    if (!status.ok()) {
        cminer::util::count("collector.runs_failed");
        return status.withContext("collector: recording run for " +
                                  program);
    }
    cminer::util::count("collector.runs_recorded");
    run.series = std::move(series);
    return run;
}

CollectedRun
DataCollector::record(const std::string &program, const std::string &suite,
                      const std::string &mode, const TrueTrace &trace,
                      std::vector<TimeSeries> series, Rng &rng)
{
    auto result =
        tryRecord(program, suite, mode, trace, std::move(series), rng);
    result.status().throwIfError();
    return std::move(result).value();
}

CollectedRun
DataCollector::collectOcoe(const SyntheticBenchmark &benchmark,
                           const std::vector<EventId> &events, Rng &rng,
                           const SparkConfig &config)
{
    if (events.size() > sampler_.config().programmableCounters) {
        util::fatal("collector: OCOE run asked to measure more events "
                    "than there are programmable counters; use "
                    "collectOcoePlan");
    }
    const TrueTrace trace = benchmark.generateTrace(rng, config);
    auto series = sampler_.measureOcoe(trace, events, rng);
    return record(benchmark.name(), benchmark.suite(), "ocoe", trace,
                  std::move(series), rng);
}

std::vector<CollectedRun>
DataCollector::collectOcoePlan(const SyntheticBenchmark &benchmark,
                               const std::vector<EventId> &events,
                               Rng &rng, const SparkConfig &config)
{
    const OcoePlan plan(events, sampler_.config().programmableCounters);
    std::vector<CollectedRun> runs;
    runs.reserve(plan.runCount());
    for (std::size_t r = 0; r < plan.runCount(); ++r)
        runs.push_back(collectOcoe(benchmark, plan.run(r), rng, config));
    return runs;
}

StatusOr<CollectedRun>
DataCollector::tryCollectMlpx(const SyntheticBenchmark &benchmark,
                              const std::vector<EventId> &events, Rng &rng,
                              const SparkConfig &config,
                              RotationPolicy policy)
{
    cminer::util::Span span("collect.run");
    span.label("benchmark", benchmark.name());
    // A transient sampler-launch failure happens *before* the trace is
    // drawn, so a successful retry consumes the caller's Rng stream
    // exactly as an undisturbed run would.
    const Status launch = withTransientRetry([&]() -> Status {
        return injector_ != nullptr
            ? injector_->transientFault("sampler")
            : Status::okStatus();
    });
    if (!launch.ok())
        return launch.withContext("collector: launching MLPX run for " +
                                  benchmark.name());

    const TrueTrace trace = benchmark.generateTrace(rng, config);
    const MlpxSchedule schedule(events,
                                sampler_.config().programmableCounters,
                                policy);
    auto series = sampler_.measureMlpx(trace, schedule, rng);
    return tryRecord(benchmark.name(), benchmark.suite(), "mlpx", trace,
                     std::move(series), rng);
}

CollectedRun
DataCollector::collectMlpx(const SyntheticBenchmark &benchmark,
                           const std::vector<EventId> &events, Rng &rng,
                           const SparkConfig &config,
                           RotationPolicy policy)
{
    auto result = tryCollectMlpx(benchmark, events, rng, config, policy);
    result.status().throwIfError();
    return std::move(result).value();
}

StatusOr<CollectedRun>
DataCollector::tryCollectMlpxFromTrace(const TrueTrace &trace,
                                       const std::string &program,
                                       const std::string &suite,
                                       const std::vector<EventId> &events,
                                       Rng &rng)
{
    cminer::util::Span span("collect.run");
    span.label("benchmark", program);
    const Status launch = withTransientRetry([&]() -> Status {
        return injector_ != nullptr
            ? injector_->transientFault("sampler")
            : Status::okStatus();
    });
    if (!launch.ok())
        return launch.withContext("collector: launching MLPX run for " +
                                  program);

    const MlpxSchedule schedule(events,
                                sampler_.config().programmableCounters);
    auto series = sampler_.measureMlpx(trace, schedule, rng);
    return tryRecord(program, suite, "mlpx", trace, std::move(series),
                     rng);
}

CollectedRun
DataCollector::collectMlpxFromTrace(const TrueTrace &trace,
                                    const std::string &program,
                                    const std::string &suite,
                                    const std::vector<EventId> &events,
                                    Rng &rng)
{
    auto result =
        tryCollectMlpxFromTrace(trace, program, suite, events, rng);
    result.status().throwIfError();
    return std::move(result).value();
}

CollectedRun
DataCollector::collectOcoeFromTrace(const TrueTrace &trace,
                                    const std::string &program,
                                    const std::string &suite,
                                    const std::vector<EventId> &events,
                                    Rng &rng)
{
    if (events.size() > sampler_.config().programmableCounters) {
        util::fatal("collector: OCOE run asked to measure more events "
                    "than there are programmable counters");
    }
    auto series = sampler_.measureOcoe(trace, events, rng);
    return record(program, suite, "ocoe", trace, std::move(series), rng);
}

} // namespace cminer::core

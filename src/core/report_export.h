/**
 * @file
 * JSON export of pipeline results, for dashboards and downstream
 * tooling (the paper's GWP-style consumers).
 */

#ifndef CMINER_CORE_REPORT_EXPORT_H
#define CMINER_CORE_REPORT_EXPORT_H

#include <string>

#include "core/counterminer.h"

namespace cminer::core {

/**
 * Serialize a ProfileReport to a JSON document:
 * {
 *   "benchmark": ...,
 *   "cleaning": {"outliersReplaced": N, "missingFilled": N, "series": N},
 *   "mapm": {"eventCount": N, "errorPercent": X},
 *   "eirCurve": [{"events": N, "errorPercent": X}, ...],
 *   "topEvents": [{"event": ..., "importancePercent": X}, ...],
 *   "interactions": [{"first": ..., "second": ..., "intensityPercent": X}, ...]
 * }
 */
std::string reportToJson(const ProfileReport &report,
                         std::size_t top_interactions = 10);

} // namespace cminer::core

#endif // CMINER_CORE_REPORT_EXPORT_H

/**
 * @file
 * The data collector (paper Section III-A): runs benchmarks, samples
 * their events through the PMU in OCOE or MLPX mode, and records the
 * resulting time series — plus the fixed-counter IPC — in the two-level
 * database.
 */

#ifndef CMINER_CORE_COLLECTOR_H
#define CMINER_CORE_COLLECTOR_H

#include <string>
#include <vector>

#include "pmu/event.h"
#include "pmu/sampler.h"
#include "pmu/schedule.h"
#include "pmu/trace.h"
#include "store/database.h"
#include "ts/time_series.h"
#include "util/rng.h"
#include "workload/benchmark.h"

namespace cminer::core {

/** The name under which measured IPC is stored alongside event series. */
inline constexpr const char *ipc_series_name = "IPC";

/** One recorded run: its database id and the measured series. */
struct CollectedRun
{
    cminer::store::RunId id = -1;
    /** Measured event series, in request order, then the IPC series. */
    std::vector<cminer::ts::TimeSeries> series;

    /** The measured IPC series (last element). */
    const cminer::ts::TimeSeries &ipc() const { return series.back(); }
};

/**
 * Samples benchmarks and records runs.
 */
class DataCollector
{
  public:
    /**
     * @param db database runs are recorded into
     * @param catalog event catalog
     * @param pmu_config PMU description (counters, interval, rotation)
     */
    DataCollector(cminer::store::Database &db,
                  const cminer::pmu::EventCatalog &catalog,
                  cminer::pmu::PmuConfig pmu_config = {});

    /** The sampler in use (for its PMU config). */
    const cminer::pmu::Sampler &sampler() const { return sampler_; }

    /**
     * One OCOE run measuring up to a counter's worth of events.
     *
     * @param benchmark workload to run
     * @param events events to measure; at most the programmable-counter
     *        count (use collectOcoePlan to cover more)
     * @param rng run randomness
     * @param config Spark configuration
     */
    CollectedRun
    collectOcoe(const cminer::workload::SyntheticBenchmark &benchmark,
                const std::vector<cminer::pmu::EventId> &events,
                cminer::util::Rng &rng,
                const cminer::workload::SparkConfig &config = {});

    /**
     * Cover an arbitrary event list with OCOE: one *separate run* per
     * counter-sized group (the cost the paper's Fig. 15 quantifies).
     */
    std::vector<CollectedRun>
    collectOcoePlan(const cminer::workload::SyntheticBenchmark &benchmark,
                    const std::vector<cminer::pmu::EventId> &events,
                    cminer::util::Rng &rng,
                    const cminer::workload::SparkConfig &config = {});

    /**
     * One MLPX run multiplexing all requested events onto the counters.
     */
    CollectedRun
    collectMlpx(const cminer::workload::SyntheticBenchmark &benchmark,
                const std::vector<cminer::pmu::EventId> &events,
                cminer::util::Rng &rng,
                const cminer::workload::SparkConfig &config = {},
                cminer::pmu::RotationPolicy policy =
                    cminer::pmu::RotationPolicy::RoundRobin);

    /**
     * MLPX-measure an externally produced trace (e.g. a co-located
     * composition) and record it under the given program/suite names.
     */
    CollectedRun
    collectMlpxFromTrace(const cminer::pmu::TrueTrace &trace,
                         const std::string &program,
                         const std::string &suite,
                         const std::vector<cminer::pmu::EventId> &events,
                         cminer::util::Rng &rng);

    /** OCOE-measure an externally produced trace. */
    CollectedRun
    collectOcoeFromTrace(const cminer::pmu::TrueTrace &trace,
                         const std::string &program,
                         const std::string &suite,
                         const std::vector<cminer::pmu::EventId> &events,
                         cminer::util::Rng &rng);

  private:
    CollectedRun record(const std::string &program,
                        const std::string &suite, const std::string &mode,
                        const cminer::pmu::TrueTrace &trace,
                        std::vector<cminer::ts::TimeSeries> series,
                        cminer::util::Rng &rng);

    cminer::store::Database &db_;
    const cminer::pmu::EventCatalog &catalog_;
    cminer::pmu::Sampler sampler_;
};

} // namespace cminer::core

#endif // CMINER_CORE_COLLECTOR_H

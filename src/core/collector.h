/**
 * @file
 * The data collector (paper Section III-A): runs benchmarks, samples
 * their events through the PMU in OCOE or MLPX mode, and records the
 * resulting time series — plus the fixed-counter IPC — in the two-level
 * database.
 *
 * The collector is the pipeline's fault boundary. An attached
 * FaultInjector can make the sampler launch or the store insertion fail
 * transiently (retried with deterministic exponential backoff) and can
 * damage the sampled series (quarantined or repaired downstream); the
 * try* entry points surface those failures as recoverable Status values
 * instead of killing the job.
 */

#ifndef CMINER_CORE_COLLECTOR_H
#define CMINER_CORE_COLLECTOR_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pmu/backend.h"
#include "pmu/event.h"
#include "pmu/schedule.h"
#include "pmu/trace.h"
#include "store/database.h"
#include "ts/time_series.h"
#include "util/fault_injection.h"
#include "util/retry.h"
#include "util/rng.h"
#include "util/status.h"
#include "workload/benchmark.h"

namespace cminer::core {

/** The name under which measured IPC is stored alongside event series. */
inline constexpr const char *ipc_series_name = "IPC";

/**
 * Build the collection backend for a requested kind (DESIGN.md §16).
 *
 * BackendKind::Sim always succeeds. BackendKind::Perf is probed at
 * runtime (perf_event_paranoid, a trial counter open); when the probe
 * fails, the factory logs the reason, bumps the
 * `collector.backend_fallbacks` metric, and returns a SimSampler — the
 * pipeline keeps working everywhere, real hardware is used where it can
 * be. The perf backend measures the built-in workload::SyntheticLoad.
 */
std::unique_ptr<cminer::pmu::SamplerBackend>
makeSamplerBackend(cminer::pmu::BackendKind kind,
                   const cminer::pmu::EventCatalog &catalog,
                   cminer::pmu::PmuConfig config = {});

/** One recorded run: its database id and the measured series. */
struct CollectedRun
{
    cminer::store::RunId id = -1;
    /** Measured event series, in request order, then the IPC series. */
    std::vector<cminer::ts::TimeSeries> series;

    /** The measured IPC series (last element). */
    const cminer::ts::TimeSeries &ipc() const { return series.back(); }
};

/**
 * Samples benchmarks and records runs.
 */
class DataCollector
{
  public:
    /**
     * Collect through the simulated PMU (bit-identical to the pre-seam
     * collector).
     *
     * @param db database runs are recorded into
     * @param catalog event catalog
     * @param pmu_config PMU description (counters, interval, rotation)
     */
    DataCollector(cminer::store::Database &db,
                  const cminer::pmu::EventCatalog &catalog,
                  cminer::pmu::PmuConfig pmu_config = {});

    /**
     * Collect through an explicit backend (see makeSamplerBackend).
     * The fault boundary — transient retry, quarantine, injected
     * damage — behaves identically for every backend.
     */
    DataCollector(cminer::store::Database &db,
                  const cminer::pmu::EventCatalog &catalog,
                  std::unique_ptr<cminer::pmu::SamplerBackend> backend);

    /** The collection backend in use (for its kind and PMU config). */
    const cminer::pmu::SamplerBackend &backend() const
    {
        return *backend_;
    }

    /**
     * Attach a fault injector (not owned; nullptr detaches). Injected
     * transient faults are retried per the retry options; injected data
     * damage flows into the sampled series.
     */
    void setFaultInjector(cminer::util::FaultInjector *injector)
    {
        injector_ = injector;
    }

    /** The attached fault injector, or nullptr. */
    cminer::util::FaultInjector *faultInjector() const { return injector_; }

    /** Backoff policy for transient collection/store failures. */
    void setRetryOptions(cminer::util::RetryOptions options)
    {
        retryOptions_ = options;
    }

    /** Transient retries performed so far (across all runs). */
    std::size_t transientRetries() const { return transientRetries_; }

    /** Total backoff delay requested so far (simulated, not slept). */
    double retryDelayMs() const { return retryClock_.totalMs(); }

    /**
     * One OCOE run measuring up to a counter's worth of events.
     *
     * @param benchmark workload to run
     * @param events events to measure; at most the programmable-counter
     *        count (use collectOcoePlan to cover more)
     * @param rng run randomness
     * @param config Spark configuration
     */
    CollectedRun
    collectOcoe(const cminer::workload::SyntheticBenchmark &benchmark,
                const std::vector<cminer::pmu::EventId> &events,
                cminer::util::Rng &rng,
                const cminer::workload::SparkConfig &config = {});

    /**
     * Cover an arbitrary event list with OCOE: one *separate run* per
     * counter-sized group (the cost the paper's Fig. 15 quantifies).
     */
    std::vector<CollectedRun>
    collectOcoePlan(const cminer::workload::SyntheticBenchmark &benchmark,
                    const std::vector<cminer::pmu::EventId> &events,
                    cminer::util::Rng &rng,
                    const cminer::workload::SparkConfig &config = {});

    /**
     * One MLPX run multiplexing all requested events onto the counters.
     */
    CollectedRun
    collectMlpx(const cminer::workload::SyntheticBenchmark &benchmark,
                const std::vector<cminer::pmu::EventId> &events,
                cminer::util::Rng &rng,
                const cminer::workload::SparkConfig &config = {},
                cminer::pmu::RotationPolicy policy =
                    cminer::pmu::RotationPolicy::RoundRobin);

    /**
     * Recoverable MLPX collection: sampler-launch and store transients
     * are retried with backoff; damage that still prevents recording
     * (exhausted retries, unstorable series) comes back as a Status so
     * the caller can quarantine the run and continue.
     */
    cminer::util::StatusOr<CollectedRun>
    tryCollectMlpx(const cminer::workload::SyntheticBenchmark &benchmark,
                   const std::vector<cminer::pmu::EventId> &events,
                   cminer::util::Rng &rng,
                   const cminer::workload::SparkConfig &config = {},
                   cminer::pmu::RotationPolicy policy =
                       cminer::pmu::RotationPolicy::RoundRobin);

    /**
     * MLPX-measure an externally produced trace (e.g. a co-located
     * composition) and record it under the given program/suite names.
     */
    CollectedRun
    collectMlpxFromTrace(const cminer::pmu::TrueTrace &trace,
                         const std::string &program,
                         const std::string &suite,
                         const std::vector<cminer::pmu::EventId> &events,
                         cminer::util::Rng &rng);

    /** Recoverable flavour of collectMlpxFromTrace. */
    cminer::util::StatusOr<CollectedRun>
    tryCollectMlpxFromTrace(const cminer::pmu::TrueTrace &trace,
                            const std::string &program,
                            const std::string &suite,
                            const std::vector<cminer::pmu::EventId>
                                &events,
                            cminer::util::Rng &rng);

    /** OCOE-measure an externally produced trace. */
    CollectedRun
    collectOcoeFromTrace(const cminer::pmu::TrueTrace &trace,
                         const std::string &program,
                         const std::string &suite,
                         const std::vector<cminer::pmu::EventId> &events,
                         cminer::util::Rng &rng);

  private:
    cminer::util::StatusOr<CollectedRun>
    tryRecord(const std::string &program, const std::string &suite,
              const std::string &mode, const cminer::pmu::TrueTrace &trace,
              std::vector<cminer::ts::TimeSeries> series,
              cminer::util::Rng &rng);

    CollectedRun record(const std::string &program,
                        const std::string &suite, const std::string &mode,
                        const cminer::pmu::TrueTrace &trace,
                        std::vector<cminer::ts::TimeSeries> series,
                        cminer::util::Rng &rng);

    /** Retry `attempt` against injected transients, tracking counts. */
    cminer::util::Status
    withTransientRetry(const std::function<cminer::util::Status()>
                           &attempt);

    cminer::store::Database &db_;
    const cminer::pmu::EventCatalog &catalog_;
    std::unique_ptr<cminer::pmu::SamplerBackend> backend_;
    cminer::util::FaultInjector *injector_ = nullptr;
    cminer::util::RetryOptions retryOptions_;
    cminer::util::RecordingClock retryClock_;
    cminer::util::Rng retryRng_{0xC011EC7ULL};
    std::size_t transientRetries_ = 0;
};

} // namespace cminer::core

#endif // CMINER_CORE_COLLECTOR_H

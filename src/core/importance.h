/**
 * @file
 * The importance ranker (paper Section III-C).
 *
 * Builds the performance model IPC = perf(e1..en) with SGBRT, quantifies
 * each event's Friedman relative influence (Eqs. 10-11), then runs EIR —
 * Event Importance Refinement: repeatedly drop the 10 least important
 * events and retrain, tracking held-out model error (Eq. 14), until the
 * Most Accurate Performance Model (MAPM) is found. The ranking reported
 * is the MAPM's.
 */

#ifndef CMINER_CORE_IMPORTANCE_H
#define CMINER_CORE_IMPORTANCE_H

#include <string>
#include <vector>

#include "core/collector.h"
#include "ml/dataset_view.h"
#include "ml/gbrt.h"
#include "pmu/event.h"
#include "util/rng.h"

namespace cminer::core {

/** EIR policy knobs. */
struct ImportanceOptions
{
    cminer::ml::GbrtParams gbrt;
    /** Events dropped per EIR iteration (paper: 10). */
    std::size_t dropPerIteration = 10;
    /** Stop EIR once this few events remain. */
    std::size_t minEvents = 19;
    /** Train fraction; the paper evaluates on m/4 unseen examples. */
    double trainFraction = 0.8;
    /**
     * Cross-validation folds per EIR iteration. 1 (the paper's
     * protocol) trains a single model on one shuffled train/test split;
     * >= 2 trains that many k-fold models — concurrently on the thread
     * pool, each fold with its own Rng stream seeded deterministically
     * from the parent seed — and averages errors and importances in
     * fold order, so the result is bit-identical for any thread count.
     */
    std::size_t cvFolds = 1;
    /**
     * Early stop: end the loop after this many consecutive iterations
     * without improving on the best error ("repeat several times until
     * the MAPM is found"). 0 disables early stopping and the loop runs
     * down to minEvents.
     */
    std::size_t earlyStopPatience = 0;
};

/** One point of the EIR error curve (paper Fig. 8). */
struct EirPoint
{
    std::size_t eventCount = 0;
    double testErrorPercent = 0.0; ///< MAPE on held-out rows (Eq. 14)
};

/** Outcome of an EIR run. */
struct ImportanceResult
{
    /** Error curve over the refinement iterations. */
    std::vector<EirPoint> curve;
    /** Ranking (normalized to 100%) from the most accurate model. */
    std::vector<cminer::ml::FeatureImportance> ranking;
    /** Held-out error of the MAPM. */
    double mapmErrorPercent = 0.0;
    /** Number of input events of the MAPM. */
    std::size_t mapmEventCount = 0;
    /** Feature names of the MAPM (for retraining downstream models). */
    std::vector<std::string> mapmFeatures;
};

/**
 * Quantifies, ranks, and prunes events by importance.
 */
class ImportanceRanker
{
  public:
    explicit ImportanceRanker(ImportanceOptions options = {});

    /** Options in effect. */
    const ImportanceOptions &options() const { return options_; }

    /**
     * Assemble the training dataset from collected (and ideally cleaned)
     * runs: one row per sampling interval, one feature per event (named
     * by the event's paper abbreviation), target = measured IPC.
     *
     * All runs must have measured the same event list.
     */
    static cminer::ml::Dataset
    buildDataset(const std::vector<CollectedRun> &runs,
                 const cminer::pmu::EventCatalog &catalog);

    /**
     * Assemble the same dataset straight from the store: feature
     * columns are filled from the runs' level-2 table column spans
     * (zero intermediate TimeSeries copies). All runs must have
     * measured the same event list, with the IPC series last.
     */
    static cminer::ml::Dataset
    buildDatasetFromStore(const cminer::store::Database &db,
                          const std::vector<cminer::store::RunId> &ids,
                          const cminer::pmu::EventCatalog &catalog);

    /**
     * One SGBRT fit: ranking plus held-out error, no refinement.
     */
    std::pair<std::vector<cminer::ml::FeatureImportance>, double>
    fitOnce(const cminer::ml::DatasetView &data,
            cminer::util::Rng &rng) const;

    /**
     * Full EIR loop.
     *
     * @param data dataset over the complete event list
     * @param rng split/subsample randomness
     */
    ImportanceResult run(const cminer::ml::Dataset &data,
                         cminer::util::Rng &rng) const;

    /**
     * Train the MAPM model itself (SGBRT on the MAPM feature set) — the
     * performance oracle the interaction ranker needs.
     */
    cminer::ml::Gbrt trainMapm(const cminer::ml::Dataset &data,
                               const ImportanceResult &result,
                               cminer::util::Rng &rng) const;

  private:
    ImportanceOptions options_;
};

} // namespace cminer::core

#endif // CMINER_CORE_IMPORTANCE_H

#include "core/error_metrics.h"

#include <cmath>

#include "util/error.h"

namespace cminer::core {

MlpxErrorResult
mlpxError(const cminer::ts::TimeSeries &ocoe1,
          const cminer::ts::TimeSeries &ocoe2,
          const cminer::ts::TimeSeries &mlpx,
          const cminer::ts::DtwOptions &options)
{
    CM_ASSERT(!ocoe1.empty() && !ocoe2.empty() && !mlpx.empty());
    MlpxErrorResult result;
    result.distRef = cminer::ts::dtwDistance(ocoe1, ocoe2, options);
    result.distMea = cminer::ts::dtwDistance(mlpx, ocoe1, options);
    if (result.distMea <= 0.0) {
        // A zero measured distance means MLPX matched OCOE exactly; by
        // Eq. 4's intent, the error is then zero.
        result.errorPercent = 0.0;
        return result;
    }
    result.errorPercent =
        std::abs(1.0 - result.distRef / result.distMea) * 100.0;
    return result;
}

} // namespace cminer::core

#include "core/baselines.h"

#include <algorithm>

#include "util/error.h"

namespace cminer::core {

using cminer::ts::TimeSeries;

namespace {

/** Interpolate zeros within values[first, last). */
std::size_t
interpolateRange(std::vector<double> &values, std::size_t first,
                 std::size_t last)
{
    // Observed indices within the range.
    std::vector<std::size_t> observed;
    for (std::size_t i = first; i < last; ++i) {
        if (values[i] != 0.0)
            observed.push_back(i);
    }
    if (observed.empty())
        return 0;

    std::size_t repaired = 0;
    std::size_t next_obs = 0;
    for (std::size_t i = first; i < last; ++i) {
        if (values[i] != 0.0)
            continue;
        while (next_obs < observed.size() && observed[next_obs] < i)
            ++next_obs;
        if (next_obs == 0) {
            values[i] = values[observed.front()]; // leading zeros
        } else if (next_obs == observed.size()) {
            values[i] = values[observed.back()]; // trailing zeros
        } else {
            const std::size_t lo = observed[next_obs - 1];
            const std::size_t hi = observed[next_obs];
            const double frac = static_cast<double>(i - lo) /
                                static_cast<double>(hi - lo);
            values[i] = values[lo] * (1.0 - frac) + values[hi] * frac;
        }
        ++repaired;
    }
    return repaired;
}

} // namespace

std::size_t
mathurInterpolate(TimeSeries &series)
{
    if (series.empty())
        return 0;
    auto &values = series.mutableValues();
    return interpolateRange(values, 0, values.size());
}

std::size_t
mathurInterpolateBlocked(TimeSeries &series, std::size_t block_size)
{
    CM_ASSERT(block_size >= 2);
    if (series.empty())
        return 0;
    auto &values = series.mutableValues();
    std::size_t repaired = 0;
    for (std::size_t start = 0; start < values.size();
         start += block_size) {
        const std::size_t end =
            std::min(start + block_size, values.size());
        repaired += interpolateRange(values, start, end);
    }
    // Blocks that were entirely unobserved: fall back to a global pass.
    bool any_zero = false;
    for (double v : values) {
        if (v == 0.0) {
            any_zero = true;
            break;
        }
    }
    if (any_zero)
        repaired += interpolateRange(values, 0, values.size());
    return repaired;
}

} // namespace cminer::core

#include "core/counterminer.h"

#include "util/error.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace cminer::core {

using cminer::util::Rng;

CounterMiner::CounterMiner(cminer::store::Database &db,
                           const cminer::pmu::EventCatalog &catalog,
                           ProfileOptions options)
    : db_(db),
      catalog_(catalog),
      options_(std::move(options)),
      collector_(db, catalog, options_.pmu)
{
    if (options_.events.empty())
        options_.events = catalog_.programmableEvents();
    CM_ASSERT(options_.mlpxRuns >= 1);
}

ProfileReport
CounterMiner::runPipeline(std::vector<CollectedRun> runs,
                          const std::string &program, Rng &rng)
{
    ProfileReport report;
    report.benchmark = program;

    // Clean every run's event series (never the IPC series: the fixed
    // counters are not multiplexed).
    if (!options_.skipCleaning) {
        const DataCleaner cleaner(options_.cleaner);
        for (std::size_t r = 0; r < runs.size(); ++r) {
            auto &series = runs[r].series;
            std::vector<SeriesCleanReport> reports;
            for (std::size_t s = 0; s + 1 < series.size(); ++s)
                reports.push_back(cleaner.clean(series[s]));
            if (r == 0)
                report.cleaning = std::move(reports);
        }
    }

    const ImportanceRanker ranker(options_.importance);
    const auto data = ImportanceRanker::buildDataset(runs, catalog_);
    util::inform(util::format(
        "counterminer: %s dataset has %zu rows x %zu events",
        program.c_str(), data.rowCount(), data.featureCount()));

    report.importance = ranker.run(data, rng);
    for (std::size_t i = 0;
         i < std::min<std::size_t>(10, report.importance.ranking.size());
         ++i)
        report.topEvents.push_back(report.importance.ranking[i]);

    // Interactions among the top events, through the MAPM oracle.
    const auto mapm_data = data.project(report.importance.mapmFeatures);
    const auto mapm = ranker.trainMapm(data, report.importance, rng);
    std::vector<std::string> top_names;
    for (const auto &fi : report.topEvents)
        top_names.push_back(fi.feature);
    const InteractionRanker interaction(options_.interaction);
    report.interactions =
        interaction.rankTopEvents(mapm, mapm_data, top_names);
    return report;
}

ProfileReport
CounterMiner::profile(const cminer::workload::SyntheticBenchmark &benchmark,
                      Rng &rng,
                      const cminer::workload::SparkConfig &config)
{
    std::vector<CollectedRun> runs;
    runs.reserve(options_.mlpxRuns);
    for (std::size_t r = 0; r < options_.mlpxRuns; ++r)
        runs.push_back(collector_.collectMlpx(benchmark, options_.events,
                                              rng, config));
    return runPipeline(std::move(runs), benchmark.name(), rng);
}

ProfileReport
CounterMiner::profileTraces(
    const std::vector<cminer::pmu::TrueTrace> &traces,
    const std::string &program, const std::string &suite, Rng &rng)
{
    CM_ASSERT(!traces.empty());
    std::vector<CollectedRun> runs;
    runs.reserve(traces.size());
    for (const auto &trace : traces)
        runs.push_back(collector_.collectMlpxFromTrace(
            trace, program, suite, options_.events, rng));
    return runPipeline(std::move(runs), program, rng);
}

} // namespace cminer::core

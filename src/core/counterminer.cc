#include "core/counterminer.h"

#include <span>

#include "util/error.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace cminer::core {

using cminer::util::Rng;
using cminer::util::Status;

std::string
PipelineIngestSummary::toString() const
{
    std::string out = util::format(
        "ingest: %zu/%zu runs good, %zu quarantined, %zu transient "
        "retries (%.1f ms backoff), injected faults: %s",
        goodRuns, attemptedRuns, quarantined.size(), transientRetries,
        retryDelayMs, injected.toString().c_str());
    for (const auto &q : quarantined)
        out += util::format("\n  quarantined run %zu: %s", q.attempt,
                            q.reason.c_str());
    return out;
}

CounterMiner::CounterMiner(cminer::store::Database &db,
                           const cminer::pmu::EventCatalog &catalog,
                           ProfileOptions options)
    : db_(db),
      catalog_(catalog),
      options_(std::move(options)),
      collector_(db, catalog,
                 makeSamplerBackend(options_.backend, catalog,
                                    options_.pmu))
{
    if (options_.events.empty())
        options_.events = catalog_.programmableEvents();
    CM_ASSERT(options_.mlpxRuns >= 1);
    CM_ASSERT(options_.maxBadFraction >= 0.0 &&
              options_.maxBadFraction <= 1.0);
    collector_.setFaultInjector(options_.injector);
    collector_.setRetryOptions(options_.retry);
}

void
CounterMiner::quarantine(PipelineIngestSummary &ingest,
                         std::size_t attempt, const Status &status)
{
    ingest.quarantined.push_back({attempt, status.toString()});
    util::count("collector.runs_quarantined");
    util::warn(util::format("counterminer: quarantined run %zu: %s",
                            attempt, status.toString().c_str()));
    if (ingest.quarantined.size() > options_.maxBadRuns) {
        util::fatal(util::format(
            "counterminer: %zu bad runs exceed --max-bad-runs %zu; "
            "last failure: %s",
            ingest.quarantined.size(), options_.maxBadRuns,
            status.toString().c_str()));
    }
}

void
CounterMiner::finishCollection(PipelineIngestSummary &ingest,
                               std::size_t good_runs)
{
    ingest.goodRuns = good_runs;
    if (good_runs == 0) {
        util::fatal("counterminer: every collection attempt failed; " +
                    ingest.toString());
    }
    const double bad_fraction =
        static_cast<double>(ingest.quarantined.size()) /
        static_cast<double>(ingest.attemptedRuns);
    if (!ingest.quarantined.empty() &&
        bad_fraction > options_.maxBadFraction) {
        util::fatal(util::format(
            "counterminer: %.0f%% of runs were quarantined, above the "
            "%.0f%% bad-fraction bound; the input is too damaged to "
            "mine",
            bad_fraction * 100.0, options_.maxBadFraction * 100.0));
    }
    ingest.transientRetries = collector_.transientRetries();
    ingest.retryDelayMs = collector_.retryDelayMs();
    if (options_.injector != nullptr)
        ingest.injected = options_.injector->counts();
    if (!ingest.quarantined.empty() || ingest.transientRetries > 0)
        util::inform("counterminer: " + ingest.toString());
}

ProfileReport
CounterMiner::runPipeline(std::vector<CollectedRun> runs,
                          const std::string &program, Rng &rng)
{
    ProfileReport report;
    report.benchmark = program;

    // Assemble the dataset straight from the runs' level-2 store
    // tables: feature columns fill from contiguous column spans, no
    // per-run TimeSeries round-trip.
    std::vector<cminer::store::RunId> ids;
    ids.reserve(runs.size());
    for (const auto &run : runs)
        ids.push_back(run.id);

    const ImportanceRanker ranker(options_.importance);
    auto data = [&] {
        util::Span span("dataset");
        auto built =
            ImportanceRanker::buildDatasetFromStore(db_, ids, catalog_);
        span.number("rows", static_cast<double>(built.rowCount()));
        span.number("events",
                    static_cast<double>(built.featureCount()));
        return built;
    }();

    // Clean every event column in place, one per-run segment at a time
    // (never the IPC target: the fixed counters are not multiplexed).
    // The dataset rows are run-major, so run r's samples of feature f
    // are one contiguous segment of column f. Segments are independent
    // — each task owns its own slice and report slot — so the columns
    // fan out across the pool with bit-identical results.
    if (!options_.skipCleaning) {
        util::Span span("clean");
        span.number("runs", static_cast<double>(runs.size()));
        const DataCleaner cleaner(options_.cleaner);
        const auto &events = db_.runInfo(ids.front()).events;
        std::vector<std::size_t> lengths;
        lengths.reserve(ids.size());
        for (const auto id : ids)
            lengths.push_back(db_.seriesLength(id));
        report.cleaning.resize(data.featureCount());
        cminer::util::parallelFor(
            0, data.featureCount(), 1,
            [&](std::size_t lo, std::size_t hi) {
                for (std::size_t f = lo; f < hi; ++f) {
                    const std::span<double> column =
                        data.mutableColumn(f);
                    std::size_t offset = 0;
                    for (std::size_t r = 0; r < lengths.size(); ++r) {
                        auto segment =
                            column.subspan(offset, lengths[r]);
                        auto cleaned =
                            cleaner.cleanValues(events[f], segment);
                        if (r == 0)
                            report.cleaning[f] = std::move(cleaned);
                        offset += lengths[r];
                    }
                }
            });
    }
    util::inform(util::format(
        "counterminer: %s dataset has %zu rows x %zu events",
        program.c_str(), data.rowCount(), data.featureCount()));

    report.importance = ranker.run(data, rng);
    for (std::size_t i = 0;
         i < std::min<std::size_t>(10, report.importance.ranking.size());
         ++i)
        report.topEvents.push_back(report.importance.ranking[i]);

    // Interactions among the top events, through the MAPM oracle. The
    // MAPM's feature subset is a column-mask view, not a copy.
    const ml::DatasetView mapm_view =
        ml::DatasetView(data).withFeatures(report.importance.mapmFeatures);
    auto mapm = [&] {
        util::Span span("mapm");
        span.number("events",
                    static_cast<double>(
                        report.importance.mapmFeatures.size()));
        return ranker.trainMapm(data, report.importance, rng);
    }();
    std::vector<std::string> top_names;
    for (const auto &fi : report.topEvents)
        top_names.push_back(fi.feature);
    const InteractionRanker interaction(options_.interaction);
    report.interactions =
        interaction.rankTopEvents(mapm, mapm_view, top_names);
    report.mapmModel = std::move(mapm);
    return report;
}

ProfileReport
CounterMiner::profile(const cminer::workload::SyntheticBenchmark &benchmark,
                      Rng &rng,
                      const cminer::workload::SparkConfig &config)
{
    util::Span span("profile");
    span.label("benchmark", benchmark.name());
    PipelineIngestSummary ingest;
    std::vector<CollectedRun> runs;
    runs.reserve(options_.mlpxRuns);
    {
        util::Span collect("collect");
        collect.number("runs",
                       static_cast<double>(options_.mlpxRuns));
        for (std::size_t r = 0; r < options_.mlpxRuns; ++r) {
            ++ingest.attemptedRuns;
            auto result = collector_.tryCollectMlpx(benchmark,
                                                    options_.events, rng,
                                                    config);
            if (result.ok())
                runs.push_back(std::move(result).value());
            else
                quarantine(ingest, r, result.status());
        }
    }
    finishCollection(ingest, runs.size());
    ProfileReport report =
        runPipeline(std::move(runs), benchmark.name(), rng);
    report.ingest = std::move(ingest);
    return report;
}

ProfileReport
CounterMiner::profileTraces(
    const std::vector<cminer::pmu::TrueTrace> &traces,
    const std::string &program, const std::string &suite, Rng &rng)
{
    CM_ASSERT(!traces.empty());
    util::Span span("profile");
    span.label("benchmark", program);
    PipelineIngestSummary ingest;
    std::vector<CollectedRun> runs;
    runs.reserve(traces.size());
    {
        util::Span collect("collect");
        collect.number("runs", static_cast<double>(traces.size()));
        for (std::size_t t = 0; t < traces.size(); ++t) {
            ++ingest.attemptedRuns;
            auto result = collector_.tryCollectMlpxFromTrace(
                traces[t], program, suite, options_.events, rng);
            if (result.ok())
                runs.push_back(std::move(result).value());
            else
                quarantine(ingest, t, result.status());
        }
    }
    finishCollection(ingest, runs.size());
    ProfileReport report = runPipeline(std::move(runs), program, rng);
    report.ingest = std::move(ingest);
    return report;
}

} // namespace cminer::core

/**
 * @file
 * The CounterMiner facade: the full pipeline of Fig. 4 — collect
 * (MLPX) -> clean -> rank importance (EIR) -> rank interactions — behind
 * one call.
 */

#ifndef CMINER_CORE_COUNTERMINER_H
#define CMINER_CORE_COUNTERMINER_H

#include <string>
#include <vector>

#include "core/cleaner.h"
#include "core/collector.h"
#include "core/importance.h"
#include "core/interaction.h"
#include "ml/dataset.h"
#include "pmu/event.h"
#include "store/database.h"
#include "util/fault_injection.h"
#include "util/retry.h"
#include "util/rng.h"
#include "workload/benchmark.h"

namespace cminer::core {

/** End-to-end pipeline options. */
struct ProfileOptions
{
    /** Events to profile. Empty = all programmable catalog events. */
    std::vector<cminer::pmu::EventId> events;
    /** MLPX runs collected per benchmark (more runs, more rows). */
    std::size_t mlpxRuns = 3;
    cminer::pmu::PmuConfig pmu;
    /**
     * How counters are measured (DESIGN.md §16). Perf probes the host
     * at collector construction and falls back to Sim with a logged,
     * metric-counted reason when hardware counters are unavailable.
     */
    cminer::pmu::BackendKind backend = cminer::pmu::BackendKind::Sim;
    CleanerOptions cleaner;
    ImportanceOptions importance;
    InteractionOptions interaction;
    /** Skip the cleaning stage (ablation). */
    bool skipCleaning = false;

    /**
     * Quarantine budget: how many bad runs may be recorded-and-skipped
     * before the job aborts. 0 preserves the legacy posture (the first
     * unrecoverable run failure is fatal).
     */
    std::size_t maxBadRuns = 0;
    /**
     * Graceful-degradation bound: abort when more than this fraction
     * of attempted runs was quarantined (only checked once maxBadRuns
     * allows quarantining at all).
     */
    double maxBadFraction = 0.5;
    /** Backoff policy for transient collection/store failures. */
    cminer::util::RetryOptions retry;
    /** Fault injector wired into the collector (not owned; may be null). */
    cminer::util::FaultInjector *injector = nullptr;
};

/** One run the pipeline recorded, skipped, and kept going without. */
struct QuarantinedRun
{
    /** 0-based collection attempt the run failed on. */
    std::size_t attempt = 0;
    /** The Status string explaining the quarantine. */
    std::string reason;
};

/** What ingestion survived: the pipeline-level fault accounting. */
struct PipelineIngestSummary
{
    /** Collection attempts made. */
    std::size_t attemptedRuns = 0;
    /** Runs that made it into the dataset. */
    std::size_t goodRuns = 0;
    /** Runs recorded, skipped, and summarized instead of fatal. */
    std::vector<QuarantinedRun> quarantined;
    /** Transient failures absorbed by retry-with-backoff. */
    std::size_t transientRetries = 0;
    /** Total (simulated) backoff delay across those retries. */
    double retryDelayMs = 0.0;
    /** Faults dealt by the attached injector, when one is wired. */
    cminer::util::FaultCounts injected;

    /** Multi-line human-readable summary; deterministic per seed+spec. */
    std::string toString() const;
};

/** Everything the pipeline produced for one benchmark. */
struct ProfileReport
{
    std::string benchmark;
    /** Per-series cleaning summary of the first run. */
    std::vector<SeriesCleanReport> cleaning;
    ImportanceResult importance;
    InteractionResult interactions;
    /** Events of the top-10 importance list (paper figure format). */
    std::vector<cminer::ml::FeatureImportance> topEvents;
    /** Fault-tolerance accounting for the collection stage. */
    PipelineIngestSummary ingest;
    /**
     * The trained MAPM ensemble (the model the interaction ranker
     * queried) — what `mapm --model-out` checkpoints for later
     * `predict` serving.
     */
    cminer::ml::Gbrt mapmModel;
};

/**
 * Drives the full CounterMiner workflow against the simulated cluster.
 */
class CounterMiner
{
  public:
    /**
     * @param db database runs are recorded into
     * @param catalog event catalog
     * @param options pipeline options
     */
    CounterMiner(cminer::store::Database &db,
                 const cminer::pmu::EventCatalog &catalog,
                 ProfileOptions options = {});

    /** Options in effect. */
    const ProfileOptions &options() const { return options_; }

    /**
     * Profile one benchmark end to end.
     *
     * @param benchmark workload to profile
     * @param rng run + model randomness
     * @param config Spark configuration for the runs
     */
    ProfileReport profile(const cminer::workload::SyntheticBenchmark
                              &benchmark,
                          cminer::util::Rng &rng,
                          const cminer::workload::SparkConfig &config = {});

    /**
     * Profile an externally composed trace generator (co-location): the
     * caller supplies the traces, the pipeline does the rest.
     */
    ProfileReport
    profileTraces(const std::vector<cminer::pmu::TrueTrace> &traces,
                  const std::string &program, const std::string &suite,
                  cminer::util::Rng &rng);

  private:
    ProfileReport runPipeline(std::vector<CollectedRun> runs,
                              const std::string &program,
                              cminer::util::Rng &rng);

    /** Record a failed run; fatal once the quarantine budget runs out. */
    void quarantine(PipelineIngestSummary &ingest, std::size_t attempt,
                    const cminer::util::Status &status);

    /** Close out collection: degradation bounds + summary bookkeeping. */
    void finishCollection(PipelineIngestSummary &ingest,
                          std::size_t good_runs);

    cminer::store::Database &db_;
    const cminer::pmu::EventCatalog &catalog_;
    ProfileOptions options_;
    DataCollector collector_;
};

} // namespace cminer::core

#endif // CMINER_CORE_COUNTERMINER_H

/**
 * @file
 * The data cleaner (paper Section III-B): repairs MLPX damage *after*
 * sampling — complementary to scheduling-time approaches.
 *
 * Outliers: values above `mean + n*std` (Eq. 6), with n chosen as the
 * smallest candidate keeping >= 99% of the data inside (Table I; the
 * paper lands on n = 5). A detected outlier is replaced by the median of
 * the value interval it falls into, with interval length Eq. 7 — computed
 * over the non-outlying values so the replacement is a plausible level.
 *
 * Missing values: MLPX reports zero for intervals it never observed. A
 * zero is kept only when the series could genuinely be zero there (min
 * == 0 and max < 0.01); every other zero is treated as missing and
 * imputed by temporal KNN regression with k = 5.
 *
 * Damaged input: NaN/Inf samples (tool noise, fault injection) and
 * negative counts are treated as missing values and routed through the
 * same KNN imputation — and they are excluded from every mean/std/
 * histogram computation so one poisoned sample cannot corrupt the
 * outlier thresholds for the rest of the series.
 */

#ifndef CMINER_CORE_CLEANER_H
#define CMINER_CORE_CLEANER_H

#include <span>
#include <string>
#include <vector>

#include "ts/time_series.h"

namespace cminer::core {

/** Cleaning policy knobs (defaults follow the paper). */
struct CleanerOptions
{
    /** Required fraction of data inside the outlier threshold. */
    double coverageTarget = 0.99;
    /** Candidate n values for Eq. 6, tried in order. */
    std::vector<double> thresholdCandidates = {3.0, 4.0, 5.0, 6.0, 7.0,
                                               8.0};
    /** KNN neighborhood for missing-value imputation. */
    std::size_t knnK = 5;
    /** A zero is a true zero only when the series max stays below this. */
    double trueZeroMax = 0.01;
    /** Stage toggles (for the ablation benches). */
    bool replaceOutliers = true;
    bool fillMissing = true;
    /** Run missing-value filling before outlier replacement. */
    bool missingFirst = false;
};

/** What the cleaner did to one series. */
struct SeriesCleanReport
{
    std::string event;
    std::size_t outliersReplaced = 0;
    std::size_t missingFilled = 0;
    /** NaN/Inf inputs routed through the missing-value imputation. */
    std::size_t nonFiniteRepaired = 0;
    std::size_t trueZerosKept = 0;
    double thresholdN = 0.0;   ///< the n actually used in Eq. 6
    double threshold = 0.0;    ///< mean + n*std
    std::string distribution;  ///< best-fit family ("normal", "gev", ...)
};

/**
 * Cleans event time series in place.
 */
class DataCleaner
{
  public:
    explicit DataCleaner(CleanerOptions options = {});

    /** Options in effect. */
    const CleanerOptions &options() const { return options_; }

    /** Clean one series in place and report what changed. */
    SeriesCleanReport clean(cminer::ts::TimeSeries &series) const;

    /**
     * Clean one event's samples in place, wherever they live — a
     * TimeSeries buffer or a dataset column segment. The span-based
     * core the other entry points delegate to.
     */
    SeriesCleanReport cleanValues(const std::string &event,
                                  std::span<double> values) const;

    /** Clean a batch of series in place. */
    std::vector<SeriesCleanReport>
    cleanAll(std::vector<cminer::ts::TimeSeries> &series) const;

    /**
     * The smallest candidate n whose threshold keeps `coverageTarget` of
     * the data inside (Table I); the largest candidate when none does.
     */
    double chooseThresholdN(std::span<const double> values) const;

  private:
    std::size_t replaceOutliers(std::span<double> values,
                                SeriesCleanReport &report) const;
    void fillMissing(std::span<double> values,
                     SeriesCleanReport &report) const;

    CleanerOptions options_;
};

} // namespace cminer::core

#endif // CMINER_CORE_CLEANER_H

/**
 * @file
 * Sampling-time error-reduction baselines the paper compares against.
 *
 * Mathur & Cook ("Toward accurate performance evaluation using hardware
 * counters", 2003) estimate the unsampled stretches of an event by
 * linear interpolation between observed samples. CounterMiner argues for
 * cleaning *after* sampling instead; these baselines let the benches put
 * both on the same axis (and show they compose).
 */

#ifndef CMINER_CORE_BASELINES_H
#define CMINER_CORE_BASELINES_H

#include <cstddef>

#include "ts/time_series.h"

namespace cminer::core {

/**
 * Mathur-style estimation: replace zero (unobserved) samples by linear
 * interpolation between the nearest observed neighbors. Leading/trailing
 * zeros copy the nearest observed value. A series with no observed
 * samples is left unchanged.
 *
 * @param series repaired in place
 * @return number of samples interpolated
 */
std::size_t mathurInterpolate(cminer::ts::TimeSeries &series);

/**
 * Sub-interval variant: interpolate in fixed-size blocks, holding each
 * block's endpoints (Mathur & Cook's refinement that finer-grained
 * interpolation improves accuracy). With block_size >= the series
 * length it degenerates to mathurInterpolate.
 *
 * @param series repaired in place
 * @param block_size samples per interpolation block (>= 2)
 * @return number of samples interpolated
 */
std::size_t mathurInterpolateBlocked(cminer::ts::TimeSeries &series,
                                     std::size_t block_size);

} // namespace cminer::core

#endif // CMINER_CORE_BASELINES_H

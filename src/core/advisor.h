/**
 * @file
 * The optimization advisor: turns an importance ranking into the
 * cross-layer guidance the paper draws in Section V-B — e.g. a dominant
 * RESOURCE_STALLS.IQ_FULL points at enlarging the instruction queue
 * (architecture) and at reducing bursty dispatch (application); remote
 * events point at NUMA placement; TLB events at huge pages.
 */

#ifndef CMINER_CORE_ADVISOR_H
#define CMINER_CORE_ADVISOR_H

#include <string>
#include <vector>

#include "ml/gbrt.h"
#include "pmu/event.h"

namespace cminer::core {

/** One piece of advice derived from an important event. */
struct Recommendation
{
    std::string event;        ///< abbreviation driving the advice
    double importance = 0.0;  ///< the event's importance percentage
    std::string layer;        ///< "architecture", "system", "application"
    std::string advice;       ///< human-readable action
};

/**
 * Derive optimization recommendations from a top-events ranking.
 *
 * @param top_events importance ranking entries (feature = abbreviation)
 * @param catalog event catalog for category lookup
 * @param min_importance only events at or above this share get advice
 */
std::vector<Recommendation>
advise(const std::vector<cminer::ml::FeatureImportance> &top_events,
       const cminer::pmu::EventCatalog &catalog,
       double min_importance = 2.0);

} // namespace cminer::core

#endif // CMINER_CORE_ADVISOR_H

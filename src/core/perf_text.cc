#include "core/perf_text.h"

#include <cmath>
#include <map>

#include "util/error.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace cminer::core {

using cminer::ts::TimeSeries;
using cminer::util::Status;
using cminer::util::StatusOr;

std::size_t
IngestReport::damaged() const
{
    return malformedLines + badTimestamps + nonMonotonic +
           duplicateSamples + nonFiniteCounts + truncatedLines;
}

void
IngestReport::merge(const IngestReport &other)
{
    totalLines += other.totalLines;
    parsedSamples += other.parsedSamples;
    malformedLines += other.malformedLines;
    badTimestamps += other.badTimestamps;
    nonMonotonic += other.nonMonotonic;
    duplicateSamples += other.duplicateSamples;
    nonFiniteCounts += other.nonFiniteCounts;
    truncatedLines += other.truncatedLines;
    paddedSamples += other.paddedSamples;
}

std::string
IngestReport::toString() const
{
    return util::format(
        "lines=%zu parsed=%zu malformed=%zu bad_ts=%zu non_monotonic=%zu "
        "duplicates=%zu non_finite=%zu truncated=%zu padded=%zu",
        totalLines, parsedSamples, malformedLines, badTimestamps,
        nonMonotonic, duplicateSamples, nonFiniteCounts, truncatedLines,
        paddedSamples);
}

std::string
renderPerfIntervals(const std::vector<TimeSeries> &series)
{
    CM_ASSERT(!series.empty());
    const std::size_t length = series.front().size();
    const double interval_ms = series.front().intervalMs();
    for (const auto &s : series) {
        if (s.size() != length)
            util::fatal("perf_text: series length mismatch");
    }

    std::string out = "# time,counts,event\n";
    for (std::size_t t = 0; t < length; ++t) {
        const double time_s =
            static_cast<double>(t + 1) * interval_ms / 1000.0;
        for (const auto &s : series) {
            out += util::format("%.6f,", time_s);
            const double value = s.at(t);
            if (value == 0.0)
                out += "<not counted>";
            else
                out += util::format("%.2f", value);
            out += ",";
            out += s.eventName();
            out += "\n";
        }
    }
    return out;
}

namespace {

/** One event's cells, grown lazily as new intervals appear. */
struct EventCells
{
    std::vector<double> values;
    std::vector<char> seen;

    void
    growTo(std::size_t intervals)
    {
        if (values.size() < intervals) {
            values.resize(intervals, 0.0);
            seen.resize(intervals, 0);
        }
    }
};

Status
lineError(std::size_t line_no, const std::string &what)
{
    return Status::parseError(
        util::format("perf_text: line %zu: ", line_no) + what);
}

/**
 * Mirror one parse's IngestReport deltas into the metrics registry.
 * Callers may pass an accumulating report, so the wired values are the
 * difference against the entry snapshot — the counters then reconcile
 * exactly with the per-file report totals.
 */
void
addIngestMetrics(const IngestReport &before, const IngestReport &after)
{
    using cminer::util::count;
    count("ingest.lines_total", after.totalLines - before.totalLines);
    count("ingest.samples_parsed",
          after.parsedSamples - before.parsedSamples);
    count("ingest.malformed_lines",
          after.malformedLines - before.malformedLines);
    count("ingest.bad_timestamps",
          after.badTimestamps - before.badTimestamps);
    count("ingest.non_monotonic",
          after.nonMonotonic - before.nonMonotonic);
    count("ingest.duplicate_samples",
          after.duplicateSamples - before.duplicateSamples);
    count("ingest.non_finite_counts",
          after.nonFiniteCounts - before.nonFiniteCounts);
    count("ingest.truncated_lines",
          after.truncatedLines - before.truncatedLines);
    count("ingest.samples_padded",
          after.paddedSamples - before.paddedSamples);
    count("ingest.lines_dropped", after.damaged() - before.damaged());
    count("ingest.files_parsed");
}

} // namespace

StatusOr<std::vector<TimeSeries>>
parsePerfIntervals(const std::string &text,
                   const PerfParseOptions &options, IngestReport &report)
{
    const IngestReport entry_snapshot = report;
    std::vector<std::string> order;
    std::map<std::string, std::size_t> event_index;
    std::vector<EventCells> cells;
    std::vector<double> timestamps; // distinct, in interval order
    std::map<double, std::size_t> timestamp_index;

    std::size_t start = 0;
    std::size_t line_no = 0;
    while (start < text.size()) {
        std::size_t end = text.find('\n', start);
        const bool had_newline = end != std::string::npos;
        if (!had_newline)
            end = text.size();
        const std::string line =
            util::trim(text.substr(start, end - start));
        start = end + 1;
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;

        // A final line without its newline is a torn write: the count
        // may be cut mid-digit and still parse, so the whole line is
        // untrustworthy whether or not it decodes.
        if (!had_newline) {
            if (!options.lenient)
                return lineError(line_no,
                                 "final line is truncated (missing "
                                 "newline); re-export the log or drop "
                                 "the partial line");
            ++report.truncatedLines;
            continue;
        }

        ++report.totalLines;
        const auto fields = util::split(line, ',');
        if (fields.size() < 3) {
            if (!options.lenient)
                return lineError(line_no, "malformed line: " + line);
            ++report.malformedLines;
            continue;
        }

        double time_s = 0.0;
        if (!util::parseDouble(fields[0], time_s) ||
            !std::isfinite(time_s)) {
            if (!options.lenient)
                return lineError(line_no,
                                 "bad timestamp: " + fields[0]);
            ++report.badTimestamps;
            continue;
        }

        const std::string &count_field = fields[1];
        double count = 0.0;
        bool count_is_finite = true;
        if (!util::startsWith(util::trim(count_field), "<")) {
            if (!util::parseDouble(count_field, count)) {
                if (!options.lenient)
                    return lineError(line_no,
                                     "bad count: " + count_field);
                ++report.malformedLines;
                continue;
            }
            if (!std::isfinite(count)) {
                if (!options.lenient)
                    return lineError(
                        line_no,
                        "non-finite count '" + count_field +
                            "' (tool noise?); clean the log or parse "
                            "leniently");
                count_is_finite = false;
                count = 0.0; // recorded as a missing value
            }
        }

        const std::string event = util::trim(fields[2]);
        if (event.empty()) {
            if (!options.lenient)
                return lineError(line_no, "empty event name");
            ++report.malformedLines;
            continue;
        }

        // Resolve the interval this sample belongs to by timestamp, so
        // lenient alignment survives dropped or duplicated lines.
        std::size_t ts_idx;
        const auto ts_it = timestamp_index.find(time_s);
        if (ts_it != timestamp_index.end()) {
            ts_idx = ts_it->second;
            if (!options.lenient && ts_idx + 1 != timestamps.size())
                return lineError(
                    line_no,
                    util::format("timestamp %.6f revisits an earlier "
                                 "interval (non-monotonic log)",
                                 time_s));
        } else {
            if (!timestamps.empty() && time_s < timestamps.back()) {
                if (!options.lenient)
                    return lineError(
                        line_no,
                        util::format("non-monotonic timestamp %.6f "
                                     "after %.6f",
                                     time_s, timestamps.back()));
                ++report.nonMonotonic;
                continue;
            }
            ts_idx = timestamps.size();
            timestamps.push_back(time_s);
            timestamp_index.emplace(time_s, ts_idx);
        }

        std::size_t ev_idx;
        const auto ev_it = event_index.find(event);
        if (ev_it != event_index.end()) {
            ev_idx = ev_it->second;
        } else {
            ev_idx = order.size();
            order.push_back(event);
            event_index.emplace(event, ev_idx);
            cells.emplace_back();
        }

        auto &event_cells = cells[ev_idx];
        event_cells.growTo(ts_idx + 1);
        if (event_cells.seen[ts_idx]) {
            if (!options.lenient)
                return lineError(
                    line_no,
                    "duplicate sample for event '" + event + "' at " +
                        util::format("%.6f", time_s));
            ++report.duplicateSamples; // keep the first sample
            continue;
        }
        event_cells.values[ts_idx] = count;
        event_cells.seen[ts_idx] = 1;
        ++report.parsedSamples;
        if (!count_is_finite)
            ++report.nonFiniteCounts;
    }

    if (order.empty())
        return Status::dataError("perf_text: no samples found");

    const double first_time = timestamps.front();
    const double second_time =
        timestamps.size() > 1 ? timestamps[1] : -1.0;
    const double interval_ms = second_time > first_time
        ? (second_time - first_time) * 1000.0
        : first_time * 1000.0;

    std::vector<TimeSeries> series;
    series.reserve(order.size());
    for (std::size_t e = 0; e < order.size(); ++e) {
        auto &event_cells = cells[e];
        event_cells.growTo(timestamps.size());
        for (std::size_t t = 0; t < timestamps.size(); ++t) {
            if (event_cells.seen[t])
                continue;
            if (!options.lenient)
                return Status::parseError(
                    "perf_text: ragged sample counts for " + order[e]);
            // Pad the hole with the missing-value encoding the cleaner
            // repairs downstream.
            event_cells.values[t] = 0.0;
            ++report.paddedSamples;
        }
        series.emplace_back(order[e], std::move(event_cells.values),
                            interval_ms > 0.0 ? interval_ms : 10.0);
    }
    addIngestMetrics(entry_snapshot, report);
    return series;
}

std::vector<TimeSeries>
parsePerfIntervals(const std::string &text)
{
    IngestReport report;
    auto result = parsePerfIntervals(text, PerfParseOptions{}, report);
    if (!result.ok())
        util::fatal(result.status().message());
    return std::move(result).value();
}

} // namespace cminer::core

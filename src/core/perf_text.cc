#include "core/perf_text.h"

#include <map>

#include "util/error.h"
#include "util/string_util.h"

namespace cminer::core {

using cminer::ts::TimeSeries;

std::string
renderPerfIntervals(const std::vector<TimeSeries> &series)
{
    CM_ASSERT(!series.empty());
    const std::size_t length = series.front().size();
    const double interval_ms = series.front().intervalMs();
    for (const auto &s : series) {
        if (s.size() != length)
            util::fatal("perf_text: series length mismatch");
    }

    std::string out = "# time,counts,event\n";
    for (std::size_t t = 0; t < length; ++t) {
        const double time_s =
            static_cast<double>(t + 1) * interval_ms / 1000.0;
        for (const auto &s : series) {
            out += util::format("%.6f,", time_s);
            const double value = s.at(t);
            if (value == 0.0)
                out += "<not counted>";
            else
                out += util::format("%.2f", value);
            out += ",";
            out += s.eventName();
            out += "\n";
        }
    }
    return out;
}

std::vector<TimeSeries>
parsePerfIntervals(const std::string &text)
{
    // Event order of first appearance; values appended per interval.
    std::vector<std::string> order;
    std::map<std::string, std::vector<double>> values;
    double first_time = -1.0;
    double second_time = -1.0;

    std::size_t start = 0;
    while (start < text.size()) {
        std::size_t end = text.find('\n', start);
        if (end == std::string::npos)
            end = text.size();
        const std::string line =
            util::trim(text.substr(start, end - start));
        start = end + 1;
        if (line.empty() || line[0] == '#')
            continue;

        const auto fields = util::split(line, ',');
        if (fields.size() < 3)
            util::fatal("perf_text: malformed line: " + line);
        double time_s = 0.0;
        if (!util::parseDouble(fields[0], time_s))
            util::fatal("perf_text: bad timestamp: " + fields[0]);

        const std::string &count_field = fields[1];
        double count = 0.0;
        if (!util::startsWith(util::trim(count_field), "<")) {
            if (!util::parseDouble(count_field, count))
                util::fatal("perf_text: bad count: " + count_field);
        }
        const std::string event = util::trim(fields[2]);
        if (event.empty())
            util::fatal("perf_text: empty event name");

        if (!values.count(event))
            order.push_back(event);
        values[event].push_back(count);

        if (first_time < 0.0)
            first_time = time_s;
        else if (second_time < 0.0 && time_s != first_time)
            second_time = time_s;
    }
    if (order.empty())
        util::fatal("perf_text: no samples found");

    const double interval_ms = second_time > first_time
        ? (second_time - first_time) * 1000.0
        : first_time * 1000.0;

    std::vector<TimeSeries> series;
    series.reserve(order.size());
    const std::size_t length = values[order.front()].size();
    for (const auto &event : order) {
        if (values[event].size() != length)
            util::fatal("perf_text: ragged sample counts for " + event);
        series.emplace_back(event, std::move(values[event]),
                            interval_ms > 0.0 ? interval_ms : 10.0);
    }
    return series;
}

} // namespace cminer::core

/**
 * @file
 * The MAPM checkpoint — the train-once/query-many artifact.
 *
 * EIR (paper §V) distills a profiled benchmark down to its Most
 * Accurate Performance Model; everything downstream (interaction
 * ranking, tuning case studies, serving) consumes that model. A
 * MapmArtifact captures the complete result of that mining run — the
 * kept-event list, the normalized importance ranking, the held-out CV
 * error, and the trained SGBRT itself — in one checkpoint file, so a
 * `cminer predict` process can score new data without retraining.
 *
 * On-disk form: a checkpoint container (util/binary_io.h, DESIGN.md
 * §12) of kind "mapm-artifact" with sections meta / events / ranking /
 * model. Saves are atomic; loads are bounded and validated.
 */

#ifndef CMINER_CORE_CHECKPOINT_H
#define CMINER_CORE_CHECKPOINT_H

#include <string>
#include <vector>

#include "ml/gbrt.h"
#include "util/status.h"

namespace cminer::core {

/** Artifact kind tag of a MAPM checkpoint. */
inline constexpr const char *mapm_artifact_kind = "mapm-artifact";

/** Schema version of the MAPM payload. */
inline constexpr std::uint32_t mapm_artifact_version = 1;

/**
 * Everything a serving process needs from one mining run.
 */
struct MapmArtifact
{
    /** Benchmark (program) the model was mined from. */
    std::string benchmark;
    /** Microarchitecture of the profiled machine. */
    std::string microarch;
    /**
     * The MAPM's kept-event list (paper abbreviations), in model
     * feature order — scoring projects a dataset onto exactly these
     * columns, in this order.
     */
    std::vector<std::string> events;
    /** Normalized importance ranking of the MAPM (sums to 100%). */
    std::vector<cminer::ml::FeatureImportance> ranking;
    /** Held-out cross-validation error of the MAPM, in percent. */
    double cvErrorPercent = 0.0;
    /** The trained MAPM ensemble. */
    cminer::ml::Gbrt model;
};

/**
 * Save an artifact to `path` atomically. Instrumented with the
 * `checkpoint.save` span and `checkpoint.bytes_written` counter.
 */
cminer::util::Status saveMapmArtifact(const MapmArtifact &artifact,
                                      const std::string &path);

/**
 * Load an artifact written by saveMapmArtifact(). All reads are
 * bounded; damage comes back as a Status naming the byte offset.
 */
cminer::util::StatusOr<MapmArtifact>
loadMapmArtifact(const std::string &path);

} // namespace cminer::core

#endif // CMINER_CORE_CHECKPOINT_H

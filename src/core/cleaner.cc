#include "core/cleaner.h"

#include <algorithm>
#include <cmath>

#include "ml/knn.h"
#include "simd/simd.h"
#include "stats/anderson_darling.h"
#include "stats/descriptive.h"
#include "stats/histogram.h"
#include "util/error.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace cminer::core {

using cminer::ts::TimeSeries;

DataCleaner::DataCleaner(CleanerOptions options)
    : options_(std::move(options))
{
    CM_ASSERT(options_.coverageTarget > 0.0 &&
              options_.coverageTarget <= 1.0);
    CM_ASSERT(!options_.thresholdCandidates.empty());
    CM_ASSERT(options_.knnK >= 1);
}

namespace {

/** The finite subset of a series — the only samples statistics trust. */
std::vector<double>
finiteValues(std::span<const double> values)
{
    std::vector<double> finite;
    finite.reserve(values.size());
    for (double v : values) {
        if (std::isfinite(v))
            finite.push_back(v);
    }
    return finite;
}

} // namespace

double
DataCleaner::chooseThresholdN(std::span<const double> values) const
{
    // NaN/Inf samples are missing data, not evidence: they must not
    // poison the mean/std the Eq.-6 threshold is built from.
    const std::vector<double> finite = finiteValues(values);
    if (finite.empty())
        return options_.thresholdCandidates.back();
    const double mu = stats::mean(finite);
    const double sigma = stats::stddev(finite);
    for (double n : options_.thresholdCandidates) {
        const double threshold = mu + n * sigma;
        if (stats::fractionWithin(finite, threshold) >=
            options_.coverageTarget)
            return n;
    }
    return options_.thresholdCandidates.back();
}

std::size_t
DataCleaner::replaceOutliers(std::span<double> values,
                             SeriesCleanReport &report) const
{
    const std::vector<double> finite = finiteValues(values);
    if (finite.size() < 8)
        return 0;
    const double n = chooseThresholdN(finite);
    const double mu = stats::mean(finite);
    const double sigma = stats::stddev(finite);
    const double threshold = mu + n * sigma;
    report.thresholdN = n;
    report.threshold = threshold;
    if (sigma <= 0.0)
        return 0;

    // Replacement levels come from the non-outlying values only; the
    // histogram uses the paper's sqrt bin rule (Eq. 7).
    std::vector<double> inliers;
    inliers.reserve(finite.size());
    for (double v : finite) {
        if (v <= threshold)
            inliers.push_back(v);
    }
    if (inliers.empty())
        return 0;
    const stats::Histogram histogram(inliers);

    std::size_t replaced = 0;
    for (double &v : values) {
        // Non-finite samples are left for the missing-value stage.
        if (std::isfinite(v) && v > threshold) {
            v = histogram.intervalMedian(v);
            ++replaced;
        }
    }
    return replaced;
}

void
DataCleaner::fillMissing(std::span<double> values,
                         SeriesCleanReport &report) const
{
    // Candidate missing values: zeros (MLPX "<not counted>" samples),
    // anything negative (impossible for counts; treated as corrupt),
    // and NaN/Inf samples (tool damage). The true-zero rule ranges over
    // the finite samples only, so one Inf cannot veto it.
    std::vector<std::size_t> missing;
    std::size_t zero_count = 0;
    std::size_t non_finite = 0;
    double max_value = 0.0;
    double min_value = 0.0;
    std::size_t finite_count = 0;
    simd::minMaxFinite(values, min_value, max_value, finite_count);
    max_value = std::max(max_value, 0.0);

    // The paper's true-zero rule: when the series minimum is zero and
    // the maximum never exceeds 0.01, the zeros are genuine.
    const bool zeros_are_real =
        min_value <= 0.0 && max_value < options_.trueZeroMax;

    for (std::size_t i = 0; i < values.size(); ++i) {
        if (!std::isfinite(values[i])) {
            ++non_finite;
            missing.push_back(i);
        } else if (values[i] < 0.0) {
            missing.push_back(i);
        } else if (values[i] == 0.0) {
            ++zero_count;
            if (!zeros_are_real)
                missing.push_back(i);
        }
    }
    // Genuine zeros are kept, but damaged samples are still repaired.
    if (zeros_are_real)
        report.trueZerosKept = zero_count;
    report.nonFiniteRepaired = non_finite;
    report.missingFilled =
        ml::knnImputeSeries(values, missing, options_.knnK);
}

SeriesCleanReport
DataCleaner::clean(TimeSeries &series) const
{
    return cleanValues(series.eventName(), series.mutableValues());
}

SeriesCleanReport
DataCleaner::cleanValues(const std::string &event,
                         std::span<double> values) const
{
    SeriesCleanReport report;
    report.event = event;
    if (values.empty())
        return report;

    // Record the distribution family before touching the data. The fit
    // sorts its input, so NaN samples must be screened out first.
    const std::vector<double> finite = finiteValues(values);
    if (!finite.empty())
        report.distribution =
            stats::fitBestDistribution(finite).bestFamily;

    if (options_.missingFirst) {
        if (options_.fillMissing)
            fillMissing(values, report);
        if (options_.replaceOutliers)
            report.outliersReplaced = replaceOutliers(values, report);
    } else {
        if (options_.replaceOutliers)
            report.outliersReplaced = replaceOutliers(values, report);
        if (options_.fillMissing)
            fillMissing(values, report);
    }

    // Counters mirror the SeriesCleanReport fields one-to-one, so the
    // exported metrics reconcile exactly with the summed reports (and
    // stay race-free when cleanAll fans series out across the pool).
    cminer::util::count("cleaner.series_cleaned");
    cminer::util::count("cleaner.outliers_replaced",
                        report.outliersReplaced);
    cminer::util::count("cleaner.missing_filled", report.missingFilled);
    cminer::util::count("cleaner.non_finite_repaired",
                        report.nonFiniteRepaired);
    cminer::util::count("cleaner.true_zeros_kept",
                        report.trueZerosKept);
    return report;
}

std::vector<SeriesCleanReport>
DataCleaner::cleanAll(std::vector<TimeSeries> &series) const
{
    // Series are cleaned independently (clean touches only its own
    // series and report slot), so the batch fans out across the pool.
    std::vector<SeriesCleanReport> reports(series.size());
    cminer::util::parallelFor(
        0, series.size(), 1, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t s = lo; s < hi; ++s)
                reports[s] = clean(series[s]);
        });
    return reports;
}

} // namespace cminer::core

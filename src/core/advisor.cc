#include "core/advisor.h"

namespace cminer::core {

using cminer::pmu::EventCategory;

namespace {

struct CategoryAdvice
{
    const char *layer;
    const char *advice;
};

CategoryAdvice
adviceFor(EventCategory category)
{
    switch (category) {
      case EventCategory::Stall:
        return {"architecture",
                "dominant stall accounting: size up the stalled "
                "resource (e.g. a longer instruction queue for IQ-full "
                "stalls) or smooth the application's dispatch bursts"};
      case EventCategory::Branch:
        return {"application",
                "branch-heavy profile: reduce unpredictable branches "
                "(sort keys, flatten virtual dispatch) and consider "
                "profile-guided optimization"};
      case EventCategory::Frontend:
        return {"application",
                "front-end pressure: shrink the hot code footprint "
                "(outlining, PGO code layout) so the icache/DSB hold "
                "the working set"};
      case EventCategory::Cache:
        return {"application",
                "cache traffic dominates: improve locality (blocking, "
                "structure packing) or partition the shared cache "
                "between co-runners"};
      case EventCategory::Tlb:
        return {"system",
                "TLB walks dominate: enable huge pages or reduce the "
                "randomly-touched address span"};
      case EventCategory::Memory:
        return {"system",
                "memory-bound: raise memory-level parallelism, "
                "prefetch, or provision faster DRAM on these nodes"};
      case EventCategory::Remote:
        return {"system",
                "remote NUMA traffic dominates: pin computation near "
                "its data or replicate hot read-mostly state per node"};
      case EventCategory::Uops:
        return {"application",
                "execution-width bound: vectorize or simplify the hot "
                "loops so fewer uops retire per unit of work"};
      case EventCategory::Other:
        return {"application",
                "assist/clear events dominate: eliminate the "
                "triggering pattern (denormals, self-modifying code, "
                "lock contention)"};
      case EventCategory::Fixed:
        return {"application", "inspect overall IPC trends"};
    }
    return {"application", "profile further"};
}

} // namespace

std::vector<Recommendation>
advise(const std::vector<cminer::ml::FeatureImportance> &top_events,
       const cminer::pmu::EventCatalog &catalog, double min_importance)
{
    std::vector<Recommendation> recommendations;
    for (const auto &fi : top_events) {
        if (fi.importance < min_importance)
            continue;
        const auto id = catalog.findByAbbrev(fi.feature);
        if (!id)
            continue; // configuration columns or unknown features
        const auto advice = adviceFor(catalog.info(*id).category);
        recommendations.push_back({fi.feature, fi.importance,
                                   advice.layer, advice.advice});
    }
    return recommendations;
}

} // namespace cminer::core

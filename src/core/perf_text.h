/**
 * @file
 * Text interop with Linux-perf-style interval output.
 *
 * The paper's data collector "can be any available counter profiling
 * tool such as Perf" — this module makes the boundary concrete: measured
 * series render to `perf stat -I <ms>`-style interval text (with
 * `<not counted>` for the samples MLPX missed), and such text parses
 * back into TimeSeries ready for the cleaner. A real deployment can thus
 * feed actual `perf stat -I -x,` logs into the same pipeline the
 * simulator exercises.
 *
 * Parsing has two modes. Strict (the default) rejects any damage with an
 * actionable FatalError carrying the line number. Lenient mode — the
 * production-ingest posture — skips damaged lines, repairs alignment by
 * timestamp, counts every repair in an IngestReport, and only fails when
 * nothing parseable remains.
 */

#ifndef CMINER_CORE_PERF_TEXT_H
#define CMINER_CORE_PERF_TEXT_H

#include <string>
#include <vector>

#include "ts/time_series.h"
#include "util/status.h"

namespace cminer::core {

/** Parse-mode knobs. */
struct PerfParseOptions
{
    /**
     * Skip-and-count instead of reject: malformed lines, bad or
     * out-of-order timestamps, duplicate samples, and non-finite counts
     * are dropped (non-finite counts become missing values) and tallied
     * in the IngestReport; samples lost to dropped lines are padded
     * back in as missing values so event alignment survives.
     */
    bool lenient = false;
};

/**
 * Per-file accounting of what ingestion saw and repaired. In strict mode
 * the first non-zero damage counter is fatal instead.
 */
struct IngestReport
{
    /** Data lines seen (comments and blanks excluded). */
    std::size_t totalLines = 0;
    /** Samples accepted into series. */
    std::size_t parsedSamples = 0;
    /** Lines that did not decode as `time,count,event`. */
    std::size_t malformedLines = 0;
    /** Lines whose timestamp field failed to parse. */
    std::size_t badTimestamps = 0;
    /** Lines whose timestamp ran backwards from the interval order. */
    std::size_t nonMonotonic = 0;
    /** Repeated (event, timestamp) samples beyond the first. */
    std::size_t duplicateSamples = 0;
    /** NaN/Inf count fields, recorded as missing values. */
    std::size_t nonFiniteCounts = 0;
    /** Final lines cut off without a newline. */
    std::size_t truncatedLines = 0;
    /** Absent (event, interval) cells padded with missing values. */
    std::size_t paddedSamples = 0;

    /** Damage counters summed (everything except total/parsed/padded). */
    std::size_t damaged() const;
    /** Add another report's counters into this one. */
    void merge(const IngestReport &other);
    /** One-line summary, stable across runs for determinism checks. */
    std::string toString() const;
};

/**
 * Render series as perf-stat interval text.
 *
 * One line per (interval, event): `time,count,event` in CSV mode, with
 * `<not counted>` in place of the count for zero samples (the MLPX
 * missing-value marker).
 *
 * All series must have the same length and interval.
 */
std::string
renderPerfIntervals(const std::vector<cminer::ts::TimeSeries> &series);

/**
 * Parse perf-stat interval text (the renderPerfIntervals format, which
 * is `perf stat -I -x,` compatible) back into per-event TimeSeries.
 *
 * `<not counted>` and `<not supported>` become 0.0 — the missing-value
 * encoding the cleaner expects.
 *
 * Strict mode additionally rejects truncated final lines (no trailing
 * newline), non-monotonic or duplicate timestamps, and non-finite
 * counts, naming the offending line. Lenient mode recovers per the
 * PerfParseOptions contract and reports through `report`.
 *
 * @param text the interval log
 * @param options parse mode
 * @param report receives the per-file accounting
 * @return the parsed series, or a ParseError/DataError Status
 */
cminer::util::StatusOr<std::vector<cminer::ts::TimeSeries>>
parsePerfIntervals(const std::string &text,
                   const PerfParseOptions &options, IngestReport &report);

/**
 * Strict-mode convenience wrapper.
 *
 * @throws util::FatalError on malformed input
 */
std::vector<cminer::ts::TimeSeries>
parsePerfIntervals(const std::string &text);

} // namespace cminer::core

#endif // CMINER_CORE_PERF_TEXT_H

/**
 * @file
 * Text interop with Linux-perf-style interval output.
 *
 * The paper's data collector "can be any available counter profiling
 * tool such as Perf" — this module makes the boundary concrete: measured
 * series render to `perf stat -I <ms>`-style interval text (with
 * `<not counted>` for the samples MLPX missed), and such text parses
 * back into TimeSeries ready for the cleaner. A real deployment can thus
 * feed actual `perf stat -I -x,` logs into the same pipeline the
 * simulator exercises.
 */

#ifndef CMINER_CORE_PERF_TEXT_H
#define CMINER_CORE_PERF_TEXT_H

#include <string>
#include <vector>

#include "ts/time_series.h"

namespace cminer::core {

/**
 * Render series as perf-stat interval text.
 *
 * One line per (interval, event): `time,count,event` in CSV mode, with
 * `<not counted>` in place of the count for zero samples (the MLPX
 * missing-value marker).
 *
 * All series must have the same length and interval.
 */
std::string
renderPerfIntervals(const std::vector<cminer::ts::TimeSeries> &series);

/**
 * Parse perf-stat interval text (the renderPerfIntervals format, which
 * is `perf stat -I -x,` compatible) back into per-event TimeSeries.
 *
 * `<not counted>` and `<not supported>` become 0.0 — the missing-value
 * encoding the cleaner expects.
 *
 * @throws util::FatalError on malformed input
 */
std::vector<cminer::ts::TimeSeries>
parsePerfIntervals(const std::string &text);

} // namespace cminer::core

#endif // CMINER_CORE_PERF_TEXT_H

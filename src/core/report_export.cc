#include "core/report_export.h"

#include "util/json_writer.h"

namespace cminer::core {

std::string
reportToJson(const ProfileReport &report, std::size_t top_interactions)
{
    util::JsonWriter json;
    json.beginObject();
    json.key("benchmark");
    json.value(report.benchmark);

    json.key("cleaning");
    json.beginObject();
    std::size_t outliers = 0;
    std::size_t missing = 0;
    for (const auto &series : report.cleaning) {
        outliers += series.outliersReplaced;
        missing += series.missingFilled;
    }
    json.key("seriesCleaned");
    json.value(report.cleaning.size());
    json.key("outliersReplaced");
    json.value(outliers);
    json.key("missingFilled");
    json.value(missing);
    json.endObject();

    json.key("mapm");
    json.beginObject();
    json.key("eventCount");
    json.value(report.importance.mapmEventCount);
    json.key("errorPercent");
    json.value(report.importance.mapmErrorPercent);
    json.endObject();

    json.key("eirCurve");
    json.beginArray();
    for (const auto &point : report.importance.curve) {
        json.beginObject();
        json.key("events");
        json.value(point.eventCount);
        json.key("errorPercent");
        json.value(point.testErrorPercent);
        json.endObject();
    }
    json.endArray();

    json.key("topEvents");
    json.beginArray();
    for (const auto &fi : report.topEvents) {
        json.beginObject();
        json.key("event");
        json.value(fi.feature);
        json.key("importancePercent");
        json.value(fi.importance);
        json.endObject();
    }
    json.endArray();

    json.key("interactions");
    json.beginArray();
    for (const auto &pair : report.interactions.top(top_interactions)) {
        json.beginObject();
        json.key("first");
        json.value(pair.first);
        json.key("second");
        json.value(pair.second);
        json.key("intensityPercent");
        json.value(pair.importancePercent);
        json.endObject();
    }
    json.endArray();

    json.endObject();
    return json.str();
}

} // namespace cminer::core

#include "core/interaction.h"

#include <algorithm>

#include "ml/linear_regression.h"
#include "ml/metrics.h"
#include "util/error.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace cminer::core {

using cminer::ml::Dataset;
using cminer::ml::DatasetView;
using cminer::ml::Gbrt;
using cminer::ml::LinearRegression;

namespace {

/**
 * Interaction intensity of one event pair (Eq. 12).
 *
 * Model predictions with all other events held at their means while the
 * pair walks through its observed values. The linear model is fit over
 * the pair's *univariate* model responses (each event moved alone), so
 * additive — even nonlinear — per-event effects are fully explainable
 * and the residual isolates genuine two-way interaction.
 *
 * Pure function of read-only inputs (the probe vector is a local copy),
 * safe and deterministic to evaluate for many pairs concurrently.
 */
double
pairResidualVariance(const Gbrt &model, const DatasetView &data,
                     const std::vector<double> &means,
                     const std::vector<std::size_t> &rows,
                     const std::pair<std::string, std::string> &pair)
{
    const auto &[name_a, name_b] = pair;
    const std::size_t idx_a = data.featureIndex(name_a);
    const std::size_t idx_b = data.featureIndex(name_b);

    Dataset pair_data({name_a, name_b});
    std::vector<double> oracle;
    oracle.reserve(rows.size());
    std::vector<double> probe = means;
    for (std::size_t r : rows) {
        const double value_a = data.value(r, idx_a);
        const double value_b = data.value(r, idx_b);
        probe[idx_a] = value_a;
        probe[idx_b] = value_b;
        const double joint = model.predict(probe);
        probe[idx_b] = means[idx_b];
        const double alone_a = model.predict(probe);
        probe[idx_a] = means[idx_a];
        probe[idx_b] = value_b;
        const double alone_b = model.predict(probe);
        probe[idx_b] = means[idx_b];
        pair_data.addRow({alone_a, alone_b}, joint);
        oracle.push_back(joint);
    }

    // Linear model of the pair's combined effect; its residual variance
    // is the interaction intensity (Eq. 12).
    LinearRegression linear;
    linear.fit(pair_data);
    const auto linear_pred = linear.predictAll(pair_data);
    return ml::residualVariance(oracle, linear_pred);
}

} // namespace

InteractionRanker::InteractionRanker(InteractionOptions options)
    : options_(options)
{
    CM_ASSERT(options_.topEvents >= 2);
    CM_ASSERT(options_.maxSamples >= 8);
}

std::vector<PairInteraction>
InteractionResult::top(std::size_t n) const
{
    std::vector<PairInteraction> out;
    for (std::size_t i = 0; i < std::min(n, pairs.size()); ++i)
        out.push_back(pairs[i]);
    return out;
}

InteractionResult
InteractionRanker::rankPairs(
    const Gbrt &model, const DatasetView &data,
    const std::vector<std::pair<std::string, std::string>> &pairs) const
{
    CM_ASSERT(model.fitted());
    CM_ASSERT(data.rowCount() >= 8);
    cminer::util::Span span("interaction");
    span.number("pairs", static_cast<double>(pairs.size()));
    const auto means = data.featureMeans();

    // Stride-sample observation rows so every pair sees the same slice.
    const std::size_t stride =
        std::max<std::size_t>(1, data.rowCount() / options_.maxSamples);
    std::vector<std::size_t> rows;
    for (std::size_t r = 0; r < data.rowCount(); r += stride)
        rows.push_back(r);

    // Each pair's probe/fit/residual is independent (the model and the
    // dataset are only read); variances land in per-pair slots and are
    // reduced serially in pair order below, so the normalization (Eq.
    // 13) is bit-identical for any thread count.
    std::vector<double> variances(pairs.size(), 0.0);
    cminer::util::parallelFor(
        0, pairs.size(), 1,
        [&](std::size_t lo, std::size_t hi) {
            for (std::size_t p = lo; p < hi; ++p)
                variances[p] = pairResidualVariance(model, data, means,
                                                    rows, pairs[p]);
        });

    InteractionResult result;
    double total_variance = 0.0;
    for (std::size_t p = 0; p < pairs.size(); ++p) {
        result.pairs.push_back(
            {pairs[p].first, pairs[p].second, variances[p], 0.0});
        total_variance += variances[p];
    }

    // Eq. 13: normalize across pairs.
    if (total_variance > 0.0) {
        for (auto &pair : result.pairs)
            pair.importancePercent =
                100.0 * pair.residualVariance / total_variance;
    }
    // Descending intensity; ties (e.g. an additive model where every
    // pair's residual variance is exactly zero) fall back to the pair
    // names, so the surface is bitwise-stable across STL
    // implementations and thread counts.
    std::sort(result.pairs.begin(), result.pairs.end(),
              [](const PairInteraction &a, const PairInteraction &b) {
                  if (a.importancePercent != b.importancePercent)
                      return a.importancePercent > b.importancePercent;
                  if (a.first != b.first)
                      return a.first < b.first;
                  return a.second < b.second;
              });
    cminer::util::count("interaction.pairs_ranked",
                        result.pairs.size());
    return result;
}

InteractionResult
InteractionRanker::rankTopEvents(const Gbrt &model,
                                 const DatasetView &data,
                                 const std::vector<std::string> &events)
    const
{
    std::vector<std::pair<std::string, std::string>> pairs;
    const std::size_t n = std::min(options_.topEvents, events.size());
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j)
            pairs.emplace_back(events[i], events[j]);
    }
    CM_ASSERT(!pairs.empty());
    return rankPairs(model, data, pairs);
}

} // namespace cminer::core

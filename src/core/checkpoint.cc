#include "core/checkpoint.h"

#include <cmath>

#include "ml/model_io.h"
#include "util/binary_io.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace cminer::core {

using cminer::util::BinaryReader;
using cminer::util::BinaryWriter;
using cminer::util::Status;
using cminer::util::StatusOr;

Status
saveMapmArtifact(const MapmArtifact &artifact, const std::string &path)
{
    util::Span span("checkpoint.save");
    span.label("path", path);
    if (!artifact.model.fitted())
        return Status::dataError("refusing to checkpoint an artifact "
                                 "with an unfitted model")
            .withContext("save mapm " + path);
    if (artifact.events != artifact.model.featureNames())
        return Status::dataError("artifact event list does not match "
                                 "the model's feature columns")
            .withContext("save mapm " + path);

    BinaryWriter out(mapm_artifact_kind, mapm_artifact_version);

    out.beginSection("meta");
    out.str(artifact.benchmark);
    out.str(artifact.microarch);
    out.f64(artifact.cvErrorPercent);
    out.endSection();

    out.beginSection("events");
    out.u64(artifact.events.size());
    for (const auto &event : artifact.events)
        out.str(event);
    out.endSection();

    out.beginSection("ranking");
    out.u64(artifact.ranking.size());
    for (const auto &entry : artifact.ranking) {
        out.str(entry.feature);
        out.f64(entry.importance);
    }
    out.endSection();

    out.beginSection(cminer::ml::model_section_name);
    artifact.model.serialize(out);
    out.endSection();

    Status status = out.writeFile(path);
    if (!status.ok())
        return status.withContext("save mapm " + path);
    util::count("checkpoint.saves");
    return status;
}

StatusOr<MapmArtifact>
loadMapmArtifact(const std::string &path)
{
    util::Span span("checkpoint.load");
    span.label("path", path);
    auto opened = BinaryReader::open(path, mapm_artifact_kind);
    if (!opened.ok())
        return opened.status().withContext("load mapm " + path);
    BinaryReader in = std::move(opened).value();
    if (in.artifactVersion() != mapm_artifact_version)
        return in
            .fail(util::format("unsupported mapm artifact version %u "
                               "(this build reads %u)",
                               in.artifactVersion(),
                               mapm_artifact_version))
            .withContext("load mapm " + path);

    MapmArtifact artifact;
    bool seen_meta = false;
    bool seen_events = false;
    bool seen_model = false;
    for (std::uint64_t s = 0; s < in.sectionCount() && in.ok(); ++s) {
        const std::string section = in.beginSection();
        if (!in.ok())
            break;
        if (section == "meta") {
            artifact.benchmark = in.str();
            artifact.microarch = in.str();
            artifact.cvErrorPercent = in.f64();
            seen_meta = in.ok();
        } else if (section == "events") {
            const std::uint64_t n = in.count(8);
            artifact.events.reserve(n);
            for (std::uint64_t i = 0; i < n && in.ok(); ++i)
                artifact.events.push_back(in.str());
            seen_events = in.ok();
        } else if (section == "ranking") {
            const std::uint64_t n = in.count(16);
            artifact.ranking.reserve(n);
            for (std::uint64_t i = 0; i < n && in.ok(); ++i) {
                cminer::ml::FeatureImportance entry;
                entry.feature = in.str();
                entry.importance = in.f64();
                artifact.ranking.push_back(std::move(entry));
            }
        } else if (section == cminer::ml::model_section_name) {
            artifact.model = cminer::ml::Gbrt::deserialize(in);
            seen_model = in.ok();
        }
        // Unknown sections from newer writers are skipped by size.
        in.endSection();
    }
    if (!in.ok())
        return in.status().withContext("load mapm " + path);
    if (!seen_meta || !seen_events || !seen_model)
        return Status::dataError("missing required section "
                                 "(meta/events/model)")
            .withContext("load mapm " + path);
    if (artifact.events != artifact.model.featureNames())
        return Status::dataError("event list does not match the "
                                 "model's feature columns")
            .withContext("load mapm " + path);
    if (!artifact.model.fitted())
        return Status::dataError("artifact model is unfitted")
            .withContext("load mapm " + path);
    util::count("checkpoint.loads");
    return artifact;
}

} // namespace cminer::core

/**
 * @file
 * Scalar reference implementations of every kernel in simd.h.
 *
 * Included (anonymous namespace, so internal linkage per translation
 * unit) by kernels_scalar.cc to build the scalar dispatch table, and by
 * the SSE2/AVX2 translation units for the paths their vector code does
 * not cover (tiny inputs, first DTW row, wide edge tables). Internal
 * linkage is load-bearing: the AVX2 TU is compiled with -mavx2, and a
 * shared inline function picked from that TU by the linker could leak
 * AVX2 instructions into code reached on non-AVX2 machines.
 *
 * The blocked reductions here define the canonical four-lane schedule
 * (see simd.h): lane l accumulates x[4i + l], lanes combine as
 * (l0 + l1) + (l2 + l3), and the tail is added sequentially. The
 * SSE2/AVX2 variants must perform the same additions in the same order.
 */

#ifndef CMINER_SIMD_SCALAR_IMPL_H
#define CMINER_SIMD_SCALAR_IMPL_H

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace {
namespace scalar_impl {

constexpr double kInf = std::numeric_limits<double>::infinity();

inline double
sumBlocked(std::span<const double> x)
{
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    const std::size_t n = x.size();
    const std::size_t main = n & ~std::size_t{3};
    for (std::size_t i = 0; i < main; i += 4) {
        a0 += x[i];
        a1 += x[i + 1];
        a2 += x[i + 2];
        a3 += x[i + 3];
    }
    double total = (a0 + a1) + (a2 + a3);
    for (std::size_t i = main; i < n; ++i)
        total += x[i];
    return total;
}

inline double
sumSquaresBlocked(std::span<const double> x)
{
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    const std::size_t n = x.size();
    const std::size_t main = n & ~std::size_t{3};
    for (std::size_t i = 0; i < main; i += 4) {
        a0 += x[i] * x[i];
        a1 += x[i + 1] * x[i + 1];
        a2 += x[i + 2] * x[i + 2];
        a3 += x[i + 3] * x[i + 3];
    }
    double total = (a0 + a1) + (a2 + a3);
    for (std::size_t i = main; i < n; ++i)
        total += x[i] * x[i];
    return total;
}

inline double
squaredDistanceBlocked(std::span<const double> a, std::span<const double> b)
{
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    const std::size_t n = a.size();
    const std::size_t main = n & ~std::size_t{3};
    for (std::size_t i = 0; i < main; i += 4) {
        const double d0 = a[i] - b[i];
        const double d1 = a[i + 1] - b[i + 1];
        const double d2 = a[i + 2] - b[i + 2];
        const double d3 = a[i + 3] - b[i + 3];
        a0 += d0 * d0;
        a1 += d1 * d1;
        a2 += d2 * d2;
        a3 += d3 * d3;
    }
    double total = (a0 + a1) + (a2 + a3);
    for (std::size_t i = main; i < n; ++i) {
        const double d = a[i] - b[i];
        total += d * d;
    }
    return total;
}

/** One LB_Keogh deviation term, shared by scalar main and tail loops. */
inline double
lbKeoghTerm(double lower, double upper, double c)
{
    if (c > upper)
        return c - upper;
    if (c < lower)
        return lower - c;
    return 0.0;
}

inline double
lbKeoghSumBlocked(std::span<const double> lower,
                  std::span<const double> upper,
                  std::span<const double> candidate)
{
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    const std::size_t n = candidate.size();
    const std::size_t main = n & ~std::size_t{3};
    for (std::size_t i = 0; i < main; i += 4) {
        a0 += lbKeoghTerm(lower[i], upper[i], candidate[i]);
        a1 += lbKeoghTerm(lower[i + 1], upper[i + 1], candidate[i + 1]);
        a2 += lbKeoghTerm(lower[i + 2], upper[i + 2], candidate[i + 2]);
        a3 += lbKeoghTerm(lower[i + 3], upper[i + 3], candidate[i + 3]);
    }
    double total = (a0 + a1) + (a2 + a3);
    for (std::size_t i = main; i < n; ++i)
        total += lbKeoghTerm(lower[i], upper[i], candidate[i]);
    return total;
}

/**
 * The classic three-way DTW recurrence, verbatim — the bit-exactness
 * reference for every dtwRowUpdate implementation.
 */
inline void
dtwRowUpdateSeq(double a_i, std::span<const double> b,
                std::span<const double> prev, std::span<double> curr,
                std::size_t j_lo, std::size_t j_hi, bool first_row,
                std::span<double> /*scratch*/)
{
    for (std::size_t j = j_lo; j < j_hi; ++j) {
        const double cost = std::abs(a_i - b[j]);
        double best;
        if (first_row && j == 0) {
            best = 0.0;
        } else {
            best = kInf;
            if (!first_row)
                best = std::min(best, prev[j]);
            if (j > 0)
                best = std::min(best, curr[j - 1]);
            if (!first_row && j > 0)
                best = std::min(best, prev[j - 1]);
        }
        curr[j] = cost + best;
    }
}

inline void
windowMinMaxSeq(std::span<const double> values, double &min_out,
                double &max_out)
{
    double mn = values[0];
    double mx = values[0];
    for (std::size_t i = 1; i < values.size(); ++i) {
        mn = std::min(mn, values[i]);
        mx = std::max(mx, values[i]);
    }
    min_out = mn;
    max_out = mx;
}

inline void
minMaxFiniteSeq(std::span<const double> values, double &min_out,
                double &max_out, std::size_t &finite_count)
{
    double mn = 0.0;
    double mx = 0.0;
    std::size_t count = 0;
    for (double v : values) {
        if (!std::isfinite(v))
            continue;
        if (count == 0) {
            mn = mx = v;
        } else {
            mn = std::min(mn, v);
            mx = std::max(mx, v);
        }
        ++count;
    }
    min_out = mn;
    max_out = mx;
    finite_count = count;
}

inline std::size_t
countLessEqualSeq(std::span<const double> values, double threshold)
{
    std::size_t inside = 0;
    for (double v : values) {
        if (v <= threshold)
            ++inside;
    }
    return inside;
}

inline void
lowerBoundBinsSeq(std::span<const double> values,
                  std::span<const double> edges,
                  std::span<std::uint8_t> bins_out)
{
    const std::size_t clamp = edges.size() - 1;
    for (std::size_t i = 0; i < values.size(); ++i) {
        const auto it =
            std::lower_bound(edges.begin(), edges.end(), values[i]);
        const std::size_t bin = std::min(
            static_cast<std::size_t>(it - edges.begin()), clamp);
        bins_out[i] = static_cast<std::uint8_t>(bin);
    }
}

inline void
equiWidthBinsSeq(std::span<const double> values, double low, double high,
                 double width, std::size_t bin_count,
                 std::span<std::uint32_t> bins_out)
{
    const std::uint32_t top = static_cast<std::uint32_t>(bin_count - 1);
    for (std::size_t i = 0; i < values.size(); ++i) {
        const double v = values[i];
        std::uint32_t bin;
        if (width <= 0.0 || v <= low)
            bin = 0;
        else if (v >= high)
            bin = top;
        else
            bin = std::min(
                static_cast<std::uint32_t>((v - low) / width), top);
        bins_out[i] = bin;
    }
}

inline void
splitScanHistogramSeq(std::span<const std::uint8_t> bin_col,
                      std::span<const double> targets,
                      std::span<const std::size_t> rows,
                      std::span<double> bin_sum,
                      std::span<std::size_t> bin_count)
{
    for (std::size_t r : rows) {
        const std::uint8_t b = bin_col[r];
        bin_sum[b] += targets[r];
        ++bin_count[b];
    }
}

} // namespace scalar_impl
} // namespace

#endif // CMINER_SIMD_SCALAR_IMPL_H

/**
 * @file
 * The scalar dispatch table: the reference implementations every other
 * level is differentially tested against, and the only level available
 * off x86.
 */

#include "simd/simd.h"

#include "simd/scalar_impl.h"

namespace cminer::simd::detail {

const KernelTable &
scalarTable()
{
    static const KernelTable table = {
        scalar_impl::sumBlocked,
        scalar_impl::sumSquaresBlocked,
        scalar_impl::squaredDistanceBlocked,
        scalar_impl::lbKeoghSumBlocked,
        scalar_impl::dtwRowUpdateSeq,
        scalar_impl::windowMinMaxSeq,
        scalar_impl::minMaxFiniteSeq,
        scalar_impl::countLessEqualSeq,
        scalar_impl::lowerBoundBinsSeq,
        scalar_impl::equiWidthBinsSeq,
        scalar_impl::splitScanHistogramSeq,
    };
    return table;
}

} // namespace cminer::simd::detail

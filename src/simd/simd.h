/**
 * @file
 * Runtime-dispatched SIMD kernel layer for the pipeline's hot loops
 * (DESIGN.md §13).
 *
 * Every kernel exists at three dispatch levels — scalar, SSE2, AVX2 —
 * selected once per process by a CPUID probe and overridable with
 * `CMINER_SIMD=scalar|sse2|avx2` (or simd::setLevel from tests). The
 * scalar implementation is always compiled in and is the reference the
 * differential harness (tests/simd_kernel_test.cc) compares the wide
 * variants against.
 *
 * Exactness tiers (the contract every implementation must honor):
 *
 *  - **sequential-exact**: bit-identical to the naive element-order
 *    scalar loop the kernel replaced, so the hexfloat pipeline goldens
 *    survive. Kernels: dtwRowUpdate, windowMinMax, minMaxFinite,
 *    countLessEqual, lowerBoundBins, equiWidthBins,
 *    splitScanHistogram. (min/max kernels are value-exact; the sign of
 *    a zero result is unspecified when +0.0 and -0.0 are both present.)
 *
 *  - **blocked-reduction**: reductions use the fixed four-lane block
 *    schedule below. The result is bit-identical *across dispatch
 *    levels* (the schedule is a function of the length only, never of
 *    the instruction set) but differs from a naive left-fold by
 *    rounding. Kernels: sum, sumSquares, squaredDistance, lbKeoghSum.
 *    These are only wired into paths outside the golden pipeline.
 *    One carve-out for both tiers: when a reduction's result is NaN
 *    (a NaN input, or Inf - Inf), every level returns a quiet NaN but
 *    its payload and sign are unspecified — IEEE leaves the surviving
 *    payload of NaN + NaN to operand order, which compilers are free
 *    to commute per translation unit.
 *
 * The four-lane block schedule: lane l accumulates elements
 * x[4i + l] in index order; lanes combine as (l0 + l1) + (l2 + l3);
 * the n % 4 tail elements are then added sequentially. SSE2 models
 * lanes {0,1} and {2,3} as two 128-bit registers, AVX2 as one 256-bit
 * register, and the scalar fallback as four named accumulators — all
 * three perform the same additions in the same order.
 */

#ifndef CMINER_SIMD_SIMD_H
#define CMINER_SIMD_SIMD_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

namespace cminer::simd {

/** Instruction-set tiers the kernel layer dispatches over. */
enum class Level : int
{
    Scalar = 0,
    Sse2 = 1,
    Avx2 = 2,
};

/** Stable lowercase name ("scalar", "sse2", "avx2"). */
const char *levelName(Level level);

/** Parse a level name as accepted by CMINER_SIMD; nullopt when unknown. */
std::optional<Level> parseLevelName(std::string_view name);

/**
 * Best level this binary can run on this machine: the CPUID probe
 * intersected with what the compiler could build. Never changes during
 * a process lifetime.
 */
Level detectedLevel();

/**
 * The level kernels currently dispatch to. Resolution order: the last
 * setLevel() call, else CMINER_SIMD (clamped to detectedLevel, with a
 * warning on unknown names), else detectedLevel().
 */
Level activeLevel();

/**
 * Force a dispatch level, clamped to detectedLevel(). Intended for the
 * differential tests and benchmarks; call only while no kernel is
 * concurrently executing (the pipeline reads the level per call).
 */
void setLevel(Level level);

/** Every level that can run here, ascending: Scalar .. detectedLevel(). */
std::vector<Level> availableLevels();

// --- blocked-reduction tier ----------------------------------------------

/** Sum of a span under the four-lane block schedule. 0.0 when empty. */
double sum(std::span<const double> values);

/** Sum of squares under the four-lane block schedule. 0.0 when empty. */
double sumSquares(std::span<const double> values);

/**
 * Squared Euclidean distance sum((a-b)^2) under the four-lane block
 * schedule. Spans must be the same length.
 */
double squaredDistance(std::span<const double> a,
                       std::span<const double> b);

/**
 * LB_Keogh envelope deviation: sum over i of
 * (c[i] > upper[i] ? c[i]-upper[i] : c[i] < lower[i] ? lower[i]-c[i] : 0)
 * under the four-lane block schedule. Spans must be the same length.
 */
double lbKeoghSum(std::span<const double> lower,
                  std::span<const double> upper,
                  std::span<const double> candidate);

// --- sequential-exact tier -----------------------------------------------

/**
 * One banded-DTW row update (the dtwDistance inner loop), bit-identical
 * to the classic three-way recurrence:
 *   curr[j] = |a_i - b[j]| + min(prev[j], curr[j-1], prev[j-1])
 * with out-of-range predecessors treated as +inf and cell (0, 0)
 * seeded with 0. Cells of `curr` outside [j_lo, j_hi) must already
 * hold +inf (the caller re-fills the row); `prev` holds row i-1 with
 * +inf outside its band.
 *
 * @param a_i value of series a at row i
 * @param b whole second series
 * @param prev previous DP row (ignored when first_row)
 * @param curr row being computed; written on [j_lo, j_hi)
 * @param j_lo first band column (inclusive)
 * @param j_hi last band column (exclusive)
 * @param first_row true when i == 0
 * @param scratch workspace of at least b.size() doubles
 */
void dtwRowUpdate(double a_i, std::span<const double> b,
                  std::span<const double> prev, std::span<double> curr,
                  std::size_t j_lo, std::size_t j_hi, bool first_row,
                  std::span<double> scratch);

/**
 * Min and max of a non-empty span of finite values (value-exact;
 * zero-sign unspecified). Used by the envelope computation.
 */
void windowMinMax(std::span<const double> values, double &min_out,
                  double &max_out);

/**
 * Min/max over the finite subset of a span, plus the finite count.
 * When no value is finite, outputs are 0.0/0.0/0. Value-exact;
 * zero-sign unspecified. Used by the cleaner's range pass.
 */
void minMaxFinite(std::span<const double> values, double &min_out,
                  double &max_out, std::size_t &finite_count);

/**
 * Number of elements <= threshold (NaN compares false, exactly like
 * the scalar loop). Drives the cleaner's Eq.-6 coverage scan.
 */
std::size_t countLessEqual(std::span<const double> values,
                           double threshold);

/**
 * Quantile-bin assignment: for each value, the index of the first edge
 * >= value (std::lower_bound semantics over the sorted `edges`),
 * clamped to edges.size() - 1. Exact (integer output). Requires
 * edges.size() in [1, 255].
 */
void lowerBoundBins(std::span<const double> values,
                    std::span<const double> edges,
                    std::span<std::uint8_t> bins_out);

/**
 * Equi-width bin assignment matching stats::Histogram::binIndex:
 * 0 when width <= 0 or value <= low; bin_count-1 when value >= high;
 * else min(floor((value - low) / width), bin_count - 1). Exact.
 */
void equiWidthBins(std::span<const double> values, double low,
                   double high, double width, std::size_t bin_count,
                   std::span<std::uint32_t> bins_out);

/**
 * The GBRT split scan's histogram fill: for each row r (in order),
 *   bin_sum[bin_col[r]] += targets[r]; ++bin_count[bin_col[r]].
 * Per-bin addition order is row order, so the result is bit-identical
 * to the naive loop at every dispatch level. Every level currently
 * shares the sequential implementation: the fill is scatter-bound, the
 * per-bin left-folds are inherently serial, and out-of-order execution
 * already interleaves the independent bins — a staged/bucketed AVX2
 * variant measured ~2x *slower* (BM_SplitScan pins the parity; see
 * DESIGN.md §13). The kernel stays in the dispatch table so an ISA
 * with real scatter support (AVX-512) can specialize it later. A bin
 * whose sum is NaN carries an unspecified payload/sign (see the tier
 * notes above).
 *
 * bin_sum / bin_count must be zero-initialized by the caller and at
 * least as large as the largest bin index + 1.
 *
 * @param bin_col per-dataset-row bin index (one feature's bin column)
 * @param targets per-dataset-row regression targets
 * @param rows dataset-row indices to accumulate, in order
 */
void splitScanHistogram(std::span<const std::uint8_t> bin_col,
                        std::span<const double> targets,
                        std::span<const std::size_t> rows,
                        std::span<double> bin_sum,
                        std::span<std::size_t> bin_count);

namespace detail {

/** Function-pointer table one dispatch level exports. */
struct KernelTable
{
    double (*sum)(std::span<const double>);
    double (*sumSquares)(std::span<const double>);
    double (*squaredDistance)(std::span<const double>,
                              std::span<const double>);
    double (*lbKeoghSum)(std::span<const double>,
                         std::span<const double>,
                         std::span<const double>);
    void (*dtwRowUpdate)(double, std::span<const double>,
                         std::span<const double>, std::span<double>,
                         std::size_t, std::size_t, bool,
                         std::span<double>);
    void (*windowMinMax)(std::span<const double>, double &, double &);
    void (*minMaxFinite)(std::span<const double>, double &, double &,
                         std::size_t &);
    std::size_t (*countLessEqual)(std::span<const double>, double);
    void (*lowerBoundBins)(std::span<const double>,
                           std::span<const double>,
                           std::span<std::uint8_t>);
    void (*equiWidthBins)(std::span<const double>, double, double,
                          double, std::size_t, std::span<std::uint32_t>);
    void (*splitScanHistogram)(std::span<const std::uint8_t>,
                               std::span<const double>,
                               std::span<const std::size_t>,
                               std::span<double>,
                               std::span<std::size_t>);
};

/** The scalar reference table (always available). */
const KernelTable &scalarTable();
/** The SSE2 table; null when this binary cannot run SSE2. */
const KernelTable *sse2Table();
/** The AVX2 table; null when this binary cannot run AVX2. */
const KernelTable *avx2Table();

} // namespace detail

} // namespace cminer::simd

#endif // CMINER_SIMD_SIMD_H

/**
 * @file
 * AVX2 dispatch table. One 256-bit register carries all four lanes of
 * the block schedule, so blocked reductions perform the same additions
 * in the same order as the scalar and SSE2 tables. This TU is the only
 * one compiled with -mavx2; everything it includes is internal-linkage
 * so no AVX2 code can leak into other call paths through the linker.
 */

#include "simd/simd.h"

#if defined(CMINER_HAVE_AVX2) && defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>

#include "simd/scalar_impl.h"

namespace {
namespace avx2_impl {

constexpr double kInf = std::numeric_limits<double>::infinity();

inline double
lane0(__m128d v)
{
    return _mm_cvtsd_f64(v);
}

inline double
lane1(__m128d v)
{
    return _mm_cvtsd_f64(_mm_unpackhi_pd(v, v));
}

/** (l0 + l1) + (l2 + l3) — the canonical lane combine. */
inline double
laneCombine(__m256d v)
{
    const __m128d lo = _mm256_castpd256_pd128(v);
    const __m128d hi = _mm256_extractf128_pd(v, 1);
    return (lane0(lo) + lane1(lo)) + (lane0(hi) + lane1(hi));
}

inline double
sum(std::span<const double> x)
{
    const std::size_t n = x.size();
    const std::size_t main = n & ~std::size_t{3};
    const double *p = x.data();
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t i = 0; i < main; i += 4)
        acc = _mm256_add_pd(acc, _mm256_loadu_pd(p + i));
    double total = laneCombine(acc);
    for (std::size_t i = main; i < n; ++i)
        total += p[i];
    return total;
}

inline double
sumSquares(std::span<const double> x)
{
    const std::size_t n = x.size();
    const std::size_t main = n & ~std::size_t{3};
    const double *p = x.data();
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t i = 0; i < main; i += 4) {
        const __m256d v = _mm256_loadu_pd(p + i);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(v, v));
    }
    double total = laneCombine(acc);
    for (std::size_t i = main; i < n; ++i)
        total += p[i] * p[i];
    return total;
}

inline double
squaredDistance(std::span<const double> a, std::span<const double> b)
{
    const std::size_t n = a.size();
    const std::size_t main = n & ~std::size_t{3};
    const double *pa = a.data();
    const double *pb = b.data();
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t i = 0; i < main; i += 4) {
        const __m256d d =
            _mm256_sub_pd(_mm256_loadu_pd(pa + i), _mm256_loadu_pd(pb + i));
        acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
    }
    double total = laneCombine(acc);
    for (std::size_t i = main; i < n; ++i) {
        const double d = pa[i] - pb[i];
        total += d * d;
    }
    return total;
}

/** Lane-wise LB_Keogh term; c > u wins over c < l, else exactly +0.0. */
inline __m256d
lbTerm(__m256d l, __m256d u, __m256d c)
{
    const __m256d over = _mm256_cmp_pd(c, u, _CMP_GT_OQ);
    const __m256d under = _mm256_cmp_pd(c, l, _CMP_LT_OQ);
    const __m256d inner = _mm256_blendv_pd(_mm256_setzero_pd(),
                                           _mm256_sub_pd(l, c), under);
    return _mm256_blendv_pd(inner, _mm256_sub_pd(c, u), over);
}

inline double
lbKeoghSum(std::span<const double> lower, std::span<const double> upper,
           std::span<const double> candidate)
{
    const std::size_t n = candidate.size();
    const std::size_t main = n & ~std::size_t{3};
    const double *pl = lower.data();
    const double *pu = upper.data();
    const double *pc = candidate.data();
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t i = 0; i < main; i += 4) {
        acc = _mm256_add_pd(
            acc, lbTerm(_mm256_loadu_pd(pl + i), _mm256_loadu_pd(pu + i),
                        _mm256_loadu_pd(pc + i)));
    }
    double total = laneCombine(acc);
    for (std::size_t i = main; i < n; ++i)
        total += scalar_impl::lbKeoghTerm(pl[i], pu[i], pc[i]);
    return total;
}

inline void
dtwRowUpdate(double a_i, std::span<const double> b,
             std::span<const double> prev, std::span<double> curr,
             std::size_t j_lo, std::size_t j_hi, bool first_row,
             std::span<double> scratch)
{
    if (first_row || j_hi - j_lo < 8) {
        scalar_impl::dtwRowUpdateSeq(a_i, b, prev, curr, j_lo, j_hi,
                                     first_row, scratch);
        return;
    }
    // Pass 1 (vector): scratch[j] = min(prev[j], prev[j-1]); DP values
    // are never NaN and never -0.0, so minpd matches std::min bitwise.
    const double *p = prev.data();
    double *t = scratch.data();
    std::size_t j = j_lo;
    if (j == 0) {
        t[0] = p[0];
        j = 1;
    }
    for (; j + 4 <= j_hi; j += 4) {
        _mm256_storeu_pd(t + j, _mm256_min_pd(_mm256_loadu_pd(p + j),
                                              _mm256_loadu_pd(p + j - 1)));
    }
    for (; j < j_hi; ++j)
        t[j] = std::min(p[j], p[j - 1]);
    // Pass 2 (scalar): the carried dependence on curr[j-1].
    for (std::size_t k = j_lo; k < j_hi; ++k) {
        const double cost = std::abs(a_i - b[k]);
        const double left = k > 0 ? curr[k - 1] : kInf;
        curr[k] = cost + std::min(t[k], left);
    }
}

inline void
windowMinMax(std::span<const double> values, double &min_out,
             double &max_out)
{
    const std::size_t n = values.size();
    if (n < 8) {
        scalar_impl::windowMinMaxSeq(values, min_out, max_out);
        return;
    }
    const double *p = values.data();
    __m256d mn_v = _mm256_loadu_pd(p);
    __m256d mx_v = mn_v;
    std::size_t i = 4;
    for (; i + 4 <= n; i += 4) {
        const __m256d v = _mm256_loadu_pd(p + i);
        mn_v = _mm256_min_pd(v, mn_v);
        mx_v = _mm256_max_pd(v, mx_v);
    }
    const __m128d mn_lo = _mm256_castpd256_pd128(mn_v);
    const __m128d mn_hi = _mm256_extractf128_pd(mn_v, 1);
    const __m128d mx_lo = _mm256_castpd256_pd128(mx_v);
    const __m128d mx_hi = _mm256_extractf128_pd(mx_v, 1);
    double mn = std::min(std::min(lane0(mn_lo), lane1(mn_lo)),
                         std::min(lane0(mn_hi), lane1(mn_hi)));
    double mx = std::max(std::max(lane0(mx_lo), lane1(mx_lo)),
                         std::max(lane0(mx_hi), lane1(mx_hi)));
    for (; i < n; ++i) {
        mn = std::min(mn, p[i]);
        mx = std::max(mx, p[i]);
    }
    min_out = mn;
    max_out = mx;
}

inline void
minMaxFinite(std::span<const double> values, double &min_out,
             double &max_out, std::size_t &finite_count)
{
    const std::size_t n = values.size();
    if (n < 8) {
        scalar_impl::minMaxFiniteSeq(values, min_out, max_out,
                                     finite_count);
        return;
    }
    const double *p = values.data();
    const __m256d inf_v = _mm256_set1_pd(kInf);
    const __m256d abs_mask = _mm256_castsi256_pd(
        _mm256_set1_epi64x(0x7fffffffffffffffLL));
    __m256d mn_v = inf_v;
    __m256d mx_v = _mm256_set1_pd(-kInf);
    std::size_t count = 0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d v = _mm256_loadu_pd(p + i);
        const __m256d finite = _mm256_cmp_pd(_mm256_and_pd(v, abs_mask),
                                             inf_v, _CMP_LT_OQ);
        mn_v = _mm256_blendv_pd(mn_v, _mm256_min_pd(v, mn_v), finite);
        mx_v = _mm256_blendv_pd(mx_v, _mm256_max_pd(v, mx_v), finite);
        count += std::popcount(
            static_cast<unsigned>(_mm256_movemask_pd(finite)));
    }
    const __m128d mn_lo = _mm256_castpd256_pd128(mn_v);
    const __m128d mn_hi = _mm256_extractf128_pd(mn_v, 1);
    const __m128d mx_lo = _mm256_castpd256_pd128(mx_v);
    const __m128d mx_hi = _mm256_extractf128_pd(mx_v, 1);
    double mn = std::min(std::min(lane0(mn_lo), lane1(mn_lo)),
                         std::min(lane0(mn_hi), lane1(mn_hi)));
    double mx = std::max(std::max(lane0(mx_lo), lane1(mx_lo)),
                         std::max(lane0(mx_hi), lane1(mx_hi)));
    for (; i < n; ++i) {
        const double v = p[i];
        if (!std::isfinite(v))
            continue;
        mn = std::min(mn, v);
        mx = std::max(mx, v);
        ++count;
    }
    if (count == 0) {
        min_out = 0.0;
        max_out = 0.0;
        finite_count = 0;
        return;
    }
    min_out = mn;
    max_out = mx;
    finite_count = count;
}

inline std::size_t
countLessEqual(std::span<const double> values, double threshold)
{
    const std::size_t n = values.size();
    const double *p = values.data();
    const __m256d t_v = _mm256_set1_pd(threshold);
    std::size_t count = 0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        count += std::popcount(static_cast<unsigned>(_mm256_movemask_pd(
            _mm256_cmp_pd(_mm256_loadu_pd(p + i), t_v, _CMP_LE_OQ))));
    }
    for (; i < n; ++i) {
        if (p[i] <= threshold)
            ++count;
    }
    return count;
}

inline void
lowerBoundBins(std::span<const double> values,
               std::span<const double> edges,
               std::span<std::uint8_t> bins_out)
{
    if (edges.size() > 32) {
        scalar_impl::lowerBoundBinsSeq(values, edges, bins_out);
        return;
    }
    const std::size_t clamp = edges.size() - 1;
    const std::size_t n = values.size();
    const double *p = values.data();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d v = _mm256_loadu_pd(p + i);
        __m256i cnt = _mm256_setzero_si256();
        for (const double e : edges) {
            // lower_bound index == #edges strictly below the value.
            cnt = _mm256_sub_epi64(
                cnt, _mm256_castpd_si256(
                         _mm256_cmp_pd(_mm256_set1_pd(e), v, _CMP_LT_OQ)));
        }
        alignas(32) std::int64_t c[4];
        _mm256_store_si256(reinterpret_cast<__m256i *>(c), cnt);
        for (int lane = 0; lane < 4; ++lane) {
            bins_out[i + static_cast<std::size_t>(lane)] =
                static_cast<std::uint8_t>(
                    std::min(static_cast<std::size_t>(c[lane]), clamp));
        }
    }
    if (i < n) {
        scalar_impl::lowerBoundBinsSeq(values.subspan(i), edges,
                                       bins_out.subspan(i));
    }
}

inline void
equiWidthBins(std::span<const double> values, double low, double high,
              double width, std::size_t bin_count,
              std::span<std::uint32_t> bins_out)
{
    if (width <= 0.0) {
        std::fill(bins_out.begin(), bins_out.end(), std::uint32_t{0});
        return;
    }
    const std::uint32_t top = static_cast<std::uint32_t>(bin_count - 1);
    const std::size_t n = values.size();
    const double *p = values.data();
    const __m256d low_v = _mm256_set1_pd(low);
    const __m256d high_v = _mm256_set1_pd(high);
    const __m256d width_v = _mm256_set1_pd(width);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d v = _mm256_loadu_pd(p + i);
        const int lo_m = _mm256_movemask_pd(
            _mm256_cmp_pd(v, low_v, _CMP_LE_OQ));
        const int hi_m = _mm256_movemask_pd(
            _mm256_cmp_pd(high_v, v, _CMP_LE_OQ));
        // The divide is the expensive op; truncating conversion matches
        // the scalar static_cast for the in-range lanes, and the
        // out-of-range lanes are overridden by the masks.
        const __m256d q =
            _mm256_div_pd(_mm256_sub_pd(v, low_v), width_v);
        alignas(16) int idx[4];
        _mm_store_si128(reinterpret_cast<__m128i *>(idx),
                        _mm256_cvttpd_epi32(q));
        for (int lane = 0; lane < 4; ++lane) {
            std::uint32_t bin;
            if ((lo_m >> lane) & 1)
                bin = 0;
            else if ((hi_m >> lane) & 1)
                bin = top;
            else
                bin = std::min(static_cast<std::uint32_t>(idx[lane]), top);
            bins_out[i + static_cast<std::size_t>(lane)] = bin;
        }
    }
    if (i < n) {
        scalar_impl::equiWidthBinsSeq(values.subspan(i), low, high, width,
                                      bin_count, bins_out.subspan(i));
    }
}

} // namespace avx2_impl
} // namespace

namespace cminer::simd::detail {

const KernelTable *
avx2Table()
{
    static const KernelTable table = {
        avx2_impl::sum,
        avx2_impl::sumSquares,
        avx2_impl::squaredDistance,
        avx2_impl::lbKeoghSum,
        avx2_impl::dtwRowUpdate,
        avx2_impl::windowMinMax,
        avx2_impl::minMaxFinite,
        avx2_impl::countLessEqual,
        avx2_impl::lowerBoundBins,
        avx2_impl::equiWidthBins,
        // Scatter-bound: the order-preserving fill gains nothing from
        // AVX2 (no vector scatter); BM_SplitScan pins the parity.
        scalar_impl::splitScanHistogramSeq,
    };
    return &table;
}

} // namespace cminer::simd::detail

#else // !CMINER_HAVE_AVX2

namespace cminer::simd::detail {

const KernelTable *
avx2Table()
{
    return nullptr;
}

} // namespace cminer::simd::detail

#endif

/**
 * @file
 * SSE2 dispatch table. Two 128-bit registers model lanes {0,1} and
 * {2,3} of the four-lane block schedule, so every blocked reduction
 * performs the same additions in the same order as the scalar table.
 * Kernels fall back to the scalar reference for shapes the vector code
 * does not cover (tiny spans, the first DTW row, wide edge tables);
 * both paths satisfy the same exactness tier, so the thresholds are
 * pure tuning knobs.
 */

#include "simd/simd.h"

#if defined(__SSE2__)

#include <emmintrin.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>

#include "simd/scalar_impl.h"

namespace {
namespace sse2_impl {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** mask ? a : b, lane-wise (mask lanes all-ones or all-zeros). */
inline __m128d
sel(__m128d mask, __m128d a, __m128d b)
{
    return _mm_or_pd(_mm_and_pd(mask, a), _mm_andnot_pd(mask, b));
}

inline double
lane0(__m128d v)
{
    return _mm_cvtsd_f64(v);
}

inline double
lane1(__m128d v)
{
    return _mm_cvtsd_f64(_mm_unpackhi_pd(v, v));
}

/** lane0 + lane1, as one scalar addition. */
inline double
laneSum(__m128d v)
{
    return lane0(v) + lane1(v);
}

inline double
sum(std::span<const double> x)
{
    const std::size_t n = x.size();
    const std::size_t main = n & ~std::size_t{3};
    const double *p = x.data();
    __m128d acc01 = _mm_setzero_pd();
    __m128d acc23 = _mm_setzero_pd();
    for (std::size_t i = 0; i < main; i += 4) {
        acc01 = _mm_add_pd(acc01, _mm_loadu_pd(p + i));
        acc23 = _mm_add_pd(acc23, _mm_loadu_pd(p + i + 2));
    }
    double total = laneSum(acc01) + laneSum(acc23);
    for (std::size_t i = main; i < n; ++i)
        total += p[i];
    return total;
}

inline double
sumSquares(std::span<const double> x)
{
    const std::size_t n = x.size();
    const std::size_t main = n & ~std::size_t{3};
    const double *p = x.data();
    __m128d acc01 = _mm_setzero_pd();
    __m128d acc23 = _mm_setzero_pd();
    for (std::size_t i = 0; i < main; i += 4) {
        const __m128d v01 = _mm_loadu_pd(p + i);
        const __m128d v23 = _mm_loadu_pd(p + i + 2);
        acc01 = _mm_add_pd(acc01, _mm_mul_pd(v01, v01));
        acc23 = _mm_add_pd(acc23, _mm_mul_pd(v23, v23));
    }
    double total = laneSum(acc01) + laneSum(acc23);
    for (std::size_t i = main; i < n; ++i)
        total += p[i] * p[i];
    return total;
}

inline double
squaredDistance(std::span<const double> a, std::span<const double> b)
{
    const std::size_t n = a.size();
    const std::size_t main = n & ~std::size_t{3};
    const double *pa = a.data();
    const double *pb = b.data();
    __m128d acc01 = _mm_setzero_pd();
    __m128d acc23 = _mm_setzero_pd();
    for (std::size_t i = 0; i < main; i += 4) {
        const __m128d d01 =
            _mm_sub_pd(_mm_loadu_pd(pa + i), _mm_loadu_pd(pb + i));
        const __m128d d23 =
            _mm_sub_pd(_mm_loadu_pd(pa + i + 2), _mm_loadu_pd(pb + i + 2));
        acc01 = _mm_add_pd(acc01, _mm_mul_pd(d01, d01));
        acc23 = _mm_add_pd(acc23, _mm_mul_pd(d23, d23));
    }
    double total = laneSum(acc01) + laneSum(acc23);
    for (std::size_t i = main; i < n; ++i) {
        const double d = pa[i] - pb[i];
        total += d * d;
    }
    return total;
}

/**
 * Lane-wise LB_Keogh deviation term with the scalar branch priority:
 * c > u wins over c < l, else exactly +0.0.
 */
inline __m128d
lbTerm(__m128d l, __m128d u, __m128d c)
{
    const __m128d over = _mm_cmpgt_pd(c, u);
    const __m128d under = _mm_cmplt_pd(c, l);
    return sel(over, _mm_sub_pd(c, u),
               sel(under, _mm_sub_pd(l, c), _mm_setzero_pd()));
}

inline double
lbKeoghSum(std::span<const double> lower, std::span<const double> upper,
           std::span<const double> candidate)
{
    const std::size_t n = candidate.size();
    const std::size_t main = n & ~std::size_t{3};
    const double *pl = lower.data();
    const double *pu = upper.data();
    const double *pc = candidate.data();
    __m128d acc01 = _mm_setzero_pd();
    __m128d acc23 = _mm_setzero_pd();
    for (std::size_t i = 0; i < main; i += 4) {
        acc01 = _mm_add_pd(acc01,
                           lbTerm(_mm_loadu_pd(pl + i), _mm_loadu_pd(pu + i),
                                  _mm_loadu_pd(pc + i)));
        acc23 = _mm_add_pd(
            acc23, lbTerm(_mm_loadu_pd(pl + i + 2), _mm_loadu_pd(pu + i + 2),
                          _mm_loadu_pd(pc + i + 2)));
    }
    double total = laneSum(acc01) + laneSum(acc23);
    for (std::size_t i = main; i < n; ++i)
        total += scalar_impl::lbKeoghTerm(pl[i], pu[i], pc[i]);
    return total;
}

inline void
dtwRowUpdate(double a_i, std::span<const double> b,
             std::span<const double> prev, std::span<double> curr,
             std::size_t j_lo, std::size_t j_hi, bool first_row,
             std::span<double> scratch)
{
    if (first_row || j_hi - j_lo < 8) {
        scalar_impl::dtwRowUpdateSeq(a_i, b, prev, curr, j_lo, j_hi,
                                     first_row, scratch);
        return;
    }
    // Pass 1 (vector): scratch[j] = min(prev[j], prev[j-1]); DP values
    // are never NaN and never -0.0, so minpd matches std::min bitwise.
    const double *p = prev.data();
    double *t = scratch.data();
    std::size_t j = j_lo;
    if (j == 0) {
        t[0] = p[0];
        j = 1;
    }
    for (; j + 2 <= j_hi; j += 2) {
        _mm_storeu_pd(
            t + j, _mm_min_pd(_mm_loadu_pd(p + j), _mm_loadu_pd(p + j - 1)));
    }
    for (; j < j_hi; ++j)
        t[j] = std::min(p[j], p[j - 1]);
    // Pass 2 (scalar): the carried dependence on curr[j-1].
    for (std::size_t k = j_lo; k < j_hi; ++k) {
        const double cost = std::abs(a_i - b[k]);
        const double left = k > 0 ? curr[k - 1] : kInf;
        curr[k] = cost + std::min(t[k], left);
    }
}

inline void
windowMinMax(std::span<const double> values, double &min_out,
             double &max_out)
{
    const std::size_t n = values.size();
    if (n < 8) {
        scalar_impl::windowMinMaxSeq(values, min_out, max_out);
        return;
    }
    const double *p = values.data();
    __m128d mn_v = _mm_loadu_pd(p);
    __m128d mx_v = mn_v;
    std::size_t i = 2;
    for (; i + 2 <= n; i += 2) {
        const __m128d v = _mm_loadu_pd(p + i);
        mn_v = _mm_min_pd(v, mn_v);
        mx_v = _mm_max_pd(v, mx_v);
    }
    double mn = std::min(lane0(mn_v), lane1(mn_v));
    double mx = std::max(lane0(mx_v), lane1(mx_v));
    for (; i < n; ++i) {
        mn = std::min(mn, p[i]);
        mx = std::max(mx, p[i]);
    }
    min_out = mn;
    max_out = mx;
}

inline void
minMaxFinite(std::span<const double> values, double &min_out,
             double &max_out, std::size_t &finite_count)
{
    const std::size_t n = values.size();
    if (n < 8) {
        scalar_impl::minMaxFiniteSeq(values, min_out, max_out,
                                     finite_count);
        return;
    }
    const double *p = values.data();
    const __m128d inf_v = _mm_set1_pd(kInf);
    const __m128d abs_mask =
        _mm_castsi128_pd(_mm_set1_epi64x(0x7fffffffffffffffLL));
    __m128d mn_v = inf_v;
    __m128d mx_v = _mm_set1_pd(-kInf);
    std::size_t count = 0;
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128d v = _mm_loadu_pd(p + i);
        const __m128d finite =
            _mm_cmplt_pd(_mm_and_pd(v, abs_mask), inf_v);
        mn_v = sel(finite, _mm_min_pd(v, mn_v), mn_v);
        mx_v = sel(finite, _mm_max_pd(v, mx_v), mx_v);
        count += std::popcount(
            static_cast<unsigned>(_mm_movemask_pd(finite)));
    }
    double mn = std::min(lane0(mn_v), lane1(mn_v));
    double mx = std::max(lane0(mx_v), lane1(mx_v));
    for (; i < n; ++i) {
        const double v = p[i];
        if (!std::isfinite(v))
            continue;
        mn = std::min(mn, v);
        mx = std::max(mx, v);
        ++count;
    }
    if (count == 0) {
        min_out = 0.0;
        max_out = 0.0;
        finite_count = 0;
        return;
    }
    min_out = mn;
    max_out = mx;
    finite_count = count;
}

inline std::size_t
countLessEqual(std::span<const double> values, double threshold)
{
    const std::size_t n = values.size();
    const double *p = values.data();
    const __m128d t_v = _mm_set1_pd(threshold);
    std::size_t count = 0;
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        count += std::popcount(static_cast<unsigned>(
            _mm_movemask_pd(_mm_cmple_pd(_mm_loadu_pd(p + i), t_v))));
    }
    for (; i < n; ++i) {
        if (p[i] <= threshold)
            ++count;
    }
    return count;
}

inline void
lowerBoundBins(std::span<const double> values,
               std::span<const double> edges,
               std::span<std::uint8_t> bins_out)
{
    // For wide tables binary search beats the O(B) compare sweep.
    if (edges.size() > 32) {
        scalar_impl::lowerBoundBinsSeq(values, edges, bins_out);
        return;
    }
    const std::size_t clamp = edges.size() - 1;
    const std::size_t n = values.size();
    const double *p = values.data();
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128d v = _mm_loadu_pd(p + i);
        __m128i cnt = _mm_setzero_si128();
        for (const double e : edges) {
            // lower_bound index == #edges strictly below the value.
            cnt = _mm_sub_epi64(
                cnt, _mm_castpd_si128(_mm_cmplt_pd(_mm_set1_pd(e), v)));
        }
        alignas(16) std::int64_t c[2];
        _mm_store_si128(reinterpret_cast<__m128i *>(c), cnt);
        bins_out[i] = static_cast<std::uint8_t>(
            std::min(static_cast<std::size_t>(c[0]), clamp));
        bins_out[i + 1] = static_cast<std::uint8_t>(
            std::min(static_cast<std::size_t>(c[1]), clamp));
    }
    if (i < n) {
        scalar_impl::lowerBoundBinsSeq(values.subspan(i), edges,
                                       bins_out.subspan(i));
    }
}

inline void
equiWidthBins(std::span<const double> values, double low, double high,
              double width, std::size_t bin_count,
              std::span<std::uint32_t> bins_out)
{
    if (width <= 0.0) {
        std::fill(bins_out.begin(), bins_out.end(), std::uint32_t{0});
        return;
    }
    const std::uint32_t top = static_cast<std::uint32_t>(bin_count - 1);
    const std::size_t n = values.size();
    const double *p = values.data();
    const __m128d low_v = _mm_set1_pd(low);
    const __m128d high_v = _mm_set1_pd(high);
    const __m128d width_v = _mm_set1_pd(width);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128d v = _mm_loadu_pd(p + i);
        const int lo_m = _mm_movemask_pd(_mm_cmple_pd(v, low_v));
        const int hi_m = _mm_movemask_pd(_mm_cmple_pd(high_v, v));
        // The divide is the expensive op; truncating conversion matches
        // the scalar static_cast for the in-range lanes, and the
        // out-of-range lanes are overridden by the masks.
        const __m128d q = _mm_div_pd(_mm_sub_pd(v, low_v), width_v);
        alignas(16) int idx[4];
        _mm_store_si128(reinterpret_cast<__m128i *>(idx),
                        _mm_cvttpd_epi32(q));
        for (int lane = 0; lane < 2; ++lane) {
            std::uint32_t bin;
            if ((lo_m >> lane) & 1)
                bin = 0;
            else if ((hi_m >> lane) & 1)
                bin = top;
            else
                bin = std::min(static_cast<std::uint32_t>(idx[lane]), top);
            bins_out[i + static_cast<std::size_t>(lane)] = bin;
        }
    }
    if (i < n) {
        scalar_impl::equiWidthBinsSeq(values.subspan(i), low, high, width,
                                      bin_count, bins_out.subspan(i));
    }
}

} // namespace sse2_impl
} // namespace

namespace cminer::simd::detail {

const KernelTable *
sse2Table()
{
    static const KernelTable table = {
        sse2_impl::sum,
        sse2_impl::sumSquares,
        sse2_impl::squaredDistance,
        sse2_impl::lbKeoghSum,
        sse2_impl::dtwRowUpdate,
        sse2_impl::windowMinMax,
        sse2_impl::minMaxFinite,
        sse2_impl::countLessEqual,
        sse2_impl::lowerBoundBins,
        sse2_impl::equiWidthBins,
        // Scatter-bound: the order-preserving fill gains nothing from
        // SSE2 (no vector scatter); BM_SplitScan pins the parity.
        scalar_impl::splitScanHistogramSeq,
    };
    return &table;
}

} // namespace cminer::simd::detail

#else // !defined(__SSE2__)

namespace cminer::simd::detail {

const KernelTable *
sse2Table()
{
    return nullptr;
}

} // namespace cminer::simd::detail

#endif

/**
 * @file
 * Runtime level selection and the public kernel entry points.
 *
 * The level is resolved once, lazily, from setLevel() > CMINER_SIMD >
 * the CPUID probe, and every kernel call reads the resolved table
 * through one relaxed atomic load — cheap enough for the hot loops and
 * still switchable mid-process by the differential tests.
 */

#include "simd/simd.h"

#include <atomic>
#include <cstdlib>
#include <string>

#include "util/logging.h"

namespace cminer::simd {

namespace {

const detail::KernelTable *
tableFor(Level level)
{
    switch (level) {
      case Level::Avx2:
        if (const auto *t = detail::avx2Table())
            return t;
        [[fallthrough]];
      case Level::Sse2:
        if (const auto *t = detail::sse2Table())
            return t;
        [[fallthrough]];
      case Level::Scalar:
        break;
    }
    return &detail::scalarTable();
}

Level
probeLevel()
{
#if defined(__x86_64__) || defined(__i386__)
    if (detail::avx2Table() != nullptr && __builtin_cpu_supports("avx2"))
        return Level::Avx2;
    if (detail::sse2Table() != nullptr && __builtin_cpu_supports("sse2"))
        return Level::Sse2;
#endif
    return Level::Scalar;
}

std::atomic<const detail::KernelTable *> g_table{nullptr};
std::atomic<int> g_level{-1};

/** CMINER_SIMD clamped to what this machine can run, else detected. */
Level
initialLevel()
{
    const char *env = std::getenv("CMINER_SIMD");
    if (env == nullptr || *env == '\0')
        return detectedLevel();
    const auto parsed = parseLevelName(env);
    if (!parsed.has_value()) {
        util::warn(std::string("CMINER_SIMD=") + env +
                   " is not scalar|sse2|avx2; using " +
                   levelName(detectedLevel()));
        return detectedLevel();
    }
    if (*parsed > detectedLevel()) {
        util::warn(std::string("CMINER_SIMD=") + env +
                   " exceeds what this machine supports; clamping to " +
                   levelName(detectedLevel()));
        return detectedLevel();
    }
    return *parsed;
}

const detail::KernelTable &
activeTable()
{
    const detail::KernelTable *t =
        g_table.load(std::memory_order_relaxed);
    if (t == nullptr) {
        setLevel(initialLevel());
        t = g_table.load(std::memory_order_relaxed);
    }
    return *t;
}

} // namespace

const char *
levelName(Level level)
{
    switch (level) {
      case Level::Scalar:
        return "scalar";
      case Level::Sse2:
        return "sse2";
      case Level::Avx2:
        return "avx2";
    }
    return "scalar";
}

std::optional<Level>
parseLevelName(std::string_view name)
{
    if (name == "scalar")
        return Level::Scalar;
    if (name == "sse2")
        return Level::Sse2;
    if (name == "avx2")
        return Level::Avx2;
    return std::nullopt;
}

Level
detectedLevel()
{
    static const Level level = probeLevel();
    return level;
}

Level
activeLevel()
{
    const int v = g_level.load(std::memory_order_relaxed);
    if (v >= 0)
        return static_cast<Level>(v);
    setLevel(initialLevel());
    return static_cast<Level>(g_level.load(std::memory_order_relaxed));
}

void
setLevel(Level level)
{
    const Level clamped = level > detectedLevel() ? detectedLevel() : level;
    g_table.store(tableFor(clamped), std::memory_order_relaxed);
    g_level.store(static_cast<int>(clamped), std::memory_order_relaxed);
}

std::vector<Level>
availableLevels()
{
    std::vector<Level> levels;
    for (int l = 0; l <= static_cast<int>(detectedLevel()); ++l)
        levels.push_back(static_cast<Level>(l));
    return levels;
}

double
sum(std::span<const double> values)
{
    return activeTable().sum(values);
}

double
sumSquares(std::span<const double> values)
{
    return activeTable().sumSquares(values);
}

double
squaredDistance(std::span<const double> a, std::span<const double> b)
{
    return activeTable().squaredDistance(a, b);
}

double
lbKeoghSum(std::span<const double> lower, std::span<const double> upper,
           std::span<const double> candidate)
{
    return activeTable().lbKeoghSum(lower, upper, candidate);
}

void
dtwRowUpdate(double a_i, std::span<const double> b,
             std::span<const double> prev, std::span<double> curr,
             std::size_t j_lo, std::size_t j_hi, bool first_row,
             std::span<double> scratch)
{
    activeTable().dtwRowUpdate(a_i, b, prev, curr, j_lo, j_hi, first_row,
                               scratch);
}

void
windowMinMax(std::span<const double> values, double &min_out,
             double &max_out)
{
    activeTable().windowMinMax(values, min_out, max_out);
}

void
minMaxFinite(std::span<const double> values, double &min_out,
             double &max_out, std::size_t &finite_count)
{
    activeTable().minMaxFinite(values, min_out, max_out, finite_count);
}

std::size_t
countLessEqual(std::span<const double> values, double threshold)
{
    return activeTable().countLessEqual(values, threshold);
}

void
lowerBoundBins(std::span<const double> values,
               std::span<const double> edges,
               std::span<std::uint8_t> bins_out)
{
    activeTable().lowerBoundBins(values, edges, bins_out);
}

void
equiWidthBins(std::span<const double> values, double low, double high,
              double width, std::size_t bin_count,
              std::span<std::uint32_t> bins_out)
{
    activeTable().equiWidthBins(values, low, high, width, bin_count,
                                bins_out);
}

void
splitScanHistogram(std::span<const std::uint8_t> bin_col,
                   std::span<const double> targets,
                   std::span<const std::size_t> rows,
                   std::span<double> bin_sum,
                   std::span<std::size_t> bin_count)
{
    activeTable().splitScanHistogram(bin_col, targets, rows, bin_sum,
                                     bin_count);
}

} // namespace cminer::simd

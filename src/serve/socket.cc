#include "serve/socket.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/server.h"
#include "serve/transport.h"
#include "util/string_util.h"

namespace cminer::serve {

namespace util = cminer::util;

namespace {

/** Fill a sockaddr_un; paths beyond its fixed buffer are rejected. */
util::Status
makeAddress(const std::string &path, sockaddr_un &addr)
{
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        return util::Status::dataError(util::format(
            "socket path of %zu bytes exceeds the %zu-byte sun_path "
            "limit",
            path.size(), sizeof(addr.sun_path) - 1));
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return util::Status::okStatus();
}

} // namespace

SocketServer::SocketServer(Server &server, std::string path)
    : server_(server), path_(std::move(path))
{}

SocketServer::~SocketServer()
{
    stop();
    joinWorkers();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
}

util::Status
SocketServer::listen()
{
    sockaddr_un addr{};
    auto status = makeAddress(path_, addr);
    if (!status.ok())
        return status;

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return util::Status::transient(
            std::string("socket() failed: ") + std::strerror(errno));
    // A stale socket file from a crashed predecessor blocks bind.
    ::unlink(path_.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd);
        return util::Status::transient(
            util::format("bind(%s) failed: %s", path_.c_str(),
                         std::strerror(err)));
    }
    if (::listen(fd, 64) != 0) {
        const int err = errno;
        ::close(fd);
        ::unlink(path_.c_str());
        return util::Status::transient(
            util::format("listen(%s) failed: %s", path_.c_str(),
                         std::strerror(err)));
    }
    listenFd_ = fd;
    return util::Status::okStatus();
}

util::Status
SocketServer::serveForever()
{
    if (listenFd_ < 0)
        return util::Status::dataError(
            "serveForever called before listen()");
    for (;;) {
        const int conn = ::accept(listenFd_, nullptr, nullptr);
        if (conn < 0) {
            if (errno == EINTR)
                continue;
            // stop() closes the listening fd to unblock accept; any
            // other failure while stopping is equally final.
            if (stopping_.load())
                break;
            const int err = errno;
            stop();
            joinWorkers();
            ::unlink(path_.c_str());
            return util::Status::transient(
                std::string("accept failed: ") + std::strerror(err));
        }
        connections_.fetch_add(1);
        // Reclaim handles of connections that have since ended, so a
        // long-lived daemon's worker list tracks open connections, not
        // its lifetime connection count.
        reapFinishedWorkers();
        auto finished = std::make_shared<std::atomic<bool>>(false);
        std::thread worker([this, conn, finished] {
            FdFrameSource source(conn);
            FdFrameSink sink(conn);
            const auto result =
                serveConnection(server_, source, sink);
            ::close(conn);
            if (result.shutdownRequested)
                stop();
            finished->store(true);
        });
        std::lock_guard<std::mutex> lock(workersMutex_);
        workers_.push_back({std::move(worker), std::move(finished)});
    }
    joinWorkers();
    server_.drain();
    ::unlink(path_.c_str());
    return util::Status::okStatus();
}

void
SocketServer::stop()
{
    if (!stopping_.exchange(true) && listenFd_ >= 0) {
        // shutdown() unblocks a thread parked in accept(); the fd
        // itself is closed by the destructor.
        ::shutdown(listenFd_, SHUT_RDWR);
    }
}

std::size_t
SocketServer::trackedWorkerCount() const
{
    std::lock_guard<std::mutex> lock(workersMutex_);
    return workers_.size();
}

void
SocketServer::reapFinishedWorkers()
{
    // Only threads that flagged themselves done are joined, so this
    // never blocks the accept loop behind a slow connection; a join
    // here waits at most for the flag-setting thread to return.
    std::lock_guard<std::mutex> lock(workersMutex_);
    auto it = workers_.begin();
    while (it != workers_.end()) {
        if (it->finished->load()) {
            if (it->thread.joinable())
                it->thread.join();
            it = workers_.erase(it);
        } else {
            ++it;
        }
    }
}

void
SocketServer::joinWorkers()
{
    std::lock_guard<std::mutex> lock(workersMutex_);
    for (auto &worker : workers_)
        if (worker.thread.joinable())
            worker.thread.join();
    workers_.clear();
}

util::StatusOr<int>
connectUnixSocket(const std::string &path)
{
    sockaddr_un addr{};
    auto status = makeAddress(path, addr);
    if (!status.ok())
        return status;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return util::Status::transient(
            std::string("socket() failed: ") + std::strerror(errno));
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd);
        return util::Status::transient(
            util::format("connect(%s) failed: %s", path.c_str(),
                         std::strerror(err)));
    }
    return fd;
}

} // namespace cminer::serve

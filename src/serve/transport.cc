#include "serve/transport.h"

#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>

#include <sys/socket.h>
#include <unistd.h>

#include "serve/server.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace cminer::serve {

namespace util = cminer::util;

namespace {

/** Decode a 4-byte little-endian frame length. */
std::uint32_t
decodeLength(const char *bytes)
{
    std::uint32_t length = 0;
    for (int b = 0; b < 4; ++b)
        length |= static_cast<std::uint32_t>(
                      static_cast<unsigned char>(bytes[b]))
                  << (8 * b);
    return length;
}

} // namespace

util::Status
StreamFrameSource::next(std::string &payload, bool &eof)
{
    payload.clear();
    eof = false;
    char header[4];
    in_.read(header, sizeof(header));
    const auto header_got = static_cast<std::size_t>(in_.gcount());
    if (header_got == 0) {
        eof = true;
        return util::Status::okStatus();
    }
    if (header_got < sizeof(header))
        return util::Status::dataError(util::format(
            "torn frame header: %zu of 4 length bytes", header_got));
    const std::uint32_t length = decodeLength(header);
    if (length > max_frame_bytes)
        return util::Status::dataError(util::format(
            "frame declares %u bytes (max %zu)", length,
            max_frame_bytes));
    payload.resize(length);
    if (length > 0) {
        in_.read(payload.data(), static_cast<std::streamsize>(length));
        const auto got = static_cast<std::size_t>(in_.gcount());
        if (got < length) {
            payload.clear();
            return util::Status::dataError(util::format(
                "torn frame: %zu of %u payload bytes", got, length));
        }
    }
    return util::Status::okStatus();
}

util::Status
StreamFrameSink::write(std::string_view payload)
{
    std::string frame;
    frame.reserve(payload.size() + 4);
    auto framed = appendFrame(frame, payload);
    if (!framed.ok())
        return framed;
    out_.write(frame.data(), static_cast<std::streamsize>(frame.size()));
    if (!out_)
        return util::Status::transient("response stream write failed");
    out_.flush();
    return util::Status::okStatus();
}

util::Status
FaultyFrameSource::next(std::string &payload, bool &eof)
{
    payload.clear();
    if (dead_) {
        // A cut connection yields nothing more; model it as EOF so the
        // serve loop drains and returns instead of spinning.
        eof = true;
        return util::Status::okStatus();
    }
    auto status = inner_.next(payload, eof);
    if (!status.ok() || eof)
        return status;
    const auto fault = injector_.transportFault(payload.size() + 4);
    switch (fault.kind) {
      case util::TransportFault::Kind::TornFrame:
        dead_ = true;
        payload.clear();
        return util::Status::dataError(util::format(
            "injected torn frame: %zu bytes arrived", fault.tearAt));
      case util::TransportFault::Kind::Hangup:
        dead_ = true;
        payload.clear();
        eof = true;
        return util::Status::okStatus();
      case util::TransportFault::Kind::Delay:
        if (clock_ != nullptr)
            clock_->sleepMs(fault.delayMs);
        return util::Status::okStatus();
      case util::TransportFault::Kind::None:
        return util::Status::okStatus();
    }
    return util::Status::okStatus();
}

util::Status
FaultyStreamFrameSink::write(std::string_view payload)
{
    if (dead_)
        return util::Status::transient("injected connection hangup");
    std::string frame;
    frame.reserve(payload.size() + 4);
    auto framed = appendFrame(frame, payload);
    if (!framed.ok())
        return framed;
    const auto fault = injector_.transportFault(frame.size());
    switch (fault.kind) {
      case util::TransportFault::Kind::TornFrame:
        // A half-flushed write: the prefix lands, the connection dies.
        out_.write(frame.data(),
                   static_cast<std::streamsize>(fault.tearAt));
        out_.flush();
        dead_ = true;
        return util::Status::transient(util::format(
            "injected torn frame: wrote %zu of %zu bytes",
            fault.tearAt, frame.size()));
      case util::TransportFault::Kind::Hangup:
        dead_ = true;
        return util::Status::transient("injected connection hangup");
      case util::TransportFault::Kind::Delay:
        if (clock_ != nullptr)
            clock_->sleepMs(fault.delayMs);
        break;
      case util::TransportFault::Kind::None:
        break;
    }
    out_.write(frame.data(), static_cast<std::streamsize>(frame.size()));
    if (!out_)
        return util::Status::transient("response stream write failed");
    out_.flush();
    return util::Status::okStatus();
}

util::Status
FdFrameSource::next(std::string &payload, bool &eof)
{
    payload.clear();
    eof = false;
    char header[4];
    std::size_t got = 0;
    // Fill the header, tolerating partial reads and EINTR.
    while (got < sizeof(header)) {
        const ssize_t n =
            ::read(fd_, header + got, sizeof(header) - got);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return util::Status::transient(
                std::string("socket read failed: ") +
                std::strerror(errno));
        }
        if (n == 0) {
            if (got == 0) {
                eof = true;
                return util::Status::okStatus();
            }
            return util::Status::dataError(util::format(
                "torn frame header: %zu of 4 length bytes", got));
        }
        got += static_cast<std::size_t>(n);
    }
    const std::uint32_t length = decodeLength(header);
    if (length > max_frame_bytes)
        return util::Status::dataError(util::format(
            "frame declares %u bytes (max %zu)", length,
            max_frame_bytes));
    payload.resize(length);
    std::size_t read_total = 0;
    while (read_total < length) {
        const ssize_t n = ::read(fd_, payload.data() + read_total,
                                 length - read_total);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            payload.clear();
            return util::Status::transient(
                std::string("socket read failed: ") +
                std::strerror(errno));
        }
        if (n == 0) {
            const std::size_t arrived = read_total;
            payload.clear();
            return util::Status::dataError(util::format(
                "torn frame: %zu of %u payload bytes", arrived,
                length));
        }
        read_total += static_cast<std::size_t>(n);
    }
    return util::Status::okStatus();
}

util::Status
FdFrameSink::write(std::string_view payload)
{
    std::string frame;
    frame.reserve(payload.size() + 4);
    auto framed = appendFrame(frame, payload);
    if (!framed.ok())
        return framed;
    std::size_t written = 0;
    while (written < frame.size()) {
        // MSG_NOSIGNAL: a client that hangs up before its response — an
        // ordinary event for a long-lived daemon — must surface as an
        // EPIPE status on this connection, never as a SIGPIPE that
        // takes down the whole server. Non-socket fds report ENOTSOCK
        // and fall back to plain write().
        ssize_t n = ::send(fd_, frame.data() + written,
                           frame.size() - written, MSG_NOSIGNAL);
        if (n < 0 && errno == ENOTSOCK)
            n = ::write(fd_, frame.data() + written,
                        frame.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return util::Status::transient(
                std::string("socket write failed: ") +
                std::strerror(errno));
        }
        written += static_cast<std::size_t>(n);
    }
    return util::Status::okStatus();
}

ServeLoopResult
serveConnection(Server &server, FrameSource &source, FrameSink &sink)
{
    // Shared with every response callback. The loop cannot return
    // until inFlight drains to zero, so the sink reference stays valid
    // for exactly as long as anything can write to it.
    struct ConnectionState
    {
        std::mutex mutex;
        std::condition_variable drained;
        FrameSink *sink = nullptr;
        std::size_t inFlight = 0;
        /** Set after a write failure; later responses are dropped. */
        bool sinkDead = false;
    };
    auto state = std::make_shared<ConnectionState>();
    state->sink = &sink;

    ServeLoopResult result;
    std::string payload;
    for (;;) {
        bool eof = false;
        auto status = source.next(payload, eof);
        if (!status.ok()) {
            // Framing lost: a length-prefixed stream has no resync
            // point, so the connection is over. Count it, stop
            // reading, drain in-flight work below. Never abort.
            util::count("serve.transport_errors");
            result.transportStatus =
                status.withContext("serve connection");
            break;
        }
        if (eof)
            break;
        ++result.framesRead;
        const bool is_shutdown =
            peekType(payload) == MessageType::Shutdown;
        {
            std::lock_guard<std::mutex> lock(state->mutex);
            ++state->inFlight;
        }
        server.submitFrame(
            std::move(payload), [state](std::string response) {
                std::lock_guard<std::mutex> lock(state->mutex);
                if (!state->sinkDead) {
                    const auto written =
                        state->sink->write(response);
                    if (!written.ok()) {
                        state->sinkDead = true;
                        util::count("serve.transport_errors");
                    }
                }
                --state->inFlight;
                state->drained.notify_all();
            });
        payload.clear();
        if (is_shutdown) {
            result.shutdownRequested = true;
            break;
        }
    }

    // True connection join: every admitted request from this
    // connection has responded (or been shed) before the sink goes out
    // of the callbacks' reach.
    std::unique_lock<std::mutex> lock(state->mutex);
    state->drained.wait(lock,
                        [&state] { return state->inFlight == 0; });
    return result;
}

} // namespace cminer::serve

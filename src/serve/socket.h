/**
 * @file
 * AF_UNIX transport for `cminer serve` (DESIGN.md §14).
 *
 * A SocketServer owns the listening socket; each accepted connection
 * runs the shared serveConnection loop (serve/transport.h) on its own
 * thread against Fd frame endpoints, so the wire behavior — pipelined
 * requests, out-of-order responses, connection-fatal framing errors —
 * is identical to pipe mode, which is where the deterministic tests
 * live. A shutdown frame on any connection stops the accept loop,
 * drains the server, and removes the socket file.
 */

#ifndef CMINER_SERVE_SOCKET_H
#define CMINER_SERVE_SOCKET_H

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/status.h"

namespace cminer::serve {

class Server;

/** Listens on a unix-domain socket and serves connections. */
class SocketServer
{
  public:
    /** @param path socket filesystem path; replaced if it exists */
    SocketServer(Server &server, std::string path);

    /** Closes the listening socket and joins connection threads. */
    ~SocketServer();

    SocketServer(const SocketServer &) = delete;
    SocketServer &operator=(const SocketServer &) = delete;

    /** Bind and listen. Must succeed before serveForever. */
    cminer::util::Status listen();

    /**
     * Accept and serve connections until a shutdown frame arrives (or
     * stop() is called from another thread), then drain the server
     * and unlink the socket path. Connection-fatal transport errors
     * end their connection only, never the listener.
     */
    cminer::util::Status serveForever();

    /** Unblock the accept loop from another thread. */
    void stop();

    /** Connections accepted so far. */
    std::size_t connectionCount() const { return connections_; }

    /**
     * Connection threads still tracked (live plus finished-but-not-yet
     *-reaped). Finished workers are reaped on every accept, so this
     * stays near the number of concurrently open connections rather
     * than growing with the daemon's lifetime connection count.
     */
    std::size_t trackedWorkerCount() const;

  private:
    /** A connection thread plus the flag its body sets on exit. */
    struct ConnectionWorker
    {
        std::thread thread;
        std::shared_ptr<std::atomic<bool>> finished;
    };

    /** Join and drop workers whose connections have ended. */
    void reapFinishedWorkers();
    void joinWorkers();

    Server &server_;
    std::string path_;
    int listenFd_ = -1;
    std::atomic<bool> stopping_{false};
    std::atomic<std::size_t> connections_{0};
    mutable std::mutex workersMutex_;
    std::vector<ConnectionWorker> workers_;
};

/**
 * Connect to a serve socket.
 * @return the connected fd (caller closes), or a Transient status
 */
cminer::util::StatusOr<int> connectUnixSocket(const std::string &path);

} // namespace cminer::serve

#endif // CMINER_SERVE_SOCKET_H

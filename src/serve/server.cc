#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <utility>

#include "core/counterminer.h"
#include "ml/dataset.h"
#include "ml/dataset_view.h"
#include "pmu/event.h"
#include "store/database.h"
#include "util/json_writer.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "workload/suites.h"

namespace cminer::serve {

namespace util = cminer::util;

// ---- LatencyHistogram -----------------------------------------------

double
LatencyHistogram::edge(std::size_t index)
{
    // Bucket 0 tops out at 1/16 ms; each bucket doubles.
    return std::ldexp(1.0, static_cast<int>(index) - 4);
}

void
LatencyHistogram::record(double ms)
{
    if (ms < 0.0)
        ms = 0.0;
    std::size_t bucket = 0;
    while (bucket + 1 < bucket_count && ms > edge(bucket))
        ++bucket;
    std::lock_guard<std::mutex> lock(mutex_);
    ++buckets_[bucket];
    ++count_;
    maxMs_ = std::max(maxMs_, ms);
}

double
LatencyHistogram::percentile(double q) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_ == 0)
        return 0.0;
    const auto target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < bucket_count; ++b) {
        seen += buckets_[b];
        if (seen >= target)
            return edge(b);
    }
    return edge(bucket_count - 1);
}

std::uint64_t
LatencyHistogram::count() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
}

double
LatencyHistogram::maxMs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return maxMs_;
}

// ---- Server ---------------------------------------------------------

Server::Server(ServerOptions options)
    : options_(options), minePool_(1)
{
    if (!options_.storeDir.empty()) {
        store::StoreOptions store_options;
        store_options.directory = options_.storeDir;
        store_options.memoryBudgetBytes =
            options_.storeMemoryBudgetBytes;
        // A store that fails validation (corrupt segment, wrong
        // microarchitecture) refuses to open, and so does the daemon:
        // serving against half a store would be quiet data loss.
        store_ = std::make_unique<store::Database>(
            store::Database::openStore(store_options));
    }
    if (options_.startBatcher)
        batcher_.emplace([this] { batcherLoop(); });
}

Server::~Server()
{
    drain();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    batchWake_.notify_all();
    if (batcher_ && batcher_->joinable())
        batcher_->join();
}

util::TraceClock &
Server::clock()
{
    return options_.clock != nullptr ? *options_.clock : steadyClock_;
}

Deadline
Server::makeDeadline(double request_deadline_ms)
{
    const double budget = request_deadline_ms > 0.0
                              ? request_deadline_ms
                              : options_.defaultDeadlineMs;
    if (budget <= 0.0)
        return Deadline::unlimited();
    return Deadline::after(clock(), budget);
}

util::Status
Server::loadModel(const std::string &name, const std::string &path)
{
    auto loaded = core::loadMapmArtifact(path);
    if (!loaded.ok())
        return loaded.status().withContext("serve: load model " + path);
    auto artifact = std::move(loaded).value();
    registerModel(name.empty() ? artifact.benchmark : name,
                  std::move(artifact));
    return util::Status::okStatus();
}

void
Server::registerModel(const std::string &name, core::MapmArtifact artifact)
{
    auto shared = std::make_shared<const core::MapmArtifact>(
        std::move(artifact));
    std::lock_guard<std::mutex> lock(modelsMutex_);
    models_[name] = std::move(shared);
}

std::vector<std::string>
Server::modelNames() const
{
    std::vector<std::string> names;
    {
        std::lock_guard<std::mutex> lock(modelsMutex_);
        names.reserve(models_.size());
        for (const auto &[name, artifact] : models_)
            names.push_back(name);
    }
    std::sort(names.begin(), names.end());
    return names;
}

util::Status
Server::loadScorer(const std::string &name,
                   const std::string &model_path,
                   const std::string &cluster_path)
{
    auto loaded_model = core::loadMapmArtifact(model_path);
    if (!loaded_model.ok())
        return loaded_model.status().withContext(
            "serve: load scorer model " + model_path);
    auto loaded_clusters = mining::loadClusterArtifact(cluster_path);
    if (!loaded_clusters.ok())
        return loaded_clusters.status().withContext(
            "serve: load scorer clusters " + cluster_path);
    auto clusters = std::move(loaded_clusters).value();
    if (clusters.residualZThreshold <= 0.0)
        return util::Status::dataError(
                   "cluster artifact is uncalibrated (run cminer "
                   "cluster with --model to learn thresholds)")
            .withContext("serve: load scorer " + cluster_path);
    const std::string key =
        name.empty() ? clusters.benchmark : name;
    if (key.empty())
        return util::Status::dataError(
            "scorer has no name: the cluster artifact is store-wide "
            "and no explicit name was given");
    auto model = std::make_shared<const core::MapmArtifact>(
        std::move(loaded_model).value());
    registerScorer(key,
                   std::make_shared<const mining::AnomalyScorer>(
                       std::move(model), std::move(clusters)));
    return util::Status::okStatus();
}

void
Server::registerScorer(
    const std::string &name,
    std::shared_ptr<const mining::AnomalyScorer> scorer)
{
    std::lock_guard<std::mutex> lock(modelsMutex_);
    scorers_[name] = std::move(scorer);
}

std::vector<std::string>
Server::scorerNames() const
{
    std::vector<std::string> names;
    {
        std::lock_guard<std::mutex> lock(modelsMutex_);
        names.reserve(scorers_.size());
        for (const auto &[name, scorer] : scorers_)
            names.push_back(name);
    }
    std::sort(names.begin(), names.end());
    return names;
}

void
Server::respond(const std::function<void(std::string)> &done,
                const Response &response)
{
    {
        std::lock_guard<std::mutex> lock(countersMutex_);
        switch (response.code) {
          case util::StatusCode::Ok:
            if (response.type == MessageType::Predict)
                ++counters_.completed;
            break;
          case util::StatusCode::DeadlineExceeded:
            ++counters_.deadlineMissed;
            break;
          case util::StatusCode::CapacityError:
            if (response.type == MessageType::Mine)
                ++counters_.minesRefused;
            else
                ++counters_.shed;
            break;
          default:
            ++counters_.failed;
            break;
        }
    }
    switch (response.code) {
      case util::StatusCode::Ok:
        if (response.type == MessageType::Predict)
            util::count("serve.requests_ok");
        break;
      case util::StatusCode::DeadlineExceeded:
        util::count("serve.deadline_missed");
        break;
      case util::StatusCode::CapacityError:
        util::count(response.type == MessageType::Mine
                        ? "serve.mines_refused"
                        : "serve.requests_shed");
        break;
      default:
        util::count("serve.requests_failed");
        break;
    }
    done(encodeResponse(response));
}

void
Server::respondFailure(const std::function<void(std::string)> &done,
                       MessageType type, std::uint64_t id,
                       const util::Status &status)
{
    respond(done, Response::failure(type, id, status));
}

void
Server::submitFrame(std::string payload,
                    std::function<void(std::string)> done)
{
    auto decoded = decodeRequest(std::move(payload));
    if (!decoded.ok()) {
        {
            std::lock_guard<std::mutex> lock(countersMutex_);
            ++counters_.decodeErrors;
        }
        util::count("serve.decode_errors");
        // The id is unrecoverable from a frame that failed to decode;
        // the client matches this response by its Unknown type.
        respondFailure(done, MessageType::Unknown, 0, decoded.status());
        return;
    }
    {
        std::lock_guard<std::mutex> lock(countersMutex_);
        ++counters_.framesDecoded;
    }

    auto request = std::move(decoded).value();
    if (auto *predict = std::get_if<PredictRequest>(&request)) {
        handlePredict(std::move(*predict), std::move(done));
    } else if (auto *mine = std::get_if<MineRequest>(&request)) {
        handleMine(std::move(*mine), std::move(done));
    } else if (auto *stats = std::get_if<StatsRequest>(&request)) {
        handleStats(*stats, done);
    } else if (auto *score = std::get_if<ScoreRequest>(&request)) {
        handleScore(*score, done);
    } else {
        const auto &shutdown = std::get<ShutdownRequest>(request);
        beginDrain();
        Response ok;
        ok.type = MessageType::Shutdown;
        ok.id = shutdown.id;
        respond(done, ok);
    }
}

void
Server::handlePredict(PredictRequest request,
                      std::function<void(std::string)> done)
{
    util::Span span("serve.admit");
    span.number("rows", static_cast<double>(request.rowCount));

    const Deadline deadline = makeDeadline(request.deadlineMs);
    if (auto gate = deadline.check("admit"); !gate.ok()) {
        respondFailure(done, MessageType::Predict, request.id, gate);
        return;
    }

    std::shared_ptr<const core::MapmArtifact> artifact;
    {
        std::lock_guard<std::mutex> lock(modelsMutex_);
        auto it = models_.find(request.model);
        if (it != models_.end())
            artifact = it->second;
    }
    if (artifact == nullptr) {
        respondFailure(done, MessageType::Predict, request.id,
                       util::Status::dataError(
                           "unknown model '" + request.model + "'"));
        return;
    }
    // The batcher coalesces rows from many requests into one columnar
    // block, which is only sound when every request's columns are the
    // model's kept-event list exactly — names and order.
    if (request.events != artifact->events) {
        respondFailure(
            done, MessageType::Predict, request.id,
            util::Status::dataError(util::format(
                "event list mismatch for model '%s': expected the "
                "artifact's %zu kept events in model order, got %zu "
                "columns",
                request.model.c_str(), artifact->events.size(),
                request.events.size())));
        return;
    }

    const std::uint64_t id = request.id;
    bool admitted = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!draining_ && queue_.size() < options_.queueCap) {
            PendingPredict pending;
            pending.request = std::move(request);
            pending.artifact = std::move(artifact);
            pending.deadline = deadline;
            pending.done = std::move(done);
            pending.admittedMs = clock().nowMs();
            queue_.push_back(std::move(pending));
            ++outstanding_;
            admitted = true;
            util::gaugeSet("serve.queue_depth",
                           static_cast<double>(queue_.size()));
        }
    }
    if (admitted) {
        {
            std::lock_guard<std::mutex> lock(countersMutex_);
            ++counters_.admitted;
        }
        util::count("serve.requests_admitted");
        batchWake_.notify_all();
        return;
    }
    if (draining()) {
        // Shutdown semantics: admitted work finishes, new work is
        // turned away with a retriable error, not silently dropped.
        respondFailure(done, MessageType::Predict, id,
                       util::Status::transient(
                           "server is draining; predict refused"));
        return;
    }
    // Shed, never block: the admission queue is full and the accept
    // loop must stay responsive, so the request is rejected now.
    respondFailure(done, MessageType::Predict, id,
                   util::Status::capacityError(util::format(
                       "admission queue full (cap %zu); request shed",
                       options_.queueCap)));
}

void
Server::handleMine(MineRequest request,
                   std::function<void(std::string)> done)
{
    if (draining()) {
        respondFailure(done, MessageType::Mine, request.id,
                       util::Status::capacityError(
                           "server is draining; mining refused"));
        return;
    }
    {
        // Degradation ordering: mining is the expensive, deferrable
        // workload, so it is refused while predict capacity remains.
        std::lock_guard<std::mutex> lock(mutex_);
        if (underPressureLocked()) {
            respondFailure(
                done, MessageType::Mine, request.id,
                util::Status::capacityError(util::format(
                    "predict backlog at %zu of %zu; mining refused "
                    "under load",
                    queue_.size(), options_.queueCap)));
            return;
        }
        ++outstanding_;
    }

    const Deadline deadline = makeDeadline(request.deadlineMs);
    const std::uint64_t id = request.id;
    // Shared so the refusal path below can still respond after the
    // task lambda (and its captured copy) died inside a shed
    // trySubmit.
    auto done_shared =
        std::make_shared<std::function<void(std::string)>>(
            std::move(done));
    auto task = [this, request = std::move(request), deadline,
                 done_shared] {
        runMine(request, deadline, *done_shared);
        std::lock_guard<std::mutex> lock(mutex_);
        --outstanding_;
        drained_.notify_all();
    };
    auto submitted =
        minePool_.trySubmit(std::move(task), options_.mineQueueCap);
    if (!submitted.has_value()) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --outstanding_;
        }
        drained_.notify_all();
        respondFailure(*done_shared, MessageType::Mine, id,
                       util::Status::capacityError(util::format(
                           "mining queue full (cap %zu); job refused",
                           options_.mineQueueCap)));
    }
}

void
Server::runMine(const MineRequest &request, const Deadline &deadline,
                const std::function<void(std::string)> &done)
{
    util::Span span("serve.mine");
    span.label("benchmark", request.benchmark);

    if (auto gate = deadline.check("mine start"); !gate.ok()) {
        respondFailure(done, MessageType::Mine, request.id, gate);
        return;
    }
    const auto &suite = workload::BenchmarkSuite::instance();
    if (!suite.has(request.benchmark)) {
        respondFailure(done, MessageType::Mine, request.id,
                       util::Status::dataError("unknown benchmark '" +
                                               request.benchmark + "'"));
        return;
    }

    try {
        core::ProfileOptions options;
        options.backend = options_.backend;
        options.mlpxRuns = std::max<std::uint64_t>(1, request.runs);
        options.importance.minEvents = request.minEvents;
        // Tie the request deadline into the collection layer: retries
        // stop once the remaining budget is spent instead of backing
        // off past the point anyone cares about the answer.
        if (!deadline.isUnlimited())
            options.retry.deadlineMs =
                std::max(0.0, deadline.remainingMs());

        // With --store-dir the daemon mines into its persistent
        // segment-backed store: runs accumulate durably across
        // requests while this job's dataset reads pin the snapshot
        // they were built against. Without it, the old per-request
        // in-RAM database.
        store::Database local("haswell-e");
        store::Database &db = store_ != nullptr ? *store_ : local;
        core::CounterMiner miner(db, pmu::EventCatalog::instance(),
                                 options);
        util::Rng rng(request.seed);
        auto report = miner.profile(suite.byName(request.benchmark), rng);

        if (auto gate = deadline.check("mine finish"); !gate.ok()) {
            respondFailure(done, MessageType::Mine, request.id, gate);
            return;
        }

        core::MapmArtifact artifact;
        artifact.benchmark = report.benchmark;
        artifact.microarch = db.microarch();
        artifact.events = report.importance.mapmFeatures;
        artifact.ranking = report.importance.ranking;
        artifact.cvErrorPercent = report.importance.mapmErrorPercent;
        artifact.model = std::move(report.mapmModel);
        const std::string name = request.modelName.empty()
                                     ? report.benchmark
                                     : request.modelName;
        const std::size_t kept = artifact.events.size();
        const double error = artifact.cvErrorPercent;
        registerModel(name, std::move(artifact));

        if (store_ != nullptr) {
            // Durability barrier: this job's runs are sealed into a
            // segment before the success response goes out. A failed
            // seal keeps them buffered and readable; it warns rather
            // than failing a mine that already produced its model.
            const util::Status flushed = store_->tryFlush();
            if (!flushed.ok())
                util::warn("serve: store flush failed: " +
                           flushed.message());
        }

        {
            std::lock_guard<std::mutex> lock(countersMutex_);
            ++counters_.minesCompleted;
        }
        util::count("serve.mines_completed");
        Response ok;
        ok.type = MessageType::Mine;
        ok.id = request.id;
        ok.text = util::format(
            "mined %s: MAPM with %zu events, cv error %.2f%%; serving "
            "as '%s'",
            request.benchmark.c_str(), kept, error, name.c_str());
        respond(done, ok);
    } catch (const std::exception &e) {
        // Mining failures (bad options, degradation bounds) must come
        // back as a response, never escape onto the worker thread.
        respondFailure(done, MessageType::Mine, request.id,
                       util::Status::dataError(
                           std::string("mining failed: ") + e.what()));
    }
}

void
Server::handleStats(const StatsRequest &request,
                    const std::function<void(std::string)> &done)
{
    Response ok;
    ok.type = MessageType::Stats;
    ok.id = request.id;
    ok.text = statsJson();
    respond(done, ok);
}

void
Server::handleScore(const ScoreRequest &request,
                    const std::function<void(std::string)> &done)
{
    util::Span span("serve.score");
    span.label("scorer", request.scorer);
    span.number("rows", static_cast<double>(request.rowCount));

    const Deadline deadline = makeDeadline(request.deadlineMs);
    if (auto gate = deadline.check("score admit"); !gate.ok()) {
        respondFailure(done, MessageType::Score, request.id, gate);
        return;
    }
    if (draining()) {
        respondFailure(done, MessageType::Score, request.id,
                       util::Status::transient(
                           "server is draining; score refused"));
        return;
    }

    std::shared_ptr<const mining::AnomalyScorer> scorer;
    {
        std::lock_guard<std::mutex> lock(modelsMutex_);
        auto it = scorers_.find(request.scorer);
        if (it != scorers_.end())
            scorer = it->second;
    }
    if (scorer == nullptr) {
        respondFailure(done, MessageType::Score, request.id,
                       util::Status::dataError("unknown scorer '" +
                                               request.scorer + "'"));
        return;
    }
    if (request.events != scorer->model().events) {
        respondFailure(
            done, MessageType::Score, request.id,
            util::Status::dataError(util::format(
                "event list mismatch for scorer '%s': expected the "
                "MAPM's %zu kept events in model order, got %zu "
                "columns",
                request.scorer.c_str(), scorer->model().events.size(),
                request.events.size())));
        return;
    }

    auto scored = scorer->score(request.values, request.rowCount,
                                request.measured);
    if (!scored.ok()) {
        respondFailure(done, MessageType::Score, request.id,
                       scored.status());
        return;
    }
    const mining::ScoreResult &verdict = scored.value();
    if (auto gate = deadline.check("score respond"); !gate.ok()) {
        respondFailure(done, MessageType::Score, request.id, gate);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(countersMutex_);
        ++counters_.scored;
        if (verdict.anomalous)
            ++counters_.anomaliesFlagged;
    }
    util::count("serve.scores");
    if (verdict.anomalous)
        util::count("serve.anomalies_flagged");

    Response ok;
    ok.type = MessageType::Score;
    ok.id = request.id;
    ok.anomalous = verdict.anomalous;
    ok.residualZ = verdict.residualZ;
    ok.signatureDistance = verdict.signatureDistance;
    ok.familyIndex = verdict.familyIndex;
    ok.text = util::format(
        "%s: residual z %.3f%s, signature distance %.4f%s (family "
        "%zu)",
        verdict.anomalous ? "ANOMALOUS" : "ok", verdict.residualZ,
        verdict.residualFlag ? " [flagged]" : "",
        verdict.signatureDistance,
        verdict.signatureFlag ? " [flagged]" : "",
        verdict.familyIndex);
    respond(done, ok);
}

bool
Server::underPressureLocked() const
{
    return queue_.size() * 2 >= options_.queueCap;
}

std::size_t
Server::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

bool
Server::draining() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return draining_;
}

void
Server::beginDrain()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        draining_ = true;
    }
    batchWake_.notify_all();
}

void
Server::drain()
{
    beginDrain();
    if (!batcher_.has_value()) {
        // Manual mode: nothing else will pump the queue.
        while (runBatchOnce() > 0) {
        }
    }
    std::unique_lock<std::mutex> lock(mutex_);
    drained_.wait(lock, [this] {
        return queue_.empty() && outstanding_ == 0;
    });
}

ServeCounters
Server::counters() const
{
    std::lock_guard<std::mutex> lock(countersMutex_);
    return counters_;
}

std::string
Server::statsJson() const
{
    const ServeCounters c = counters();
    const auto models = modelNames();
    util::JsonWriter json;
    json.beginObject();
    json.key("serve");
    json.beginObject();
    json.key("queueDepth");
    json.value(queueDepth());
    json.key("draining");
    json.value(draining());
    json.key("models");
    json.beginArray();
    for (const auto &name : models)
        json.value(name);
    json.endArray();
    json.key("scorers");
    json.beginArray();
    for (const auto &name : scorerNames())
        json.value(name);
    json.endArray();
    json.key("counters");
    json.beginObject();
    json.key("framesDecoded");
    json.value(static_cast<std::size_t>(c.framesDecoded));
    json.key("decodeErrors");
    json.value(static_cast<std::size_t>(c.decodeErrors));
    json.key("admitted");
    json.value(static_cast<std::size_t>(c.admitted));
    json.key("shed");
    json.value(static_cast<std::size_t>(c.shed));
    json.key("completed");
    json.value(static_cast<std::size_t>(c.completed));
    json.key("failed");
    json.value(static_cast<std::size_t>(c.failed));
    json.key("deadlineMissed");
    json.value(static_cast<std::size_t>(c.deadlineMissed));
    json.key("batches");
    json.value(static_cast<std::size_t>(c.batches));
    json.key("rowsScored");
    json.value(static_cast<std::size_t>(c.rowsScored));
    json.key("minesCompleted");
    json.value(static_cast<std::size_t>(c.minesCompleted));
    json.key("minesRefused");
    json.value(static_cast<std::size_t>(c.minesRefused));
    json.key("scored");
    json.value(static_cast<std::size_t>(c.scored));
    json.key("anomaliesFlagged");
    json.value(static_cast<std::size_t>(c.anomaliesFlagged));
    json.endObject();
    json.key("latencyMs");
    json.beginObject();
    json.key("count");
    json.value(static_cast<std::size_t>(latency_.count()));
    json.key("p50");
    json.value(latency_.percentile(0.50));
    json.key("p99");
    json.value(latency_.percentile(0.99));
    json.key("max");
    json.value(latency_.maxMs());
    json.endObject();
    if (store_ != nullptr) {
        const store::StoreStats s = store_->storeStats();
        json.key("store");
        json.beginObject();
        json.key("runs");
        json.value(store_->runCount());
        json.key("segments");
        json.value(s.segmentCount);
        json.key("bufferedRuns");
        json.value(s.bufferedRuns);
        json.key("bufferedBytes");
        json.value(s.bufferedBytes);
        json.key("segmentFileBytes");
        json.value(static_cast<std::size_t>(s.segmentFileBytes));
        json.key("seals");
        json.value(static_cast<std::size_t>(s.seals));
        json.key("compactions");
        json.value(static_cast<std::size_t>(s.compactions));
        json.endObject();
    }
    json.endObject();
    json.endObject();
    return json.str();
}

std::vector<Server::PendingPredict>
Server::takeBatchLocked()
{
    std::vector<PendingPredict> batch;
    std::deque<PendingPredict> rest;
    // Group by artifact identity, not model name: each request was
    // validated (event list, value layout) against the artifact
    // snapshot taken at its own admission, and a mine job can swap the
    // artifact under the same name while requests sit queued. Batching
    // across snapshots would index rows with the wrong column count.
    const std::shared_ptr<const core::MapmArtifact> artifact =
        queue_.front().artifact;
    std::size_t rows = 0;
    for (auto &pending : queue_) {
        if (pending.artifact == artifact &&
            (batch.empty() || rows < options_.maxBatchRows)) {
            rows += pending.request.rowCount;
            batch.push_back(std::move(pending));
        } else {
            rest.push_back(std::move(pending));
        }
    }
    queue_ = std::move(rest);
    util::gaugeSet("serve.queue_depth",
                   static_cast<double>(queue_.size()));
    return batch;
}

std::size_t
Server::runBatchOnce()
{
    std::vector<PendingPredict> batch;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (queue_.empty())
            return 0;
        batch = takeBatchLocked();
    }
    return processBatch(std::move(batch));
}

std::size_t
Server::processBatch(std::vector<PendingPredict> batch)
{
    util::Span span("serve.batch");
    span.number("requests", static_cast<double>(batch.size()));

    // Stage gate: a request whose budget expired while queued is
    // answered DeadlineExceeded here, before it costs batch capacity.
    std::vector<PendingPredict> live;
    live.reserve(batch.size());
    for (auto &pending : batch) {
        auto gate = pending.deadline.check("dequeue");
        if (!gate.ok())
            respondFailure(pending.done, MessageType::Predict,
                           pending.request.id, gate);
        else
            live.push_back(std::move(pending));
    }

    if (!live.empty()) {
        const auto &artifact = *live.front().artifact;
        const std::size_t event_count = artifact.events.size();
        std::size_t total_rows = 0;
        for (const auto &pending : live)
            total_rows += pending.request.rowCount;
        span.number("rows", static_cast<double>(total_rows));

        try {
            // One columnar block for the whole group: requests'
            // row-major matrices transpose into shared columns, scored
            // through the same DatasetView path as the predict CLI.
            // predictAll is per-row independent and deterministic for
            // any thread count, so slicing the block back per request
            // returns bitwise the same values a lone request would get.
            std::vector<std::vector<double>> columns(
                event_count, std::vector<double>(total_rows));
            std::size_t offset = 0;
            for (const auto &pending : live) {
                const auto &r = pending.request;
                for (std::size_t row = 0; row < r.rowCount; ++row)
                    for (std::size_t e = 0; e < event_count; ++e)
                        columns[e][offset + row] =
                            r.values[row * event_count + e];
                offset += r.rowCount;
            }
            const ml::Dataset data = ml::Dataset::fromColumns(
                artifact.events, std::move(columns),
                std::vector<double>(total_rows, 0.0));
            const std::vector<double> predictions =
                artifact.model.predictAll(data);

            offset = 0;
            for (auto &pending : live) {
                const auto &r = pending.request;
                // Last gate: the work is done, but a blown budget
                // still reports DeadlineExceeded — a late success is
                // indistinguishable from a stale one to the caller.
                auto gate = pending.deadline.check("respond");
                if (!gate.ok()) {
                    respondFailure(pending.done, MessageType::Predict,
                                   r.id, gate);
                    pending.done = nullptr;
                } else {
                    Response ok;
                    ok.type = MessageType::Predict;
                    ok.id = r.id;
                    ok.predictions.assign(
                        predictions.begin() +
                            static_cast<std::ptrdiff_t>(offset),
                        predictions.begin() +
                            static_cast<std::ptrdiff_t>(offset +
                                                        r.rowCount));
                    const double waited =
                        clock().nowMs() - pending.admittedMs;
                    latency_.record(waited);
                    util::recordDuration("serve.latency_ms", waited);
                    respond(pending.done, ok);
                    pending.done = nullptr;
                }
                offset += r.rowCount;
            }

            {
                std::lock_guard<std::mutex> lock(countersMutex_);
                ++counters_.batches;
                counters_.rowsScored += total_rows;
            }
            util::count("serve.batches");
            util::count("serve.rows_scored", total_rows);
        } catch (const std::exception &e) {
            // Scoring must never take the daemon down; every request
            // in the doomed batch still gets its response — but only
            // one. Requests already answered above cleared their done
            // callback, so an exception escaping mid-loop cannot
            // re-respond to them (a second done() would double-count
            // the connection's in-flight drain).
            for (auto &pending : live)
                if (pending.done)
                    respondFailure(
                        pending.done, MessageType::Predict,
                        pending.request.id,
                        util::Status::dataError(
                            std::string("batch scoring failed: ") +
                            e.what()));
        }
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        outstanding_ -= batch.size();
    }
    drained_.notify_all();
    return batch.size();
}

void
Server::batcherLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        batchWake_.wait(lock, [this] {
            return stopping_ || !queue_.empty();
        });
        if (queue_.empty()) {
            if (stopping_)
                return;
            continue;
        }
        if (options_.batchWindowMs > 0.0 && !stopping_ && !draining_ &&
            !underPressureLocked()) {
            // Linger briefly so concurrent small requests coalesce;
            // pressure or a drain cuts the wait short (degradation:
            // smaller batches beat shed requests).
            batchWake_.wait_for(
                lock,
                std::chrono::duration<double, std::milli>(
                    options_.batchWindowMs),
                [this] {
                    return stopping_ || draining_ ||
                           underPressureLocked();
                });
        }
        auto batch = takeBatchLocked();
        lock.unlock();
        processBatch(std::move(batch));
        lock.lock();
    }
}

} // namespace cminer::serve

/**
 * @file
 * The `cminer serve` wire protocol (DESIGN.md §14).
 *
 * Framing: every message travels as one length-prefixed frame —
 *
 *   u32 payload_length (little-endian)   payload bytes
 *
 * with payload_length bounded by max_frame_bytes; a declared length
 * above the bound is rejected *before any allocation*, mirroring the
 * checkpoint container's bounded-read discipline (DESIGN.md §12).
 * Framing errors (short header, torn payload) are connection-fatal by
 * design: a plain length-prefixed stream has no resync point, so the
 * serving loop treats a bad frame as a lost connection rather than
 * guessing where the next message starts.
 *
 * Payloads: a u8 message type, a u64 request id the response echoes
 * (clients pipeline many requests per connection and match responses
 * by id — responses may arrive out of request order), then typed
 * fields. All integers are little-endian; strings are u64-length-
 * prefixed UTF-8; every count is validated against the bytes actually
 * remaining before allocation (util::BinaryReader bounded reads).
 *
 * The protocol is deliberately small: predict (score rows against a
 * loaded MAPM checkpoint), stats (the service dashboard), mine (run a
 * mining job and register the result as a servable model), shutdown
 * (begin a graceful drain), score (anomaly surveillance: judge one
 * run's rows against a MAPM + cluster-artifact scorer, DESIGN.md §17).
 */

#ifndef CMINER_SERVE_PROTOCOL_H
#define CMINER_SERVE_PROTOCOL_H

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/status.h"

namespace cminer::serve {

/** Hard ceiling on one frame's payload, validated before allocation. */
inline constexpr std::size_t max_frame_bytes = 16u << 20;

/** Ceiling on events per predict request (the catalog has 229). */
inline constexpr std::size_t max_events_per_request = 4096;

/** Ceiling on rows per predict request. */
inline constexpr std::size_t max_rows_per_request = 1u << 20;

/** Wire message types; response frames echo the request's type. */
enum class MessageType : std::uint8_t
{
    /** Decode failure before the type was known (responses only). */
    Unknown = 0,
    Predict = 1,
    Stats = 2,
    Mine = 3,
    Shutdown = 4,
    Score = 5,
};

/** Score rows against a loaded model checkpoint. */
struct PredictRequest
{
    std::uint64_t id = 0;
    /** Time budget in ms from server receipt; 0 = server default. */
    double deadlineMs = 0.0;
    /** Name the model was registered under (its benchmark). */
    std::string model;
    /**
     * Feature columns of `values`, which must equal the model
     * artifact's kept-event list exactly (names and order) — the
     * contract that lets the server batch rows from many requests
     * into one columnar block with no per-row projection.
     */
    std::vector<std::string> events;
    /** Rows in `values`. */
    std::uint64_t rowCount = 0;
    /** Row-major rowCount x events.size() feature matrix. */
    std::vector<double> values;
};

/** Fetch the service's counters/latency dashboard as JSON. */
struct StatsRequest
{
    std::uint64_t id = 0;
};

/** Mine a benchmark's MAPM and register it as a servable model. */
struct MineRequest
{
    std::uint64_t id = 0;
    /** Time budget in ms from server receipt; 0 = server default. */
    double deadlineMs = 0.0;
    /** Benchmark to mine. */
    std::string benchmark;
    /** Register the result under this name; empty = the benchmark. */
    std::string modelName;
    std::uint64_t runs = 2;
    std::uint64_t minEvents = 96;
    std::uint64_t seed = 42;
};

/** Begin a graceful drain: finish admitted work, reject the rest. */
struct ShutdownRequest
{
    std::uint64_t id = 0;
};

/**
 * Score one run against a registered anomaly scorer (a MAPM plus a
 * calibrated cluster artifact). Unlike predict, a score judges a whole
 * run, so the request carries the measured IPC series alongside the
 * feature rows.
 */
struct ScoreRequest
{
    std::uint64_t id = 0;
    /** Time budget in ms from server receipt; 0 = server default. */
    double deadlineMs = 0.0;
    /** Name the scorer was registered under. */
    std::string scorer;
    /**
     * Feature columns of `values`; must equal the scorer's MAPM
     * kept-event list exactly (names and order).
     */
    std::vector<std::string> events;
    /** Rows (sampled intervals) in the run. */
    std::uint64_t rowCount = 0;
    /** Row-major rowCount x events.size() feature matrix. */
    std::vector<double> values;
    /** Measured IPC, one value per row (the signature source). */
    std::vector<double> measured;
};

/** Any request message. */
using Request =
    std::variant<PredictRequest, StatsRequest, MineRequest,
                 ShutdownRequest, ScoreRequest>;

/** The request's echoed id. */
std::uint64_t requestId(const Request &request);

/** The request's wire type. */
MessageType requestType(const Request &request);

/**
 * One response frame. `code` is Ok on success; on failure it carries
 * the same StatusCode taxonomy the pipeline uses (CapacityError =
 * shed, DeadlineExceeded = budget blown, ...) plus a message.
 */
struct Response
{
    MessageType type = MessageType::Unknown;
    std::uint64_t id = 0;
    cminer::util::StatusCode code = cminer::util::StatusCode::Ok;
    /** Error explanation; empty on success. */
    std::string message;
    /** Predict: one prediction per request row. */
    std::vector<double> predictions;
    /** Stats: the dashboard JSON. Mine/Score: a one-line summary. */
    std::string text;
    /** Score: the run tripped a calibrated threshold. */
    bool anomalous = false;
    /** Score: standardized prediction residual of the run. */
    double residualZ = 0.0;
    /** Score: DTW distance to the nearest workload-family medoid. */
    double signatureDistance = 0.0;
    /** Score: index of the nearest workload family. */
    std::uint64_t familyIndex = 0;

    /** Build an error response echoing a request's type and id. */
    static Response failure(MessageType type, std::uint64_t id,
                            const cminer::util::Status &status);

    /** The carried code+message as a Status. */
    cminer::util::Status status() const;
};

/** Encode a request payload (not yet framed). */
std::string encodeRequest(const Request &request);

/**
 * Decode a request payload. Every count/length is bounds-checked
 * before allocation; trailing bytes are rejected.
 */
cminer::util::StatusOr<Request> decodeRequest(std::string payload);

/** Encode a response payload (not yet framed). */
std::string encodeResponse(const Response &response);

/** Decode a response payload (bounded, like decodeRequest). */
cminer::util::StatusOr<Response> decodeResponse(std::string payload);

/**
 * The payload's message type without decoding the rest; Unknown for
 * an empty or unrecognized payload. Transports use this to spot a
 * Shutdown frame without a full decode.
 */
MessageType peekType(std::string_view payload);

/**
 * Append one frame (length prefix + payload) to `out`.
 * @return CapacityError when the payload exceeds max_frame_bytes
 */
cminer::util::Status appendFrame(std::string &out,
                                 std::string_view payload);

/**
 * Extract the next frame from `bytes` starting at `pos`, advancing
 * `pos` past it. Sets `eof` (and returns Ok) at a clean end of input;
 * a partial header or torn payload is a DataError naming the offset,
 * and an oversized declared length is rejected before any copy.
 */
cminer::util::Status nextFrame(std::string_view bytes, std::size_t &pos,
                               std::string &payload, bool &eof);

} // namespace cminer::serve

#endif // CMINER_SERVE_PROTOCOL_H

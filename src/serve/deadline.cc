#include "serve/deadline.h"

#include <limits>

#include "util/string_util.h"

namespace cminer::serve {

Deadline
Deadline::after(cminer::util::TraceClock &clock, double budget_ms)
{
    return Deadline(&clock, clock.nowMs() + budget_ms);
}

double
Deadline::remainingMs() const
{
    if (clock_ == nullptr)
        return std::numeric_limits<double>::infinity();
    return deadlineMs_ - clock_->nowMs();
}

bool
Deadline::expired() const
{
    return remainingMs() <= 0.0;
}

cminer::util::Status
Deadline::check(const char *stage) const
{
    const double remaining = remainingMs();
    if (remaining > 0.0)
        return cminer::util::Status::okStatus();
    return cminer::util::Status::deadlineExceeded(cminer::util::format(
        "%s: deadline exceeded by %.3fms", stage, -remaining));
}

} // namespace cminer::serve

/**
 * @file
 * Byte transports for the serving protocol: frame sources/sinks over
 * iostreams and file descriptors, deterministic fault-injecting
 * wrappers, and the connection serve loop shared by pipe mode and the
 * socket listener.
 *
 * The loop is deliberately asynchronous: it reads and admits frames as
 * fast as the source yields them and lets the server deliver responses
 * through a callback, so one pipelined connection can keep hundreds of
 * requests in flight — the shape the batching and admission layers are
 * built to absorb. Responses are written under a per-connection lock
 * (frames are never interleaved) and may arrive out of request order;
 * clients match them by the echoed id.
 *
 * Fault injection (DESIGN.md §9, extended in §14): FaultyFrameSource
 * and FaultyFrameSink deal deterministic transport damage — torn
 * frames, hangups, injected latency — from the same seeded injector
 * that damages perf text, so the serve loop is drivable by the
 * existing harness with bitwise-reproducible fault sequences.
 */

#ifndef CMINER_SERVE_TRANSPORT_H
#define CMINER_SERVE_TRANSPORT_H

#include <iosfwd>
#include <string>
#include <string_view>

#include "serve/protocol.h"
#include "util/fault_injection.h"
#include "util/retry.h"
#include "util/status.h"

namespace cminer::serve {

class Server;

/** Yields one frame payload per call until EOF or a framing error. */
class FrameSource
{
  public:
    virtual ~FrameSource() = default;

    /**
     * Read the next frame. Sets `eof` (and returns Ok) at a clean end
     * of stream. Any non-Ok status means framing is lost and the
     * connection is unusable — callers must stop reading.
     */
    virtual cminer::util::Status next(std::string &payload,
                                      bool &eof) = 0;
};

/** Writes one framed payload per call. */
class FrameSink
{
  public:
    virtual ~FrameSink() = default;

    /**
     * Frame and write one payload. A non-Ok status means the
     * connection is gone; callers must stop writing.
     */
    virtual cminer::util::Status write(std::string_view payload) = 0;
};

/** Frames read from a std::istream (pipe mode's input side). */
class StreamFrameSource : public FrameSource
{
  public:
    explicit StreamFrameSource(std::istream &in)
        : in_(in)
    {}

    cminer::util::Status next(std::string &payload, bool &eof) override;

  private:
    std::istream &in_;
};

/** Frames written to a std::ostream (pipe mode's output side). */
class StreamFrameSink : public FrameSink
{
  public:
    explicit StreamFrameSink(std::ostream &out)
        : out_(out)
    {}

    cminer::util::Status write(std::string_view payload) override;

  private:
    std::ostream &out_;
};

/**
 * Wraps a FrameSource with deterministic ingress faults. Per frame the
 * injector draws once: a torn frame surfaces as a DataError (framing
 * lost, source dead afterwards), a hangup as a premature EOF, a delay
 * as a sleep on the injected clock (a RecordingClock by default, so
 * tests stay wall-clock-free) before delivery.
 */
class FaultyFrameSource : public FrameSource
{
  public:
    /**
     * @param inner the real source; must outlive this wrapper
     * @param injector fault dealer; must outlive this wrapper
     * @param clock sleeps for injected latency; nullptr records
     *        nothing and sleeps nowhere
     */
    FaultyFrameSource(FrameSource &inner,
                      cminer::util::FaultInjector &injector,
                      cminer::util::RetryClock *clock = nullptr)
        : inner_(inner), injector_(injector), clock_(clock)
    {}

    cminer::util::Status next(std::string &payload, bool &eof) override;

  private:
    FrameSource &inner_;
    cminer::util::FaultInjector &injector_;
    cminer::util::RetryClock *clock_;
    /** Set once a torn frame or hangup killed the connection. */
    bool dead_ = false;
};

/**
 * Wraps a FrameSink with deterministic egress faults against a raw
 * byte stream: a torn frame writes only a prefix of the framed bytes
 * and kills the connection, a hangup drops the frame and everything
 * after it, a delay sleeps on the injected clock before writing.
 */
class FaultyStreamFrameSink : public FrameSink
{
  public:
    FaultyStreamFrameSink(std::ostream &out,
                          cminer::util::FaultInjector &injector,
                          cminer::util::RetryClock *clock = nullptr)
        : out_(out), injector_(injector), clock_(clock)
    {}

    cminer::util::Status write(std::string_view payload) override;

  private:
    std::ostream &out_;
    cminer::util::FaultInjector &injector_;
    cminer::util::RetryClock *clock_;
    bool dead_ = false;
};

/** Frames read from a file descriptor (socket connections). */
class FdFrameSource : public FrameSource
{
  public:
    /** Does not own the fd. */
    explicit FdFrameSource(int fd)
        : fd_(fd)
    {}

    cminer::util::Status next(std::string &payload, bool &eof) override;

  private:
    int fd_;
};

/**
 * Frames written to a file descriptor (socket connections). A peer
 * that hung up surfaces as a Transient EPIPE status, never a SIGPIPE:
 * writes go through send(MSG_NOSIGNAL), with a write() fallback for
 * non-socket fds.
 */
class FdFrameSink : public FrameSink
{
  public:
    /** Does not own the fd. */
    explicit FdFrameSink(int fd)
        : fd_(fd)
    {}

    cminer::util::Status write(std::string_view payload) override;

  private:
    int fd_;
};

/** What one connection's serve loop did before returning. */
struct ServeLoopResult
{
    /** Frames successfully read and submitted. */
    std::size_t framesRead = 0;
    /** A shutdown request arrived on this connection. */
    bool shutdownRequested = false;
    /**
     * Ok after a clean EOF; otherwise the framing error that killed
     * the connection (already counted in serve.transport_errors).
     */
    cminer::util::Status transportStatus;
};

/**
 * Serve one connection: read frames from `source`, submit each to the
 * server, write responses to `sink` as they complete (out of order,
 * under an internal lock). Returns after EOF, a framing error, or a
 * shutdown frame — always after every in-flight response for this
 * connection has been delivered or dropped. Never throws; injected
 * transport faults and malformed frames surface as counted statuses.
 */
ServeLoopResult serveConnection(Server &server, FrameSource &source,
                                FrameSink &sink);

} // namespace cminer::serve

#endif // CMINER_SERVE_TRANSPORT_H

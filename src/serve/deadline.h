/**
 * @file
 * Per-request deadline propagation for the serving layer.
 *
 * A Deadline is a cheap copyable handle on "this work is worthless
 * after instant T". The serving pipeline threads one handle through
 * every stage a request crosses — admission, dequeue, scoring,
 * response — and each stage calls check() before spending effort, so a
 * request that can no longer make its deadline is dropped at the
 * earliest stage that notices instead of consuming batch capacity and
 * then being thrown away (DESIGN.md §14).
 *
 * The time source is an injectable util::TraceClock, the same pattern
 * as the tracer and the retry clock: tests drive a ManualClock and
 * assert exact expiry behavior with zero wall-clock dependence.
 */

#ifndef CMINER_SERVE_DEADLINE_H
#define CMINER_SERVE_DEADLINE_H

#include "util/status.h"
#include "util/trace.h"

namespace cminer::serve {

/**
 * An absolute expiry instant against an injectable clock, or the
 * unlimited deadline (default), which never expires.
 */
class Deadline
{
  public:
    /** The unlimited deadline: never expires, remaining is +inf. */
    Deadline() = default;

    /**
     * A deadline `budget_ms` from now on `clock`. The clock must
     * outlive every copy of the handle (the server owns its clock for
     * exactly this reason). A non-positive budget is already expired.
     */
    static Deadline after(cminer::util::TraceClock &clock,
                          double budget_ms);

    /** Same as default construction; reads as intent at call sites. */
    static Deadline unlimited() { return Deadline(); }

    /** True when this handle can never expire. */
    bool isUnlimited() const { return clock_ == nullptr; }

    /** Milliseconds until expiry (negative once past; +inf unlimited). */
    double remainingMs() const;

    /** True once the clock has reached the expiry instant. */
    bool expired() const;

    /**
     * Gate one pipeline stage: Ok while time remains, else a
     * DeadlineExceeded status naming the stage and the overshoot —
     * `check("dequeue")` -> "dequeue: deadline exceeded by 12.5ms".
     */
    cminer::util::Status check(const char *stage) const;

  private:
    Deadline(cminer::util::TraceClock *clock, double deadline_ms)
        : clock_(clock), deadlineMs_(deadline_ms)
    {}

    /** Null for the unlimited deadline. */
    cminer::util::TraceClock *clock_ = nullptr;
    /** Expiry instant in the clock's epoch. */
    double deadlineMs_ = 0.0;
};

} // namespace cminer::serve

#endif // CMINER_SERVE_DEADLINE_H

/**
 * @file
 * The `cminer serve` core: a long-lived, deadline-aware,
 * overload-shedding mining/serving daemon (DESIGN.md §14).
 *
 * Transport-agnostic by construction: the server consumes decoded
 * request frames through submitFrame() and delivers encoded response
 * frames through a completion callback, so the same core sits behind
 * pipe mode (deterministic tests drive it with in-memory frames) and
 * the AF_UNIX listener.
 *
 * Robustness posture, in priority order:
 *  1. **Never block admission.** Predict requests land in a bounded
 *     queue; when it is full they are shed *immediately* with a
 *     CapacityError response — the accept loop never waits on the
 *     pipeline. Mining jobs go through ThreadPool::trySubmit with
 *     their own small bound.
 *  2. **Deadlines are enforced at every stage.** Each request carries
 *     a Deadline handle (client budget, else the server default)
 *     checked at admission, at dequeue, and before the response is
 *     written; a blown budget yields DeadlineExceeded, never a stale
 *     success.
 *  3. **Degrade before failing.** Under queue pressure the batcher
 *     stops waiting for fuller batches (smaller batches, lower
 *     latency, same results — scoring is per-row deterministic), and
 *     mining requests are refused while predict capacity remains.
 *  4. **Drain cleanly.** A shutdown request (or drain()) stops
 *     admissions, finishes every admitted request, and waits for the
 *     mining worker to go idle; nothing admitted is dropped.
 *
 * Batching: concurrent predict rows for the same model are coalesced
 * into one columnar block (ml::Dataset::fromColumns) and scored
 * through the zero-copy DatasetView path on the shared thread pool.
 * Gbrt::predictAll is per-row independent and deterministic for any
 * thread count, so batch composition can never change a prediction —
 * the property the byte-identity acceptance test pins down.
 */

#ifndef CMINER_SERVE_SERVER_H
#define CMINER_SERVE_SERVER_H

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/checkpoint.h"
#include "mining/anomaly.h"
#include "pmu/backend.h"
#include "serve/deadline.h"
#include "store/database.h"
#include "serve/protocol.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace cminer::serve {

/** Serving configuration. */
struct ServerOptions
{
    /**
     * Admission queue bound: predict requests waiting to be batched.
     * Requests arriving when the queue is full are shed with a
     * CapacityError — the robustness contract of the daemon.
     */
    std::size_t queueCap = 64;
    /** Row budget per columnar scoring batch. */
    std::size_t maxBatchRows = 256;
    /**
     * How long the batcher waits for more same-model rows after the
     * first request arrives, in wall milliseconds. Skipped entirely
     * under queue pressure (degradation: smaller batches beat shed
     * requests). 0 disables the wait.
     */
    double batchWindowMs = 0.5;
    /**
     * Deadline applied to requests that carry none, in ms. 0 = no
     * default (such requests never expire).
     */
    double defaultDeadlineMs = 0.0;
    /** Bound on mining jobs waiting behind the in-flight one. */
    std::size_t mineQueueCap = 1;
    /**
     * Spawn the background batcher thread. Tests set this false and
     * pump the pipeline by hand with runBatchOnce(), which together
     * with an injected ManualClock makes every schedule and deadline
     * decision deterministic.
     */
    bool startBatcher = true;
    /**
     * Time source for deadlines and latency accounting; null uses an
     * internal steady clock. Injected by tests (ManualClock).
     */
    cminer::util::TraceClock *clock = nullptr;
    /**
     * Directory of the out-of-core run store (--store-dir). When set,
     * the daemon mines into one persistent segment-backed database:
     * collected runs survive across mine requests and restarts, and
     * resident memory follows storeMemoryBudgetBytes rather than the
     * accumulated data. Empty keeps the old per-request in-RAM
     * database.
     */
    std::string storeDir;
    /** Memory budget handed to the segment store (--memory-budget-mb). */
    std::size_t storeMemoryBudgetBytes = 64ull << 20;
    /**
     * Collection backend for mine requests (--backend). Perf is probed
     * per mining job and falls back to sim with a logged reason, so a
     * daemon started with --backend=perf keeps serving on hosts where
     * counter access later disappears.
     */
    cminer::pmu::BackendKind backend = cminer::pmu::BackendKind::Sim;
};

/** Monotonic serving counters (a consistent snapshot). */
struct ServeCounters
{
    /** Frames decoded into requests. */
    std::uint64_t framesDecoded = 0;
    /** Frames rejected by the protocol decoder. */
    std::uint64_t decodeErrors = 0;
    /** Predict requests accepted into the queue. */
    std::uint64_t admitted = 0;
    /** Predict requests shed with CapacityError (queue full). */
    std::uint64_t shed = 0;
    /** Predict requests answered Ok. */
    std::uint64_t completed = 0;
    /** Requests answered with a non-Ok, non-shed, non-deadline code. */
    std::uint64_t failed = 0;
    /** Requests answered DeadlineExceeded at any stage. */
    std::uint64_t deadlineMissed = 0;
    /** Columnar scoring batches run. */
    std::uint64_t batches = 0;
    /** Rows scored across all batches. */
    std::uint64_t rowsScored = 0;
    /** Mining jobs finished successfully. */
    std::uint64_t minesCompleted = 0;
    /** Mining jobs refused (drain, pressure, or mine queue full). */
    std::uint64_t minesRefused = 0;
    /** Score requests answered Ok. */
    std::uint64_t scored = 0;
    /** Scored runs that tripped a calibrated threshold. */
    std::uint64_t anomaliesFlagged = 0;
};

/**
 * Fixed-bucket latency histogram with power-of-two bucket edges from
 * 1/16 ms up; record() and percentile() take an internal mutex
 * (request granularity, never a hot loop). Percentiles report the
 * bucket's upper edge — a deterministic upper bound.
 */
class LatencyHistogram
{
  public:
    void record(double ms);

    /** Upper edge of the bucket holding the q-quantile (q in (0,1]). */
    double percentile(double q) const;

    std::uint64_t count() const;
    double maxMs() const;

  private:
    static constexpr std::size_t bucket_count = 28;

    /** Upper edge of bucket `index` in ms: 2^(index-4). */
    static double edge(std::size_t index);

    mutable std::mutex mutex_;
    std::array<std::uint64_t, bucket_count> buckets_{};
    std::uint64_t count_ = 0;
    double maxMs_ = 0.0;
};

/**
 * The serving daemon core. Thread-safe: submitFrame may be called from
 * any number of connection threads; responses are delivered through
 * the per-request callback from whichever thread finished the work
 * (the caller for shed/stats/errors, the batcher for predicts, the
 * mining worker for mines). Every submitted frame gets exactly one
 * response.
 */
class Server
{
  public:
    explicit Server(ServerOptions options = {});

    /** Drains admitted work, then joins the batcher and mine worker. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Options in effect. */
    const ServerOptions &options() const { return options_; }

    /**
     * Load a MAPM checkpoint and register it under `name` (empty =
     * the artifact's benchmark). Models load once, up front — the
     * request path never touches disk.
     */
    cminer::util::Status loadModel(const std::string &name,
                                   const std::string &path);

    /** Register an in-memory artifact under `name`. */
    void registerModel(const std::string &name,
                       core::MapmArtifact artifact);

    /** Registered model names, sorted. */
    std::vector<std::string> modelNames() const;

    /**
     * Load a MAPM checkpoint plus a calibrated cluster artifact and
     * register the pair as an anomaly scorer under `name` (empty =
     * the cluster artifact's benchmark). An uncalibrated cluster
     * artifact is refused — scoring against unlearned thresholds
     * would flag everything or nothing.
     */
    cminer::util::Status loadScorer(const std::string &name,
                                    const std::string &model_path,
                                    const std::string &cluster_path);

    /** Register an in-memory scorer under `name`. */
    void
    registerScorer(const std::string &name,
                   std::shared_ptr<const mining::AnomalyScorer> scorer);

    /** Registered scorer names, sorted. */
    std::vector<std::string> scorerNames() const;

    /**
     * Submit one raw request payload. `done` is invoked exactly once
     * with the encoded response payload — possibly before submitFrame
     * returns (decode errors, shed requests, stats) or later from a
     * worker thread. Never blocks on the pipeline.
     */
    void submitFrame(std::string payload,
                     std::function<void(std::string)> done);

    /**
     * Manual batcher pump (startBatcher=false): run one batching
     * round over the current queue.
     * @return requests responded to in this round
     */
    std::size_t runBatchOnce();

    /** Predict requests currently queued. */
    std::size_t queueDepth() const;

    /** True once a drain began (shutdown frame or beginDrain). */
    bool draining() const;

    /** Stop admitting; already-admitted work still completes. */
    void beginDrain();

    /**
     * beginDrain, then block until every admitted request has been
     * responded to and the mining worker is idle. With no batcher
     * thread the caller's thread pumps the remaining queue itself.
     */
    void drain();

    /** Counter snapshot (internally consistent). */
    ServeCounters counters() const;

    /** End-to-end predict latency histogram. */
    const LatencyHistogram &latency() const { return latency_; }

    /** The stats dashboard as one JSON object. */
    std::string statsJson() const;

  private:
    /** One admitted predict request waiting to be batched. */
    struct PendingPredict
    {
        PredictRequest request;
        std::shared_ptr<const core::MapmArtifact> artifact;
        Deadline deadline;
        std::function<void(std::string)> done;
        /** Clock time at admission, for latency accounting. */
        double admittedMs = 0.0;
    };

    cminer::util::TraceClock &clock();

    /** Build the Deadline for a request-supplied budget. */
    Deadline makeDeadline(double request_deadline_ms);

    void handlePredict(PredictRequest request,
                       std::function<void(std::string)> done);
    void handleMine(MineRequest request,
                    std::function<void(std::string)> done);
    void handleStats(const StatsRequest &request,
                     const std::function<void(std::string)> &done);
    /**
     * Score one run synchronously on the submitting thread: a score
     * is a single-run, sub-millisecond judgment (one predictAll pass
     * plus one pruned medoid search), so it bypasses the batcher the
     * way stats does rather than competing for predict capacity.
     */
    void handleScore(const ScoreRequest &request,
                     const std::function<void(std::string)> &done);

    /** Encode, count, and deliver one response. */
    void respond(const std::function<void(std::string)> &done,
                 const Response &response);

    /** Shorthand for respond(failure(...)). */
    void respondFailure(const std::function<void(std::string)> &done,
                        MessageType type, std::uint64_t id,
                        const cminer::util::Status &status);

    /** The mining job body; runs on the mine worker. */
    void runMine(const MineRequest &request, const Deadline &deadline,
                 const std::function<void(std::string)> &done);

    void batcherLoop();

    /**
     * Pop one same-model group (up to maxBatchRows rows) off the
     * queue. Called with mutex_ held; returns the group.
     */
    std::vector<PendingPredict> takeBatchLocked();

    /** Score and respond to one group (no locks held). */
    std::size_t processBatch(std::vector<PendingPredict> batch);

    /** True when queue pressure warrants skipping the batch window. */
    bool underPressureLocked() const;

    ServerOptions options_;
    cminer::util::SteadyClock steadyClock_;

    mutable std::mutex modelsMutex_;
    std::unordered_map<std::string,
                       std::shared_ptr<const core::MapmArtifact>>
        models_;
    /** Anomaly scorers, guarded by modelsMutex_ like models_. */
    std::unordered_map<std::string,
                       std::shared_ptr<const mining::AnomalyScorer>>
        scorers_;

    mutable std::mutex mutex_;
    std::deque<PendingPredict> queue_;
    std::condition_variable batchWake_;
    std::condition_variable drained_;
    /** Admitted-but-unanswered requests + in-flight mines. */
    std::size_t outstanding_ = 0;
    bool draining_ = false;
    /** Set by the destructor: batcher exits once the queue is empty. */
    bool stopping_ = false;

    mutable std::mutex countersMutex_;
    ServeCounters counters_;
    LatencyHistogram latency_;

    /** One worker: mining is serialized, bounded by mineQueueCap. */
    cminer::util::ThreadPool minePool_;
    std::optional<std::thread> batcher_;

    /**
     * Persistent out-of-core run store (storeDir). Only the mine
     * worker mutates it (single-writer); any reads concurrent with
     * mining go through pinned snapshots, mirroring the batcher's
     * artifact-snapshot rule.
     */
    std::unique_ptr<cminer::store::Database> store_;
};

} // namespace cminer::serve

#endif // CMINER_SERVE_SERVER_H

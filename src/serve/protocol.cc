#include "serve/protocol.h"

#include <cstring>

#include "util/binary_io.h"
#include "util/error.h"
#include "util/string_util.h"

namespace cminer::serve {

namespace util = cminer::util;

namespace {

// ---- little-endian append helpers (the writer side of the bounded
// reader in util/binary_io.h, without the container header) ----------

void
appendU8(std::string &out, std::uint8_t v)
{
    out.push_back(static_cast<char>(v));
}

void
appendU32(std::string &out, std::uint32_t v)
{
    for (int b = 0; b < 4; ++b)
        out.push_back(static_cast<char>((v >> (8 * b)) & 0xff));
}

void
appendU64(std::string &out, std::uint64_t v)
{
    for (int b = 0; b < 8; ++b)
        out.push_back(static_cast<char>((v >> (8 * b)) & 0xff));
}

void
appendF64(std::string &out, double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    appendU64(out, bits);
}

void
appendStr(std::string &out, std::string_view s)
{
    appendU64(out, s.size());
    out.append(s.data(), s.size());
}

/** Wire value of a status code (stable; never reorder). */
std::uint8_t
wireCode(util::StatusCode code)
{
    return static_cast<std::uint8_t>(code);
}

/** Highest valid wire status code. */
constexpr std::uint8_t max_wire_code =
    static_cast<std::uint8_t>(util::StatusCode::DeadlineExceeded);

} // namespace

std::uint64_t
requestId(const Request &request)
{
    return std::visit([](const auto &r) { return r.id; }, request);
}

MessageType
requestType(const Request &request)
{
    struct Visitor
    {
        MessageType operator()(const PredictRequest &) const
        {
            return MessageType::Predict;
        }
        MessageType operator()(const StatsRequest &) const
        {
            return MessageType::Stats;
        }
        MessageType operator()(const MineRequest &) const
        {
            return MessageType::Mine;
        }
        MessageType operator()(const ShutdownRequest &) const
        {
            return MessageType::Shutdown;
        }
        MessageType operator()(const ScoreRequest &) const
        {
            return MessageType::Score;
        }
    };
    return std::visit(Visitor{}, request);
}

Response
Response::failure(MessageType type, std::uint64_t id,
                  const util::Status &status)
{
    CM_ASSERT(!status.ok());
    Response response;
    response.type = type;
    response.id = id;
    response.code = status.code();
    response.message = status.message();
    return response;
}

util::Status
Response::status() const
{
    switch (code) {
      case util::StatusCode::Ok:
        return util::Status::okStatus();
      case util::StatusCode::ParseError:
        return util::Status::parseError(message);
      case util::StatusCode::DataError:
        return util::Status::dataError(message);
      case util::StatusCode::CapacityError:
        return util::Status::capacityError(message);
      case util::StatusCode::Transient:
        return util::Status::transient(message);
      case util::StatusCode::DeadlineExceeded:
        return util::Status::deadlineExceeded(message);
    }
    return util::Status::dataError("unknown status code");
}

std::string
encodeRequest(const Request &request)
{
    std::string out;
    appendU8(out, static_cast<std::uint8_t>(requestType(request)));
    struct Visitor
    {
        std::string &out;

        void operator()(const PredictRequest &r) const
        {
            appendU64(out, r.id);
            appendF64(out, r.deadlineMs);
            appendStr(out, r.model);
            appendU64(out, r.events.size());
            for (const auto &event : r.events)
                appendStr(out, event);
            appendU64(out, r.rowCount);
            appendU64(out, r.values.size());
            for (double v : r.values)
                appendF64(out, v);
        }

        void operator()(const StatsRequest &r) const
        {
            appendU64(out, r.id);
        }

        void operator()(const MineRequest &r) const
        {
            appendU64(out, r.id);
            appendF64(out, r.deadlineMs);
            appendStr(out, r.benchmark);
            appendStr(out, r.modelName);
            appendU64(out, r.runs);
            appendU64(out, r.minEvents);
            appendU64(out, r.seed);
        }

        void operator()(const ShutdownRequest &r) const
        {
            appendU64(out, r.id);
        }

        void operator()(const ScoreRequest &r) const
        {
            appendU64(out, r.id);
            appendF64(out, r.deadlineMs);
            appendStr(out, r.scorer);
            appendU64(out, r.events.size());
            for (const auto &event : r.events)
                appendStr(out, event);
            appendU64(out, r.rowCount);
            appendU64(out, r.values.size());
            for (double v : r.values)
                appendF64(out, v);
            appendU64(out, r.measured.size());
            for (double v : r.measured)
                appendF64(out, v);
        }
    };
    std::visit(Visitor{out}, request);
    return out;
}

util::StatusOr<Request>
decodeRequest(std::string payload)
{
    auto in = util::BinaryReader::raw(std::move(payload));
    const std::uint8_t type = in.u8();
    const std::uint64_t id = in.u64();
    if (!in.ok())
        return in.status().withContext("request header");

    switch (static_cast<MessageType>(type)) {
      case MessageType::Predict: {
        PredictRequest r;
        r.id = id;
        r.deadlineMs = in.f64();
        r.model = in.str();
        // Each event is at least a u64 length prefix, so the declared
        // event count is bounded by remaining/8 before any allocation.
        const std::uint64_t event_count = in.count(8);
        if (!in.ok())
            return in.status().withContext("predict request");
        if (event_count == 0)
            return in.fail("predict request carries no events");
        if (event_count > max_events_per_request)
            return in.fail(util::format(
                "predict request declares %llu events (max %zu)",
                static_cast<unsigned long long>(event_count),
                max_events_per_request));
        r.events.reserve(event_count);
        for (std::uint64_t e = 0; e < event_count; ++e)
            r.events.push_back(in.str());
        r.rowCount = in.u64();
        if (!in.ok())
            return in.status().withContext("predict request");
        if (r.rowCount == 0)
            return in.fail("predict request carries no rows");
        if (r.rowCount > max_rows_per_request)
            return in.fail(util::format(
                "predict request declares %llu rows (max %zu)",
                static_cast<unsigned long long>(r.rowCount),
                max_rows_per_request));
        const std::uint64_t value_count = in.count(sizeof(double));
        if (!in.ok())
            return in.status().withContext("predict request");
        // Both factors are bounded above, so the product cannot
        // overflow; equality pins the matrix shape to the header.
        if (value_count != r.rowCount * event_count)
            return in.fail(util::format(
                "predict request value count %llu != rows %llu x "
                "events %llu",
                static_cast<unsigned long long>(value_count),
                static_cast<unsigned long long>(r.rowCount),
                static_cast<unsigned long long>(event_count)));
        r.values = in.f64Vec(value_count);
        if (!in.ok())
            return in.status().withContext("predict request");
        if (!in.atEnd())
            return in.fail("trailing bytes after predict request");
        return Request(std::move(r));
      }
      case MessageType::Stats: {
        if (!in.atEnd())
            return in.fail("trailing bytes after stats request");
        return Request(StatsRequest{id});
      }
      case MessageType::Mine: {
        MineRequest r;
        r.id = id;
        r.deadlineMs = in.f64();
        r.benchmark = in.str();
        r.modelName = in.str();
        r.runs = in.u64();
        r.minEvents = in.u64();
        r.seed = in.u64();
        if (!in.ok())
            return in.status().withContext("mine request");
        if (!in.atEnd())
            return in.fail("trailing bytes after mine request");
        return Request(std::move(r));
      }
      case MessageType::Shutdown: {
        if (!in.atEnd())
            return in.fail("trailing bytes after shutdown request");
        return Request(ShutdownRequest{id});
      }
      case MessageType::Score: {
        ScoreRequest r;
        r.id = id;
        r.deadlineMs = in.f64();
        r.scorer = in.str();
        const std::uint64_t event_count = in.count(8);
        if (!in.ok())
            return in.status().withContext("score request");
        if (event_count == 0)
            return in.fail("score request carries no events");
        if (event_count > max_events_per_request)
            return in.fail(util::format(
                "score request declares %llu events (max %zu)",
                static_cast<unsigned long long>(event_count),
                max_events_per_request));
        r.events.reserve(event_count);
        for (std::uint64_t e = 0; e < event_count; ++e)
            r.events.push_back(in.str());
        r.rowCount = in.u64();
        if (!in.ok())
            return in.status().withContext("score request");
        if (r.rowCount == 0)
            return in.fail("score request carries no rows");
        if (r.rowCount > max_rows_per_request)
            return in.fail(util::format(
                "score request declares %llu rows (max %zu)",
                static_cast<unsigned long long>(r.rowCount),
                max_rows_per_request));
        const std::uint64_t value_count = in.count(sizeof(double));
        if (!in.ok())
            return in.status().withContext("score request");
        if (value_count != r.rowCount * event_count)
            return in.fail(util::format(
                "score request value count %llu != rows %llu x "
                "events %llu",
                static_cast<unsigned long long>(value_count),
                static_cast<unsigned long long>(r.rowCount),
                static_cast<unsigned long long>(event_count)));
        r.values = in.f64Vec(value_count);
        const std::uint64_t measured_count = in.count(sizeof(double));
        if (!in.ok())
            return in.status().withContext("score request");
        // The measured series must be exactly one IPC value per row —
        // anything else would desynchronize residuals from rows.
        if (measured_count != r.rowCount)
            return in.fail(util::format(
                "score request measured count %llu != rows %llu",
                static_cast<unsigned long long>(measured_count),
                static_cast<unsigned long long>(r.rowCount)));
        r.measured = in.f64Vec(measured_count);
        if (!in.ok())
            return in.status().withContext("score request");
        if (!in.atEnd())
            return in.fail("trailing bytes after score request");
        return Request(std::move(r));
      }
      case MessageType::Unknown:
        break;
    }
    return util::Status::parseError(util::format(
        "unknown request type %u", static_cast<unsigned>(type)));
}

std::string
encodeResponse(const Response &response)
{
    std::string out;
    appendU8(out, static_cast<std::uint8_t>(response.type));
    appendU64(out, response.id);
    appendU8(out, wireCode(response.code));
    appendStr(out, response.message);
    if (response.code != util::StatusCode::Ok)
        return out;
    switch (response.type) {
      case MessageType::Predict:
        appendU64(out, response.predictions.size());
        for (double v : response.predictions)
            appendF64(out, v);
        break;
      case MessageType::Stats:
      case MessageType::Mine:
        appendStr(out, response.text);
        break;
      case MessageType::Score:
        appendU8(out, response.anomalous ? 1 : 0);
        appendF64(out, response.residualZ);
        appendF64(out, response.signatureDistance);
        appendU64(out, response.familyIndex);
        appendStr(out, response.text);
        break;
      case MessageType::Shutdown:
      case MessageType::Unknown:
        break;
    }
    return out;
}

util::StatusOr<Response>
decodeResponse(std::string payload)
{
    auto in = util::BinaryReader::raw(std::move(payload));
    Response r;
    const std::uint8_t type = in.u8();
    r.id = in.u64();
    const std::uint8_t code = in.u8();
    r.message = in.str();
    if (!in.ok())
        return in.status().withContext("response header");
    if (type > static_cast<std::uint8_t>(MessageType::Score))
        return in.fail(util::format("unknown response type %u",
                                    static_cast<unsigned>(type)));
    if (code > max_wire_code)
        return in.fail(util::format("unknown status code %u",
                                    static_cast<unsigned>(code)));
    r.type = static_cast<MessageType>(type);
    r.code = static_cast<util::StatusCode>(code);
    if (r.code == util::StatusCode::Ok) {
        switch (r.type) {
          case MessageType::Predict: {
            const std::uint64_t n = in.count(sizeof(double));
            if (!in.ok())
                return in.status().withContext("predict response");
            r.predictions = in.f64Vec(n);
            break;
          }
          case MessageType::Stats:
          case MessageType::Mine:
            r.text = in.str();
            break;
          case MessageType::Score:
            r.anomalous = in.u8() != 0;
            r.residualZ = in.f64();
            r.signatureDistance = in.f64();
            r.familyIndex = in.u64();
            r.text = in.str();
            break;
          case MessageType::Shutdown:
          case MessageType::Unknown:
            break;
        }
    }
    if (!in.ok())
        return in.status().withContext("response body");
    if (!in.atEnd())
        return in.fail("trailing bytes after response");
    return r;
}

MessageType
peekType(std::string_view payload)
{
    if (payload.empty())
        return MessageType::Unknown;
    const auto type = static_cast<std::uint8_t>(payload.front());
    if (type == 0 ||
        type > static_cast<std::uint8_t>(MessageType::Score))
        return MessageType::Unknown;
    return static_cast<MessageType>(type);
}

util::Status
appendFrame(std::string &out, std::string_view payload)
{
    if (payload.size() > max_frame_bytes)
        return util::Status::capacityError(util::format(
            "frame payload of %zu bytes exceeds the %zu-byte frame "
            "ceiling",
            payload.size(), max_frame_bytes));
    appendU32(out, static_cast<std::uint32_t>(payload.size()));
    out.append(payload.data(), payload.size());
    return util::Status::okStatus();
}

util::Status
nextFrame(std::string_view bytes, std::size_t &pos, std::string &payload,
          bool &eof)
{
    payload.clear();
    eof = false;
    if (pos >= bytes.size()) {
        eof = true;
        return util::Status::okStatus();
    }
    if (bytes.size() - pos < 4)
        return util::Status::dataError(util::format(
            "torn frame header at offset %zu: %zu of 4 length bytes",
            pos, bytes.size() - pos));
    std::uint32_t length = 0;
    for (int b = 0; b < 4; ++b)
        length |= static_cast<std::uint32_t>(
                      static_cast<unsigned char>(bytes[pos + b]))
                  << (8 * b);
    // Validate the declared length against both the ceiling and the
    // bytes actually present before touching payload storage.
    if (length > max_frame_bytes)
        return util::Status::dataError(util::format(
            "frame at offset %zu declares %u bytes (max %zu)", pos,
            length, max_frame_bytes));
    if (bytes.size() - pos - 4 < length)
        return util::Status::dataError(util::format(
            "torn frame at offset %zu: %zu of %u payload bytes", pos,
            bytes.size() - pos - 4, length));
    payload.assign(bytes.data() + pos + 4, length);
    pos += 4 + static_cast<std::size_t>(length);
    return util::Status::okStatus();
}

} // namespace cminer::serve

#include "stats/series_stats.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"
#include "util/error.h"

namespace cminer::stats {

double
autocorrelation(std::span<const double> values, std::size_t lag)
{
    CM_ASSERT(lag >= 1);
    CM_ASSERT(values.size() > lag);
    const double mu = mean(values);
    double numerator = 0.0;
    double denominator = 0.0;
    for (std::size_t t = 0; t < values.size(); ++t) {
        const double d = values[t] - mu;
        denominator += d * d;
        if (t + lag < values.size())
            numerator += d * (values[t + lag] - mu);
    }
    if (denominator <= 0.0)
        return 0.0;
    return numerator / denominator;
}

std::vector<double>
acf(std::span<const double> values, std::size_t max_lag)
{
    CM_ASSERT(max_lag >= 1);
    std::vector<double> out;
    out.reserve(max_lag);
    for (std::size_t lag = 1; lag <= max_lag; ++lag)
        out.push_back(autocorrelation(values, lag));
    return out;
}

KsResult
ksTwoSample(std::span<const double> a, std::span<const double> b)
{
    CM_ASSERT(!a.empty() && !b.empty());
    std::vector<double> sa(a.begin(), a.end());
    std::vector<double> sb(b.begin(), b.end());
    std::sort(sa.begin(), sa.end());
    std::sort(sb.begin(), sb.end());

    // Walk the merged order tracking the empirical CDF gap.
    double statistic = 0.0;
    std::size_t ia = 0;
    std::size_t ib = 0;
    const double na = static_cast<double>(sa.size());
    const double nb = static_cast<double>(sb.size());
    while (ia < sa.size() && ib < sb.size()) {
        const double x = std::min(sa[ia], sb[ib]);
        while (ia < sa.size() && sa[ia] <= x)
            ++ia;
        while (ib < sb.size() && sb[ib] <= x)
            ++ib;
        statistic = std::max(
            statistic, std::abs(static_cast<double>(ia) / na -
                                static_cast<double>(ib) / nb));
    }

    KsResult result;
    result.statistic = statistic;
    // Asymptotic Kolmogorov distribution tail.
    const double effective = std::sqrt(na * nb / (na + nb));
    const double lambda =
        (effective + 0.12 + 0.11 / effective) * statistic;
    // The alternating series diverges as lambda -> 0; Q(0) = 1.
    if (lambda < 0.2) {
        result.pValue = 1.0;
        return result;
    }
    double p = 0.0;
    double sign = 1.0;
    for (int j = 1; j <= 100; ++j) {
        const double term =
            sign * std::exp(-2.0 * lambda * lambda *
                            static_cast<double>(j) *
                            static_cast<double>(j));
        p += term;
        if (std::abs(term) < 1e-12)
            break;
        sign = -sign;
    }
    result.pValue = std::clamp(2.0 * p, 0.0, 1.0);
    return result;
}

namespace {

/** Average ranks (1-based) with tie handling. */
std::vector<double>
ranksOf(std::span<const double> values)
{
    std::vector<std::size_t> order(values.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return values[a] < values[b];
              });
    std::vector<double> ranks(values.size(), 0.0);
    std::size_t i = 0;
    while (i < order.size()) {
        std::size_t j = i;
        while (j + 1 < order.size() &&
               values[order[j + 1]] == values[order[i]])
            ++j;
        const double average =
            (static_cast<double>(i) + static_cast<double>(j)) / 2.0 +
            1.0;
        for (std::size_t k = i; k <= j; ++k)
            ranks[order[k]] = average;
        i = j + 1;
    }
    return ranks;
}

} // namespace

double
spearman(std::span<const double> x, std::span<const double> y)
{
    CM_ASSERT(x.size() == y.size());
    if (x.size() < 2)
        return 0.0;
    const auto rx = ranksOf(x);
    const auto ry = ranksOf(y);
    return pearson(rx, ry);
}

} // namespace cminer::stats

#include "stats/lmoments.h"

#include <algorithm>
#include <vector>

#include "util/error.h"

namespace cminer::stats {

LMoments
sampleLMoments(std::span<const double> values)
{
    const std::size_t n = values.size();
    CM_ASSERT(n >= 3);

    std::vector<double> x(values.begin(), values.end());
    std::sort(x.begin(), x.end());

    // Probability-weighted moments b0, b1, b2 (unbiased estimators).
    double b0 = 0.0;
    double b1 = 0.0;
    double b2 = 0.0;
    const double dn = static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double di = static_cast<double>(i); // 0-based rank
        b0 += x[i];
        b1 += x[i] * di / (dn - 1.0);
        b2 += x[i] * di * (di - 1.0) / ((dn - 1.0) * (dn - 2.0));
    }
    b0 /= dn;
    b1 /= dn;
    b2 /= dn;

    LMoments lm;
    lm.l1 = b0;
    lm.l2 = 2.0 * b1 - b0;
    lm.l3 = 6.0 * b2 - 6.0 * b1 + b0;
    lm.t3 = lm.l2 != 0.0 ? lm.l3 / lm.l2 : 0.0;
    return lm;
}

} // namespace cminer::stats

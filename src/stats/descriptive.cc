#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "simd/simd.h"
#include "util/error.h"

namespace cminer::stats {

double
mean(std::span<const double> values)
{
    if (values.empty())
        return 0.0;
    double total = 0.0;
    for (double v : values)
        total += v;
    return total / static_cast<double>(values.size());
}

double
variance(std::span<const double> values, bool sample)
{
    const std::size_t n = values.size();
    if (n < 2)
        return 0.0;
    const double mu = mean(values);
    double accum = 0.0;
    for (double v : values) {
        const double d = v - mu;
        accum += d * d;
    }
    const double denom =
        sample ? static_cast<double>(n - 1) : static_cast<double>(n);
    return accum / denom;
}

double
stddev(std::span<const double> values, bool sample)
{
    return std::sqrt(variance(values, sample));
}

double
minValue(std::span<const double> values)
{
    CM_ASSERT(!values.empty());
    return *std::min_element(values.begin(), values.end());
}

double
maxValue(std::span<const double> values)
{
    CM_ASSERT(!values.empty());
    return *std::max_element(values.begin(), values.end());
}

double
median(std::span<const double> values)
{
    return quantile(values, 0.5);
}

double
quantile(std::span<const double> values, double q)
{
    CM_ASSERT(!values.empty());
    CM_ASSERT(q >= 0.0 && q <= 1.0);
    std::vector<double> sorted(values.begin(), values.end());
    std::sort(sorted.begin(), sorted.end());
    const double position = q * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(position);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = position - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double
skewness(std::span<const double> values)
{
    const std::size_t n = values.size();
    if (n < 3)
        return 0.0;
    const double mu = mean(values);
    double m2 = 0.0;
    double m3 = 0.0;
    for (double v : values) {
        const double d = v - mu;
        m2 += d * d;
        m3 += d * d * d;
    }
    m2 /= static_cast<double>(n);
    m3 /= static_cast<double>(n);
    if (m2 <= 0.0)
        return 0.0;
    const double g1 = m3 / std::pow(m2, 1.5);
    const double dn = static_cast<double>(n);
    return g1 * std::sqrt(dn * (dn - 1.0)) / (dn - 2.0);
}

double
excessKurtosis(std::span<const double> values)
{
    const std::size_t n = values.size();
    if (n < 4)
        return 0.0;
    const double mu = mean(values);
    double m2 = 0.0;
    double m4 = 0.0;
    for (double v : values) {
        const double d = v - mu;
        const double d2 = d * d;
        m2 += d2;
        m4 += d2 * d2;
    }
    m2 /= static_cast<double>(n);
    m4 /= static_cast<double>(n);
    if (m2 <= 0.0)
        return 0.0;
    return m4 / (m2 * m2) - 3.0;
}

double
pearson(std::span<const double> x, std::span<const double> y)
{
    CM_ASSERT(x.size() == y.size());
    const std::size_t n = x.size();
    if (n < 2)
        return 0.0;
    const double mx = mean(x);
    const double my = mean(y);
    double sxy = 0.0;
    double sxx = 0.0;
    double syy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double dx = x[i] - mx;
        const double dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx <= 0.0 || syy <= 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

Summary
summarize(std::span<const double> values)
{
    Summary s;
    s.count = values.size();
    if (values.empty())
        return s;
    s.mean = mean(values);
    s.stddev = stddev(values);
    s.min = minValue(values);
    s.max = maxValue(values);
    s.median = median(values);
    s.skewness = skewness(values);
    return s;
}

double
fractionWithin(std::span<const double> values, double threshold)
{
    if (values.empty())
        return 1.0;
    const std::size_t inside = simd::countLessEqual(values, threshold);
    return static_cast<double>(inside) / static_cast<double>(values.size());
}

} // namespace cminer::stats

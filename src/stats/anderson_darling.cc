#include "stats/anderson_darling.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/descriptive.h"
#include "util/error.h"

namespace cminer::stats {

namespace {

/**
 * A^2 from already-sorted CDF values u_i = F(x_(i)).
 *
 * Values are clamped away from {0, 1} so the logs stay finite when a
 * sample sits far in a tail of the candidate distribution.
 */
double
a2FromCdfValues(const std::vector<double> &u)
{
    const std::size_t n = u.size();
    const double dn = static_cast<double>(n);
    double accum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double ui = std::clamp(u[i], 1e-12, 1.0 - 1e-12);
        const double uj = std::clamp(u[n - 1 - i], 1e-12, 1.0 - 1e-12);
        accum += (2.0 * static_cast<double>(i) + 1.0) *
                 (std::log(ui) + std::log1p(-uj));
    }
    return -dn - accum / dn;
}

} // namespace

bool
AndersonDarlingResult::acceptsNormalityAt(double significance_percent) const
{
    for (std::size_t i = 0; i < significanceLevels.size(); ++i) {
        if (std::abs(significanceLevels[i] - significance_percent) < 1e-9)
            return statistic < criticalValues[i];
    }
    CM_PANIC("unsupported significance level for Anderson-Darling test");
}

AndersonDarlingResult
andersonDarlingNormal(std::span<const double> values)
{
    CM_ASSERT(values.size() >= 4);
    const std::size_t n = values.size();

    std::vector<double> sorted(values.begin(), values.end());
    std::sort(sorted.begin(), sorted.end());

    const NormalDistribution fitted = NormalDistribution::fit(sorted);
    std::vector<double> u(n);
    for (std::size_t i = 0; i < n; ++i)
        u[i] = fitted.cdf(sorted[i]);

    AndersonDarlingResult result;
    result.rawStatistic = a2FromCdfValues(u);
    // Stephens' correction for case 3 (mean and variance estimated).
    const double dn = static_cast<double>(n);
    result.statistic =
        result.rawStatistic * (1.0 + 0.75 / dn + 2.25 / (dn * dn));
    // scipy.stats.anderson critical values for the normal case.
    result.significanceLevels = {15.0, 10.0, 5.0, 2.5, 1.0};
    result.criticalValues = {0.576, 0.656, 0.787, 0.918, 1.092};
    return result;
}

double
andersonDarlingStatistic(std::span<const double> values,
                         const Distribution &dist)
{
    CM_ASSERT(values.size() >= 4);
    std::vector<double> sorted(values.begin(), values.end());
    std::sort(sorted.begin(), sorted.end());
    std::vector<double> u(sorted.size());
    for (std::size_t i = 0; i < sorted.size(); ++i)
        u[i] = dist.cdf(sorted[i]);
    return a2FromCdfValues(u);
}

DistributionFitReport
fitBestDistribution(std::span<const double> values)
{
    DistributionFitReport report;

    // Degenerate samples (constant series) count as Gaussian noise-free.
    if (values.size() < 8 || stddev(values) <= 0.0) {
        report.bestFamily = "normal";
        report.isGaussian = true;
        report.bestStatistic = 0.0;
        return report;
    }

    const AndersonDarlingResult normal_test = andersonDarlingNormal(values);
    report.isGaussian = normal_test.acceptsNormalityAt(5.0);
    if (report.isGaussian) {
        report.bestFamily = "normal";
        report.bestStatistic = normal_test.statistic;
        return report;
    }

    // Normality rejected: compare the long-tail candidates by raw A^2,
    // mirroring the paper's finding that GEV usually wins.
    struct Candidate
    {
        std::string family;
        double statistic;
    };
    std::vector<Candidate> candidates;

    const GevDistribution gev = GevDistribution::fit(values);
    candidates.push_back(
        {"gev", andersonDarlingStatistic(values, gev)});
    const GumbelDistribution gumbel = GumbelDistribution::fit(values);
    candidates.push_back(
        {"gumbel", andersonDarlingStatistic(values, gumbel)});
    const LogisticDistribution logistic = LogisticDistribution::fit(values);
    candidates.push_back(
        {"logistic", andersonDarlingStatistic(values, logistic)});

    const auto best = std::min_element(
        candidates.begin(), candidates.end(),
        [](const Candidate &a, const Candidate &b) {
            return a.statistic < b.statistic;
        });
    report.bestFamily = best->family;
    report.bestStatistic = best->statistic;
    return report;
}

} // namespace cminer::stats

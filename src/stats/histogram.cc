#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "simd/simd.h"
#include "stats/descriptive.h"
#include "util/error.h"

namespace cminer::stats {

Histogram::Histogram(std::span<const double> values)
{
    CM_ASSERT(!values.empty());
    const std::size_t bins = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(values.size()))));
    build(values, std::max<std::size_t>(1, bins));
}

Histogram::Histogram(std::span<const double> values, std::size_t bin_count)
{
    CM_ASSERT(!values.empty());
    CM_ASSERT(bin_count >= 1);
    build(values, bin_count);
}

void
Histogram::build(std::span<const double> values, std::size_t bin_count)
{
    low_ = minValue(values);
    high_ = maxValue(values);
    if (high_ <= low_) {
        // Constant sample: a single degenerate bin.
        counts_.assign(1, values.size());
        medians_.assign(1, low_);
        width_ = 0.0;
        globalMedian_ = low_;
        return;
    }
    width_ = (high_ - low_) / static_cast<double>(bin_count);
    counts_.assign(bin_count, 0);

    // Vectorized bin assignment; equiWidthBins reproduces binIndex
    // exactly, so counts and buckets match the per-value loop.
    std::vector<std::uint32_t> bins(values.size());
    simd::equiWidthBins(values, low_, high_, width_, bin_count, bins);
    std::vector<std::vector<double>> buckets(bin_count);
    for (std::size_t i = 0; i < values.size(); ++i) {
        const std::size_t bin = bins[i];
        ++counts_[bin];
        buckets[bin].push_back(values[i]);
    }

    medians_.assign(bin_count, std::numeric_limits<double>::quiet_NaN());
    for (std::size_t b = 0; b < bin_count; ++b) {
        if (!buckets[b].empty())
            medians_[b] = median(buckets[b]);
    }
    globalMedian_ = median(values);
}

std::size_t
Histogram::binIndex(double value) const
{
    if (width_ <= 0.0 || value <= low_)
        return 0;
    if (value >= high_)
        return counts_.size() - 1;
    const std::size_t bin =
        static_cast<std::size_t>((value - low_) / width_);
    return std::min(bin, counts_.size() - 1);
}

std::size_t
Histogram::count(std::size_t bin) const
{
    CM_ASSERT(bin < counts_.size());
    return counts_[bin];
}

double
Histogram::intervalMedian(double value) const
{
    const std::size_t home = binIndex(value);
    if (!std::isnan(medians_[home]))
        return medians_[home];
    // Walk outward to the nearest populated bin.
    for (std::size_t delta = 1; delta < counts_.size(); ++delta) {
        if (home >= delta && !std::isnan(medians_[home - delta]))
            return medians_[home - delta];
        if (home + delta < counts_.size() &&
            !std::isnan(medians_[home + delta]))
            return medians_[home + delta];
    }
    return globalMedian_;
}

} // namespace cminer::stats

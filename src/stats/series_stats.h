/**
 * @file
 * Series-level statistics: autocorrelation (how persistent an event's
 * activity is — the property that makes temporal KNN imputation work)
 * and the two-sample Kolmogorov-Smirnov test (does an event behave the
 * same in two runs / two configurations?).
 */

#ifndef CMINER_STATS_SERIES_STATS_H
#define CMINER_STATS_SERIES_STATS_H

#include <cstddef>
#include <span>
#include <vector>

namespace cminer::stats {

/**
 * Sample autocorrelation at a given lag.
 *
 * @param values the series (length > lag)
 * @param lag lag in samples (>= 1)
 * @return autocorrelation in [-1, 1]; 0 for degenerate series
 */
double autocorrelation(std::span<const double> values, std::size_t lag);

/**
 * Autocorrelation function for lags 1..max_lag.
 */
std::vector<double> acf(std::span<const double> values,
                        std::size_t max_lag);

/** Result of a two-sample Kolmogorov-Smirnov test. */
struct KsResult
{
    double statistic = 0.0; ///< sup |F1 - F2|
    /**
     * Asymptotic p-value (Kolmogorov distribution approximation);
     * small values reject "same distribution".
     */
    double pValue = 1.0;
};

/**
 * Two-sample KS test.
 *
 * @param a first sample (non-empty)
 * @param b second sample (non-empty)
 */
KsResult ksTwoSample(std::span<const double> a,
                     std::span<const double> b);

/**
 * Spearman rank correlation of two equally sized samples (Pearson
 * correlation of the ranks; ties get average ranks). Used to compare
 * importance rankings from independent profilings.
 */
double spearman(std::span<const double> x, std::span<const double> y);

} // namespace cminer::stats

#endif // CMINER_STATS_SERIES_STATS_H

/**
 * @file
 * Equi-width histogram with the paper's square-root binning rule.
 *
 * Eq. 7 of the paper sets the interval length for outlier replacement to
 *   L = (max - min) / roundup(sqrt(count))
 * and replaces an outlier with the median of the interval it falls into.
 */

#ifndef CMINER_STATS_HISTOGRAM_H
#define CMINER_STATS_HISTOGRAM_H

#include <cstddef>
#include <span>
#include <vector>

namespace cminer::stats {

/**
 * Fixed-width histogram over a sample, with per-bin medians.
 */
class Histogram
{
  public:
    /**
     * Build a histogram using the square-root choice of bin count
     * (Eq. 7).
     *
     * @param values the sample; must be non-empty
     */
    explicit Histogram(std::span<const double> values);

    /**
     * Build with an explicit bin count (>= 1).
     */
    Histogram(std::span<const double> values, std::size_t bin_count);

    /** Number of bins. */
    std::size_t binCount() const { return counts_.size(); }

    /** Width of each bin (the paper's L). */
    double binWidth() const { return width_; }

    /** Bin index a value falls into (clamped to the edge bins). */
    std::size_t binIndex(double value) const;

    /** Number of sample values in a bin. */
    std::size_t count(std::size_t bin) const;

    /**
     * Median of the sample values inside the bin containing `value`.
     *
     * When that bin is empty (possible for injected out-of-range
     * outliers), falls back to the nearest non-empty bin's median, and
     * ultimately the global median. This is the replacement value the
     * cleaner uses for outliers.
     */
    double intervalMedian(double value) const;

    /** Lower edge of the histogram. */
    double low() const { return low_; }

    /** Upper edge of the histogram. */
    double high() const { return high_; }

  private:
    void build(std::span<const double> values, std::size_t bin_count);

    double low_ = 0.0;
    double high_ = 0.0;
    double width_ = 0.0;
    std::vector<std::size_t> counts_;
    std::vector<double> medians_;   ///< median per bin; NaN when empty
    double globalMedian_ = 0.0;
};

} // namespace cminer::stats

#endif // CMINER_STATS_HISTOGRAM_H

/**
 * @file
 * Sample L-moments (Hosking 1990), used to fit GEV parameters.
 *
 * L-moments are linear combinations of order statistics; unlike ordinary
 * moments they exist whenever the mean exists and are far less sensitive
 * to the extreme observations that the long-tailed counter events produce.
 */

#ifndef CMINER_STATS_LMOMENTS_H
#define CMINER_STATS_LMOMENTS_H

#include <span>

namespace cminer::stats {

/** The first three sample L-moments plus the L-skewness ratio. */
struct LMoments
{
    double l1 = 0.0; ///< L-location (equals the mean)
    double l2 = 0.0; ///< L-scale
    double l3 = 0.0; ///< third L-moment
    double t3 = 0.0; ///< L-skewness, l3 / l2
};

/**
 * Compute unbiased sample L-moments.
 *
 * @param values the sample; need not be sorted. Requires size >= 3.
 */
LMoments sampleLMoments(std::span<const double> values);

} // namespace cminer::stats

#endif // CMINER_STATS_LMOMENTS_H

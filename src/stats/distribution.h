/**
 * @file
 * The distribution families the paper's cleaner distinguishes between.
 *
 * Section III-B of the paper performs a statistic test on every event's
 * value distribution: ~100 of 229 events look Gaussian; the remaining 129
 * are long-tailed, best fit by the generalized extreme value (GEV) family.
 * We model Normal, Gumbel, GEV, and Logistic with pdf/cdf/quantile plus
 * parameter fitting, enough to drive the Anderson-Darling test and the
 * outlier-threshold selection.
 */

#ifndef CMINER_STATS_DISTRIBUTION_H
#define CMINER_STATS_DISTRIBUTION_H

#include <memory>
#include <span>
#include <string>

namespace cminer::stats {

/** Abstract continuous distribution. */
class Distribution
{
  public:
    virtual ~Distribution() = default;

    /** Family name, e.g. "normal" or "gev". */
    virtual std::string name() const = 0;

    /** Probability density at x. */
    virtual double pdf(double x) const = 0;

    /** Cumulative probability P(X <= x). */
    virtual double cdf(double x) const = 0;

    /** Inverse CDF; q must be in (0, 1). */
    virtual double quantile(double q) const = 0;
};

/** Normal distribution N(mean, stddev^2). */
class NormalDistribution : public Distribution
{
  public:
    NormalDistribution(double mean, double stddev);

    std::string name() const override { return "normal"; }
    double pdf(double x) const override;
    double cdf(double x) const override;
    double quantile(double q) const override;

    double mean() const { return mean_; }
    double stddev() const { return stddev_; }

    /** Maximum-likelihood fit (sample mean / sample stddev). */
    static NormalDistribution fit(std::span<const double> values);

  private:
    double mean_;
    double stddev_;
};

/** Standard-normal CDF (Phi), exposed for reuse. */
double normalCdf(double z);

/** Standard-normal quantile (Acklam's rational approximation). */
double normalQuantile(double q);

/** Gumbel (type-I extreme value) distribution. */
class GumbelDistribution : public Distribution
{
  public:
    GumbelDistribution(double location, double scale);

    std::string name() const override { return "gumbel"; }
    double pdf(double x) const override;
    double cdf(double x) const override;
    double quantile(double q) const override;

    double location() const { return location_; }
    double scale() const { return scale_; }

    /** Method-of-moments fit. */
    static GumbelDistribution fit(std::span<const double> values);

  private:
    double location_;
    double scale_;
};

/**
 * Generalized extreme value distribution.
 *
 * shape (xi) > 0: Frechet-type heavy right tail — the family the paper
 * found to fit the long-tailed events best. shape == 0 degenerates to
 * Gumbel; shape < 0 is the bounded Weibull type.
 */
class GevDistribution : public Distribution
{
  public:
    GevDistribution(double location, double scale, double shape);

    std::string name() const override { return "gev"; }
    double pdf(double x) const override;
    double cdf(double x) const override;
    double quantile(double q) const override;

    double location() const { return location_; }
    double scale() const { return scale_; }
    double shape() const { return shape_; }

    /**
     * Fit by L-moments (Hosking's method), the standard estimator for GEV
     * parameters from hydrology; robust for the sample sizes the cleaner
     * sees (hundreds of intervals).
     */
    static GevDistribution fit(std::span<const double> values);

  private:
    double location_;
    double scale_;
    double shape_;
};

/** Logistic distribution (the other long-tail candidate the paper tried). */
class LogisticDistribution : public Distribution
{
  public:
    LogisticDistribution(double location, double scale);

    std::string name() const override { return "logistic"; }
    double pdf(double x) const override;
    double cdf(double x) const override;
    double quantile(double q) const override;

    /** Method-of-moments fit. */
    static LogisticDistribution fit(std::span<const double> values);

  private:
    double location_;
    double scale_;
};

} // namespace cminer::stats

#endif // CMINER_STATS_DISTRIBUTION_H

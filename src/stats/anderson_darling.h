/**
 * @file
 * Anderson-Darling goodness-of-fit test.
 *
 * The paper's cleaner uses scipy.stats.anderson to classify each event's
 * value distribution (Section III-B): Gaussian vs long tail. We implement
 * the same test: the A^2 statistic against a fitted Normal (case 3 — both
 * parameters estimated) with Stephens' small-sample correction and
 * critical values, plus a generic A^2 against any supplied distribution so
 * GEV / Gumbel / Logistic candidates can be compared.
 */

#ifndef CMINER_STATS_ANDERSON_DARLING_H
#define CMINER_STATS_ANDERSON_DARLING_H

#include <span>
#include <string>
#include <vector>

#include "stats/distribution.h"

namespace cminer::stats {

/** Result of an Anderson-Darling normality test. */
struct AndersonDarlingResult
{
    double statistic = 0.0;       ///< corrected A^2 (A*^2)
    double rawStatistic = 0.0;    ///< uncorrected A^2
    /// Stephens' critical values at 15%, 10%, 5%, 2.5%, 1% significance.
    std::vector<double> criticalValues;
    std::vector<double> significanceLevels;

    /** True when normality is NOT rejected at the given significance. */
    bool acceptsNormalityAt(double significance_percent) const;
};

/**
 * Anderson-Darling test for normality with estimated mean/stddev.
 *
 * @param values sample, size >= 8 recommended
 * @return statistic plus critical values, scipy-compatible
 */
AndersonDarlingResult andersonDarlingNormal(std::span<const double> values);

/**
 * Raw A^2 statistic of a sample against an arbitrary fitted distribution.
 *
 * No finite-sample correction is applied; use only to *compare* candidate
 * families on the same sample (lower is a better fit).
 */
double andersonDarlingStatistic(std::span<const double> values,
                                const Distribution &dist);

/** Which family fit a sample best (see fitBestDistribution). */
struct DistributionFitReport
{
    std::string bestFamily;  ///< "normal", "gev", "gumbel", or "logistic"
    double bestStatistic = 0.0;
    bool isGaussian = false; ///< normality not rejected at 5%
};

/**
 * Reproduce the paper's distribution triage: test normality first; when
 * rejected, compare long-tail candidates (GEV, Gumbel, Logistic) by A^2.
 */
DistributionFitReport fitBestDistribution(std::span<const double> values);

} // namespace cminer::stats

#endif // CMINER_STATS_ANDERSON_DARLING_H

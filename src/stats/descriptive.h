/**
 * @file
 * Descriptive statistics over double sequences.
 *
 * These are the primitives the data cleaner (Eq. 6: mean + n*std
 * thresholds) and the interaction ranker (residual variance, Eq. 12) are
 * built on.
 */

#ifndef CMINER_STATS_DESCRIPTIVE_H
#define CMINER_STATS_DESCRIPTIVE_H

#include <cstddef>
#include <span>
#include <vector>

namespace cminer::stats {

/** Arithmetic mean; 0 for an empty span. */
double mean(std::span<const double> values);

/**
 * Variance.
 *
 * @param values the sample
 * @param sample when true, uses the n-1 (unbiased) denominator
 */
double variance(std::span<const double> values, bool sample = true);

/** Standard deviation (sqrt of variance). */
double stddev(std::span<const double> values, bool sample = true);

/** Smallest value; requires a non-empty span. */
double minValue(std::span<const double> values);

/** Largest value; requires a non-empty span. */
double maxValue(std::span<const double> values);

/** Median (average of middle two for even counts). */
double median(std::span<const double> values);

/**
 * Linear-interpolated quantile (type-7, same as numpy default).
 *
 * @param values the sample (need not be sorted)
 * @param q quantile in [0, 1]
 */
double quantile(std::span<const double> values, double q);

/** Sample skewness (adjusted Fisher-Pearson). 0 for n < 3. */
double skewness(std::span<const double> values);

/** Excess kurtosis. 0 for n < 4. */
double excessKurtosis(std::span<const double> values);

/** Pearson correlation of two equally sized samples. */
double pearson(std::span<const double> x, std::span<const double> y);

/** One-line summary of a sample, used in reports and the store. */
struct Summary
{
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
    double median = 0.0;
    double skewness = 0.0;
};

/** Compute a full Summary in one pass over a copy. */
Summary summarize(std::span<const double> values);

/**
 * Fraction of values that are <= threshold.
 *
 * Used for Table I: the share of event samples inside the outlier
 * threshold for a given n.
 */
double fractionWithin(std::span<const double> values, double threshold);

} // namespace cminer::stats

#endif // CMINER_STATS_DESCRIPTIVE_H

#include "stats/distribution.h"

#include <cmath>
#include <numbers>

#include "stats/descriptive.h"
#include "stats/lmoments.h"
#include "util/error.h"

namespace cminer::stats {

namespace {

constexpr double euler_gamma = 0.57721566490153286;

} // namespace

double
normalCdf(double z)
{
    return 0.5 * std::erfc(-z / std::numbers::sqrt2);
}

double
normalQuantile(double q)
{
    CM_ASSERT(q > 0.0 && q < 1.0);
    // Acklam's rational approximation, |relative error| < 1.15e-9.
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};

    const double p_low = 0.02425;
    const double p_high = 1.0 - p_low;
    double x;
    if (q < p_low) {
        const double r = std::sqrt(-2.0 * std::log(q));
        x = (((((c[0] * r + c[1]) * r + c[2]) * r + c[3]) * r + c[4]) * r +
             c[5]) /
            ((((d[0] * r + d[1]) * r + d[2]) * r + d[3]) * r + 1.0);
    } else if (q <= p_high) {
        const double r = q - 0.5;
        const double s = r * r;
        x = (((((a[0] * s + a[1]) * s + a[2]) * s + a[3]) * s + a[4]) * s +
             a[5]) *
            r /
            (((((b[0] * s + b[1]) * s + b[2]) * s + b[3]) * s + b[4]) * s +
             1.0);
    } else {
        const double r = std::sqrt(-2.0 * std::log(1.0 - q));
        x = -(((((c[0] * r + c[1]) * r + c[2]) * r + c[3]) * r + c[4]) * r +
              c[5]) /
            ((((d[0] * r + d[1]) * r + d[2]) * r + d[3]) * r + 1.0);
    }
    return x;
}

// --- Normal ---------------------------------------------------------------

NormalDistribution::NormalDistribution(double mean, double stddev)
    : mean_(mean), stddev_(stddev)
{
    CM_ASSERT(stddev > 0.0);
}

double
NormalDistribution::pdf(double x) const
{
    const double z = (x - mean_) / stddev_;
    return std::exp(-0.5 * z * z) /
           (stddev_ * std::sqrt(2.0 * std::numbers::pi));
}

double
NormalDistribution::cdf(double x) const
{
    return normalCdf((x - mean_) / stddev_);
}

double
NormalDistribution::quantile(double q) const
{
    return mean_ + stddev_ * normalQuantile(q);
}

NormalDistribution
NormalDistribution::fit(std::span<const double> values)
{
    const double mu = stats::mean(values);
    double sigma = stats::stddev(values);
    if (sigma <= 0.0)
        sigma = 1e-12; // degenerate sample; keep the object usable
    return NormalDistribution(mu, sigma);
}

// --- Gumbel ---------------------------------------------------------------

GumbelDistribution::GumbelDistribution(double location, double scale)
    : location_(location), scale_(scale)
{
    CM_ASSERT(scale > 0.0);
}

double
GumbelDistribution::pdf(double x) const
{
    const double z = (x - location_) / scale_;
    return std::exp(-z - std::exp(-z)) / scale_;
}

double
GumbelDistribution::cdf(double x) const
{
    const double z = (x - location_) / scale_;
    return std::exp(-std::exp(-z));
}

double
GumbelDistribution::quantile(double q) const
{
    CM_ASSERT(q > 0.0 && q < 1.0);
    return location_ - scale_ * std::log(-std::log(q));
}

GumbelDistribution
GumbelDistribution::fit(std::span<const double> values)
{
    const double sigma = stddev(values);
    double beta = sigma * std::sqrt(6.0) / std::numbers::pi;
    if (beta <= 0.0)
        beta = 1e-12;
    const double mu = mean(values) - euler_gamma * beta;
    return GumbelDistribution(mu, beta);
}

// --- GEV ------------------------------------------------------------------

GevDistribution::GevDistribution(double location, double scale, double shape)
    : location_(location), scale_(scale), shape_(shape)
{
    CM_ASSERT(scale > 0.0);
}

double
GevDistribution::pdf(double x) const
{
    const double z = (x - location_) / scale_;
    if (std::abs(shape_) < 1e-12) {
        const double t = std::exp(-z);
        return t * std::exp(-t) / scale_;
    }
    const double base = 1.0 + shape_ * z;
    if (base <= 0.0)
        return 0.0; // outside the support
    const double t = std::pow(base, -1.0 / shape_);
    return std::pow(base, -1.0 / shape_ - 1.0) * std::exp(-t) / scale_;
}

double
GevDistribution::cdf(double x) const
{
    const double z = (x - location_) / scale_;
    if (std::abs(shape_) < 1e-12)
        return std::exp(-std::exp(-z));
    const double base = 1.0 + shape_ * z;
    if (base <= 0.0)
        return shape_ > 0.0 ? 0.0 : 1.0;
    return std::exp(-std::pow(base, -1.0 / shape_));
}

double
GevDistribution::quantile(double q) const
{
    CM_ASSERT(q > 0.0 && q < 1.0);
    if (std::abs(shape_) < 1e-12)
        return location_ - scale_ * std::log(-std::log(q));
    return location_ +
           scale_ * (std::pow(-std::log(q), -shape_) - 1.0) / shape_;
}

GevDistribution
GevDistribution::fit(std::span<const double> values)
{
    const LMoments lm = sampleLMoments(values);

    // Hosking's L-moment estimator. Hosking's kappa equals -xi in the
    // parameterization used here (xi > 0 <=> heavy right tail).
    const double t3 = lm.t3;
    const double c = 2.0 / (3.0 + t3) - std::log(2.0) / std::log(3.0);
    double kappa = 7.8590 * c + 2.9554 * c * c;
    // Clamp to the region where the moment expressions are well behaved.
    kappa = std::max(-0.99, std::min(0.99, kappa));
    if (std::abs(kappa) < 1e-6)
        kappa = kappa >= 0.0 ? 1e-6 : -1e-6;

    const double gamma1k = std::tgamma(1.0 + kappa);
    double sigma =
        lm.l2 * kappa / ((1.0 - std::pow(2.0, -kappa)) * gamma1k);
    if (sigma <= 0.0)
        sigma = 1e-12;
    const double mu = lm.l1 - sigma * (1.0 - gamma1k) / kappa;

    return GevDistribution(mu, sigma, -kappa);
}

// --- Logistic ---------------------------------------------------------------

LogisticDistribution::LogisticDistribution(double location, double scale)
    : location_(location), scale_(scale)
{
    CM_ASSERT(scale > 0.0);
}

double
LogisticDistribution::pdf(double x) const
{
    const double z = (x - location_) / scale_;
    const double e = std::exp(-std::abs(z));
    const double denom = (1.0 + e) * (1.0 + e);
    return e / (scale_ * denom);
}

double
LogisticDistribution::cdf(double x) const
{
    const double z = (x - location_) / scale_;
    return 1.0 / (1.0 + std::exp(-z));
}

double
LogisticDistribution::quantile(double q) const
{
    CM_ASSERT(q > 0.0 && q < 1.0);
    return location_ + scale_ * std::log(q / (1.0 - q));
}

LogisticDistribution
LogisticDistribution::fit(std::span<const double> values)
{
    double s = stddev(values) * std::numbers::sqrt3 / std::numbers::pi;
    if (s <= 0.0)
        s = 1e-12;
    return LogisticDistribution(mean(values), s);
}

} // namespace cminer::stats

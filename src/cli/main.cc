/**
 * @file
 * Thin entry point of the `counterminer` tool; all logic lives in
 * cli::run so the tests can drive it directly.
 */

#include <cstdio>

#include "cli/cli.h"

int
main(int argc, char **argv)
{
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i)
        args.emplace_back(argv[i]);
    std::string output;
    const int code = cminer::cli::run(args, output);
    std::fputs(output.c_str(), stdout);
    return code;
}

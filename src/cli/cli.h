/**
 * @file
 * The `counterminer` command-line tool, as a testable library entry
 * point: parse arguments, run the requested workflow, and accumulate
 * human-readable output into a string.
 *
 * Commands:
 *   list-benchmarks                      the sixteen simulated programs
 *   list-events [--category <c>]        the 229-event catalog
 *   profile <benchmark> [options]       the full pipeline
 *       --runs N          MLPX runs to pool (default 2)
 *       --seed S          RNG seed (default 42)
 *       --min-events N    EIR stop point (default 96)
 *       --skip-cleaning   ablation: feed raw MLPX data to the ranker
 *       --json FILE       also write the report as JSON
 *       --db FILE         also save the recorded runs
 *   clean <perf.csv> [--out FILE]        clean a perf-stat interval log
 *   explore <db.cmdb>                    summarize a recorded database
 *   error <benchmark> [--seed S]         quick Fig.-1-style error check
 */

#ifndef CMINER_CLI_CLI_H
#define CMINER_CLI_CLI_H

#include <string>
#include <vector>

namespace cminer::cli {

/**
 * Run the CLI.
 *
 * @param args argv[1..] (command plus its arguments)
 * @param output receives everything the command printed
 * @return process exit code (0 on success, 1 on user error)
 */
int run(const std::vector<std::string> &args, std::string &output);

/** The usage/help text. */
std::string usage();

} // namespace cminer::cli

#endif // CMINER_CLI_CLI_H

#include "cli/cli.h"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>

#include "core/advisor.h"
#include "core/checkpoint.h"
#include "core/cleaner.h"
#include "core/counterminer.h"
#include "core/error_metrics.h"
#include "core/perf_text.h"
#include "core/report_export.h"
#include "mining/anomaly.h"
#include "mining/distance.h"
#include "mining/kmedoids.h"
#include "ml/metrics.h"
#include "serve/server.h"
#include "serve/socket.h"
#include "serve/transport.h"
#include "pmu/backend.h"
#include "pmu/event.h"
#include "store/database.h"
#include "store/query.h"
#include "util/binary_io.h"
#include "util/error.h"
#include "util/fault_injection.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"
#include "util/trace.h"
#include "workload/suites.h"

namespace cminer::cli {

namespace {

/** Parsed flags: --name value and boolean --name. */
struct Flags
{
    std::vector<std::string> positional;
    std::map<std::string, std::string> named;

    bool has(const std::string &name) const
    {
        return named.count(name) > 0;
    }

    std::string
    get(const std::string &name, const std::string &fallback) const
    {
        auto it = named.find(name);
        return it != named.end() ? it->second : fallback;
    }

    std::int64_t
    getInt(const std::string &name, std::int64_t fallback) const
    {
        auto it = named.find(name);
        if (it == named.end())
            return fallback;
        double value = 0.0;
        if (!util::parseDouble(it->second, value))
            util::fatal("--" + name + " expects a number, got '" +
                        it->second + "'");
        return static_cast<std::int64_t>(value);
    }

    double
    getDouble(const std::string &name, double fallback) const
    {
        auto it = named.find(name);
        if (it == named.end())
            return fallback;
        double value = 0.0;
        if (!util::parseDouble(it->second, value))
            util::fatal("--" + name + " expects a number, got '" +
                        it->second + "'");
        return value;
    }
};

/** Flags that take no value. */
bool
isBooleanFlag(const std::string &name)
{
    return name == "skip-cleaning" || name == "lenient" ||
           name == "pipe" || name == "help" || name == "mine";
}

Flags
parseFlags(const std::vector<std::string> &args, std::size_t first)
{
    Flags flags;
    for (std::size_t i = first; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (util::startsWith(arg, "--")) {
            const std::string name = arg.substr(2);
            // --name=value binds tighter than the separate-token form
            // and works for any flag, boolean or not.
            const auto eq = name.find('=');
            if (eq != std::string::npos) {
                flags.named[name.substr(0, eq)] = name.substr(eq + 1);
            } else if (isBooleanFlag(name)) {
                flags.named[name] = "true";
            } else {
                if (i + 1 >= args.size())
                    util::fatal("flag --" + name + " expects a value");
                flags.named[name] = args[++i];
            }
        } else {
            flags.positional.push_back(arg);
        }
    }
    return flags;
}

/**
 * A flag restricted to an enumerated value set: unknown values fail
 * with an error listing the valid choices instead of being passed
 * through (or silently matching nothing downstream).
 */
std::string
getChoice(const Flags &flags, const std::string &name,
          const std::string &fallback,
          const std::vector<std::string> &choices)
{
    const std::string value = flags.get(name, fallback);
    for (const auto &choice : choices) {
        if (value == choice)
            return value;
    }
    util::fatal("--" + name + " got unknown value '" + value +
                "' (valid choices: " + util::join(choices, ", ") + ")");
}

/** The --backend flag, parsed and validated (default sim). */
pmu::BackendKind
getBackendFlag(const Flags &flags)
{
    auto parsed = pmu::parseBackendKind(flags.get("backend", "sim"));
    if (!parsed.ok())
        util::fatal("--backend: " + parsed.status().message());
    return parsed.value();
}

/** Where profile runs drop metrics when no explicit path is given to
 * `--metrics-out`, and where `cminer stats` looks by default. */
constexpr const char *default_metrics_file = "cminer-metrics.json";

mining::AnomalyScorer loadScorerPair(const std::string &spec);

/**
 * Installs the tracer/metrics registry for the duration of one CLI
 * command when `--trace-out` / `--metrics-out` ask for them, and writes
 * the JSON exports when the command succeeds. With both flags absent
 * nothing is installed and every span/counter in the pipeline stays a
 * null-pointer check (the zero-overhead contract).
 */
class ObservabilityScope
{
  public:
    explicit ObservabilityScope(const Flags &flags)
        : tracePath_(flags.get("trace-out", "")),
          metricsPath_(flags.get("metrics-out", ""))
    {
        if (!tracePath_.empty()) {
            tracer_.emplace(clock_);
            util::setGlobalTracer(&*tracer_);
        }
        if (!metricsPath_.empty()) {
            metrics_.emplace();
            util::setGlobalMetrics(&*metrics_);
        }
    }

    ~ObservabilityScope()
    {
        util::setGlobalTracer(nullptr);
        util::setGlobalMetrics(nullptr);
    }

    ObservabilityScope(const ObservabilityScope &) = delete;
    ObservabilityScope &operator=(const ObservabilityScope &) = delete;

    /** Export the collected spans/metrics (call on command success). */
    void
    writeReports(std::string &output)
    {
        if (tracer_) {
            writeFile(tracePath_, tracer_->toJson());
            output += "wrote trace to " + tracePath_ + "\n";
        }
        if (metrics_) {
            writeFile(metricsPath_, metrics_->toJson());
            output += "wrote metrics to " + metricsPath_ + "\n";
        }
    }

  private:
    static void
    writeFile(const std::string &path, const std::string &text)
    {
        // Atomic like every other exporter: a failed write never
        // clobbers the previous report at this path.
        util::writeFileAtomic(path, text + "\n")
            .withContext("write " + path)
            .throwIfError();
    }

    util::SteadyClock clock_;
    std::optional<util::Tracer> tracer_;
    std::optional<util::MetricsRegistry> metrics_;
    std::string tracePath_;
    std::string metricsPath_;
};

const workload::SyntheticBenchmark &
resolveBenchmark(const std::string &name)
{
    const auto &suite = workload::BenchmarkSuite::instance();
    if (!suite.has(name)) {
        std::string known;
        for (const auto *bench : suite.all())
            known += "\n  " + bench->name();
        util::fatal("unknown benchmark '" + name + "'; known:" + known);
    }
    return suite.byName(name);
}

int
cmdListBenchmarks(std::string &output)
{
    const auto &suite = workload::BenchmarkSuite::instance();
    util::TablePrinter table({"benchmark", "suite", "top planted events"});
    for (const auto *bench : suite.all()) {
        const auto top = bench->plantedRanking(3);
        table.addRow({bench->name(), bench->suite(),
                      util::join({top.begin(), top.end()}, " ")});
    }
    output += table.render();
    return 0;
}

int
cmdListEvents(const Flags &flags, std::string &output)
{
    const auto &catalog = pmu::EventCatalog::instance();
    const std::string category = flags.get("category", "");
    util::TablePrinter table({"abbrev", "event", "category", "family"});
    std::size_t shown = 0;
    for (pmu::EventId id = 0; id < catalog.size(); ++id) {
        const auto &info = catalog.info(id);
        if (!category.empty() &&
            pmu::categoryName(info.category) != category)
            continue;
        table.addRow({info.abbrev, info.name,
                      pmu::categoryName(info.category),
                      info.family == pmu::DistFamily::Gaussian
                          ? "gaussian" : "long-tail"});
        ++shown;
    }
    if (shown == 0)
        util::fatal("no events in category '" + category +
                    "' (try: frontend branch cache tlb memory remote "
                    "uops stall other fixed)");
    output += table.render();
    output += util::format("%zu events\n", shown);
    return 0;
}

int
cmdProfile(const Flags &flags, std::string &output)
{
    if (flags.positional.empty())
        util::fatal("profile expects a benchmark name");
    const auto &benchmark = resolveBenchmark(flags.positional.front());

    core::ProfileOptions options;
    options.backend = getBackendFlag(flags);
    options.mlpxRuns =
        static_cast<std::size_t>(flags.getInt("runs", 2));
    options.importance.minEvents =
        static_cast<std::size_t>(flags.getInt("min-events", 96));
    options.skipCleaning = flags.has("skip-cleaning");
    options.maxBadRuns =
        static_cast<std::size_t>(flags.getInt("max-bad-runs", 0));
    options.maxBadFraction = flags.getDouble("max-bad-fraction", 0.5);
    if (options.maxBadFraction < 0.0 || options.maxBadFraction > 1.0)
        util::fatal("--max-bad-fraction expects a value in [0, 1]");

    // The injector outlives the miner; ProfileOptions holds a raw
    // pointer into this scope.
    std::optional<util::FaultInjector> injector;
    if (flags.has("inject-faults")) {
        auto spec = util::parseFaultSpec(flags.get("inject-faults", ""));
        spec.status().throwIfError();
        injector.emplace(spec.value());
        options.injector = &*injector;
    }

    store::Database db("haswell-e");
    core::CounterMiner miner(db, pmu::EventCatalog::instance(), options);
    util::Rng rng(static_cast<std::uint64_t>(flags.getInt("seed", 42)));
    const auto report = miner.profile(benchmark, rng);

    output += util::format(
        "profiled %s: MAPM with %zu events, error %.2f%%\n",
        report.benchmark.c_str(), report.importance.mapmEventCount,
        report.importance.mapmErrorPercent);

    const auto &ingest = report.ingest;
    if (!ingest.quarantined.empty() || ingest.transientRetries > 0 ||
        ingest.injected.total() > 0)
        output += ingest.toString() + "\n";

    util::TablePrinter events({"rank", "event", "importance %"});
    for (std::size_t i = 0; i < report.topEvents.size(); ++i) {
        events.addRow({std::to_string(i + 1),
                       report.topEvents[i].feature,
                       util::formatDouble(
                           report.topEvents[i].importance, 1)});
    }
    output += events.render();

    util::TablePrinter pairs({"rank", "pair", "intensity %"});
    const auto top_pairs = report.interactions.top(5);
    for (std::size_t i = 0; i < top_pairs.size(); ++i) {
        pairs.addRow({std::to_string(i + 1),
                      top_pairs[i].first + "-" + top_pairs[i].second,
                      util::formatDouble(
                          top_pairs[i].importancePercent, 1)});
    }
    output += pairs.render();

    const auto recommendations = core::advise(
        report.topEvents, pmu::EventCatalog::instance());
    for (const auto &rec : recommendations) {
        output += util::format("[%s] %s: %s\n", rec.layer.c_str(),
                               rec.event.c_str(), rec.advice.c_str());
    }

    if (flags.has("json")) {
        const std::string path = flags.get("json", "");
        std::ofstream out(path);
        if (!out)
            util::fatal("cannot write JSON report to " + path);
        out << core::reportToJson(report);
        output += "wrote JSON report to " + path + "\n";
    }
    if (flags.has("db")) {
        const std::string path = flags.get("db", "");
        db.save(path);
        output += "saved " + std::to_string(db.runCount()) +
                  " runs to " + path + "\n";
    }
    return 0;
}

int
cmdCollect(const Flags &flags, std::string &output)
{
    if (flags.positional.empty())
        util::fatal("collect expects a benchmark name");
    const auto &benchmark = resolveBenchmark(flags.positional.front());
    const auto &catalog = pmu::EventCatalog::instance();

    pmu::PmuConfig config;
    config.intervalMs =
        flags.getDouble("interval-ms", config.intervalMs);
    const pmu::BackendKind kind = getBackendFlag(flags);
    const std::string mode =
        getChoice(flags, "mode", "mlpx", {"mlpx", "ocoe"});

    store::Database db("haswell-e");
    core::DataCollector collector(
        db, catalog, core::makeSamplerBackend(kind, catalog, config));
    // The factory may have fallen back (perf probe failed); report the
    // backend that will actually measure, not the one requested.
    output += std::string("collection backend: ") +
              collector.backend().name() + "\n";

    auto events = catalog.programmableEvents();
    const auto event_count =
        static_cast<std::size_t>(flags.getInt("events", 16));
    if (events.size() > event_count)
        events.resize(event_count);

    const auto runs =
        static_cast<std::size_t>(flags.getInt("runs", 1));
    util::Rng rng(static_cast<std::uint64_t>(flags.getInt("seed", 42)));
    std::size_t recorded = 0;
    double ipc_total = 0.0;
    double interval_total = 0.0;
    const auto tally = [&](const core::CollectedRun &run) {
        ++recorded;
        for (const double v : run.ipc().values())
            ipc_total += v;
        interval_total += static_cast<double>(run.ipc().size());
    };
    for (std::size_t r = 0; r < runs; ++r) {
        if (mode == "ocoe") {
            for (const auto &run :
                 collector.collectOcoePlan(benchmark, events, rng))
                tally(run);
        } else {
            tally(collector.collectMlpx(benchmark, events, rng));
        }
    }

    output += util::format(
        "collected %zu %s run%s of %s (%zu events, %.0f intervals of "
        "%.1f ms); mean IPC %.3f\n",
        recorded, mode.c_str(), recorded == 1 ? "" : "s",
        benchmark.name().c_str(), events.size(), interval_total,
        config.intervalMs,
        interval_total > 0.0 ? ipc_total / interval_total : 0.0);

    // Watch mode: judge every collected run against a calibrated
    // anomaly scorer and report verdicts inline — the surveillance
    // loop of DESIGN.md §17 without a serve daemon.
    if (flags.has("watch")) {
        const mining::AnomalyScorer scorer =
            loadScorerPair(flags.get("watch", ""));
        const auto snap = db.snapshot();
        std::size_t watched = 0;
        std::size_t flagged = 0;
        std::size_t unscorable = 0;
        for (const auto &program : db.programs()) {
            for (const auto id : snap.findRuns(program, mode)) {
                auto scored =
                    scorer.scoreRun(snap, id, catalog);
                if (!scored.ok()) {
                    ++unscorable;
                    continue;
                }
                const mining::ScoreResult &verdict = scored.value();
                ++watched;
                if (verdict.anomalous)
                    ++flagged;
                output += util::format(
                    "run %llu %s: %s (residual z %.2f%s, signature "
                    "distance %.4f%s)\n",
                    static_cast<unsigned long long>(id),
                    program.c_str(),
                    verdict.anomalous ? "ANOMALOUS" : "ok",
                    verdict.residualZ,
                    verdict.residualFlag ? " *" : "",
                    verdict.signatureDistance,
                    verdict.signatureFlag ? " *" : "");
            }
        }
        output += util::format(
            "watch: flagged %zu of %zu runs against scorer '%s'\n",
            flagged, watched, scorer.clusters().benchmark.c_str());
        if (unscorable > 0)
            output += util::format(
                "watch: %zu runs were not scorable (event list does "
                "not cover the model)\n",
                unscorable);
    }

    if (flags.has("db")) {
        const std::string path = flags.get("db", "");
        db.save(path);
        output += "saved " + std::to_string(db.runCount()) +
                  " runs to " + path + "\n";
    }
    return 0;
}

int
cmdMapm(const Flags &flags, std::string &output)
{
    if (flags.positional.empty())
        util::fatal("mapm expects a benchmark name");
    const auto &benchmark = resolveBenchmark(flags.positional.front());

    core::ProfileOptions options;
    options.backend = getBackendFlag(flags);
    options.mlpxRuns =
        static_cast<std::size_t>(flags.getInt("runs", 2));
    options.importance.minEvents =
        static_cast<std::size_t>(flags.getInt("min-events", 96));

    store::Database db("haswell-e");
    core::CounterMiner miner(db, pmu::EventCatalog::instance(), options);
    util::Rng rng(static_cast<std::uint64_t>(flags.getInt("seed", 42)));
    auto report = miner.profile(benchmark, rng);

    output += util::format(
        "mined %s: MAPM with %zu events, cv error %.2f%%\n",
        report.benchmark.c_str(), report.importance.mapmEventCount,
        report.importance.mapmErrorPercent);
    util::TablePrinter events({"rank", "event", "importance %"});
    for (std::size_t i = 0; i < report.topEvents.size(); ++i) {
        events.addRow({std::to_string(i + 1),
                       report.topEvents[i].feature,
                       util::formatDouble(
                           report.topEvents[i].importance, 1)});
    }
    output += events.render();

    if (flags.has("model-out")) {
        const std::string path = flags.get("model-out", "");
        core::MapmArtifact artifact;
        artifact.benchmark = report.benchmark;
        artifact.microarch = db.microarch();
        artifact.events = report.importance.mapmFeatures;
        artifact.ranking = report.importance.ranking;
        artifact.cvErrorPercent = report.importance.mapmErrorPercent;
        artifact.model = std::move(report.mapmModel);
        core::saveMapmArtifact(artifact, path).throwIfError();
        output += "wrote model checkpoint to " + path + "\n";
    }
    if (flags.has("db")) {
        const std::string path = flags.get("db", "");
        db.save(path);
        output += "saved " + std::to_string(db.runCount()) +
                  " runs to " + path + "\n";
    }
    return 0;
}

int
cmdPredict(const Flags &flags, std::string &output)
{
    const std::string model_path = flags.get("model", "");
    if (model_path.empty())
        util::fatal("predict requires --model FILE (a checkpoint "
                    "written by 'mapm --model-out')");
    if (flags.positional.empty())
        util::fatal("predict expects a database file (written by "
                    "'mapm --db' or 'profile --db')");
    const std::string db_path = flags.positional.front();

    auto loaded = core::loadMapmArtifact(model_path);
    loaded.status().throwIfError();
    const core::MapmArtifact artifact = std::move(loaded).value();
    const auto db = store::Database::load(db_path);

    util::Span span("predict");
    span.label("model", model_path);

    // Scoring needs one homogeneous event list ending in the IPC
    // target, the shape 'mapm --db' / 'profile --db' records for mlpx
    // runs. The first eligible run fixes the list; runs that measured
    // something else are skipped and reported.
    const std::string mode =
        getChoice(flags, "mode", "mlpx", {"mlpx", "ocoe"});
    std::vector<store::RunId> ids;
    std::size_t skipped = 0;
    const std::vector<std::string> *events = nullptr;
    for (const auto &program : db.programs()) {
        for (const auto id : db.findRuns(program, mode)) {
            const auto &run_events = db.runInfo(id).events;
            if (run_events.size() < 2 ||
                run_events.back() != core::ipc_series_name) {
                ++skipped;
                continue;
            }
            if (events == nullptr)
                events = &db.runInfo(id).events;
            if (run_events != *events) {
                ++skipped;
                continue;
            }
            ids.push_back(id);
        }
    }
    if (ids.empty())
        util::fatal("predict: no scorable '" + mode + "' runs in " +
                    db_path);

    const auto data = core::ImportanceRanker::buildDatasetFromStore(
        db, ids, pmu::EventCatalog::instance());
    for (const auto &event : artifact.events) {
        if (!data.hasFeature(event))
            util::fatal("predict: the database runs did not measure "
                        "model event '" + event + "'");
    }

    // Project onto the model's kept-event columns, in artifact order —
    // the exact view the MAPM trained on.
    const ml::DatasetView view =
        ml::DatasetView(data).withFeatures(artifact.events);
    const std::vector<double> predictions =
        artifact.model.predictAll(view);
    util::count("predict.rows_scored", predictions.size());
    util::count("predict.requests");
    span.number("rows", static_cast<double>(predictions.size()));

    const double error = ml::mape(data.targets(), predictions);
    output += util::format(
        "scored %zu rows from %zu runs with MAPM '%s' (%zu events, "
        "cv error %.2f%%)\n",
        predictions.size(), ids.size(), artifact.benchmark.c_str(),
        artifact.events.size(), artifact.cvErrorPercent);
    if (skipped > 0)
        output += util::format(
            "skipped %zu runs with a different event list\n", skipped);
    output += util::format("MAPE vs measured IPC: %.2f%%\n", error);

    if (flags.has("out")) {
        const std::string path = flags.get("out", "");
        // Full shortest-round-trip precision so the file is a bitwise
        // witness of the predictions (the determinism tests diff it).
        std::string csv = "row,predicted_ipc,measured_ipc\n";
        const auto &targets = data.targets();
        for (std::size_t r = 0; r < predictions.size(); ++r) {
            csv += util::format("%zu,%.17g,%.17g\n", r, predictions[r],
                                targets[r]);
        }
        util::writeFileAtomic(path, csv)
            .withContext("write " + path)
            .throwIfError();
        output += "wrote predictions to " + path + "\n";
    }
    return 0;
}

int
cmdClean(const Flags &flags, std::string &output)
{
    if (flags.positional.empty())
        util::fatal("clean expects a perf interval file");
    const std::string path = flags.positional.front();
    std::ifstream in(path);
    if (!in)
        util::fatal("cannot read " + path);
    std::stringstream buffer;
    buffer << in.rdbuf();

    core::PerfParseOptions parse_options;
    parse_options.lenient = flags.has("lenient");
    core::IngestReport ingest;
    auto parsed =
        core::parsePerfIntervals(buffer.str(), parse_options, ingest);
    if (!parsed.ok())
        parsed.status().withContext("clean " + path).throwIfError();
    auto series = std::move(parsed).value();
    if (ingest.damaged() > 0 || ingest.paddedSamples > 0)
        output += ingest.toString() + "\n";

    const core::DataCleaner cleaner;
    std::size_t outliers = 0;
    std::size_t missing = 0;
    for (auto &s : series) {
        const auto report = cleaner.clean(s);
        outliers += report.outliersReplaced;
        missing += report.missingFilled;
    }
    output += util::format(
        "cleaned %zu series: replaced %zu outliers, filled %zu "
        "missing values\n",
        series.size(), outliers, missing);

    const std::string out_path = flags.get("out", path + ".cleaned");
    std::ofstream out(out_path);
    if (!out)
        util::fatal("cannot write " + out_path);
    out << core::renderPerfIntervals(series);
    output += "wrote " + out_path + "\n";
    return 0;
}

int
cmdExplore(const Flags &flags, std::string &output)
{
    if (flags.positional.empty())
        util::fatal("explore expects a database file");
    const auto db = store::Database::load(flags.positional.front());
    output += util::format("database: %zu runs, microarch %s\n",
                           db.runCount(), db.microarch().c_str());
    util::TablePrinter table({"program", "suite", "runs", "mlpx",
                              "ocoe", "mean exec (s)"});
    for (const auto &summary : store::summarizeByProgram(db)) {
        table.addRow(
            {summary.program, summary.suite,
             std::to_string(summary.runCount),
             std::to_string(summary.mlpxRuns),
             std::to_string(summary.ocoeRuns),
             util::formatDouble(summary.meanExecTimeMs / 1000.0, 2)});
    }
    output += table.render();
    return 0;
}

int
cmdError(const Flags &flags, std::string &output)
{
    if (flags.positional.empty())
        util::fatal("error expects a benchmark name");
    const auto &benchmark = resolveBenchmark(flags.positional.front());
    const auto &catalog = pmu::EventCatalog::instance();

    store::Database db;
    core::DataCollector collector(db, catalog);
    const core::DataCleaner cleaner;
    util::Rng rng(static_cast<std::uint64_t>(flags.getInt("seed", 7)));

    const auto imc = catalog.idOf("ICACHE.MISSES");
    std::vector<pmu::EventId> events = {imc};
    for (const char *abbrev :
         {"IDU", "ISF", "BRE", "BRB", "BMP", "MSL", "LMH", "ITM", "ORA"})
        events.push_back(catalog.idOfAbbrev(abbrev));

    double raw_total = 0.0;
    double clean_total = 0.0;
    const int reps = 4;
    for (int rep = 0; rep < reps; ++rep) {
        auto o1 = collector.collectOcoe(benchmark, {imc}, rng);
        auto o2 = collector.collectOcoe(benchmark, {imc}, rng);
        auto m = collector.collectMlpx(benchmark, events, rng);
        raw_total += core::mlpxError(o1.series[0], o2.series[0],
                                     m.series[0])
                         .errorPercent;
        ts::TimeSeries cleaned = m.series[0];
        cleaner.clean(cleaned);
        clean_total +=
            core::mlpxError(o1.series[0], o2.series[0], cleaned)
                .errorPercent;
    }
    output += util::format(
        "%s: MLPX error %.1f%% raw -> %.1f%% cleaned "
        "(ICACHE.MISSES, 10 events on 4 counters, %d reps)\n",
        benchmark.name().c_str(), raw_total / reps, clean_total / reps,
        reps);
    return 0;
}

int
cmdStats(const Flags &flags, std::string &output)
{
    const std::string path = flags.positional.empty()
        ? default_metrics_file
        : flags.positional.front();
    std::ifstream in(path);
    if (!in) {
        util::fatal("cannot read " + path +
                    "; run a command with --metrics-out first "
                    "(e.g. profile sort --metrics-out " + path + ")");
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    auto parsed = util::parseMetricsJson(buffer.str());
    if (!parsed.ok())
        parsed.status().withContext("stats " + path).throwIfError();
    const util::MetricsSnapshot snapshot = std::move(parsed).value();

    output += "metrics from " + path + "\n";
    if (snapshot.counters.empty() && snapshot.gauges.empty() &&
        snapshot.histograms.empty()) {
        output += "no metrics recorded\n";
        return 0;
    }
    if (!snapshot.counters.empty()) {
        util::TablePrinter table({"counter", "value"});
        for (const auto &[name, value] : snapshot.counters)
            table.addRow({name, std::to_string(value)});
        output += table.render();
    }
    if (!snapshot.gauges.empty()) {
        util::TablePrinter table({"gauge", "value"});
        for (const auto &[name, value] : snapshot.gauges)
            table.addRow({name, util::formatDouble(value, 3)});
        output += table.render();
    }
    if (!snapshot.histograms.empty()) {
        util::TablePrinter table({"histogram", "count", "total ms",
                                  "mean ms", "min ms", "max ms"});
        for (const auto &[name, h] : snapshot.histograms) {
            table.addRow({name, std::to_string(h.count),
                          util::formatDouble(h.totalMs, 3),
                          util::formatDouble(h.meanMs(), 3),
                          util::formatDouble(h.minMs, 3),
                          util::formatDouble(h.maxMs, 3)});
        }
        output += table.render();
    }
    return 0;
}

/**
 * Load a `MODEL.ckpt:CLUSTERS.ckpt` pair into a ready anomaly scorer.
 * Fatal on a malformed spec or an uncalibrated cluster artifact.
 */
mining::AnomalyScorer
loadScorerPair(const std::string &spec)
{
    const auto colon = spec.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= spec.size())
        util::fatal("scorer spec '" + spec +
                    "' should be MODEL.ckpt:CLUSTERS.ckpt");
    auto model = core::loadMapmArtifact(spec.substr(0, colon));
    model.status().throwIfError();
    auto clusters = mining::loadClusterArtifact(spec.substr(colon + 1));
    clusters.status().throwIfError();
    if (clusters.value().residualZThreshold <= 0.0)
        util::fatal("cluster artifact " + spec.substr(colon + 1) +
                    " is uncalibrated; rebuild it with "
                    "'cluster --model MODEL.ckpt --artifact-out ...'");
    return mining::AnomalyScorer(
        std::make_shared<const core::MapmArtifact>(
            std::move(model).value()),
        std::move(clusters).value());
}

int
cmdCluster(const Flags &flags, std::string &output)
{
    const bool from_store = flags.has("store-dir");
    if (flags.positional.empty() && !from_store)
        util::fatal("cluster expects a database file (written by "
                    "'mapm --db' or 'collect --db') or --store-dir DIR");

    std::optional<store::Database> db;
    if (from_store) {
        store::StoreOptions store_options;
        store_options.directory = flags.get("store-dir", "");
        db.emplace(store::Database::openStore(store_options));
    } else {
        db.emplace(store::Database::load(flags.positional.front()));
    }

    mining::SignatureOptions signature;
    signature.event = flags.get("event", signature.event);
    signature.length = static_cast<std::size_t>(
        flags.getInt("signature-length",
                     static_cast<std::int64_t>(signature.length)));
    if (signature.length < 2)
        util::fatal("--signature-length expects a value >= 2");
    signature.bandFraction =
        flags.getDouble("band", signature.bandFraction);
    if (signature.bandFraction < 0.0 || signature.bandFraction > 1.0)
        util::fatal("--band expects a fraction in [0, 1]");

    // The snapshot pins every span the signatures and the calibration
    // read; the medoid indexing below is relative to `ids`, which is
    // sorted so family numbering never depends on catalog iteration
    // order.
    const std::string mode =
        getChoice(flags, "mode", "mlpx", {"mlpx", "ocoe"});
    const auto snap = db->snapshot();
    std::vector<store::RunId> ids;
    std::size_t skipped = 0;
    for (const auto &program : db->programs()) {
        for (const auto id : snap.findRuns(program, mode)) {
            const auto &events = snap.runInfo(id).events;
            if (std::find(events.begin(), events.end(),
                          signature.event) == events.end() ||
                snap.length(id) == 0) {
                ++skipped;
                continue;
            }
            ids.push_back(id);
        }
    }
    std::sort(ids.begin(), ids.end());
    if (ids.size() < 2)
        util::fatal(util::format(
            "cluster: %zu eligible '%s' runs with a '%s' series "
            "(need at least 2)",
            ids.size(), mode.c_str(), signature.event.c_str()));

    util::Span span("cluster");
    span.number("runs", static_cast<double>(ids.size()));
    std::vector<std::vector<double>> signatures;
    signatures.reserve(ids.size());
    for (const auto id : ids)
        signatures.push_back(mining::runSignature(snap, id, signature));
    const std::vector<double> matrix =
        mining::dtwDistanceMatrix(signatures, signature);

    mining::KMedoidsOptions cluster_options;
    cluster_options.k =
        static_cast<std::size_t>(flags.getInt("k", 2));
    if (cluster_options.k < 1)
        util::fatal("--k expects a cluster count >= 1");
    const auto seed =
        static_cast<std::uint64_t>(flags.getInt("seed", 42));
    util::Rng rng(seed);
    const mining::KMedoidsResult clusters =
        mining::kMedoids(matrix, ids.size(), cluster_options, rng);

    const std::size_t n = ids.size();
    output += util::format(
        "clustered %zu runs into %zu families (total cost %.4f, "
        "%zu swap iterations)\n",
        n, clusters.medoids.size(), clusters.totalCost,
        clusters.iterations);
    if (skipped > 0)
        output += util::format(
            "skipped %zu runs without a '%s' series\n", skipped,
            signature.event.c_str());

    // Per-family membership, in slot order (slots follow ascending
    // medoid index, so the table is stable across reruns).
    std::vector<std::vector<std::size_t>> members(
        clusters.medoids.size());
    for (std::size_t i = 0; i < n; ++i)
        members[clusters.assignment[i]].push_back(i);

    util::TablePrinter table({"family", "medoid run", "program",
                              "members", "mean dtw", "programs"});
    for (std::size_t f = 0; f < clusters.medoids.size(); ++f) {
        const std::size_t medoid = clusters.medoids[f];
        double total = 0.0;
        std::map<std::string, std::size_t> programs;
        for (const std::size_t member : members[f]) {
            total += matrix[member * n + medoid];
            ++programs[snap.runInfo(ids[member]).program];
        }
        std::vector<std::string> parts;
        for (const auto &[program, count] : programs)
            parts.push_back(program + " x" + std::to_string(count));
        table.addRow(
            {std::to_string(f),
             std::to_string(static_cast<unsigned long long>(
                 ids[medoid])),
             snap.runInfo(ids[medoid]).program,
             std::to_string(members[f].size()),
             util::formatDouble(
                 members[f].empty()
                     ? 0.0
                     : total / static_cast<double>(members[f].size()),
                 4),
             util::join(parts, " ")});
    }
    output += table.render();

    // --mine: rank events within each family. Runs that measured a
    // different event list than the family medoid are skipped (the
    // dataset build needs one homogeneous list with IPC last).
    if (flags.has("mine")) {
        core::ImportanceOptions mine_options;
        mine_options.minEvents = static_cast<std::size_t>(
            flags.getInt("min-events", 96));
        const core::ImportanceRanker ranker(mine_options);
        for (std::size_t f = 0; f < clusters.medoids.size(); ++f) {
            const auto &medoid_events =
                snap.runInfo(ids[clusters.medoids[f]]).events;
            std::vector<store::RunId> family_ids;
            for (const std::size_t member : members[f]) {
                const auto &events =
                    snap.runInfo(ids[member]).events;
                if (events == medoid_events && events.size() >= 2 &&
                    events.back() == core::ipc_series_name)
                    family_ids.push_back(ids[member]);
            }
            if (family_ids.empty()) {
                output += util::format(
                    "family %zu: no minable runs (event lists do not "
                    "end in %s)\n",
                    f, core::ipc_series_name);
                continue;
            }
            const auto data =
                core::ImportanceRanker::buildDatasetFromStore(
                    *db, family_ids, pmu::EventCatalog::instance());
            // A per-family stream derived from (seed, family) keeps
            // each family's mining reproducible regardless of how many
            // families precede it.
            util::Rng family_rng(seed * 0x100000001b3ULL +
                                 static_cast<std::uint64_t>(f) + 1);
            const auto mined = ranker.run(data, family_rng);
            output += util::format(
                "family %zu MAPM: %zu events, cv error %.2f%%\n", f,
                mined.mapmEventCount, mined.mapmErrorPercent);
            util::TablePrinter ranks({"rank", "event", "importance %"});
            const std::size_t top =
                std::min<std::size_t>(5, mined.ranking.size());
            for (std::size_t i = 0; i < top; ++i) {
                ranks.addRow({std::to_string(i + 1),
                              mined.ranking[i].feature,
                              util::formatDouble(
                                  mined.ranking[i].importance, 1)});
            }
            output += ranks.render();
        }
    }

    if (!flags.has("artifact-out") && !flags.has("model"))
        return 0;

    mining::ClusterArtifact artifact;
    artifact.microarch = db->microarch();
    artifact.signature = signature;
    // Scope the artifact to the one profiled program when the store
    // holds exactly one; a mixed store gets an unscoped artifact.
    const auto programs = db->programs();
    if (programs.size() == 1)
        artifact.benchmark = programs.front();
    for (std::size_t f = 0; f < clusters.medoids.size(); ++f) {
        mining::ClusterFamily family;
        family.medoidRun =
            static_cast<std::uint64_t>(ids[clusters.medoids[f]]);
        family.program = snap.runInfo(ids[clusters.medoids[f]]).program;
        family.memberCount = members[f].size();
        family.signature = signatures[clusters.medoids[f]];
        artifact.families.push_back(std::move(family));
    }

    if (flags.has("model")) {
        auto loaded = core::loadMapmArtifact(flags.get("model", ""));
        loaded.status().throwIfError();
        auto model = std::make_shared<const core::MapmArtifact>(
            std::move(loaded).value());
        auto calibrated = mining::AnomalyScorer::calibrate(
            model, std::move(artifact), snap, ids,
            pmu::EventCatalog::instance());
        calibrated.status().throwIfError();
        artifact = calibrated.value().clusters();
        output += util::format(
            "calibrated thresholds from %zu runs: residual z > %.2f "
            "(mean %.4g, stddev %.4g), signature distance > %.4f\n",
            ids.size(), artifact.residualZThreshold,
            artifact.residualMean, artifact.residualStddev,
            artifact.signatureThreshold);
    }

    if (flags.has("artifact-out")) {
        const std::string path = flags.get("artifact-out", "");
        mining::saveClusterArtifact(artifact, path).throwIfError();
        output += "wrote cluster artifact to " + path + "\n";
        if (artifact.residualZThreshold <= 0.0)
            output += "note: artifact is uncalibrated (no --model); "
                      "scoring will refuse it\n";
    }
    return 0;
}

int
cmdServe(const Flags &flags, std::string &output)
{
    serve::ServerOptions options;
    options.queueCap =
        static_cast<std::size_t>(flags.getInt("queue-cap", 64));
    options.maxBatchRows =
        static_cast<std::size_t>(flags.getInt("batch-rows", 256));
    options.batchWindowMs = flags.getDouble("batch-window-ms", 0.5);
    options.defaultDeadlineMs = flags.getDouble("deadline-ms", 0.0);
    options.mineQueueCap =
        static_cast<std::size_t>(flags.getInt("mine-queue-cap", 1));
    options.storeDir = flags.get("store-dir", "");
    options.storeMemoryBudgetBytes =
        static_cast<std::size_t>(flags.getInt("memory-budget-mb", 64))
        << 20;
    options.backend = getBackendFlag(flags);

    serve::Server server(options);

    // Checkpoints load once, up front; the request path never touches
    // disk. --model takes a comma-separated list of `path` or
    // `name=path` entries.
    for (const auto &entry :
         util::split(flags.get("model", ""), ',')) {
        if (entry.empty())
            continue;
        std::string name;
        std::string path = entry;
        const auto eq = entry.find('=');
        if (eq != std::string::npos) {
            name = entry.substr(0, eq);
            path = entry.substr(eq + 1);
        }
        server.loadModel(name, path).throwIfError();
    }
    // Anomaly scorers load the same way: --scorer takes a comma-
    // separated list of `MODEL:CLUSTERS` or `NAME=MODEL:CLUSTERS`
    // entries (checkpoints from 'mapm --model-out' and
    // 'cluster --model --artifact-out').
    for (const auto &entry :
         util::split(flags.get("scorer", ""), ',')) {
        if (entry.empty())
            continue;
        std::string name;
        std::string paths = entry;
        const auto eq = entry.find('=');
        if (eq != std::string::npos && eq < entry.find(':')) {
            name = entry.substr(0, eq);
            paths = entry.substr(eq + 1);
        }
        const auto colon = paths.find(':');
        if (colon == std::string::npos)
            util::fatal("--scorer entries look like "
                        "[NAME=]MODEL.ckpt:CLUSTERS.ckpt, got '" +
                        entry + "'");
        server
            .loadScorer(name, paths.substr(0, colon),
                        paths.substr(colon + 1))
            .throwIfError();
    }

    if (server.modelNames().empty() && server.scorerNames().empty() &&
        !flags.has("allow-empty"))
        util::fatal("serve requires --model FILE[,NAME=FILE...] (a "
                    "checkpoint written by 'mapm --model-out') or "
                    "--scorer; pass --allow-empty to start with "
                    "mining only");

    if (flags.has("socket")) {
        serve::SocketServer listener(server,
                                     flags.get("socket", ""));
        listener.listen().throwIfError();
        listener.serveForever().throwIfError();
        const auto counts = server.counters();
        output += util::format(
            "served %zu connections: %llu ok, %llu shed, %llu "
            "deadline-missed\n",
            listener.connectionCount(),
            static_cast<unsigned long long>(counts.completed),
            static_cast<unsigned long long>(counts.shed),
            static_cast<unsigned long long>(counts.deadlineMissed));
        return 0;
    }

    // Pipe mode: frames in on stdin (or --in FILE), frames out on
    // stdout (or --out FILE). One connection, then exit — the
    // deterministic transport the tests and load generator drive.
    if (!flags.has("pipe") && !flags.has("in"))
        util::fatal("serve expects --socket PATH, --pipe, or "
                    "--in FILE --out FILE");
    std::ifstream file_in;
    std::ofstream file_out;
    if (flags.has("in")) {
        file_in.open(flags.get("in", ""), std::ios::binary);
        if (!file_in)
            util::fatal("cannot read " + flags.get("in", ""));
    }
    if (flags.has("out")) {
        file_out.open(flags.get("out", ""), std::ios::binary);
        if (!file_out)
            util::fatal("cannot write " + flags.get("out", ""));
    }
    std::istream &in = flags.has("in") ? file_in : std::cin;
    std::ostream &out = flags.has("out")
                            ? static_cast<std::ostream &>(file_out)
                            : std::cout;

    serve::StreamFrameSource plain_source(in);
    serve::StreamFrameSink plain_sink(out);
    serve::FrameSource *source = &plain_source;
    serve::FrameSink *sink = &plain_sink;

    // Deterministic transport damage for hardening runs: the same
    // seeded injector that corrupts perf text deals torn frames,
    // hangups, and latency here.
    std::optional<util::FaultInjector> injector;
    std::optional<serve::FaultyFrameSource> faulty_source;
    std::optional<serve::FaultyStreamFrameSink> faulty_sink;
    util::SleepingClock sleeper;
    if (flags.has("inject-faults")) {
        auto spec = util::parseFaultSpec(flags.get("inject-faults", ""));
        spec.status().throwIfError();
        injector.emplace(spec.value());
        faulty_source.emplace(plain_source, *injector, &sleeper);
        faulty_sink.emplace(out, *injector, &sleeper);
        source = &*faulty_source;
        sink = &*faulty_sink;
    }

    const auto result = serveConnection(server, *source, *sink);
    server.drain();

    const auto counts = server.counters();
    output += util::format(
        "served %zu frames: %llu ok, %llu shed, %llu deadline-missed, "
        "%llu failed\n",
        result.framesRead,
        static_cast<unsigned long long>(counts.completed),
        static_cast<unsigned long long>(counts.shed),
        static_cast<unsigned long long>(counts.deadlineMissed),
        static_cast<unsigned long long>(counts.failed));
    if (!result.transportStatus.ok())
        output += "transport: " + result.transportStatus.toString() +
                  "\n";
    return 0;
}

} // namespace

std::string
usage()
{
    return "usage: counterminer <command> [options]\n"
           "\n"
           "commands:\n"
           "  list-benchmarks                 the 16 simulated programs\n"
           "  list-events [--category C]      the 229-event catalog\n"
           "  profile <benchmark> [--runs N] [--seed S] [--min-events N]\n"
           "          [--skip-cleaning] [--json FILE] [--db FILE]\n"
           "          [--inject-faults SPEC] [--max-bad-runs N]\n"
           "          [--max-bad-fraction F] [--backend B]\n"
           "  collect <benchmark> [--backend B] [--mode mlpx|ocoe]\n"
           "          [--runs N] [--events N] [--interval-ms D]\n"
           "          [--seed S] [--db FILE]\n"
           "          [--watch MODEL.ckpt:CLUSTERS.ckpt]\n"
           "                                  record counter runs only\n"
           "                (no mining); with --backend=perf the runs\n"
           "                are real perf_event_open measurements of a\n"
           "                built-in synthetic load; --watch scores\n"
           "                each collected run against a calibrated\n"
           "                anomaly scorer and reports verdicts\n"
           "  mapm <benchmark> [--model-out FILE] [--db FILE]\n"
           "       [--runs N] [--seed S] [--min-events N]\n"
           "                                  mine the MAPM and write a\n"
           "                model checkpoint for later serving\n"
           "  predict <db.cmdb> --model FILE [--out FILE] [--mode M]\n"
           "                                  score a database with a\n"
           "                checkpointed MAPM, without retraining\n"
           "  clean <perf.csv> [--out FILE] [--lenient]\n"
           "                                  clean a perf interval log\n"
           "  explore <db.cmdb>               summarize a database\n"
           "  error <benchmark> [--seed S]    quick MLPX-error check\n"
           "  stats [metrics.json]            pretty-print an exported\n"
           "                metrics file (default: cminer-metrics.json)\n"
           "  cluster (<db.cmdb> | --store-dir DIR) [--k N] [--seed S]\n"
           "          [--mode mlpx|ocoe] [--event E]\n"
           "          [--signature-length N] [--band F] [--mine]\n"
           "          [--min-events N] [--artifact-out FILE]\n"
           "          [--model MAPM.ckpt]\n"
           "                                  group a store's runs into\n"
           "                workload families by DTW distance between\n"
           "                counter signatures (k-medoids/PAM,\n"
           "                bit-identical for any --threads); --mine\n"
           "                ranks events per family, --model also\n"
           "                calibrates anomaly thresholds, and\n"
           "                --artifact-out writes the cluster-artifact\n"
           "                checkpoint that 'serve --scorer' and\n"
           "                'collect --watch' load\n"
           "  serve --model FILE[,NAME=FILE...]\n"
           "        [--scorer [NAME=]MODEL.ckpt:CLUSTERS.ckpt[,...]]\n"
           "        (--socket PATH | --pipe | --in FILE --out FILE)\n"
           "        [--queue-cap N] [--batch-rows N] [--deadline-ms D]\n"
           "        [--batch-window-ms D] [--mine-queue-cap N]\n"
           "        [--store-dir DIR] [--memory-budget-mb N]\n"
           "        [--inject-faults SPEC]\n"
           "                                  deadline-aware serving\n"
           "                daemon: batches concurrent predicts, sheds\n"
           "                with CapacityError when the admission queue\n"
           "                is full, drains cleanly on a shutdown frame.\n"
           "                --store-dir mines into a persistent\n"
           "                out-of-core segment store whose resident\n"
           "                memory follows --memory-budget-mb (default\n"
           "                64) instead of the accumulated runs\n"
           "\n"
           "global options:\n"
           "  --backend B   how counters are measured: 'sim' (default,\n"
           "                the paper's simulated PMU, deterministic\n"
           "                per seed) or 'perf' (real perf_event_open\n"
           "                on Linux; probed at startup and falling\n"
           "                back to sim with a logged reason when\n"
           "                hardware counters are unavailable)\n"
           "  --threads N   worker threads for the mining pipeline\n"
           "                (default: CMINER_THREADS env var, else all\n"
           "                hardware threads; 1 = fully serial; results\n"
           "                are bit-identical for any value)\n"
           "\n"
           "observability:\n"
           "  --trace-out FILE    write a JSON tree of timed pipeline\n"
           "                phase spans (collect/clean/dataset/eir/...)\n"
           "  --metrics-out FILE  write pipeline counters, gauges and\n"
           "                duration histograms as JSON; inspect with\n"
           "                'counterminer stats FILE'\n"
           "                Both are off by default and cost nothing\n"
           "                when absent.\n"
           "\n"
           "fault tolerance:\n"
           "  --inject-faults SPEC  deterministic damage for hardening\n"
           "                runs, e.g. corrupt=0.02,drop=0.02,nan=0.01,\n"
           "                transient=0.05,seed=7 (rates in [0,1];\n"
           "                keys: corrupt drop dup nan transient seed)\n"
           "  --max-bad-runs N      quarantine up to N failed runs\n"
           "                before aborting (default 0: first failure\n"
           "                is fatal)\n"
           "  --max-bad-fraction F  abort when more than this fraction\n"
           "                of runs was quarantined (default 0.5)\n"
           "  --lenient     (clean) skip-and-count damaged lines\n"
           "                instead of rejecting the file\n";
}

int
run(const std::vector<std::string> &args, std::string &output)
{
    if (args.empty() || args.front() == "help" ||
        args.front() == "--help") {
        output += usage();
        return args.empty() ? 1 : 0;
    }
    const std::string &command = args.front();
    try {
        const Flags flags = parseFlags(args, 1);
        if (flags.has("threads")) {
            const std::int64_t threads = flags.getInt("threads", 0);
            if (threads < 1)
                util::fatal("--threads expects a count >= 1");
            util::Parallelism::setThreadCount(
                static_cast<std::size_t>(threads));
        }
        ObservabilityScope observability(flags);
        const auto finish = [&](int code) {
            if (code == 0)
                observability.writeReports(output);
            return code;
        };
        if (command == "list-benchmarks")
            return finish(cmdListBenchmarks(output));
        if (command == "list-events")
            return finish(cmdListEvents(flags, output));
        if (command == "profile")
            return finish(cmdProfile(flags, output));
        if (command == "collect")
            return finish(cmdCollect(flags, output));
        if (command == "mapm")
            return finish(cmdMapm(flags, output));
        if (command == "predict")
            return finish(cmdPredict(flags, output));
        if (command == "clean")
            return finish(cmdClean(flags, output));
        if (command == "explore")
            return finish(cmdExplore(flags, output));
        if (command == "error")
            return finish(cmdError(flags, output));
        if (command == "stats")
            return finish(cmdStats(flags, output));
        if (command == "cluster")
            return finish(cmdCluster(flags, output));
        if (command == "serve")
            return finish(cmdServe(flags, output));
        output += "unknown command '" + command + "'\n" + usage();
        return 1;
    } catch (const util::FatalError &e) {
        output += std::string("error: ") + e.what() + "\n";
        return 1;
    }
}

} // namespace cminer::cli

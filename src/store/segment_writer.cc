#include "store/segment_writer.h"

#include <map>

#include "util/binary_io.h"
#include "util/error.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace cminer::store {

using cminer::util::Status;

SegmentWriter::SegmentWriter(std::string microarch)
    : microarch_(std::move(microarch))
{
}

void
SegmentWriter::addRun(const RunMetadata &meta, double interval_ms,
                      std::size_t length,
                      std::vector<std::span<const double>> columns)
{
    CM_ASSERT(!spent_);
    CM_ASSERT(!columns.empty());
    CM_ASSERT(columns.size() == meta.events.size());
    for (const auto &column : columns)
        CM_ASSERT(column.size() == length);
    payloadBytes_ += columns.size() * length * sizeof(double);
    runs_.push_back(
        {&meta, interval_ms, length, std::move(columns)});
}

void
SegmentWriter::addRun(const BufferedRun &run)
{
    std::vector<std::span<const double>> columns;
    columns.reserve(run.columns.size());
    for (const auto &column : run.columns)
        columns.emplace_back(column);
    addRun(run.meta, run.intervalMs, run.length, std::move(columns));
}

void
SegmentWriter::addSegment(const Segment &segment)
{
    for (std::size_t r = 0; r < segment.runCount(); ++r) {
        const RunMetadata &meta = segment.runMeta(r);
        std::vector<std::span<const double>> columns;
        columns.reserve(meta.events.size());
        for (std::size_t e = 0; e < meta.events.size(); ++e)
            columns.push_back(segment.column(r, e));
        addRun(meta, segment.intervalMs(r), segment.length(r),
               std::move(columns));
    }
}

Status
SegmentWriter::write(const std::string &path)
{
    CM_ASSERT(!spent_);
    spent_ = true;
    if (runs_.empty())
        return Status::dataError(
            "segment: refusing to write an empty segment");
    const RunId first_id = runs_.front().meta->id;
    for (std::size_t r = 0; r < runs_.size(); ++r) {
        if (runs_[r].meta->id != first_id + static_cast<RunId>(r))
            return Status::dataError(util::format(
                "segment: run ids must be contiguous (run %zu has id "
                "%lld, expected %lld)",
                r, static_cast<long long>(runs_[r].meta->id),
                static_cast<long long>(first_id +
                                       static_cast<RunId>(r))));
    }

    util::BinaryWriter out(Segment::artifact_kind,
                           Segment::artifact_version);
    out.beginSection("meta");
    out.str(microarch_);
    out.u64(static_cast<std::uint64_t>(first_id));
    out.u64(runs_.size());
    out.endSection();

    // Column payloads first: their absolute offsets are recorded here
    // and written into the catalog below. Alignment padding keeps every
    // payload mappable as double[].
    std::vector<std::vector<std::uint64_t>> offsets(runs_.size());
    out.beginSection("columns");
    for (std::size_t r = 0; r < runs_.size(); ++r) {
        offsets[r].reserve(runs_[r].columns.size());
        for (const auto &column : runs_[r].columns) {
            out.align8();
            offsets[r].push_back(out.bytesWritten());
            out.f64Span(column);
        }
    }
    out.endSection();

    out.beginSection("catalog");
    out.u64(runs_.size());
    for (std::size_t r = 0; r < runs_.size(); ++r) {
        const PendingRun &run = runs_[r];
        out.u64(static_cast<std::uint64_t>(run.meta->id));
        out.str(run.meta->program);
        out.str(run.meta->suite);
        out.str(run.meta->mode);
        out.f64(run.meta->execTimeMs);
        out.f64(run.intervalMs);
        out.u64(run.length);
        out.u64(run.meta->events.size());
        for (std::size_t e = 0; e < run.meta->events.size(); ++e) {
            out.str(run.meta->events[e]);
            out.u64(offsets[r][e]);
        }
    }
    out.endSection();

    // Per-program run ordinals (ascending by construction: runs were
    // added in id order).
    std::map<std::string, std::vector<std::uint64_t>> index;
    for (std::size_t r = 0; r < runs_.size(); ++r)
        index[runs_[r].meta->program].push_back(r);
    out.beginSection("index");
    out.u64(index.size());
    for (const auto &[program, ordinals] : index) {
        out.str(program);
        out.u64(ordinals.size());
        for (const std::uint64_t ordinal : ordinals)
            out.u64(ordinal);
    }
    out.endSection();

    Status status = out.writeFile(path);
    if (!status.ok())
        return status.withContext("segment: write " + path);
    util::count("store.segments_written");
    return status;
}

} // namespace cminer::store

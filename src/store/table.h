/**
 * @file
 * A typed in-memory table with schema validation — the building block of
 * the two-level store (Section III-A of the paper).
 */

#ifndef CMINER_STORE_TABLE_H
#define CMINER_STORE_TABLE_H

#include <functional>
#include <string>
#include <vector>

#include "store/value.h"

namespace cminer::store {

/** One column: a name and a type. */
struct ColumnSpec
{
    std::string name;
    ColumnType type;
};

/** Ordered column specification for a table. */
class Schema
{
  public:
    Schema() = default;

    /** @param columns column specs; names must be unique and non-empty */
    explicit Schema(std::vector<ColumnSpec> columns);

    /** Number of columns. */
    std::size_t size() const { return columns_.size(); }

    /** Column spec by position. */
    const ColumnSpec &column(std::size_t index) const;

    /** Position of a named column; fatal when absent. */
    std::size_t indexOf(const std::string &name) const;

    /** True when a column with this name exists. */
    bool hasColumn(const std::string &name) const;

    /** All columns in order. */
    const std::vector<ColumnSpec> &columns() const { return columns_; }

    /** Validate a row against this schema (arity and cell types). */
    void validate(const std::vector<Value> &row) const;

  private:
    std::vector<ColumnSpec> columns_;
};

/** A row of cells matching some schema. */
using Row = std::vector<Value>;

/**
 * An append-oriented table: insert rows, scan with predicates, project
 * columns. Deliberately small — the store needs no joins or updates.
 */
class Table
{
  public:
    Table() = default;

    /**
     * @param name table name (unique within a Database)
     * @param schema column layout
     */
    Table(std::string name, Schema schema);

    /** Table name. */
    const std::string &name() const { return name_; }

    /** Column layout. */
    const Schema &schema() const { return schema_; }

    /** Number of stored rows. */
    std::size_t rowCount() const { return rows_.size(); }

    /** Append a row after validating it against the schema. */
    void insert(Row row);

    /** Row by position (bounds-checked). */
    const Row &row(std::size_t index) const;

    /** All rows matching a predicate. */
    std::vector<Row> select(
        const std::function<bool(const Row &)> &predicate) const;

    /** Values of one column across all rows. */
    std::vector<Value> column(const std::string &name) const;

    /** Numeric column as doubles (integers widened). */
    std::vector<double> numericColumn(const std::string &name) const;

    /** Remove all rows, keeping the schema. */
    void clear() { rows_.clear(); }

  private:
    std::string name_;
    Schema schema_;
    std::vector<Row> rows_;
};

} // namespace cminer::store

#endif // CMINER_STORE_TABLE_H

/**
 * @file
 * A typed in-memory table with schema validation — the building block of
 * the two-level store (Section III-A of the paper).
 *
 * Storage is columnar: each column keeps its values in one contiguous,
 * type-homogeneous vector, so numeric (REAL) columns can be handed to
 * the mining layer as `std::span<const double>` without materializing
 * rows or copying values. The row-oriented API (insert/row/select) is
 * kept on top of that layout; `row()` materializes on demand.
 */

#ifndef CMINER_STORE_TABLE_H
#define CMINER_STORE_TABLE_H

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "store/value.h"

namespace cminer::store {

/** One column: a name and a type. */
struct ColumnSpec
{
    std::string name;
    ColumnType type;
};

/** Ordered column specification for a table. */
class Schema
{
  public:
    Schema() = default;

    /** @param columns column specs; names must be unique and non-empty */
    explicit Schema(std::vector<ColumnSpec> columns);

    /** Number of columns. */
    std::size_t size() const { return columns_.size(); }

    /** Column spec by position. */
    const ColumnSpec &column(std::size_t index) const;

    /** Position of a named column; fatal when absent. */
    std::size_t indexOf(const std::string &name) const;

    /** True when a column with this name exists. */
    bool hasColumn(const std::string &name) const;

    /** All columns in order. */
    const std::vector<ColumnSpec> &columns() const { return columns_; }

    /** Validate a row against this schema (arity and cell types). */
    void validate(const std::vector<Value> &row) const;

  private:
    std::vector<ColumnSpec> columns_;
};

/** A row of cells matching some schema. */
using Row = std::vector<Value>;

/**
 * An append-oriented columnar table: insert rows, scan with predicates,
 * project columns. Deliberately small — the store needs no joins or
 * updates.
 */
class Table
{
  public:
    Table() = default;

    /**
     * @param name table name (unique within a Database)
     * @param schema column layout
     */
    Table(std::string name, Schema schema);

    /** Table name. */
    const std::string &name() const { return name_; }

    /** Column layout. */
    const Schema &schema() const { return schema_; }

    /** Number of stored rows. */
    std::size_t rowCount() const { return rowCount_; }

    /** Append a row after validating it against the schema. */
    void insert(Row row);

    /** Row by position, materialized from the columns (bounds-checked). */
    Row row(std::size_t index) const;

    /** All rows matching a predicate (rows are materialized to test). */
    std::vector<Row> select(
        const std::function<bool(const Row &)> &predicate) const;

    /** Values of one column across all rows (materialized copy). */
    std::vector<Value> column(const std::string &name) const;

    /** Numeric column as doubles (integers widened; copies). */
    std::vector<double> numericColumn(const std::string &name) const;

    /**
     * Zero-copy view of a REAL column's contiguous storage. Fatal when
     * the column is absent or not REAL. The span is invalidated by the
     * next insert() or clear().
     */
    std::span<const double> realColumn(const std::string &name) const;

    /** realColumn by position. */
    std::span<const double> realColumn(std::size_t index) const;

    /** Remove all rows, keeping the schema. */
    void clear();

  private:
    /**
     * Typed storage of one column; only the vector matching the
     * schema's column type is populated.
     */
    struct ColumnStore
    {
        std::vector<std::int64_t> ints;
        std::vector<double> reals;
        std::vector<std::string> texts;
    };

    /** The cell of one column at one row, as a Value. */
    Value cell(std::size_t column, std::size_t row) const;

    std::string name_;
    Schema schema_;
    std::vector<ColumnStore> columns_;
    std::size_t rowCount_ = 0;
};

} // namespace cminer::store

#endif // CMINER_STORE_TABLE_H

#include "store/database.h"

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>

#include "util/csv.h"
#include "util/error.h"
#include "util/string_util.h"

namespace cminer::store {

using cminer::ts::TimeSeries;

namespace {

Schema
catalogSchema()
{
    return Schema({{"run_id", ColumnType::Integer},
                   {"program", ColumnType::Text},
                   {"suite", ColumnType::Text},
                   {"mode", ColumnType::Text},
                   {"exec_time_ms", ColumnType::Real},
                   {"events", ColumnType::Text},
                   {"series_table", ColumnType::Text}});
}

// --- tiny binary I/O helpers -----------------------------------------------

void
writeU64(std::ostream &out, std::uint64_t v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
writeF64(std::ostream &out, double v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
writeString(std::ostream &out, const std::string &s)
{
    writeU64(out, s.size());
    out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::uint64_t
readU64(std::istream &in)
{
    std::uint64_t v = 0;
    in.read(reinterpret_cast<char *>(&v), sizeof(v));
    if (!in)
        util::fatal("store: truncated database file");
    return v;
}

double
readF64(std::istream &in)
{
    double v = 0.0;
    in.read(reinterpret_cast<char *>(&v), sizeof(v));
    if (!in)
        util::fatal("store: truncated database file");
    return v;
}

std::string
readString(std::istream &in)
{
    const std::uint64_t size = readU64(in);
    if (size > (1ULL << 32))
        util::fatal("store: corrupt string length in database file");
    std::string s(size, '\0');
    in.read(s.data(), static_cast<std::streamsize>(size));
    if (!in)
        util::fatal("store: truncated database file");
    return s;
}

constexpr char db_magic[4] = {'C', 'M', 'D', 'B'};
constexpr std::uint64_t db_version = 1;

} // namespace

Database::Database(std::string microarch)
    : microarch_(std::move(microarch)),
      catalog_("runs", catalogSchema())
{
}

RunId
Database::addRun(const std::string &program, const std::string &suite,
                 const std::string &mode, double exec_time_ms,
                 const std::vector<TimeSeries> &series)
{
    auto result = tryAddRun(program, suite, mode, exec_time_ms, series);
    result.status().throwIfError();
    return result.value();
}

util::StatusOr<RunId>
Database::tryAddRun(const std::string &program, const std::string &suite,
                    const std::string &mode, double exec_time_ms,
                    const std::vector<TimeSeries> &series)
{
    if (series.empty())
        return util::Status::dataError(
            "store: addRun requires at least one series");
    const std::size_t length = series.front().size();
    for (const auto &s : series) {
        if (s.size() != length)
            return util::Status::dataError(util::format(
                "store: series length mismatch within a run ('%s' has "
                "%zu samples, expected %zu)",
                s.eventName().c_str(), s.size(), length));
    }
    if (!std::isfinite(exec_time_ms) || exec_time_ms < 0.0)
        return util::Status::dataError(
            "store: run execution time is not a finite non-negative "
            "duration");

    const RunId id = nextId_++;
    RunMetadata meta;
    meta.id = id;
    meta.program = program;
    meta.suite = suite;
    meta.mode = mode;
    meta.execTimeMs = exec_time_ms;
    meta.seriesTable = "run_" + std::to_string(id);
    for (const auto &s : series)
        meta.events.push_back(s.eventName());

    // Level-2 table: interval index plus one REAL column per event.
    std::vector<ColumnSpec> columns;
    columns.push_back({"interval", ColumnType::Integer});
    for (const auto &s : series)
        columns.push_back({s.eventName(), ColumnType::Real});
    Table table(meta.seriesTable, Schema(std::move(columns)));
    for (std::size_t i = 0; i < length; ++i) {
        Row row;
        row.reserve(series.size() + 1);
        row.emplace_back(static_cast<std::int64_t>(i));
        for (const auto &s : series)
            row.emplace_back(s.at(i));
        table.insert(std::move(row));
    }

    intervalMs_[id] = series.front().intervalMs();
    seriesTables_.emplace(id, std::move(table));
    runs_.emplace(id, std::move(meta));

    const RunMetadata &stored = runs_.at(id);
    catalog_.insert({id, stored.program, stored.suite, stored.mode,
                     stored.execTimeMs,
                     util::join(stored.events, ";"),
                     stored.seriesTable});
    return id;
}

const RunMetadata &
Database::runInfo(RunId id) const
{
    auto it = runs_.find(id);
    if (it == runs_.end())
        util::fatal("store: unknown run id " + std::to_string(id));
    return it->second;
}

std::vector<RunId>
Database::findRuns(const std::string &program, const std::string &mode) const
{
    std::vector<RunId> ids;
    for (const auto &[id, meta] : runs_) {
        if (meta.program != program)
            continue;
        if (!mode.empty() && meta.mode != mode)
            continue;
        ids.push_back(id);
    }
    return ids;
}

std::vector<std::string>
Database::programs() const
{
    std::set<std::string> names;
    for (const auto &[id, meta] : runs_)
        names.insert(meta.program);
    return {names.begin(), names.end()};
}

TimeSeries
Database::series(RunId id, const std::string &event) const
{
    const auto values = seriesValues(id, event);
    return TimeSeries(event, {values.begin(), values.end()},
                      seriesIntervalMs(id));
}

std::span<const double>
Database::seriesValues(RunId id, const std::string &event) const
{
    const Table &table = seriesTable(id);
    if (!table.schema().hasColumn(event))
        util::fatal("store: run " + std::to_string(id) +
                    " has no event " + event);
    return table.realColumn(event);
}

double
Database::seriesIntervalMs(RunId id) const
{
    auto it = intervalMs_.find(id);
    if (it == intervalMs_.end())
        util::fatal("store: unknown run id " + std::to_string(id));
    return it->second;
}

std::vector<TimeSeries>
Database::allSeries(RunId id) const
{
    const RunMetadata &meta = runInfo(id);
    std::vector<TimeSeries> out;
    out.reserve(meta.events.size());
    for (const auto &event : meta.events)
        out.push_back(series(id, event));
    return out;
}

const Table &
Database::seriesTable(RunId id) const
{
    auto it = seriesTables_.find(id);
    if (it == seriesTables_.end())
        util::fatal("store: unknown run id " + std::to_string(id));
    return it->second;
}

void
Database::save(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        util::fatal("store: cannot open for writing: " + path);

    out.write(db_magic, sizeof(db_magic));
    writeU64(out, db_version);
    writeString(out, microarch_);
    writeU64(out, runs_.size());
    for (const auto &[id, meta] : runs_) {
        writeU64(out, static_cast<std::uint64_t>(id));
        writeString(out, meta.program);
        writeString(out, meta.suite);
        writeString(out, meta.mode);
        writeF64(out, meta.execTimeMs);
        writeF64(out, intervalMs_.at(id));
        writeU64(out, meta.events.size());
        const Table &table = seriesTables_.at(id);
        writeU64(out, table.rowCount());
        for (const auto &event : meta.events) {
            writeString(out, event);
            for (double v : table.realColumn(event))
                writeF64(out, v);
        }
    }
    if (!out)
        util::fatal("store: write failed: " + path);
}

Database
Database::load(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        util::fatal("store: cannot open for reading: " + path);

    char magic[4];
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, db_magic, sizeof(db_magic)) != 0)
        util::fatal("store: not a CounterMiner database: " + path);
    const std::uint64_t version = readU64(in);
    if (version != db_version)
        util::fatal("store: unsupported database version in " + path);

    Database db(readString(in));
    const std::uint64_t run_count = readU64(in);
    for (std::uint64_t r = 0; r < run_count; ++r) {
        readU64(in); // original id; ids are reassigned densely on load
        const std::string program = readString(in);
        const std::string suite = readString(in);
        const std::string mode = readString(in);
        const double exec_time_ms = readF64(in);
        const double interval_ms = readF64(in);
        const std::uint64_t event_count = readU64(in);
        const std::uint64_t length = readU64(in);
        std::vector<TimeSeries> series;
        series.reserve(event_count);
        for (std::uint64_t e = 0; e < event_count; ++e) {
            const std::string event = readString(in);
            std::vector<double> values(length);
            for (auto &v : values)
                v = readF64(in);
            series.emplace_back(event, std::move(values), interval_ms);
        }
        db.addRun(program, suite, mode, exec_time_ms, series);
    }
    return db;
}

void
Database::exportCsv(const std::string &directory) const
{
    std::filesystem::create_directories(directory);

    util::CsvWriter catalog_csv(directory + "/catalog.csv");
    std::vector<std::string> header;
    for (const auto &col : catalog_.schema().columns())
        header.push_back(col.name);
    catalog_csv.writeRow(header);
    for (std::size_t r = 0; r < catalog_.rowCount(); ++r) {
        std::vector<std::string> fields;
        for (const auto &cell : catalog_.row(r))
            fields.push_back(toString(cell));
        catalog_csv.writeRow(fields);
    }
    catalog_csv.close();

    for (const auto &[id, table] : seriesTables_) {
        util::CsvWriter run_csv(directory + "/" + table.name() + ".csv");
        std::vector<std::string> run_header;
        for (const auto &col : table.schema().columns())
            run_header.push_back(col.name);
        run_csv.writeRow(run_header);
        for (std::size_t r = 0; r < table.rowCount(); ++r) {
            std::vector<std::string> fields;
            for (const auto &cell : table.row(r))
                fields.push_back(toString(cell));
            run_csv.writeRow(fields);
        }
        run_csv.close();
    }
}

} // namespace cminer::store

#include "store/database.h"

#include <cmath>
#include <cstring>
#include <filesystem>
#include <set>

#include "util/binary_io.h"
#include "util/csv.h"
#include "util/error.h"
#include "util/string_util.h"

namespace cminer::store {

using cminer::ts::TimeSeries;

namespace {

Schema
catalogSchema()
{
    return Schema({{"run_id", ColumnType::Integer},
                   {"program", ColumnType::Text},
                   {"suite", ColumnType::Text},
                   {"mode", ColumnType::Text},
                   {"exec_time_ms", ColumnType::Real},
                   {"events", ColumnType::Text},
                   {"series_table", ColumnType::Text}});
}

// --- persistence format constants ------------------------------------------

/** Magic of the legacy (pre-container) v1 file format. */
constexpr char db_legacy_magic[4] = {'C', 'M', 'D', 'B'};

/** Artifact kind of the container-format database file. */
constexpr const char *db_artifact_kind = "cminer-db";

/**
 * Current database schema version. v1 was the legacy raw layout; v2 is
 * the same run records inside a checkpoint container (DESIGN.md §12),
 * written atomically and read with bounded, validated reads. v1 files
 * still load.
 */
constexpr std::uint32_t db_version = 2;

/**
 * Smallest possible run record on disk: id (8) + three string length
 * prefixes (24) + exec/interval (16) + event count (8) + length (8).
 * Run-count fields are validated against it before any allocation.
 */
constexpr std::size_t min_run_record_bytes = 64;

/**
 * Parse the run records shared by the v1 and v2 layouts, inserting
 * them into `db`. All counts and lengths are validated against the
 * bytes remaining in `in` before anything is allocated.
 */
util::Status
readRuns(util::BinaryReader &in, Database &db)
{
    const std::uint64_t run_count = in.count(min_run_record_bytes);
    for (std::uint64_t r = 0; r < run_count; ++r) {
        in.u64(); // original id; ids are reassigned densely on load
        const std::string program = in.str();
        const std::string suite = in.str();
        const std::string mode = in.str();
        const double exec_time_ms = in.f64();
        const double interval_ms = in.f64();
        // Per event: at least the name's length prefix plus the length
        // count... the series payload itself is checked per event.
        const std::uint64_t event_count = in.count(8);
        const std::uint64_t length = in.count(8);
        if (!in.ok())
            return in.status().withContext(
                util::format("run %llu",
                             static_cast<unsigned long long>(r)));
        std::vector<cminer::ts::TimeSeries> series;
        series.reserve(event_count);
        for (std::uint64_t e = 0; e < event_count; ++e) {
            const std::string event = in.str();
            std::vector<double> values = in.f64Vec(length);
            if (!in.ok())
                return in.status().withContext(util::format(
                    "run %llu event %llu",
                    static_cast<unsigned long long>(r),
                    static_cast<unsigned long long>(e)));
            series.emplace_back(event, std::move(values), interval_ms);
        }
        auto added = db.tryAddRun(program, suite, mode, exec_time_ms,
                                  series);
        if (!added.ok())
            return added.status().withContext(util::format(
                "run %llu", static_cast<unsigned long long>(r)));
    }
    return util::Status::okStatus();
}

/**
 * Load the legacy v1 layout (magic "CMDB", u64 version, microarch,
 * then the run records) with the same bounded-read discipline. The
 * old reader trusted these count fields outright: a corrupt file
 * could request an OOM-sized allocation or fatal without an offset.
 */
util::StatusOr<Database>
loadLegacyV1(std::string bytes)
{
    util::BinaryReader in = util::BinaryReader::raw(std::move(bytes));
    in.u32(); // the 4 magic bytes, already matched by the caller
    const std::uint64_t version = in.u64();
    if (in.ok() && version != 1)
        return in.fail(util::format(
            "unsupported legacy database version %llu",
            static_cast<unsigned long long>(version)));
    Database db(in.str());
    if (!in.ok())
        return in.status();
    const util::Status status = readRuns(in, db);
    if (!status.ok())
        return status;
    if (!in.ok())
        return in.status();
    return db;
}

/** One CSV line with RFC-4180 quoting, newline included. */
std::string
csvLine(const std::vector<std::string> &fields)
{
    std::string line;
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i != 0)
            line += ',';
        line += util::csvQuote(fields[i]);
    }
    line += '\n';
    return line;
}

} // namespace

Database::Database(std::string microarch)
    : microarch_(std::move(microarch)),
      catalog_("runs", catalogSchema())
{
}

Database
Database::openStore(const StoreOptions &options)
{
    auto db = tryOpenStore(options);
    db.status().throwIfError();
    return std::move(db).value();
}

util::StatusOr<Database>
Database::tryOpenStore(const StoreOptions &options)
{
    auto index = StoreIndex::open(options);
    if (!index.ok())
        return index.status();
    Database db(options.microarch);
    db.store_ = std::move(index).value();
    return db;
}

RunId
Database::addRun(const std::string &program, const std::string &suite,
                 const std::string &mode, double exec_time_ms,
                 const std::vector<TimeSeries> &series)
{
    auto result = tryAddRun(program, suite, mode, exec_time_ms, series);
    result.status().throwIfError();
    return result.value();
}

util::StatusOr<RunId>
Database::tryAddRun(const std::string &program, const std::string &suite,
                    const std::string &mode, double exec_time_ms,
                    const std::vector<TimeSeries> &series)
{
    if (store_ != nullptr)
        return store_->addRun(program, suite, mode, exec_time_ms,
                              series);
    if (series.empty())
        return util::Status::dataError(
            "store: addRun requires at least one series");
    const std::size_t length = series.front().size();
    const double interval_ms = series.front().intervalMs();
    for (const auto &s : series) {
        if (s.size() != length)
            return util::Status::dataError(util::format(
                "store: series length mismatch within a run ('%s' has "
                "%zu samples, expected %zu)",
                s.eventName().c_str(), s.size(), length));
        // One run samples every event on the same clock; a mixed
        // interval would silently stretch or squeeze every series
        // recorded after the first, so it is data damage, not a
        // preference.
        if (s.intervalMs() != interval_ms)
            return util::Status::dataError(util::format(
                "store: mixed sampling intervals within a run ('%s' "
                "sampled every %g ms, '%s' every %g ms)",
                series.front().eventName().c_str(), interval_ms,
                s.eventName().c_str(), s.intervalMs()));
    }
    if (!std::isfinite(exec_time_ms) || exec_time_ms < 0.0)
        return util::Status::dataError(
            "store: run execution time is not a finite non-negative "
            "duration");

    const RunId id = nextId_++;
    RunMetadata meta;
    meta.id = id;
    meta.program = program;
    meta.suite = suite;
    meta.mode = mode;
    meta.execTimeMs = exec_time_ms;
    meta.seriesTable = "run_" + std::to_string(id);
    for (const auto &s : series)
        meta.events.push_back(s.eventName());

    // Level-2 table: interval index plus one REAL column per event.
    std::vector<ColumnSpec> columns;
    columns.push_back({"interval", ColumnType::Integer});
    for (const auto &s : series)
        columns.push_back({s.eventName(), ColumnType::Real});
    Table table(meta.seriesTable, Schema(std::move(columns)));
    for (std::size_t i = 0; i < length; ++i) {
        Row row;
        row.reserve(series.size() + 1);
        row.emplace_back(static_cast<std::int64_t>(i));
        for (const auto &s : series)
            row.emplace_back(s.at(i));
        table.insert(std::move(row));
    }

    intervalMs_[id] = interval_ms;
    seriesTables_.emplace(id, std::move(table));
    runs_.emplace(id, std::move(meta));

    const RunMetadata &stored = runs_.at(id);
    catalog_.insert({id, stored.program, stored.suite, stored.mode,
                     stored.execTimeMs,
                     util::join(stored.events, ";"),
                     stored.seriesTable});
    return id;
}

std::size_t
Database::runCount() const
{
    if (store_ != nullptr)
        return store_->runCount();
    return runs_.size();
}

const RunMetadata &
Database::runInfo(RunId id) const
{
    if (store_ != nullptr)
        return store_->snapshot().runInfo(id);
    auto it = runs_.find(id);
    if (it == runs_.end())
        util::fatal("store: unknown run id " + std::to_string(id));
    return it->second;
}

std::vector<RunId>
Database::findRuns(const std::string &program, const std::string &mode) const
{
    if (store_ != nullptr)
        return store_->findRuns(program, mode);
    std::vector<RunId> ids;
    for (const auto &[id, meta] : runs_) {
        if (meta.program != program)
            continue;
        if (!mode.empty() && meta.mode != mode)
            continue;
        ids.push_back(id);
    }
    return ids;
}

std::vector<std::string>
Database::programs() const
{
    if (store_ != nullptr)
        return store_->programs();
    std::set<std::string> names;
    for (const auto &[id, meta] : runs_)
        names.insert(meta.program);
    return {names.begin(), names.end()};
}

TimeSeries
Database::series(RunId id, const std::string &event) const
{
    const auto values = seriesValues(id, event);
    return TimeSeries(event, {values.begin(), values.end()},
                      seriesIntervalMs(id));
}

std::span<const double>
Database::seriesValues(RunId id, const std::string &event) const
{
    if (store_ != nullptr) {
        // The returned span points into store-owned memory (segment
        // mapping or buffered column), which the database keeps alive
        // until the next seal or compaction retires it — the same
        // "valid until the next mutation" contract as the RAM path.
        return store_->snapshot().values(id, event);
    }
    const Table &table = seriesTable(id);
    if (!table.schema().hasColumn(event))
        util::fatal("store: run " + std::to_string(id) +
                    " has no event " + event);
    return table.realColumn(event);
}

double
Database::seriesIntervalMs(RunId id) const
{
    if (store_ != nullptr)
        return store_->snapshot().intervalMs(id);
    auto it = intervalMs_.find(id);
    if (it == intervalMs_.end())
        util::fatal("store: unknown run id " + std::to_string(id));
    return it->second;
}

std::size_t
Database::seriesLength(RunId id) const
{
    if (store_ != nullptr)
        return store_->snapshot().length(id);
    return seriesTable(id).rowCount();
}

StoreSnapshot
Database::snapshot() const
{
    if (store_ != nullptr)
        return store_->snapshot();
    StoreSnapshot snap;
    snap.ram_ = this;
    return snap;
}

std::vector<TimeSeries>
Database::allSeries(RunId id) const
{
    const RunMetadata &meta = runInfo(id);
    std::vector<TimeSeries> out;
    out.reserve(meta.events.size());
    for (const auto &event : meta.events)
        out.push_back(series(id, event));
    return out;
}

const Table &
Database::catalog() const
{
    if (store_ != nullptr)
        util::fatal("store: catalog() has no Table backing on an "
                    "out-of-core database; use runInfo()/findRuns() or "
                    "a snapshot()");
    return catalog_;
}

const Table &
Database::seriesTable(RunId id) const
{
    if (store_ != nullptr)
        util::fatal("store: seriesTable() has no Table backing on an "
                    "out-of-core database; use snapshot() values");
    auto it = seriesTables_.find(id);
    if (it == seriesTables_.end())
        util::fatal("store: unknown run id " + std::to_string(id));
    return it->second;
}

void
Database::save(const std::string &path) const
{
    trySave(path).throwIfError();
}

util::Status
Database::trySave(const std::string &path) const
{
    if (store_ != nullptr)
        return util::Status::dataError(
            "store: save() does not apply to an out-of-core database — "
            "segments are already durable; flush() is the barrier");
    util::BinaryWriter out(db_artifact_kind, db_version);
    out.beginSection("runs");
    out.str(microarch_);
    out.u64(runs_.size());
    for (const auto &[id, meta] : runs_) {
        out.u64(static_cast<std::uint64_t>(id));
        out.str(meta.program);
        out.str(meta.suite);
        out.str(meta.mode);
        out.f64(meta.execTimeMs);
        out.f64(intervalMs_.at(id));
        out.u64(meta.events.size());
        const Table &table = seriesTables_.at(id);
        out.u64(table.rowCount());
        for (const auto &event : meta.events) {
            out.str(event);
            out.f64Span(table.realColumn(event));
        }
    }
    out.endSection();
    util::Status status = out.writeFile(path);
    if (!status.ok())
        return status.withContext("store: save " + path);
    return status;
}

void
Database::flush()
{
    tryFlush().throwIfError();
}

util::Status
Database::tryFlush()
{
    if (store_ == nullptr)
        return util::Status::okStatus();
    return store_->flush();
}

void
Database::waitForStoreMaintenance()
{
    if (store_ != nullptr)
        store_->waitForMaintenance();
}

StoreStats
Database::storeStats() const
{
    if (store_ != nullptr)
        return store_->stats();
    return {};
}

Database
Database::load(const std::string &path)
{
    auto loaded = tryLoad(path);
    loaded.status().throwIfError();
    return std::move(loaded).value();
}

util::StatusOr<Database>
Database::tryLoad(const std::string &path)
{
    auto read = util::readFileBytes(path);
    if (!read.ok())
        return read.status().withContext("store: load " + path);
    std::string bytes = std::move(read).value();

    // Legacy v1 files predate the container header; sniff their magic.
    if (bytes.size() >= sizeof(db_legacy_magic) &&
        std::memcmp(bytes.data(), db_legacy_magic,
                    sizeof(db_legacy_magic)) == 0) {
        auto db = loadLegacyV1(std::move(bytes));
        if (!db.ok())
            return db.status().withContext("store: load " + path +
                                           " (v1)");
        return db;
    }

    auto opened =
        util::BinaryReader::fromBytes(std::move(bytes), db_artifact_kind);
    if (!opened.ok())
        return opened.status().withContext("store: load " + path);
    util::BinaryReader in = std::move(opened).value();
    if (in.artifactVersion() != db_version)
        return in
            .fail(util::format(
                "unsupported database version %u (this build reads "
                "v1 legacy files and v%u containers)",
                in.artifactVersion(), db_version))
            .withContext("store: load " + path);

    Database db;
    bool seen_runs = false;
    for (std::uint64_t s = 0; s < in.sectionCount() && in.ok(); ++s) {
        const std::string section = in.beginSection();
        if (!in.ok())
            break;
        if (section == "runs") {
            db = Database(in.str());
            const util::Status status = readRuns(in, db);
            if (!status.ok())
                return status.withContext("store: load " + path);
            seen_runs = in.ok();
        }
        // Unknown sections from newer writers are skipped by size.
        in.endSection();
    }
    if (!in.ok())
        return in.status().withContext("store: load " + path);
    if (!seen_runs)
        return util::Status::dataError("no 'runs' section")
            .withContext("store: load " + path);
    return db;
}

void
Database::exportCsv(const std::string &directory) const
{
    std::filesystem::create_directories(directory);

    // One consistent view for the whole export, both storage modes.
    const StoreSnapshot snap = snapshot();
    const RunId run_count = static_cast<RunId>(snap.runCount());

    // Each file is assembled in memory and landed with the atomic
    // temp-and-rename discipline: a mid-export crash or full disk
    // leaves either the previous file or the new one, never a torn
    // half-written CSV.
    std::string catalog_text = csvLine({"run_id", "program", "suite",
                                        "mode", "exec_time_ms", "events",
                                        "series_table"});
    for (RunId id = 0; id < run_count; ++id) {
        const RunMetadata &meta = snap.runInfo(id);
        catalog_text += csvLine(
            {std::to_string(id), meta.program, meta.suite, meta.mode,
             util::format("%.17g", meta.execTimeMs),
             util::join(meta.events, ";"), meta.seriesTable});
    }
    util::writeFileAtomic(directory + "/catalog.csv", catalog_text)
        .withContext("store: exportCsv")
        .throwIfError();

    for (RunId id = 0; id < run_count; ++id) {
        const RunMetadata &meta = snap.runInfo(id);
        std::vector<std::string> header;
        header.reserve(meta.events.size() + 1);
        header.push_back("interval");
        for (const auto &event : meta.events)
            header.push_back(event);
        std::string text = csvLine(header);

        const std::size_t length = snap.length(id);
        std::vector<std::span<const double>> columns;
        columns.reserve(meta.events.size());
        for (std::size_t e = 0; e < meta.events.size(); ++e)
            columns.push_back(snap.values(id, e));
        std::vector<std::string> fields(meta.events.size() + 1);
        for (std::size_t i = 0; i < length; ++i) {
            fields[0] = std::to_string(i);
            // %.17g survives a text round trip bit-exactly for every
            // finite double; anything shorter can silently perturb the
            // last bits on re-import.
            for (std::size_t e = 0; e < columns.size(); ++e)
                fields[e + 1] = util::format("%.17g", columns[e][i]);
            text += csvLine(fields);
        }
        util::writeFileAtomic(
            directory + "/" + meta.seriesTable + ".csv", text)
            .withContext("store: exportCsv")
            .throwIfError();
    }

    // Remove run_<id>.csv leftovers from a previous export of a larger
    // database, so the directory always equals exactly this database.
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(directory, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.size() <= 8 || name.rfind("run_", 0) != 0 ||
            name.substr(name.size() - 4) != ".csv")
            continue;
        const std::string digits = name.substr(4, name.size() - 8);
        if (digits.empty() ||
            digits.find_first_not_of("0123456789") != std::string::npos)
            continue;
        const RunId id = static_cast<RunId>(std::stoll(digits));
        if (id >= run_count)
            std::filesystem::remove(entry.path(), ec);
    }
}

} // namespace cminer::store

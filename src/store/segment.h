/**
 * @file
 * Immutable, memory-mapped columnar segment files — the on-disk shards
 * of the out-of-core store (DESIGN.md §15).
 *
 * A segment holds a contiguous range of run ids in the checkpoint
 * container format (util/binary_io.h, artifact kind "cminer-segment"):
 *
 *   section "meta"     str microarch, u64 first_id, u64 run_count
 *   section "columns"  raw 8-byte-aligned f64 payloads, one per
 *                      (run, event) column; opaque to the section
 *                      machinery, addressed by catalog offsets
 *   section "catalog"  per run: id, program, suite, mode, exec time,
 *                      sampling interval, length, and per event the
 *                      name plus the absolute file offset of its column
 *   section "index"    per program: name + ordinals of its runs, so a
 *                      mining job finds a benchmark's runs without
 *                      scanning the catalog
 *
 * Segments are written once (SegmentWriter) and never modified; readers
 * mmap the file and serve `span<const double>` column views straight
 * over the mapping — zero copies, and only the pages a mining job
 * actually touches ever enter memory. Open() validates every count,
 * length, and offset against the bytes actually in the file before
 * anything is trusted, with the same truncation/corruption discipline
 * as every other container reader (checkpoint_test's sweep style).
 */

#ifndef CMINER_STORE_SEGMENT_H
#define CMINER_STORE_SEGMENT_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace cminer::store {

/** Identifier of one recorded program run. */
using RunId = std::int64_t;

/** Catalog entry describing one run. */
struct RunMetadata
{
    RunId id = -1;
    std::string program;       ///< benchmark name, e.g. "wordcount"
    std::string suite;         ///< "hibench" or "cloudsuite"
    std::string mode;          ///< "ocoe" or "mlpx"
    double execTimeMs = 0.0;   ///< run wall-clock time
    std::vector<std::string> events; ///< measured event names
    std::string seriesTable;   ///< name of the level-2 table
};

/**
 * One run absorbed by the write buffer but not yet sealed into a
 * segment. Immutable once constructed and shared by pointer, so a
 * snapshot taken before a seal keeps the data alive (and its spans
 * valid) after the database has moved on.
 */
struct BufferedRun
{
    RunMetadata meta;
    double intervalMs = 0.0;
    std::size_t length = 0; ///< samples per series
    /** One column per event, parallel to meta.events. */
    std::vector<std::vector<double>> columns;

    /** Raw series payload size (the write buffer's budget currency). */
    std::size_t payloadBytes() const
    {
        return columns.size() * length * sizeof(double);
    }
};

/**
 * A read-only memory mapping of a whole file. Move-only; unmaps on
 * destruction. Zero-length files map to an empty view.
 */
class MappedFile
{
  public:
    static cminer::util::StatusOr<MappedFile>
    open(const std::string &path);

    MappedFile() = default;
    ~MappedFile();
    MappedFile(MappedFile &&other) noexcept;
    MappedFile &operator=(MappedFile &&other) noexcept;
    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    /** The mapped bytes (empty for a zero-length file). */
    std::string_view bytes() const { return {data_, size_}; }

  private:
    const char *data_ = nullptr;
    std::size_t size_ = 0;
    /** Distinguishes an empty mapping from a moved-from object. */
    bool mapped_ = false;
};

/**
 * An open, validated segment file. Immutable and internally
 * synchronization-free: every accessor is safe from any number of
 * threads. Shared by `shared_ptr` so snapshots pin the mapping (and
 * on POSIX the data stays readable even after the file is unlinked by
 * compaction).
 */
class Segment
{
  public:
    /** Artifact kind of segment container files. */
    static constexpr const char *artifact_kind = "cminer-segment";
    /** Current segment schema version. */
    static constexpr std::uint32_t artifact_version = 1;

    /**
     * Map and validate a segment file. Every count/length/offset field
     * is checked against the actual file size before use; a truncated
     * or corrupt file yields a DataError naming the byte offset.
     */
    static cminer::util::StatusOr<std::shared_ptr<const Segment>>
    open(const std::string &path);

    /** Microarchitecture tag recorded at seal time. */
    const std::string &microarch() const { return microarch_; }

    /** First run id held by this segment. */
    RunId firstId() const { return firstId_; }

    /** Last run id (ids are contiguous within a segment). */
    RunId lastId() const
    {
        return firstId_ + static_cast<RunId>(runs_.size()) - 1;
    }

    /** Number of runs in the segment. */
    std::size_t runCount() const { return runs_.size(); }

    /** Whether `id` falls inside this segment's id range. */
    bool containsRun(RunId id) const
    {
        return id >= firstId_ && id <= lastId();
    }

    /** Catalog metadata of the run at `ordinal` (0-based). */
    const RunMetadata &runMeta(std::size_t ordinal) const;

    /** Sampling interval of the run at `ordinal`, in ms. */
    double intervalMs(std::size_t ordinal) const;

    /** Samples per series of the run at `ordinal`. */
    std::size_t length(std::size_t ordinal) const;

    /**
     * Zero-copy column view straight over the mapping: the values of
     * event `event_index` (position in runMeta().events) of the run at
     * `ordinal`. Valid for the lifetime of the Segment.
     */
    std::span<const double> column(std::size_t ordinal,
                                   std::size_t event_index) const;

    /** Column by event name; fatal when the run lacks the event. */
    std::span<const double> column(std::size_t ordinal,
                                   const std::string &event) const;

    /**
     * Ordinals of this segment's runs for one program, ascending, from
     * the per-program index section — a mining job touches only the
     * catalog pages plus the columns it asks for.
     */
    std::vector<std::size_t>
    runsForProgram(const std::string &program) const;

    /** Programs with at least one run here, sorted. */
    std::vector<std::string> programs() const;

    /** Size of the backing file in bytes (compaction sizing). */
    std::uint64_t fileBytes() const { return map_.bytes().size(); }

    /** Path of the backing file. */
    const std::string &path() const { return path_; }

    /**
     * Mark the backing file for deletion: once the last shared_ptr
     * (database or pinned snapshot) drops, the destructor unlinks it.
     * Used by compaction to retire merged-away inputs.
     */
    void markObsolete() const { obsolete_.store(true); }

    ~Segment();

    Segment(const Segment &) = delete;
    Segment &operator=(const Segment &) = delete;

  private:
    Segment() = default;

    /** Per-run catalog entry decoded at open(). */
    struct RunEntry
    {
        RunMetadata meta;
        double intervalMs = 0.0;
        std::uint64_t length = 0;
        /** Absolute file offset of each event's column payload. */
        std::vector<std::uint64_t> columnOffsets;
    };

    std::string path_;
    MappedFile map_;
    std::string microarch_;
    RunId firstId_ = 0;
    std::vector<RunEntry> runs_;
    /** program -> ascending run ordinals (from the index section). */
    std::map<std::string, std::vector<std::size_t>> programIndex_;
    mutable std::atomic<bool> obsolete_{false};
};

} // namespace cminer::store

#endif // CMINER_STORE_SEGMENT_H

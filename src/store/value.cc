#include "store/value.h"

#include "util/error.h"
#include "util/string_util.h"

namespace cminer::store {

ColumnType
valueType(const Value &value)
{
    switch (value.index()) {
      case 0: return ColumnType::Integer;
      case 1: return ColumnType::Real;
      default: return ColumnType::Text;
    }
}

std::string
columnTypeName(ColumnType type)
{
    switch (type) {
      case ColumnType::Integer: return "integer";
      case ColumnType::Real: return "real";
      case ColumnType::Text: return "text";
    }
    return "?";
}

std::int64_t
asInteger(const Value &value)
{
    if (const auto *i = std::get_if<std::int64_t>(&value))
        return *i;
    util::fatal("store: cell is not an integer");
}

double
asReal(const Value &value)
{
    if (const auto *d = std::get_if<double>(&value))
        return *d;
    if (const auto *i = std::get_if<std::int64_t>(&value))
        return static_cast<double>(*i);
    util::fatal("store: cell is not numeric");
}

const std::string &
asText(const Value &value)
{
    if (const auto *s = std::get_if<std::string>(&value))
        return *s;
    util::fatal("store: cell is not text");
}

std::string
toString(const Value &value)
{
    switch (value.index()) {
      case 0:
        return std::to_string(std::get<std::int64_t>(value));
      case 1:
        return util::format("%.17g", std::get<double>(value));
      default:
        return std::get<std::string>(value);
    }
}

} // namespace cminer::store

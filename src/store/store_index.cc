#include "store/store_index.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <set>
#include <utility>

#include "store/database.h"
#include "store/segment_writer.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace cminer::store {

using cminer::ts::TimeSeries;
using cminer::util::Status;
using cminer::util::StatusOr;

// --- StoreSnapshot ---------------------------------------------------------

StoreSnapshot::Location
StoreSnapshot::locate(RunId id) const
{
    // Segments hold contiguous, ascending id ranges: binary-search the
    // one whose range starts at or before `id`.
    auto it = std::upper_bound(
        segments_.begin(), segments_.end(), id,
        [](RunId want, const std::shared_ptr<const Segment> &seg) {
            return want < seg->firstId();
        });
    if (it != segments_.begin()) {
        const Segment &seg = **std::prev(it);
        if (seg.containsRun(id))
            return {&seg, static_cast<std::size_t>(id - seg.firstId()),
                    nullptr};
    }
    if (!buffer_.empty()) {
        const RunId first = buffer_.front()->meta.id;
        if (id >= first &&
            id < first + static_cast<RunId>(buffer_.size()))
            return {nullptr, 0,
                    buffer_[static_cast<std::size_t>(id - first)].get()};
    }
    return {};
}

std::size_t
StoreSnapshot::runCount() const
{
    if (ram_ != nullptr)
        return ram_->runCount();
    std::size_t n = buffer_.size();
    for (const auto &seg : segments_)
        n += seg->runCount();
    return n;
}

bool
StoreSnapshot::hasRun(RunId id) const
{
    if (ram_ != nullptr)
        return id >= 0 &&
               id < static_cast<RunId>(ram_->runCount());
    const Location loc = locate(id);
    return loc.segment != nullptr || loc.buffered != nullptr;
}

const RunMetadata &
StoreSnapshot::runInfo(RunId id) const
{
    if (ram_ != nullptr)
        return ram_->runInfo(id);
    const Location loc = locate(id);
    if (loc.segment != nullptr)
        return loc.segment->runMeta(loc.ordinal);
    if (loc.buffered != nullptr)
        return loc.buffered->meta;
    util::fatal("store: unknown run id " + std::to_string(id));
}

double
StoreSnapshot::intervalMs(RunId id) const
{
    if (ram_ != nullptr)
        return ram_->seriesIntervalMs(id);
    const Location loc = locate(id);
    if (loc.segment != nullptr)
        return loc.segment->intervalMs(loc.ordinal);
    if (loc.buffered != nullptr)
        return loc.buffered->intervalMs;
    util::fatal("store: unknown run id " + std::to_string(id));
}

std::size_t
StoreSnapshot::length(RunId id) const
{
    if (ram_ != nullptr)
        return ram_->seriesLength(id);
    const Location loc = locate(id);
    if (loc.segment != nullptr)
        return loc.segment->length(loc.ordinal);
    if (loc.buffered != nullptr)
        return loc.buffered->length;
    util::fatal("store: unknown run id " + std::to_string(id));
}

std::span<const double>
StoreSnapshot::values(RunId id, std::size_t event_index) const
{
    if (ram_ != nullptr) {
        const RunMetadata &meta = ram_->runInfo(id);
        CM_ASSERT(event_index < meta.events.size());
        return ram_->seriesValues(id, meta.events[event_index]);
    }
    const Location loc = locate(id);
    if (loc.segment != nullptr)
        return loc.segment->column(loc.ordinal, event_index);
    if (loc.buffered != nullptr) {
        CM_ASSERT(event_index < loc.buffered->columns.size());
        return loc.buffered->columns[event_index];
    }
    util::fatal("store: unknown run id " + std::to_string(id));
}

std::span<const double>
StoreSnapshot::values(RunId id, const std::string &event) const
{
    if (ram_ != nullptr)
        return ram_->seriesValues(id, event);
    const RunMetadata &meta = runInfo(id);
    for (std::size_t e = 0; e < meta.events.size(); ++e) {
        if (meta.events[e] == event)
            return values(id, e);
    }
    util::fatal("store: run " + std::to_string(id) +
                " has no event " + event);
}

std::vector<RunId>
StoreSnapshot::findRuns(const std::string &program,
                        const std::string &mode) const
{
    if (ram_ != nullptr)
        return ram_->findRuns(program, mode);
    std::vector<RunId> ids;
    for (const auto &seg : segments_) {
        for (const std::size_t ordinal : seg->runsForProgram(program)) {
            if (!mode.empty() && seg->runMeta(ordinal).mode != mode)
                continue;
            ids.push_back(seg->firstId() +
                          static_cast<RunId>(ordinal));
        }
    }
    for (const auto &run : buffer_) {
        if (run->meta.program != program)
            continue;
        if (!mode.empty() && run->meta.mode != mode)
            continue;
        ids.push_back(run->meta.id);
    }
    return ids;
}

// --- StoreIndex ------------------------------------------------------------

StoreIndex::StoreIndex(StoreOptions options)
    : options_(std::move(options))
{
}

StoreIndex::~StoreIndex()
{
    waitForMaintenance();
}

std::size_t
StoreIndex::sealThreshold() const
{
    if (options_.sealThresholdBytes != 0)
        return options_.sealThresholdBytes;
    return std::max<std::size_t>(4096, options_.memoryBudgetBytes / 8);
}

std::size_t
StoreIndex::compactTarget() const
{
    if (options_.compactTargetBytes != 0)
        return options_.compactTargetBytes;
    return 4 * sealThreshold();
}

StatusOr<std::shared_ptr<StoreIndex>>
StoreIndex::open(const StoreOptions &options)
{
    if (options.directory.empty())
        return Status::dataError(
            "store: out-of-core open requires a directory");
    std::error_code ec;
    std::filesystem::create_directories(options.directory, ec);
    if (ec)
        return Status::dataError("store: cannot create directory " +
                                 options.directory + ": " +
                                 ec.message());

    // Scan in sorted-name order so errors are reported deterministically.
    std::vector<std::string> paths;
    for (const auto &entry :
         std::filesystem::directory_iterator(options.directory, ec)) {
        if (entry.path().extension() == ".cmseg")
            paths.push_back(entry.path().string());
    }
    if (ec)
        return Status::dataError("store: cannot scan directory " +
                                 options.directory + ": " +
                                 ec.message());
    std::sort(paths.begin(), paths.end());

    std::vector<std::shared_ptr<const Segment>> found;
    found.reserve(paths.size());
    for (const auto &path : paths) {
        auto seg = Segment::open(path);
        if (!seg.ok())
            return seg.status().withContext("store: open " +
                                            options.directory);
        if (seg.value()->microarch() != options.microarch)
            return Status::dataError(util::format(
                "store: segment %s was recorded on '%s' but the store "
                "was opened for '%s'",
                path.c_str(), seg.value()->microarch().c_str(),
                options.microarch.c_str()));
        if (seg.value()->runCount() == 0)
            return Status::dataError("store: empty segment " + path);
        found.push_back(std::move(seg).value());
    }

    // Resolve leftovers of an interrupted compaction: the merged
    // segment landed (rename is atomic) but one or more inputs were
    // not yet unlinked. Prefer the segment covering the most runs from
    // each starting id; anything whose whole range is already covered
    // is a stale input and is deleted. A genuine gap or partial
    // overlap is corruption and refuses to open.
    std::sort(found.begin(), found.end(),
              [](const std::shared_ptr<const Segment> &a,
                 const std::shared_ptr<const Segment> &b) {
                  if (a->firstId() != b->firstId())
                      return a->firstId() < b->firstId();
                  return a->runCount() > b->runCount();
              });
    std::shared_ptr<StoreIndex> index(new StoreIndex(options));
    RunId covered = -1;
    for (auto &seg : found) {
        if (seg->firstId() == covered + 1) {
            covered = seg->lastId();
            index->segments_.push_back(std::move(seg));
        } else if (seg->lastId() <= covered) {
            util::warn("store: deleting stale segment " + seg->path() +
                       " left over from an interrupted compaction");
            seg->markObsolete();
            seg.reset(); // last reference: unlinks the file
        } else {
            return Status::dataError(util::format(
                "store: segment %s covers runs [%lld, %lld] but runs "
                "up to %lld are accounted for — gap or partial overlap",
                seg->path().c_str(),
                static_cast<long long>(seg->firstId()),
                static_cast<long long>(seg->lastId()),
                static_cast<long long>(covered)));
        }
    }
    index->nextId_ = covered + 1;
    for (const auto &seg : index->segments_)
        index->sealedRuns_ += seg->runCount();
    index->generation_.store(
        static_cast<std::uint64_t>(index->segments_.size()));
    return index;
}

StatusOr<RunId>
StoreIndex::addRun(const std::string &program, const std::string &suite,
                   const std::string &mode, double exec_time_ms,
                   const std::vector<TimeSeries> &series)
{
    if (series.empty())
        return Status::dataError(
            "store: addRun requires at least one series");
    const std::size_t length = series.front().size();
    const double interval_ms = series.front().intervalMs();
    for (const auto &s : series) {
        if (s.size() != length)
            return Status::dataError(util::format(
                "store: series length mismatch within a run ('%s' has "
                "%zu samples, expected %zu)",
                s.eventName().c_str(), s.size(), length));
        if (s.intervalMs() != interval_ms)
            return Status::dataError(util::format(
                "store: mixed sampling intervals within a run ('%s' "
                "sampled every %g ms, '%s' every %g ms)",
                series.front().eventName().c_str(), interval_ms,
                s.eventName().c_str(), s.intervalMs()));
    }
    if (!std::isfinite(exec_time_ms) || exec_time_ms < 0.0)
        return Status::dataError(
            "store: run execution time is not a finite non-negative "
            "duration");

    auto run = std::make_shared<BufferedRun>();
    run->intervalMs = interval_ms;
    run->length = length;
    run->columns.reserve(series.size());
    for (const auto &s : series) {
        run->meta.events.push_back(s.eventName());
        run->columns.push_back(s.values());
    }
    run->meta.program = program;
    run->meta.suite = suite;
    run->meta.mode = mode;
    run->meta.execTimeMs = exec_time_ms;

    RunId id = -1;
    bool should_seal = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        id = nextId_++;
        run->meta.id = id;
        run->meta.seriesTable = "run_" + std::to_string(id);
        bufferBytes_ += run->payloadBytes();
        buffer_.push_back(std::move(run));
        should_seal = bufferBytes_ >= sealThreshold();
    }
    if (should_seal) {
        const Status sealed = seal();
        // A failed seal (disk full, ...) keeps the runs buffered and
        // readable; the next addRun retries. The run itself was
        // recorded, so this is a warning, not the caller's error.
        if (!sealed.ok())
            util::warn("store: seal failed, keeping runs buffered: " +
                       sealed.message());
        else
            maybeCompact();
    }
    return id;
}

Status
StoreIndex::seal()
{
    std::vector<std::shared_ptr<const BufferedRun>> runs;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (buffer_.empty())
            return Status::okStatus();
        runs = buffer_;
    }

    // File I/O happens without the lock; only the writer thread calls
    // seal(), so the buffer cannot change underneath it.
    SegmentWriter writer(options_.microarch);
    for (const auto &run : runs)
        writer.addRun(*run);
    const std::string path = segmentPath(runs.front()->meta.id,
                                         runs.back()->meta.id);
    Status written = writer.write(path);
    StatusOr<std::shared_ptr<const Segment>> opened =
        written.ok() ? Segment::open(path)
                     : StatusOr<std::shared_ptr<const Segment>>(written);
    if (!opened.ok()) {
        if (written.ok())
            std::remove(path.c_str());
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.sealFailures;
        return opened.status().withContext("store: seal");
    }

    std::lock_guard<std::mutex> lock(mutex_);
    CM_ASSERT(buffer_.size() == runs.size());
    segments_.push_back(std::move(opened).value());
    sealedRuns_ += runs.size();
    buffer_.clear();
    bufferBytes_ = 0;
    ++stats_.seals;
    return Status::okStatus();
}

Status
StoreIndex::flush()
{
    const Status sealed = seal();
    if (sealed.ok())
        maybeCompact();
    return sealed;
}

void
StoreIndex::maybeCompact()
{
    std::vector<std::shared_ptr<const Segment>> inputs;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (compacting_)
            return;
        const std::uint64_t target = compactTarget();
        const std::uint64_t small = target / 2;
        // First maximal run of adjacent small segments whose merged
        // size stays under the target. The target also bounds the
        // transient RAM of the merge (container assembled in memory).
        for (std::size_t i = 0; i < segments_.size();) {
            if (segments_[i]->fileBytes() >= small) {
                ++i;
                continue;
            }
            std::size_t j = i;
            std::uint64_t bytes = 0;
            while (j < segments_.size() &&
                   segments_[j]->fileBytes() < small &&
                   bytes + segments_[j]->fileBytes() <= target) {
                bytes += segments_[j]->fileBytes();
                ++j;
            }
            if (j - i >= options_.compactFanIn) {
                inputs.assign(segments_.begin() +
                                  static_cast<std::ptrdiff_t>(i),
                              segments_.begin() +
                                  static_cast<std::ptrdiff_t>(j));
                break;
            }
            i = j;
        }
        if (inputs.empty())
            return;
        compacting_ = true;
    }
    if (options_.maintenancePool != nullptr) {
        std::future<void> done = options_.maintenancePool->submit(
            [this, inputs = std::move(inputs)]() mutable {
                runCompaction(std::move(inputs));
            });
        std::lock_guard<std::mutex> lock(mutex_);
        maintenance_ = std::move(done);
    } else {
        runCompaction(std::move(inputs));
    }
}

void
StoreIndex::runCompaction(
    std::vector<std::shared_ptr<const Segment>> inputs)
{
    SegmentWriter writer(options_.microarch);
    for (const auto &seg : inputs)
        writer.addSegment(*seg);
    const std::string path = segmentPath(inputs.front()->firstId(),
                                         inputs.back()->lastId());
    Status written = writer.write(path);
    StatusOr<std::shared_ptr<const Segment>> merged =
        written.ok() ? Segment::open(path)
                     : StatusOr<std::shared_ptr<const Segment>>(written);
    if (!merged.ok()) {
        if (written.ok())
            std::remove(path.c_str());
        util::warn("store: compaction failed, keeping inputs: " +
                   merged.status().message());
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.compactionFailures;
        compacting_ = false;
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        // Seals only append and at most one compaction is in flight,
        // so the input range is still present and contiguous.
        auto it =
            std::find(segments_.begin(), segments_.end(), inputs.front());
        CM_ASSERT(it != segments_.end());
        CM_ASSERT(static_cast<std::size_t>(segments_.end() - it) >=
                  inputs.size());
        it = segments_.erase(
            it, it + static_cast<std::ptrdiff_t>(inputs.size()));
        segments_.insert(it, std::move(merged).value());
        ++stats_.compactions;
        compacting_ = false;
    }
    // Retire the inputs: each file is unlinked when its last pin (this
    // vector, the database, or a reader's snapshot) drops. The mmap of
    // a pinned snapshot survives the unlink — POSIX keeps the pages.
    for (const auto &seg : inputs)
        seg->markObsolete();
}

std::string
StoreIndex::segmentPath(RunId first, RunId last)
{
    for (;;) {
        const std::uint64_t gen = generation_.fetch_add(1);
        std::string path = util::format(
            "%s/seg_%012lld_%012lld_g%06llu.cmseg",
            options_.directory.c_str(), static_cast<long long>(first),
            static_cast<long long>(last),
            static_cast<unsigned long long>(gen));
        if (!std::filesystem::exists(path))
            return path;
    }
}

void
StoreIndex::waitForMaintenance()
{
    std::future<void> pending;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        pending = std::move(maintenance_);
    }
    if (pending.valid())
        pending.wait();
}

StoreSnapshot
StoreIndex::snapshot() const
{
    StoreSnapshot snap;
    std::lock_guard<std::mutex> lock(mutex_);
    snap.segments_ = segments_;
    snap.buffer_ = buffer_;
    return snap;
}

std::size_t
StoreIndex::runCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sealedRuns_ + buffer_.size();
}

std::vector<RunId>
StoreIndex::findRuns(const std::string &program,
                     const std::string &mode) const
{
    return snapshot().findRuns(program, mode);
}

std::vector<std::string>
StoreIndex::programs() const
{
    const StoreSnapshot snap = snapshot();
    std::set<std::string> names;
    for (const auto &seg : snap.segments_) {
        for (auto &program : seg->programs())
            names.insert(std::move(program));
    }
    for (const auto &run : snap.buffer_)
        names.insert(run->meta.program);
    return {names.begin(), names.end()};
}

StoreStats
StoreIndex::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    StoreStats out = stats_;
    out.segmentCount = segments_.size();
    out.sealedRuns = sealedRuns_;
    out.bufferedRuns = buffer_.size();
    out.bufferedBytes = bufferBytes_;
    out.segmentFileBytes = 0;
    for (const auto &seg : segments_)
        out.segmentFileBytes += seg->fileBytes();
    return out;
}

} // namespace cminer::store

/**
 * @file
 * Aggregate queries over the performance database — the reporting layer
 * a fleet operator would use on the recorded "big performance data":
 * per-program run statistics and per-event value summaries across runs.
 */

#ifndef CMINER_STORE_QUERY_H
#define CMINER_STORE_QUERY_H

#include <string>
#include <vector>

#include "stats/descriptive.h"
#include "store/database.h"

namespace cminer::store {

/** Run statistics of one program. */
struct ProgramSummary
{
    std::string program;
    std::string suite;
    std::size_t runCount = 0;
    std::size_t ocoeRuns = 0;
    std::size_t mlpxRuns = 0;
    double meanExecTimeMs = 0.0;
    double stddevExecTimeMs = 0.0;
    double minExecTimeMs = 0.0;
    double maxExecTimeMs = 0.0;
};

/** Per-program summaries over the whole catalog, sorted by name. */
std::vector<ProgramSummary> summarizeByProgram(const Database &db);

/** Cross-run statistics of one event for one program. */
struct EventAcrossRuns
{
    std::string event;
    std::size_t runCount = 0;       ///< runs that measured the event
    cminer::stats::Summary pooled;  ///< stats over all pooled samples
    double meanOfRunMeans = 0.0;
    double stddevOfRunMeans = 0.0;  ///< run-to-run variability
};

/**
 * Pool one event's samples across all of a program's runs (optionally
 * restricted to a sampling mode) and summarize.
 *
 * @throws util::FatalError when no matching run measured the event
 */
EventAcrossRuns summarizeEventAcrossRuns(const Database &db,
                                         const std::string &program,
                                         const std::string &event,
                                         const std::string &mode = "");

/**
 * The runs of a program ordered by execution time (ascending) — e.g. to
 * pick the best/worst configurations out of a tuning sweep.
 */
std::vector<RunId> runsByExecTime(const Database &db,
                                  const std::string &program);

} // namespace cminer::store

#endif // CMINER_STORE_QUERY_H

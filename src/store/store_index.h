/**
 * @file
 * The out-of-core store engine behind `Database` (DESIGN.md §15): an
 * in-memory write buffer that absorbs addRun, seals into immutable
 * memory-mapped segment files (store/segment.h) when it crosses a size
 * threshold, and a background compactor that merges small segments on
 * a caller-provided ThreadPool.
 *
 * Concurrency contract:
 *  - Mutations (addRun / flush) are single-writer: at most one thread
 *    mutates at a time (the ingest thread, the daemon's mining lane).
 *  - snapshot() may be called from any thread, concurrently with the
 *    writer and with maintenance. A StoreSnapshot pins the exact
 *    segment set and buffered runs it was built against by shared_ptr,
 *    so its spans stay valid — and its view stays consistent — across
 *    any number of subsequent seals and compactions. This mirrors the
 *    serving daemon's artifact-snapshot rule: a batch is processed
 *    against the state it was admitted under, never a mid-flight swap.
 *  - Direct (snapshot-free) readers get the in-RAM Database contract:
 *    results are valid until the next mutation or maintenance step.
 *
 * Durability: sealed segments are durable the moment addRun returns
 * (atomic temp+rename per segment); the write buffer is not until
 * flush() seals it. Compaction writes the merged segment first and
 * retires inputs after the swap, so a crash at any point leaves a
 * directory that openDirectory() resolves to exactly one copy of every
 * run (stale inputs of an interrupted compaction are detected by their
 * covered id ranges and deleted).
 */

#ifndef CMINER_STORE_STORE_INDEX_H
#define CMINER_STORE_STORE_INDEX_H

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "store/segment.h"
#include "ts/time_series.h"
#include "util/status.h"

namespace cminer::util {
class ThreadPool;
}

namespace cminer::store {

class Database;

/** Configuration of an out-of-core database (Database::openStore). */
struct StoreOptions
{
    /** Microarchitecture tag (must match existing segments on reopen). */
    std::string microarch = "haswell-e";
    /** Directory holding the segment files. Created if absent. */
    std::string directory;
    /**
     * Soft bound on store-owned RAM: the write buffer seals into a
     * segment once its raw series payload reaches
     * sealThresholdBytes (default memoryBudgetBytes / 8), so buffered
     * data never exceeds one threshold's worth plus the run being
     * added. Catalog metadata (program names, event lists) stays in
     * RAM in both modes — the budget governs the series payloads,
     * which dominate at fleet scale.
     */
    std::size_t memoryBudgetBytes = 64ull << 20;
    /** Seal threshold override; 0 derives memoryBudgetBytes / 8. */
    std::size_t sealThresholdBytes = 0;
    /**
     * Compaction target: adjacent segments smaller than half this are
     * merged until the merged file would exceed it. 0 derives
     * 4 * sealThresholdBytes. Also bounds compaction's transient RAM
     * (the merged container is assembled in memory before landing).
     */
    std::size_t compactTargetBytes = 0;
    /** Minimum adjacent small segments before a merge fires. */
    std::size_t compactFanIn = 4;
    /**
     * Pool for background compaction. Null runs compaction inline on
     * the sealing thread — deterministic, and what tests use.
     */
    cminer::util::ThreadPool *maintenancePool = nullptr;
};

/** Observable state of the out-of-core engine (gauges, tests). */
struct StoreStats
{
    std::size_t segmentCount = 0;
    std::size_t sealedRuns = 0;
    std::size_t bufferedRuns = 0;
    std::size_t bufferedBytes = 0;   ///< raw series bytes in the buffer
    std::uint64_t segmentFileBytes = 0;
    std::uint64_t seals = 0;
    std::uint64_t sealFailures = 0;
    std::uint64_t compactions = 0;
    std::uint64_t compactionFailures = 0;
};

/**
 * A pinned, immutable view of the store at one instant. Self-contained
 * for an out-of-core database: holds shared ownership of the segments
 * and buffered runs it was built from, so every span it hands out
 * stays valid for the snapshot's lifetime regardless of seals and
 * compactions happening behind it. For an in-RAM database it borrows
 * the Database (which must outlive it) — in-RAM run tables are never
 * mutated after insertion, so the same validity guarantee holds.
 */
class StoreSnapshot
{
  public:
    /** Runs visible in this snapshot. */
    std::size_t runCount() const;

    /** True when `id` is a run of this snapshot. */
    bool hasRun(RunId id) const;

    /** Metadata of a run; fatal for unknown ids. */
    const RunMetadata &runInfo(RunId id) const;

    /** Sampling interval of a run's series, in ms. */
    double intervalMs(RunId id) const;

    /** Samples per series of a run. */
    std::size_t length(RunId id) const;

    /**
     * Zero-copy values of one event column, by position in
     * runInfo(id).events. Valid for the snapshot's lifetime.
     */
    std::span<const double> values(RunId id,
                                   std::size_t event_index) const;

    /** Column by event name; fatal when the run lacks the event. */
    std::span<const double> values(RunId id,
                                   const std::string &event) const;

    /** Ids of runs matching program (and optionally mode), ascending. */
    std::vector<RunId> findRuns(const std::string &program,
                                const std::string &mode = "") const;

  private:
    friend class StoreIndex;
    friend class Database;

    /** Where one run lives within this snapshot. */
    struct Location
    {
        const Segment *segment = nullptr; ///< null -> buffered
        std::size_t ordinal = 0;          ///< segment ordinal
        const BufferedRun *buffered = nullptr;
    };

    Location locate(RunId id) const;

    /** In-RAM delegation target (null for out-of-core snapshots). */
    const Database *ram_ = nullptr;
    /** Pinned segments, ascending by firstId, contiguous ids. */
    std::vector<std::shared_ptr<const Segment>> segments_;
    /** Pinned buffered runs, ascending ids after the last segment. */
    std::vector<std::shared_ptr<const BufferedRun>> buffer_;
};

/**
 * The mutable out-of-core engine. One instance per out-of-core
 * Database, held by shared_ptr so a move of the Database never
 * invalidates the `this` captured by a queued compaction task.
 */
class StoreIndex
{
  public:
    /**
     * Open (or create) the store in options.directory: scans existing
     * `*.cmseg` files, validates each, resolves leftovers of an
     * interrupted compaction, and rejects gaps, partial overlaps, or a
     * microarchitecture mismatch.
     */
    static cminer::util::StatusOr<std::shared_ptr<StoreIndex>>
    open(const StoreOptions &options);

    /** Waits for in-flight maintenance; never blocks on readers. */
    ~StoreIndex();

    const StoreOptions &options() const { return options_; }
    const std::string &microarch() const { return options_.microarch; }

    /**
     * Record one run (single-writer). Validation mirrors
     * Database::tryAddRun, including the mixed-sampling-interval
     * rejection. May seal the write buffer inline before returning.
     */
    cminer::util::StatusOr<RunId>
    addRun(const std::string &program, const std::string &suite,
           const std::string &mode, double exec_time_ms,
           const std::vector<cminer::ts::TimeSeries> &series);

    /** Seal whatever the write buffer holds (durability barrier). */
    cminer::util::Status flush();

    /** Block until any queued/running compaction finishes. */
    void waitForMaintenance();

    /** Pin the current segment set + buffer. Any thread. */
    StoreSnapshot snapshot() const;

    std::size_t runCount() const;
    std::vector<RunId> findRuns(const std::string &program,
                                const std::string &mode) const;
    std::vector<std::string> programs() const;

    /** Engine observability (tests, gauges, the daemon's stats). */
    StoreStats stats() const;

  private:
    explicit StoreIndex(StoreOptions options);

    std::size_t sealThreshold() const;
    std::size_t compactTarget() const;

    /**
     * Seal the buffered runs into a segment file. Writer thread only;
     * the mutex is not held across the file I/O (snapshots stay
     * nonblocking), which is safe because only the writer mutates the
     * buffer.
     */
    cminer::util::Status seal();

    /** Decide and run/queue one compaction round. Writer thread. */
    void maybeCompact();

    /** Merge `inputs` (a contiguous range of segments_) into one. */
    void runCompaction(
        std::vector<std::shared_ptr<const Segment>> inputs);

    /** Path for the next segment file covering [first, last]. */
    std::string segmentPath(RunId first, RunId last);

    StoreOptions options_;
    mutable std::mutex mutex_;
    std::vector<std::shared_ptr<const Segment>> segments_;
    std::vector<std::shared_ptr<const BufferedRun>> buffer_;
    std::size_t bufferBytes_ = 0;
    std::size_t sealedRuns_ = 0;
    RunId nextId_ = 0;
    /** Uniquifies segment file names (seal and compaction may race). */
    std::atomic<std::uint64_t> generation_{0};
    bool compacting_ = false;
    std::future<void> maintenance_;
    StoreStats stats_;
};

} // namespace cminer::store

#endif // CMINER_STORE_STORE_INDEX_H

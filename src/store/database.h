/**
 * @file
 * The two-level performance database (Section III-A of the paper).
 *
 * Level 1 is a catalog table holding, per run: the program name, suite,
 * sampling mode, execution time, the measured event names, and the name
 * of the level-2 table. Level 2 holds one table per run with the sampled
 * time series (one REAL column per event, one row per interval).
 *
 * The paper uses SQLite for this; we provide an embedded from-scratch
 * equivalent with binary persistence and CSV export. Per the paper, the
 * catalog is tied to one microarchitecture: loading a database recorded
 * on a different microarchitecture re-initializes the tables.
 *
 * Two storage modes share this API (DESIGN.md §15):
 *
 *  - **In-RAM** (the default constructor, save()/load()): every run
 *    lives in level-2 Tables in memory. Right for datasets that fit.
 *  - **Out-of-core** (openStore()): runs land in a bounded write buffer
 *    that seals into immutable memory-mapped segment files
 *    (store/segment.h) under a directory, with background compaction.
 *    Series reads are zero-copy spans straight over the mappings, so
 *    resident memory tracks the configured budget — not the dataset.
 *
 * Readers that must stay consistent while ingest or maintenance runs
 * concurrently take a snapshot() and read through it; see
 * store/store_index.h for the pinning rules.
 */

#ifndef CMINER_STORE_DATABASE_H
#define CMINER_STORE_DATABASE_H

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "store/segment.h"
#include "store/store_index.h"
#include "store/table.h"
#include "ts/time_series.h"
#include "util/status.h"

namespace cminer::store {

/**
 * The performance database: catalog plus per-run series tables.
 */
class Database
{
  public:
    /** @param microarch the microarchitecture this database describes */
    explicit Database(std::string microarch = "haswell-e");

    /**
     * Open (or create) an out-of-core database over a directory of
     * segment files. Existing segments are validated (every count and
     * offset bounds-checked) and leftovers of an interrupted compaction
     * are resolved; a gap, partial overlap, corrupt segment, or
     * microarchitecture mismatch refuses to open.
     * @throws util::FatalError on failure
     */
    static Database openStore(const StoreOptions &options);

    /** Recoverable flavour of openStore(). */
    static cminer::util::StatusOr<Database>
    tryOpenStore(const StoreOptions &options);

    /** True when backed by the out-of-core segment store. */
    bool outOfCore() const { return store_ != nullptr; }

    /** Microarchitecture tag. */
    const std::string &microarch() const { return microarch_; }

    /**
     * Record one run: catalog entry plus a level-2 series table.
     *
     * All series must have the same length (one value per interval)
     * and the same sampling interval.
     *
     * @param program benchmark name
     * @param suite benchmark suite name
     * @param mode "ocoe" or "mlpx"
     * @param exec_time_ms run duration
     * @param series one TimeSeries per measured event
     * @return the new run's id
     */
    RunId addRun(const std::string &program, const std::string &suite,
                 const std::string &mode, double exec_time_ms,
                 const std::vector<cminer::ts::TimeSeries> &series);

    /**
     * Recoverable flavour of addRun for the fault-tolerant ingest path:
     * an empty series list, mismatched series lengths, mixed sampling
     * intervals, or a non-finite execution time come back as a
     * DataError Status instead of a thrown FatalError, so a damaged run
     * can be quarantined while the job continues. Nothing is recorded
     * on error.
     */
    cminer::util::StatusOr<RunId>
    tryAddRun(const std::string &program, const std::string &suite,
              const std::string &mode, double exec_time_ms,
              const std::vector<cminer::ts::TimeSeries> &series);

    /** Number of recorded runs. */
    std::size_t runCount() const;

    /** Metadata for a run; fatal for unknown ids. */
    const RunMetadata &runInfo(RunId id) const;

    /** Ids of runs matching program (and optionally mode). */
    std::vector<RunId> findRuns(const std::string &program,
                                const std::string &mode = "") const;

    /** All distinct program names in the catalog. */
    std::vector<std::string> programs() const;

    /**
     * One event's series from one run; fatal when absent.
     *
     * Copying API kept for external users; internal readers use
     * seriesValues() to stay on the zero-copy column path.
     */
    cminer::ts::TimeSeries series(RunId id,
                                  const std::string &event) const;

    /** All series of a run, in catalog event order (copies). */
    std::vector<cminer::ts::TimeSeries> allSeries(RunId id) const;

    /**
     * Zero-copy view of one event's sampled values: a level-2 table
     * column in RAM mode, a mapped (or buffered) segment column
     * out-of-core. Fatal when the run or event is absent. Valid until
     * the next mutation of the database (which out-of-core includes a
     * seal or compaction) — readers concurrent with ingest must pin a
     * snapshot() and read through it instead.
     */
    std::span<const double> seriesValues(RunId id,
                                         const std::string &event) const;

    /** Sampling interval of a run's series, in milliseconds. */
    double seriesIntervalMs(RunId id) const;

    /** Samples per series of a run (cheaper than a values view). */
    std::size_t seriesLength(RunId id) const;

    /**
     * Pin a consistent view of every run for reading. The snapshot
     * stays valid — including every span it hands out — across
     * concurrent addRun/flush and background compaction. In-RAM
     * databases return a borrowing snapshot (the Database must outlive
     * it); out-of-core snapshots are self-contained.
     */
    StoreSnapshot snapshot() const;

    /**
     * Direct access to the level-1 catalog table. In-RAM mode only:
     * fatal on an out-of-core database (which has no Table-backed
     * catalog — use runInfo()/findRuns()/snapshot()).
     */
    const Table &catalog() const;

    /** Direct access to a run's level-2 table. In-RAM mode only. */
    const Table &seriesTable(RunId id) const;

    /**
     * Persist to a single binary file in the checkpoint container
     * format (util/binary_io.h, DESIGN.md §12). The write is atomic:
     * data lands in a temp file renamed over the destination, so a
     * mid-write failure never destroys the previous good file.
     * In-RAM mode only: an out-of-core database is already durable on
     * disk — use flush() as its durability barrier.
     * @throws util::FatalError on I/O failure
     */
    void save(const std::string &path) const;

    /** Recoverable flavour of save(): a Status instead of a throw. */
    cminer::util::Status trySave(const std::string &path) const;

    /**
     * Out-of-core durability barrier: seal the write buffer into a
     * segment file. A no-op in RAM mode and on an empty buffer.
     * @throws util::FatalError on I/O failure
     */
    void flush();

    /** Recoverable flavour of flush(). */
    cminer::util::Status tryFlush();

    /** Block until background store maintenance (compaction) is idle. */
    void waitForStoreMaintenance();

    /** Out-of-core engine counters; zeroes in RAM mode. */
    StoreStats storeStats() const;

    /**
     * Load from a binary file written by save(). Current (v2,
     * container) and legacy (v1) formats both load; either way every
     * count/length field is validated against the bytes actually in
     * the file before any allocation, so truncated or corrupt input
     * produces a clean error naming the byte offset — never an
     * OOM-sized allocation or a silently zero-filled run.
     * @throws util::FatalError on I/O failure or format mismatch
     */
    static Database load(const std::string &path);

    /** Recoverable flavour of load(): a Status instead of a throw. */
    static cminer::util::StatusOr<Database>
    tryLoad(const std::string &path);

    /**
     * Export the catalog and every run table as CSV files into a
     * directory (catalog.csv + run_<id>.csv). Each file is written
     * atomically (temp + rename), doubles at round-trip precision
     * (%.17g), and stale run_<id>.csv files from a previous, larger
     * export into the same directory are removed so the directory
     * always equals exactly this database.
     */
    void exportCsv(const std::string &directory) const;

  private:
    std::string microarch_;
    RunId nextId_ = 0;
    std::map<RunId, RunMetadata> runs_;
    std::map<RunId, Table> seriesTables_;
    std::map<RunId, double> intervalMs_;
    Table catalog_;
    /**
     * Non-null in out-of-core mode; shared so a queued compaction task
     * survives a move of the Database.
     */
    std::shared_ptr<StoreIndex> store_;
};

} // namespace cminer::store

#endif // CMINER_STORE_DATABASE_H

/**
 * @file
 * The two-level performance database (Section III-A of the paper).
 *
 * Level 1 is a catalog table holding, per run: the program name, suite,
 * sampling mode, execution time, the measured event names, and the name
 * of the level-2 table. Level 2 holds one table per run with the sampled
 * time series (one REAL column per event, one row per interval).
 *
 * The paper uses SQLite for this; we provide an embedded from-scratch
 * equivalent with binary persistence and CSV export. Per the paper, the
 * catalog is tied to one microarchitecture: loading a database recorded
 * on a different microarchitecture re-initializes the tables.
 */

#ifndef CMINER_STORE_DATABASE_H
#define CMINER_STORE_DATABASE_H

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "store/table.h"
#include "ts/time_series.h"
#include "util/status.h"

namespace cminer::store {

/** Identifier of one recorded program run. */
using RunId = std::int64_t;

/** Catalog entry describing one run. */
struct RunMetadata
{
    RunId id = -1;
    std::string program;       ///< benchmark name, e.g. "wordcount"
    std::string suite;         ///< "hibench" or "cloudsuite"
    std::string mode;          ///< "ocoe" or "mlpx"
    double execTimeMs = 0.0;   ///< run wall-clock time
    std::vector<std::string> events; ///< measured event names
    std::string seriesTable;   ///< name of the level-2 table
};

/**
 * The performance database: catalog plus per-run series tables.
 */
class Database
{
  public:
    /** @param microarch the microarchitecture this database describes */
    explicit Database(std::string microarch = "haswell-e");

    /** Microarchitecture tag. */
    const std::string &microarch() const { return microarch_; }

    /**
     * Record one run: catalog entry plus a level-2 series table.
     *
     * All series must have the same length (one value per interval).
     *
     * @param program benchmark name
     * @param suite benchmark suite name
     * @param mode "ocoe" or "mlpx"
     * @param exec_time_ms run duration
     * @param series one TimeSeries per measured event
     * @return the new run's id
     */
    RunId addRun(const std::string &program, const std::string &suite,
                 const std::string &mode, double exec_time_ms,
                 const std::vector<cminer::ts::TimeSeries> &series);

    /**
     * Recoverable flavour of addRun for the fault-tolerant ingest path:
     * an empty series list, mismatched series lengths, or a non-finite
     * execution time come back as a DataError Status instead of a
     * thrown FatalError, so a damaged run can be quarantined while the
     * job continues. Nothing is recorded on error.
     */
    cminer::util::StatusOr<RunId>
    tryAddRun(const std::string &program, const std::string &suite,
              const std::string &mode, double exec_time_ms,
              const std::vector<cminer::ts::TimeSeries> &series);

    /** Number of recorded runs. */
    std::size_t runCount() const { return runs_.size(); }

    /** Metadata for a run; fatal for unknown ids. */
    const RunMetadata &runInfo(RunId id) const;

    /** Ids of runs matching program (and optionally mode). */
    std::vector<RunId> findRuns(const std::string &program,
                                const std::string &mode = "") const;

    /** All distinct program names in the catalog. */
    std::vector<std::string> programs() const;

    /**
     * One event's series from one run; fatal when absent.
     *
     * Copying API kept for external users; internal readers use
     * seriesValues() to stay on the zero-copy column path.
     */
    cminer::ts::TimeSeries series(RunId id,
                                  const std::string &event) const;

    /** All series of a run, in catalog event order (copies). */
    std::vector<cminer::ts::TimeSeries> allSeries(RunId id) const;

    /**
     * Zero-copy view of one event's sampled values, straight out of the
     * run's level-2 table column. Fatal when the run or event is
     * absent. Invalidated by the next mutation of the run's table.
     */
    std::span<const double> seriesValues(RunId id,
                                         const std::string &event) const;

    /** Sampling interval of a run's series, in milliseconds. */
    double seriesIntervalMs(RunId id) const;

    /** Direct access to the level-1 catalog table (read-only). */
    const Table &catalog() const { return catalog_; }

    /** Direct access to a run's level-2 table (read-only). */
    const Table &seriesTable(RunId id) const;

    /**
     * Persist to a single binary file in the checkpoint container
     * format (util/binary_io.h, DESIGN.md §12). The write is atomic:
     * data lands in a temp file renamed over the destination, so a
     * mid-write failure never destroys the previous good file.
     * @throws util::FatalError on I/O failure
     */
    void save(const std::string &path) const;

    /** Recoverable flavour of save(): a Status instead of a throw. */
    cminer::util::Status trySave(const std::string &path) const;

    /**
     * Load from a binary file written by save(). Current (v2,
     * container) and legacy (v1) formats both load; either way every
     * count/length field is validated against the bytes actually in
     * the file before any allocation, so truncated or corrupt input
     * produces a clean error naming the byte offset — never an
     * OOM-sized allocation or a silently zero-filled run.
     * @throws util::FatalError on I/O failure or format mismatch
     */
    static Database load(const std::string &path);

    /** Recoverable flavour of load(): a Status instead of a throw. */
    static cminer::util::StatusOr<Database>
    tryLoad(const std::string &path);

    /**
     * Export the catalog and every run table as CSV files into a
     * directory (catalog.csv + run_<id>.csv).
     */
    void exportCsv(const std::string &directory) const;

  private:
    std::string microarch_;
    RunId nextId_ = 0;
    std::map<RunId, RunMetadata> runs_;
    std::map<RunId, Table> seriesTables_;
    std::map<RunId, double> intervalMs_;
    Table catalog_;
};

} // namespace cminer::store

#endif // CMINER_STORE_DATABASE_H

/**
 * @file
 * Builds immutable segment files (store/segment.h) from runs held in
 * memory — the seal half of the out-of-core store, and the merge half
 * of its compactor.
 *
 * The writer accumulates non-owning references to run columns (spans
 * over write-buffer vectors when sealing, over mmap'd columns of the
 * source segments when compacting) and emits the whole container in
 * one write() pass: column payloads first, 8-byte aligned so readers
 * can map them as `span<const double>`, then the catalog that records
 * each column's absolute offset, then the per-program index. The file
 * lands via the atomic temp-and-rename discipline shared by every
 * checkpoint writer.
 */

#ifndef CMINER_STORE_SEGMENT_WRITER_H
#define CMINER_STORE_SEGMENT_WRITER_H

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "store/segment.h"
#include "util/status.h"

namespace cminer::store {

/**
 * One-shot builder of a segment file. Runs must be added in ascending,
 * contiguous id order (write() validates). The referenced metadata and
 * column storage must stay alive until write() returns.
 */
class SegmentWriter
{
  public:
    explicit SegmentWriter(std::string microarch);

    /**
     * Queue one run.
     *
     * @param meta catalog metadata (id, program, events, ...)
     * @param interval_ms sampling interval
     * @param length samples per series
     * @param columns one span per event, parallel to meta.events; each
     *        must hold exactly `length` values and outlive write()
     */
    void addRun(const RunMetadata &meta, double interval_ms,
                std::size_t length,
                std::vector<std::span<const double>> columns);

    /** Convenience: queue a buffered run (spans over its columns). */
    void addRun(const BufferedRun &run);

    /** Convenience: queue every run of an open segment (compaction). */
    void addSegment(const Segment &segment);

    /** Runs queued so far. */
    std::size_t runCount() const { return runs_.size(); }

    /** Raw series bytes queued so far (file will be slightly larger). */
    std::size_t payloadBytes() const { return payloadBytes_; }

    /**
     * Assemble the container and write it atomically to `path`. The
     * writer is spent afterwards.
     * @return Ok, or the validation/I/O failure
     */
    cminer::util::Status write(const std::string &path);

  private:
    struct PendingRun
    {
        const RunMetadata *meta;
        double intervalMs;
        std::size_t length;
        std::vector<std::span<const double>> columns;
    };

    std::string microarch_;
    std::vector<PendingRun> runs_;
    std::size_t payloadBytes_ = 0;
    bool spent_ = false;
};

} // namespace cminer::store

#endif // CMINER_STORE_SEGMENT_WRITER_H

/**
 * @file
 * The cell value type of the embedded table store.
 *
 * The paper stores counter data in SQLite; our from-scratch store keeps
 * the same three column types SQLite would have used there: INTEGER,
 * REAL, and TEXT.
 */

#ifndef CMINER_STORE_VALUE_H
#define CMINER_STORE_VALUE_H

#include <cstdint>
#include <string>
#include <variant>

namespace cminer::store {

/** Column type tags. */
enum class ColumnType
{
    Integer,
    Real,
    Text,
};

/** One table cell. */
using Value = std::variant<std::int64_t, double, std::string>;

/** Type tag of a Value. */
ColumnType valueType(const Value &value);

/** Human-readable type name ("integer", "real", "text"). */
std::string columnTypeName(ColumnType type);

/** Extract an integer; fatal when the cell holds another type. */
std::int64_t asInteger(const Value &value);

/** Extract a real; integers are widened, text is fatal. */
double asReal(const Value &value);

/** Extract text; fatal when the cell holds another type. */
const std::string &asText(const Value &value);

/** Render any Value for display or CSV export. */
std::string toString(const Value &value);

} // namespace cminer::store

#endif // CMINER_STORE_VALUE_H

#include "store/table.h"

#include <unordered_set>

#include "util/error.h"

namespace cminer::store {

Schema::Schema(std::vector<ColumnSpec> columns)
    : columns_(std::move(columns))
{
    std::unordered_set<std::string> seen;
    for (const auto &col : columns_) {
        if (col.name.empty())
            util::fatal("store: empty column name in schema");
        if (!seen.insert(col.name).second)
            util::fatal("store: duplicate column name: " + col.name);
    }
}

const ColumnSpec &
Schema::column(std::size_t index) const
{
    CM_ASSERT(index < columns_.size());
    return columns_[index];
}

std::size_t
Schema::indexOf(const std::string &name) const
{
    for (std::size_t i = 0; i < columns_.size(); ++i) {
        if (columns_[i].name == name)
            return i;
    }
    util::fatal("store: no such column: " + name);
}

bool
Schema::hasColumn(const std::string &name) const
{
    for (const auto &col : columns_) {
        if (col.name == name)
            return true;
    }
    return false;
}

void
Schema::validate(const Row &row) const
{
    if (row.size() != columns_.size())
        util::fatal("store: row arity mismatch");
    for (std::size_t i = 0; i < row.size(); ++i) {
        const ColumnType want = columns_[i].type;
        const ColumnType got = valueType(row[i]);
        // Integers are acceptable in REAL columns (SQLite-like affinity).
        const bool widened =
            want == ColumnType::Real && got == ColumnType::Integer;
        if (got != want && !widened) {
            util::fatal("store: type mismatch in column '" +
                        columns_[i].name + "': expected " +
                        columnTypeName(want) + ", got " +
                        columnTypeName(got));
        }
    }
}

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema))
{
    if (name_.empty())
        util::fatal("store: empty table name");
}

void
Table::insert(Row row)
{
    schema_.validate(row);
    // Normalize integers stored in REAL columns so readers see doubles.
    for (std::size_t i = 0; i < row.size(); ++i) {
        if (schema_.column(i).type == ColumnType::Real &&
            valueType(row[i]) == ColumnType::Integer) {
            row[i] = static_cast<double>(std::get<std::int64_t>(row[i]));
        }
    }
    rows_.push_back(std::move(row));
}

const Row &
Table::row(std::size_t index) const
{
    CM_ASSERT(index < rows_.size());
    return rows_[index];
}

std::vector<Row>
Table::select(const std::function<bool(const Row &)> &predicate) const
{
    std::vector<Row> matched;
    for (const auto &r : rows_) {
        if (predicate(r))
            matched.push_back(r);
    }
    return matched;
}

std::vector<Value>
Table::column(const std::string &name) const
{
    const std::size_t index = schema_.indexOf(name);
    std::vector<Value> out;
    out.reserve(rows_.size());
    for (const auto &r : rows_)
        out.push_back(r[index]);
    return out;
}

std::vector<double>
Table::numericColumn(const std::string &name) const
{
    const std::size_t index = schema_.indexOf(name);
    std::vector<double> out;
    out.reserve(rows_.size());
    for (const auto &r : rows_)
        out.push_back(asReal(r[index]));
    return out;
}

} // namespace cminer::store

#include "store/table.h"

#include <unordered_set>

#include "util/error.h"

namespace cminer::store {

Schema::Schema(std::vector<ColumnSpec> columns)
    : columns_(std::move(columns))
{
    std::unordered_set<std::string> seen;
    for (const auto &col : columns_) {
        if (col.name.empty())
            util::fatal("store: empty column name in schema");
        if (!seen.insert(col.name).second)
            util::fatal("store: duplicate column name: " + col.name);
    }
}

const ColumnSpec &
Schema::column(std::size_t index) const
{
    CM_ASSERT(index < columns_.size());
    return columns_[index];
}

std::size_t
Schema::indexOf(const std::string &name) const
{
    for (std::size_t i = 0; i < columns_.size(); ++i) {
        if (columns_[i].name == name)
            return i;
    }
    util::fatal("store: no such column: " + name);
}

bool
Schema::hasColumn(const std::string &name) const
{
    for (const auto &col : columns_) {
        if (col.name == name)
            return true;
    }
    return false;
}

void
Schema::validate(const Row &row) const
{
    if (row.size() != columns_.size())
        util::fatal("store: row arity mismatch");
    for (std::size_t i = 0; i < row.size(); ++i) {
        const ColumnType want = columns_[i].type;
        const ColumnType got = valueType(row[i]);
        // Integers are acceptable in REAL columns (SQLite-like affinity).
        const bool widened =
            want == ColumnType::Real && got == ColumnType::Integer;
        if (got != want && !widened) {
            util::fatal("store: type mismatch in column '" +
                        columns_[i].name + "': expected " +
                        columnTypeName(want) + ", got " +
                        columnTypeName(got));
        }
    }
}

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)),
      columns_(schema_.size())
{
    if (name_.empty())
        util::fatal("store: empty table name");
}

void
Table::insert(Row row)
{
    schema_.validate(row);
    for (std::size_t i = 0; i < row.size(); ++i) {
        ColumnStore &store = columns_[i];
        switch (schema_.column(i).type) {
        case ColumnType::Integer:
            store.ints.push_back(std::get<std::int64_t>(row[i]));
            break;
        case ColumnType::Real:
            // Widen integers stored in REAL columns so readers see
            // doubles (SQLite-like affinity, same as validate()).
            store.reals.push_back(asReal(row[i]));
            break;
        case ColumnType::Text:
            store.texts.push_back(
                std::move(std::get<std::string>(row[i])));
            break;
        }
    }
    ++rowCount_;
}

Value
Table::cell(std::size_t column, std::size_t row) const
{
    const ColumnStore &store = columns_[column];
    switch (schema_.column(column).type) {
    case ColumnType::Integer:
        return store.ints[row];
    case ColumnType::Real:
        return store.reals[row];
    case ColumnType::Text:
        return store.texts[row];
    }
    util::fatal("store: unreachable column type");
}

Row
Table::row(std::size_t index) const
{
    CM_ASSERT(index < rowCount_);
    Row out;
    out.reserve(schema_.size());
    for (std::size_t c = 0; c < schema_.size(); ++c)
        out.push_back(cell(c, index));
    return out;
}

std::vector<Row>
Table::select(const std::function<bool(const Row &)> &predicate) const
{
    std::vector<Row> matched;
    for (std::size_t r = 0; r < rowCount_; ++r) {
        Row candidate = row(r);
        if (predicate(candidate))
            matched.push_back(std::move(candidate));
    }
    return matched;
}

std::vector<Value>
Table::column(const std::string &name) const
{
    const std::size_t index = schema_.indexOf(name);
    std::vector<Value> out;
    out.reserve(rowCount_);
    for (std::size_t r = 0; r < rowCount_; ++r)
        out.push_back(cell(index, r));
    return out;
}

std::vector<double>
Table::numericColumn(const std::string &name) const
{
    const std::size_t index = schema_.indexOf(name);
    const ColumnStore &store = columns_[index];
    switch (schema_.column(index).type) {
    case ColumnType::Real:
        return store.reals;
    case ColumnType::Integer:
        return {store.ints.begin(), store.ints.end()};
    case ColumnType::Text:
        util::fatal("store: column '" + name + "' is not numeric");
    }
    util::fatal("store: unreachable column type");
}

std::span<const double>
Table::realColumn(const std::string &name) const
{
    return realColumn(schema_.indexOf(name));
}

std::span<const double>
Table::realColumn(std::size_t index) const
{
    CM_ASSERT(index < columns_.size());
    if (schema_.column(index).type != ColumnType::Real) {
        util::fatal("store: column '" + schema_.column(index).name +
                    "' is not REAL; realColumn needs contiguous doubles");
    }
    return columns_[index].reals;
}

void
Table::clear()
{
    for (auto &store : columns_) {
        store.ints.clear();
        store.reals.clear();
        store.texts.clear();
    }
    rowCount_ = 0;
}

} // namespace cminer::store

#include "store/query.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/error.h"

namespace cminer::store {

std::vector<ProgramSummary>
summarizeByProgram(const Database &db)
{
    std::map<std::string, std::vector<RunId>> by_program;
    for (const auto &program : db.programs())
        by_program[program] = db.findRuns(program);

    std::vector<ProgramSummary> out;
    out.reserve(by_program.size());
    for (const auto &[program, runs] : by_program) {
        ProgramSummary summary;
        summary.program = program;
        summary.runCount = runs.size();
        std::vector<double> times;
        times.reserve(runs.size());
        for (RunId id : runs) {
            const RunMetadata &meta = db.runInfo(id);
            summary.suite = meta.suite;
            times.push_back(meta.execTimeMs);
            if (meta.mode == "ocoe")
                ++summary.ocoeRuns;
            else if (meta.mode == "mlpx")
                ++summary.mlpxRuns;
        }
        if (!times.empty()) {
            summary.meanExecTimeMs = stats::mean(times);
            summary.stddevExecTimeMs = stats::stddev(times);
            summary.minExecTimeMs = stats::minValue(times);
            summary.maxExecTimeMs = stats::maxValue(times);
        }
        out.push_back(std::move(summary));
    }
    return out;
}

EventAcrossRuns
summarizeEventAcrossRuns(const Database &db, const std::string &program,
                         const std::string &event,
                         const std::string &mode)
{
    EventAcrossRuns result;
    result.event = event;

    std::vector<double> pooled;
    std::vector<double> run_means;
    for (RunId id : db.findRuns(program, mode)) {
        const RunMetadata &meta = db.runInfo(id);
        if (std::find(meta.events.begin(), meta.events.end(), event) ==
            meta.events.end())
            continue;
        const auto values = db.seriesValues(id, event);
        pooled.insert(pooled.end(), values.begin(), values.end());
        run_means.push_back(stats::mean(values));
        ++result.runCount;
    }
    if (result.runCount == 0) {
        util::fatal("query: no run of '" + program + "' measured event '" +
                    event + "'");
    }
    result.pooled = stats::summarize(pooled);
    result.meanOfRunMeans = stats::mean(run_means);
    result.stddevOfRunMeans = stats::stddev(run_means);
    return result;
}

std::vector<RunId>
runsByExecTime(const Database &db, const std::string &program)
{
    std::vector<RunId> runs = db.findRuns(program);
    std::sort(runs.begin(), runs.end(), [&](RunId a, RunId b) {
        return db.runInfo(a).execTimeMs < db.runInfo(b).execTimeMs;
    });
    return runs;
}

} // namespace cminer::store

#include "store/segment.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <limits>
#include <utility>

#include "util/binary_io.h"
#include "util/error.h"
#include "util/string_util.h"

namespace cminer::store {

using cminer::util::Status;
using cminer::util::StatusOr;

// --- MappedFile -----------------------------------------------------------

StatusOr<MappedFile>
MappedFile::open(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return Status::dataError("cannot open for mapping: " + path);
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        ::close(fd);
        return Status::dataError("cannot stat: " + path);
    }
    MappedFile file;
    file.size_ = static_cast<std::size_t>(st.st_size);
    file.mapped_ = true;
    if (file.size_ > 0) {
        void *base =
            ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
        if (base == MAP_FAILED) {
            ::close(fd);
            file.mapped_ = false;
            return Status::dataError("mmap failed: " + path);
        }
        file.data_ = static_cast<const char *>(base);
    }
    // The mapping survives the descriptor; keep nothing else open.
    ::close(fd);
    return file;
}

MappedFile::~MappedFile()
{
    if (mapped_ && data_ != nullptr)
        ::munmap(const_cast<char *>(data_), size_);
}

MappedFile::MappedFile(MappedFile &&other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapped_(std::exchange(other.mapped_, false))
{
}

MappedFile &
MappedFile::operator=(MappedFile &&other) noexcept
{
    if (this != &other) {
        if (mapped_ && data_ != nullptr)
            ::munmap(const_cast<char *>(data_), size_);
        data_ = std::exchange(other.data_, nullptr);
        size_ = std::exchange(other.size_, 0);
        mapped_ = std::exchange(other.mapped_, false);
    }
    return *this;
}

// --- Segment --------------------------------------------------------------

namespace {

/**
 * Smallest possible catalog record: id (8) + three string length
 * prefixes (24) + exec/interval (16) + length (8) + event count (8).
 */
constexpr std::size_t min_catalog_record_bytes = 64;

/** Smallest per-event catalog entry: name length prefix + offset. */
constexpr std::size_t min_event_record_bytes = 16;

} // namespace

StatusOr<std::shared_ptr<const Segment>>
Segment::open(const std::string &path)
{
    auto mapped = MappedFile::open(path);
    if (!mapped.ok())
        return mapped.status().withContext("segment: open " + path);

    // shared_ptr<Segment> built first so the mapping has its final
    // address before spans are derived from it (MappedFile moves keep
    // the mapping address, but being explicit costs nothing).
    std::shared_ptr<Segment> seg(new Segment());
    seg->path_ = path;
    seg->map_ = std::move(mapped).value();
    const std::string_view bytes = seg->map_.bytes();

    auto opened = util::BinaryReader::fromView(bytes, artifact_kind);
    if (!opened.ok())
        return opened.status().withContext("segment: open " + path);
    util::BinaryReader in = std::move(opened).value();
    if (in.artifactVersion() != artifact_version)
        return in
            .fail(util::format("unsupported segment version %u (this "
                               "build reads v%u)",
                               in.artifactVersion(), artifact_version))
            .withContext("segment: open " + path);

    // Sections are written in canonical order (meta, columns, catalog,
    // index); the catalog's column offsets are validated against the
    // columns payload range, so that section must already be known.
    std::uint64_t columns_begin = 0;
    std::uint64_t columns_end = 0;
    std::uint64_t declared_runs = 0;
    bool seen_meta = false;
    bool seen_columns = false;
    bool seen_catalog = false;

    for (std::uint64_t s = 0; s < in.sectionCount() && in.ok(); ++s) {
        const std::string section = in.beginSection();
        if (!in.ok())
            break;
        if (section == "meta") {
            seg->microarch_ = in.str();
            const std::uint64_t first = in.u64();
            declared_runs = in.u64();
            if (in.ok() &&
                first > static_cast<std::uint64_t>(
                            std::numeric_limits<RunId>::max()))
                return in.fail("first run id overflows RunId")
                    .withContext("segment: open " + path);
            seg->firstId_ = static_cast<RunId>(first);
            seen_meta = true;
        } else if (section == "columns") {
            // Opaque payload; record its range and skip it by size.
            columns_begin = in.offset();
            columns_end = columns_begin + in.remaining();
            seen_columns = true;
        } else if (section == "catalog") {
            if (!seen_meta || !seen_columns)
                return in
                    .fail("catalog section before meta/columns")
                    .withContext("segment: open " + path);
            const std::uint64_t run_count =
                in.count(min_catalog_record_bytes);
            if (in.ok() && run_count != declared_runs)
                return in
                    .fail(util::format(
                        "catalog holds %llu runs but meta declares "
                        "%llu",
                        static_cast<unsigned long long>(run_count),
                        static_cast<unsigned long long>(
                            declared_runs)))
                    .withContext("segment: open " + path);
            seg->runs_.reserve(run_count);
            for (std::uint64_t r = 0; r < run_count && in.ok(); ++r) {
                RunEntry entry;
                const std::uint64_t id = in.u64();
                entry.meta.id = static_cast<RunId>(id);
                entry.meta.program = in.str();
                entry.meta.suite = in.str();
                entry.meta.mode = in.str();
                entry.meta.execTimeMs = in.f64();
                entry.intervalMs = in.f64();
                entry.length = in.u64();
                const std::uint64_t event_count =
                    in.count(min_event_record_bytes);
                if (!in.ok())
                    break;
                if (entry.meta.id !=
                    seg->firstId_ + static_cast<RunId>(r))
                    return in
                        .fail(util::format(
                            "run %llu has id %lld, expected the "
                            "contiguous id %lld",
                            static_cast<unsigned long long>(r),
                            static_cast<long long>(entry.meta.id),
                            static_cast<long long>(
                                seg->firstId_ +
                                static_cast<RunId>(r))))
                        .withContext("segment: open " + path);
                if (event_count == 0)
                    return in.fail("run with zero events")
                        .withContext("segment: open " + path);
                entry.meta.seriesTable =
                    "run_" + std::to_string(entry.meta.id);
                entry.meta.events.reserve(event_count);
                entry.columnOffsets.reserve(event_count);
                for (std::uint64_t e = 0; e < event_count && in.ok();
                     ++e) {
                    entry.meta.events.push_back(in.str());
                    const std::uint64_t offset = in.u64();
                    if (!in.ok())
                        break;
                    // The whole point of the bounded-read discipline:
                    // the offset and length are attacker-controlled
                    // until proven inside the columns payload.
                    if (offset % alignof(double) != 0)
                        return in
                            .fail(util::format(
                                "column offset %llu is not 8-byte "
                                "aligned",
                                static_cast<unsigned long long>(
                                    offset)))
                            .withContext("segment: open " + path);
                    if (offset < columns_begin ||
                        offset > columns_end ||
                        entry.length >
                            (columns_end - offset) / sizeof(double))
                        return in
                            .fail(util::format(
                                "column at offset %llu with %llu "
                                "samples escapes the columns payload "
                                "[%llu, %llu)",
                                static_cast<unsigned long long>(
                                    offset),
                                static_cast<unsigned long long>(
                                    entry.length),
                                static_cast<unsigned long long>(
                                    columns_begin),
                                static_cast<unsigned long long>(
                                    columns_end)))
                            .withContext("segment: open " + path);
                    entry.columnOffsets.push_back(offset);
                }
                if (!in.ok())
                    break;
                seg->runs_.push_back(std::move(entry));
            }
            seen_catalog = in.ok();
        } else if (section == "index") {
            if (!seen_catalog)
                return in.fail("index section before catalog")
                    .withContext("segment: open " + path);
            const std::uint64_t program_count = in.count(16);
            for (std::uint64_t p = 0; p < program_count && in.ok();
                 ++p) {
                const std::string program = in.str();
                const std::uint64_t n = in.count(8);
                if (!in.ok())
                    break;
                std::vector<std::size_t> ordinals;
                ordinals.reserve(n);
                for (std::uint64_t i = 0; i < n && in.ok(); ++i) {
                    const std::uint64_t ordinal = in.u64();
                    if (!in.ok())
                        break;
                    if (ordinal >= seg->runs_.size() ||
                        seg->runs_[ordinal].meta.program != program)
                        return in
                            .fail(util::format(
                                "index entry for '%s' names run "
                                "ordinal %llu, which is out of range "
                                "or belongs to another program",
                                program.c_str(),
                                static_cast<unsigned long long>(
                                    ordinal)))
                            .withContext("segment: open " + path);
                    ordinals.push_back(
                        static_cast<std::size_t>(ordinal));
                }
                if (!in.ok())
                    break;
                seg->programIndex_.emplace(program,
                                           std::move(ordinals));
            }
        }
        // Unknown sections from newer writers are skipped by size.
        in.endSection();
    }
    if (!in.ok())
        return in.status().withContext("segment: open " + path);
    if (!seen_catalog)
        return Status::dataError("no 'catalog' section")
            .withContext("segment: open " + path);
    return std::shared_ptr<const Segment>(std::move(seg));
}

const RunMetadata &
Segment::runMeta(std::size_t ordinal) const
{
    CM_ASSERT(ordinal < runs_.size());
    return runs_[ordinal].meta;
}

double
Segment::intervalMs(std::size_t ordinal) const
{
    CM_ASSERT(ordinal < runs_.size());
    return runs_[ordinal].intervalMs;
}

std::size_t
Segment::length(std::size_t ordinal) const
{
    CM_ASSERT(ordinal < runs_.size());
    return static_cast<std::size_t>(runs_[ordinal].length);
}

std::span<const double>
Segment::column(std::size_t ordinal, std::size_t event_index) const
{
    CM_ASSERT(ordinal < runs_.size());
    const RunEntry &entry = runs_[ordinal];
    CM_ASSERT(event_index < entry.columnOffsets.size());
    // Offsets were proven 8-aligned and in-bounds at open(); the mmap
    // base is page-aligned, so the sum is a valid double address.
    const char *base =
        map_.bytes().data() + entry.columnOffsets[event_index];
    return {reinterpret_cast<const double *>(base),
            static_cast<std::size_t>(entry.length)};
}

std::span<const double>
Segment::column(std::size_t ordinal, const std::string &event) const
{
    CM_ASSERT(ordinal < runs_.size());
    const RunEntry &entry = runs_[ordinal];
    for (std::size_t e = 0; e < entry.meta.events.size(); ++e) {
        if (entry.meta.events[e] == event)
            return column(ordinal, e);
    }
    util::fatal("segment: run " + std::to_string(entry.meta.id) +
                " has no event " + event);
}

std::vector<std::size_t>
Segment::runsForProgram(const std::string &program) const
{
    auto it = programIndex_.find(program);
    if (it == programIndex_.end())
        return {};
    return it->second;
}

std::vector<std::string>
Segment::programs() const
{
    std::vector<std::string> names;
    names.reserve(programIndex_.size());
    for (const auto &[program, ordinals] : programIndex_)
        names.push_back(program);
    return names;
}

Segment::~Segment()
{
    if (obsolete_.load())
        std::remove(path_.c_str());
}

} // namespace cminer::store

#include "util/status.h"

namespace cminer::util {

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok:
        return "OK";
      case StatusCode::ParseError:
        return "ParseError";
      case StatusCode::DataError:
        return "DataError";
      case StatusCode::CapacityError:
        return "CapacityError";
      case StatusCode::Transient:
        return "Transient";
      case StatusCode::DeadlineExceeded:
        return "DeadlineExceeded";
    }
    return "Unknown";
}

Status
Status::parseError(std::string message)
{
    return Status(StatusCode::ParseError, std::move(message));
}

Status
Status::dataError(std::string message)
{
    return Status(StatusCode::DataError, std::move(message));
}

Status
Status::capacityError(std::string message)
{
    return Status(StatusCode::CapacityError, std::move(message));
}

Status
Status::transient(std::string message)
{
    return Status(StatusCode::Transient, std::move(message));
}

Status
Status::deadlineExceeded(std::string message)
{
    return Status(StatusCode::DeadlineExceeded, std::move(message));
}

Status
Status::withContext(const std::string &context) const
{
    if (ok())
        return *this;
    return Status(code_, context + ": " + message_);
}

std::string
Status::toString() const
{
    if (ok())
        return "OK";
    return std::string(statusCodeName(code_)) + ": " + message_;
}

void
Status::throwIfError() const
{
    if (!ok())
        fatal(toString());
}

} // namespace cminer::util

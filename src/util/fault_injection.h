/**
 * @file
 * Seeded, deterministic fault injection for the ingestion pipeline.
 *
 * The paper's premise is that raw counter data arrives damaged; this
 * module manufactures that damage on demand so the fault-tolerance layer
 * can be exercised end to end. Two boundaries are wired:
 *  - the perf-text boundary: corruptPerfText() garbles, drops,
 *    duplicates, or NaNs individual interval lines;
 *  - the collector boundary: corruptSeries() applies the same damage
 *    classes to sampled in-memory series, and transientFault() makes
 *    named sites (sampler launch, store insertion) fail recoverably.
 *
 * Determinism contract: an injector owns one Rng seeded from the spec;
 * all draws happen in call order on the (serial) collection path, so the
 * same spec + seed against the same input produces bitwise-identical
 * damage and counts. Each sample/line costs exactly one uniform draw.
 */

#ifndef CMINER_UTIL_FAULT_INJECTION_H
#define CMINER_UTIL_FAULT_INJECTION_H

#include <cstdint>
#include <string>
#include <vector>

#include "ts/time_series.h"
#include "util/rng.h"
#include "util/status.h"

namespace cminer::util {

/** Injection rates per damage class, all in [0, 1]. */
struct FaultSpec
{
    /** Garbled text line / outlier-scaled sample. */
    double corruptRate = 0.0;
    /** Dropped line / zeroed (missing) sample. */
    double dropRate = 0.0;
    /** Duplicated timestamp line / repeated previous sample. */
    double duplicateRate = 0.0;
    /** NaN count field / NaN sample. */
    double nanRate = 0.0;
    /** Transient failure per transientFault() call. */
    double transientRate = 0.0;
    /** Torn (truncated mid-bytes) protocol frame, per frame. */
    double tornFrameRate = 0.0;
    /** Connection hangup (stream cut, nothing more flows), per frame. */
    double hangupRate = 0.0;
    /** Injected transport latency, per frame. */
    double delayRate = 0.0;
    /** Latency dealt per delay fault, in milliseconds. */
    double delayMs = 5.0;
    /** Injector RNG seed. */
    std::uint64_t seed = 1;

    /** True when any rate is positive. */
    bool any() const;
    /** Canonical spec string (parses back to an equal spec). */
    std::string toString() const;
};

/**
 * Parse a `--inject-faults` spec: comma-separated `key=value` pairs with
 * keys corrupt, drop, dup, nan, transient, torn, hangup, delay (rates in
 * [0,1]), delayms (milliseconds per delay fault), and seed.
 * Example: "corrupt=0.02,drop=0.02,nan=0.01,transient=0.1,seed=7" or,
 * for the serving transport, "torn=0.05,hangup=0.01,delay=0.1,seed=3".
 */
StatusOr<FaultSpec> parseFaultSpec(const std::string &text);

/** How many faults of each class an injector has dealt. */
struct FaultCounts
{
    std::size_t corrupted = 0;
    std::size_t dropped = 0;
    std::size_t duplicated = 0;
    std::size_t nans = 0;
    std::size_t transients = 0;
    std::size_t tornFrames = 0;
    std::size_t hangups = 0;
    std::size_t delays = 0;

    /** All classes summed. */
    std::size_t total() const;
    /** One-line human-readable summary. */
    std::string toString() const;

    bool operator==(const FaultCounts &) const = default;
};

/**
 * One fault dealt at the transport (framed-protocol) boundary.
 */
struct TransportFault
{
    enum class Kind
    {
        /** Frame passes untouched. */
        None,
        /** Frame truncated after `tearAt` bytes (a half-flushed write). */
        TornFrame,
        /** Connection cut: this frame and everything after it is lost. */
        Hangup,
        /** Frame delivered whole but `delayMs` late. */
        Delay,
    };

    Kind kind = Kind::None;
    /** Bytes of the frame that survive (TornFrame only). */
    std::size_t tearAt = 0;
    /** Injected latency in milliseconds (Delay only). */
    double delayMs = 0.0;
};

/**
 * Deals damage at the configured rates and counts every fault dealt.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultSpec spec);

    /** Rates in effect. */
    const FaultSpec &spec() const { return spec_; }
    /** Faults dealt so far. */
    const FaultCounts &counts() const { return counts_; }
    /** True when the spec can deal any damage at all. */
    bool enabled() const { return spec_.any(); }
    /** Zero the fault counters (the RNG stream is not reset). */
    void resetCounts() { counts_ = FaultCounts(); }

    /**
     * Damage perf-interval text line by line. Comment lines pass
     * through untouched; each data line draws once and is then either
     * kept, garbled (field torn mid-number), dropped, emitted twice
     * (duplicate timestamp), or has its count replaced with "nan".
     */
    std::string corruptPerfText(const std::string &text);

    /**
     * Damage sampled series in place, one draw per sample: corrupt
     * scales the value into an implausible outlier, drop zeroes it
     * (MLPX missing-value encoding), duplicate repeats the previous
     * sample, nan poisons it with a quiet NaN.
     */
    void corruptSeries(std::vector<cminer::ts::TimeSeries> &series);

    /**
     * Draw a transient failure for the named site ("sampler",
     * "store"). The site is recorded in the returned status message.
     */
    Status transientFault(const char *site);

    /**
     * One transport fault drawn against a frame of `frame_bytes` bytes
     * (the serving boundary, DESIGN.md §14). Exactly one uniform draw
     * per frame resolves the kind; a torn frame costs one extra
     * uniformInt draw for the tear offset. Same (spec, seed) + same
     * frame sizes in call order => bitwise-identical fault sequence.
     */
    TransportFault transportFault(std::size_t frame_bytes);

  private:
    /** Damage classes a single uniform draw resolves to. */
    enum class Damage { None, Corrupt, Drop, Duplicate, Nan };

    Damage drawDamage();

    FaultSpec spec_;
    Rng rng_;
    FaultCounts counts_;
};

} // namespace cminer::util

#endif // CMINER_UTIL_FAULT_INJECTION_H

#include "util/trace.h"

#include <atomic>
#include <chrono>

#include "util/error.h"
#include "util/json_writer.h"

namespace cminer::util {

namespace {

/** The installed tracer; relaxed loads keep disabled spans near-free. */
std::atomic<Tracer *> global_tracer{nullptr};

/**
 * Per-thread stack of open span ids, for parent linkage. Spans opened on
 * a pool worker root their own subtree (the worker has no ancestor span
 * on its stack), which is exactly the truth about where the work ran.
 */
thread_local std::vector<std::size_t> span_stack;

} // namespace

double
SteadyClock::nowMs()
{
    using namespace std::chrono;
    return duration<double, std::milli>(
               steady_clock::now().time_since_epoch())
        .count();
}

std::size_t
Tracer::beginSpan(std::string name)
{
    const double now = clock_.nowMs();
    std::lock_guard<std::mutex> lock(mutex_);
    SpanRecord record;
    record.name = std::move(name);
    record.id = spans_.size() + 1;
    record.parent = span_stack.empty() ? 0 : span_stack.back();
    record.startMs = now;
    record.endMs = now;
    spans_.push_back(std::move(record));
    span_stack.push_back(spans_.back().id);
    return spans_.back().id;
}

void
Tracer::endSpan(std::size_t id,
                std::vector<std::pair<std::string, double>> numbers,
                std::vector<std::pair<std::string, std::string>> labels)
{
    const double now = clock_.nowMs();
    std::lock_guard<std::mutex> lock(mutex_);
    CM_ASSERT(id >= 1 && id <= spans_.size());
    SpanRecord &record = spans_[id - 1];
    CM_ASSERT(!record.closed);
    record.endMs = now;
    record.closed = true;
    record.numbers = std::move(numbers);
    record.labels = std::move(labels);
    // Spans close in LIFO order per thread (RAII guarantees it).
    CM_ASSERT(!span_stack.empty() && span_stack.back() == id);
    span_stack.pop_back();
}

std::vector<SpanRecord>
Tracer::spans() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_;
}

namespace {

void
writeSpanNode(JsonWriter &json, const std::vector<SpanRecord> &spans,
              const std::vector<std::vector<std::size_t>> &children,
              std::size_t index)
{
    const SpanRecord &span = spans[index];
    json.beginObject();
    json.key("name");
    json.value(span.name);
    json.key("startMs");
    json.value(span.startMs);
    json.key("endMs");
    json.value(span.endMs);
    json.key("durationMs");
    json.value(span.durationMs());
    if (!span.closed) {
        json.key("open");
        json.value(true);
    }
    if (!span.numbers.empty() || !span.labels.empty()) {
        json.key("attrs");
        json.beginObject();
        for (const auto &[key, value] : span.labels) {
            json.key(key);
            json.value(value);
        }
        for (const auto &[key, value] : span.numbers) {
            json.key(key);
            json.value(value);
        }
        json.endObject();
    }
    if (!children[index].empty()) {
        json.key("children");
        json.beginArray();
        for (std::size_t child : children[index])
            writeSpanNode(json, spans, children, child);
        json.endArray();
    }
    json.endObject();
}

} // namespace

std::string
Tracer::toJson() const
{
    const std::vector<SpanRecord> snapshot = spans();

    // Index children per span (ids are 1-based positions in the vector).
    std::vector<std::vector<std::size_t>> children(snapshot.size());
    std::vector<std::size_t> roots;
    for (std::size_t i = 0; i < snapshot.size(); ++i) {
        if (snapshot[i].parent == 0)
            roots.push_back(i);
        else
            children[snapshot[i].parent - 1].push_back(i);
    }

    JsonWriter json;
    json.beginObject();
    json.key("spans");
    json.beginArray();
    for (std::size_t root : roots)
        writeSpanNode(json, snapshot, children, root);
    json.endArray();
    json.endObject();
    return json.str();
}

Tracer *
globalTracer()
{
    return global_tracer.load(std::memory_order_relaxed);
}

void
setGlobalTracer(Tracer *tracer)
{
    global_tracer.store(tracer, std::memory_order_release);
}

Span::Span(const char *name)
    : tracer_(globalTracer())
{
    if (tracer_ == nullptr)
        return;
    id_ = tracer_->beginSpan(name);
}

Span::~Span()
{
    if (tracer_ == nullptr)
        return;
    tracer_->endSpan(id_, std::move(numbers_), std::move(labels_));
}

void
Span::number(const char *key, double value)
{
    if (tracer_ == nullptr)
        return;
    numbers_.emplace_back(key, value);
}

void
Span::label(const char *key, const std::string &value)
{
    if (tracer_ == nullptr)
        return;
    labels_.emplace_back(key, value);
}

} // namespace cminer::util

/**
 * @file
 * Deterministic fixed-size thread pool for the mining pipeline.
 *
 * Design goals, in order:
 *  1. **Bit-identical results for any thread count.** parallelFor cuts a
 *     range into chunks whose boundaries depend only on (begin, end,
 *     grain) — never on the thread count or claim order. Callers write
 *     per-element or per-chunk slots and reduce serially in chunk order,
 *     so the floating-point evaluation order is fixed.
 *  2. **An exact serial path.** With an effective thread count of 1 (or
 *     when called from inside a worker — nested parallelism) parallelFor
 *     degenerates to a plain loop in the calling thread: no pool, no
 *     queue, no synchronization.
 *  3. **No work stealing.** Chunks are claimed from a single atomic
 *     cursor; claim order affects scheduling only, never results.
 *
 * The global pool is sized by Parallelism: an explicit setThreadCount
 * override (the CLI's --threads) wins, else the CMINER_THREADS
 * environment variable, else std::thread::hardware_concurrency().
 */

#ifndef CMINER_UTIL_THREAD_POOL_H
#define CMINER_UTIL_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace cminer::util {

/**
 * Process-wide parallelism configuration.
 *
 * Thread-count resolution order: explicit override > CMINER_THREADS
 * environment variable > hardware_concurrency. A count of 1 selects the
 * exact serial path everywhere.
 */
class Parallelism
{
  public:
    /** Effective thread count (>= 1). */
    static std::size_t threadCount();

    /**
     * Override the thread count (0 restores automatic resolution).
     * The global pool is resized lazily on its next use.
     */
    static void setThreadCount(std::size_t count);
};

/**
 * Fixed-size thread pool with a FIFO task queue and a deterministic
 * parallelFor helper.
 */
class ThreadPool
{
  public:
    /**
     * @param workers number of worker threads to spawn (0 allowed: every
     *        task then runs inline in submit/parallelFor callers)
     */
    explicit ThreadPool(std::size_t workers);

    /** Drains the queue and joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    std::size_t workerCount() const { return workers_.size(); }

    /**
     * Enqueue one task. The returned future carries any exception the
     * task throws.
     *
     * Waiting on the future from inside a worker thread can deadlock
     * (all workers may be blocked on queued work); prefer parallelFor,
     * which runs inline when nested.
     */
    std::future<void> submit(std::function<void()> task);

    /**
     * Bounded, non-blocking submit: enqueue the task only when fewer
     * than `max_queued` tasks are already waiting, else return nullopt
     * *immediately* — the overload-shedding primitive for servers that
     * must never block their accept loop behind a saturated pool
     * (DESIGN.md §14). Never waits on the queue or on workers.
     *
     * With no workers there is no queue to bound; the task runs inline
     * (matching submit) and the returned future is already ready. A
     * `max_queued` of 0 on a worker-backed pool sheds every task.
     */
    std::optional<std::future<void>> trySubmit(std::function<void()> task,
                                               std::size_t max_queued);

    /**
     * Tasks currently waiting in the queue (not yet claimed by a
     * worker). A snapshot: stale the moment it returns; meant for
     * pressure gauges, not synchronization.
     */
    std::size_t queueDepth() const;

    /**
     * Run fn over [begin, end) in chunks of `grain` elements.
     *
     * Chunk k covers [begin + k*grain, min(begin + (k+1)*grain, end));
     * the decomposition depends only on the arguments, never on the
     * thread count. fn(chunk_begin, chunk_end) may run on any thread,
     * concurrently with other chunks; the calling thread participates.
     * Blocks until every chunk has finished. When fn throws, the
     * exception of the *lowest-index* throwing chunk is rethrown in the
     * caller — deterministically, for any thread count or scheduling —
     * and chunks above the failing index are cancelled (claimed but
     * skipped). Chunks below it always run.
     *
     * Runs serially inline when the range fits one chunk, the pool has
     * no workers, or the caller is itself a pool worker (nested
     * parallelism never deadlocks, it just serializes).
     */
    void parallelFor(std::size_t begin, std::size_t end,
                     std::size_t grain,
                     const std::function<void(std::size_t, std::size_t)>
                         &fn);

    /** True when the calling thread is a worker of any ThreadPool. */
    static bool insideWorker();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    mutable std::mutex mutex_;
    std::condition_variable wake_;
    bool stopping_ = false;
};

/**
 * The process-wide pool, sized to Parallelism::threadCount() - 1 workers
 * (the caller of parallelFor is the remaining thread). Rebuilt lazily
 * when the configured thread count changes.
 */
ThreadPool &globalPool();

/**
 * Deterministic parallel loop over [begin, end) on the global pool.
 * See ThreadPool::parallelFor for the contract.
 */
void parallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)> &fn);

} // namespace cminer::util

#endif // CMINER_UTIL_THREAD_POOL_H

/**
 * @file
 * Recoverable error propagation for the ingestion and collection paths.
 *
 * The error-handling taxonomy (DESIGN.md §9) has three tiers:
 *  - CM_PANIC / CM_ASSERT: the library itself is broken. Aborts.
 *  - util::fatal / FatalError: the *caller* supplied input the library
 *    cannot work with. Throws; recoverable only by the caller.
 *  - Status / StatusOr<T>: the *data* is damaged or a dependency failed
 *    transiently — expected at production scale, where partial input
 *    damage is the norm. The pipeline is expected to recover in-process
 *    (skip, quarantine, retry) and report, never die.
 *
 * Status carries an error code plus a human-readable message; context is
 * chained outward with withContext() so a deep parse error surfaces as
 * "ingest run 3: perf_text line 17: bad count '1.2.3'".
 */

#ifndef CMINER_UTIL_STATUS_H
#define CMINER_UTIL_STATUS_H

#include <optional>
#include <string>
#include <utility>

#include "util/error.h"

namespace cminer::util {

/** What went wrong, at the granularity recovery policies care about. */
enum class StatusCode
{
    Ok = 0,
    /** Input text/bytes could not be decoded (malformed line, bad field). */
    ParseError,
    /** Decoded fine but the values are unusable (NaN run, length mismatch). */
    DataError,
    /** A bound was exceeded (too many bad runs, too much damage). */
    CapacityError,
    /** A dependency failed in a way a retry may fix. */
    Transient,
    /**
     * The caller's time budget ran out before the work finished. Unlike
     * Transient, retrying inside the same budget cannot help; the
     * serving layer reports it and moves on (DESIGN.md §14).
     */
    DeadlineExceeded,
};

/** Stable name of a status code ("ParseError", ...). */
const char *statusCodeName(StatusCode code);

/**
 * The result of a recoverable operation: Ok, or a code plus message.
 */
class Status
{
  public:
    /** Default-constructed Status is Ok. */
    Status() = default;

    /** @return an Ok status (same as default construction) */
    static Status okStatus() { return Status(); }
    /** ParseError with the given message. */
    static Status parseError(std::string message);
    /** DataError with the given message. */
    static Status dataError(std::string message);
    /** CapacityError with the given message. */
    static Status capacityError(std::string message);
    /** Transient failure with the given message. */
    static Status transient(std::string message);
    /** DeadlineExceeded with the given message. */
    static Status deadlineExceeded(std::string message);

    /** True when no error is carried. */
    bool ok() const { return code_ == StatusCode::Ok; }
    /** The error code (Ok when ok()). */
    StatusCode code() const { return code_; }
    /** True when a retry may fix the failure. */
    bool isTransient() const { return code_ == StatusCode::Transient; }
    /** True when the failure was a blown time budget. */
    bool
    isDeadlineExceeded() const
    {
        return code_ == StatusCode::DeadlineExceeded;
    }
    /** The error message (empty when ok()). */
    const std::string &message() const { return message_; }

    /**
     * Chain context onto the message, outermost first:
     * `s.withContext("run 3")` turns "bad count" into "run 3: bad count".
     * The code is preserved. Ok statuses pass through unchanged.
     */
    Status withContext(const std::string &context) const;

    /** "OK" or "<CodeName>: <message>". */
    std::string toString() const;

    /** Throw FatalError(toString()) when not ok; no-op otherwise. */
    void throwIfError() const;

  private:
    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {}

    StatusCode code_ = StatusCode::Ok;
    std::string message_;
};

/**
 * A value or the Status explaining its absence.
 *
 * Accessing value() on an error StatusOr is a programmer error and
 * panics; check ok() (or handle status()) first.
 */
template <typename T>
class StatusOr
{
  public:
    /** Construct from a non-ok Status (an Ok status here is a bug). */
    StatusOr(Status status) // NOLINT: implicit by design, like absl
        : status_(std::move(status))
    {
        if (status_.ok())
            CM_PANIC("StatusOr constructed from an Ok status "
                     "without a value");
    }

    /** Construct from a value (status becomes Ok). */
    StatusOr(T value) // NOLINT: implicit by design
        : value_(std::move(value))
    {}

    /** True when a value is present. */
    bool ok() const { return status_.ok(); }

    /** The status (Ok when a value is present). */
    const Status &status() const { return status_; }

    /** The value; panics when !ok(). */
    const T &
    value() const &
    {
        requireValue();
        return *value_;
    }

    /** The value; panics when !ok(). */
    T &
    value() &
    {
        requireValue();
        return *value_;
    }

    /** Move the value out; panics when !ok(). */
    T &&
    value() &&
    {
        requireValue();
        return std::move(*value_);
    }

    /** The value, or `fallback` when an error is carried. */
    T
    valueOr(T fallback) const &
    {
        return ok() ? *value_ : std::move(fallback);
    }

  private:
    void
    requireValue() const
    {
        if (!value_.has_value())
            CM_PANIC("StatusOr::value() called on an error status");
    }

    Status status_;
    std::optional<T> value_;
};

} // namespace cminer::util

#endif // CMINER_UTIL_STATUS_H

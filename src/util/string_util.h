/**
 * @file
 * Small string helpers used across modules (no locale dependence).
 */

#ifndef CMINER_UTIL_STRING_UTIL_H
#define CMINER_UTIL_STRING_UTIL_H

#include <string>
#include <string_view>
#include <vector>

namespace cminer::util {

/** Split a string on a single-character delimiter; keeps empty fields. */
std::vector<std::string> split(std::string_view text, char delimiter);

/** Join strings with a separator. */
std::string join(const std::vector<std::string> &parts,
                 std::string_view separator);

/** Strip ASCII whitespace from both ends. */
std::string trim(std::string_view text);

/** ASCII lower-casing. */
std::string toLower(std::string_view text);

/** True when text starts with the given prefix. */
bool startsWith(std::string_view text, std::string_view prefix);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Format a double with fixed decimals, e.g. formatDouble(3.14159, 2)
 * == "3.14".
 */
std::string formatDouble(double value, int decimals);

/**
 * Parse a double strictly: the whole field must be consumed.
 *
 * @param text the field to parse
 * @param out receives the value on success
 * @return true when the parse consumed the entire (trimmed) field
 */
bool parseDouble(std::string_view text, double &out);

} // namespace cminer::util

#endif // CMINER_UTIL_STRING_UTIL_H

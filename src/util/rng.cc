#include "util/rng.h"

#include <cmath>
#include <numbers>

#include "util/error.h"

namespace cminer::util {

namespace {

/** SplitMix64 step, used only for seeding. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitMix64(s);
}

Rng::result_type
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53-bit mantissa from the top bits for a uniform double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    CM_ASSERT(lo <= hi);
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    CM_ASSERT(lo <= hi);
    const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) // full 64-bit range
        return static_cast<std::int64_t>(next());
    // Rejection sampling to remove modulo bias.
    const std::uint64_t limit = ~0ULL - (~0ULL % range);
    std::uint64_t draw;
    do {
        draw = next();
    } while (draw > limit);
    return lo + static_cast<std::int64_t>(draw % range);
}

double
Rng::gaussian()
{
    if (hasCachedGaussian_) {
        hasCachedGaussian_ = false;
        return cachedGaussian_;
    }
    // Box-Muller; u1 must be strictly positive for the log.
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * std::numbers::pi * u2;
    cachedGaussian_ = radius * std::sin(angle);
    hasCachedGaussian_ = true;
    return radius * std::cos(angle);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

double
Rng::exponential(double rate)
{
    CM_ASSERT(rate > 0.0);
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / rate;
}

double
Rng::gev(double location, double scale, double shape)
{
    CM_ASSERT(scale > 0.0);
    double u;
    do {
        u = uniform();
    } while (u <= 0.0 || u >= 1.0);
    if (std::abs(shape) < 1e-12)
        return location - scale * std::log(-std::log(u));
    return location + scale * (std::pow(-std::log(u), -shape) - 1.0) / shape;
}

double
Rng::gumbel(double location, double scale)
{
    return gev(location, scale, 0.0);
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(gaussian(mu, sigma));
}

std::int64_t
Rng::poisson(double mean)
{
    CM_ASSERT(mean >= 0.0);
    if (mean == 0.0)
        return 0;
    if (mean < 30.0) {
        // Knuth's multiplicative method.
        const double threshold = std::exp(-mean);
        std::int64_t count = -1;
        double product = 1.0;
        do {
            ++count;
            product *= uniform();
        } while (product > threshold);
        return count;
    }
    // Normal approximation with continuity correction for large means.
    const double draw = gaussian(mean, std::sqrt(mean));
    return draw < 0.0 ? 0 : static_cast<std::int64_t>(draw + 0.5);
}

bool
Rng::bernoulli(double p)
{
    CM_ASSERT(p >= 0.0 && p <= 1.0);
    return uniform() < p;
}

std::vector<std::size_t>
Rng::sampleIndices(std::size_t n, std::size_t k)
{
    if (k >= n) {
        std::vector<std::size_t> all(n);
        for (std::size_t i = 0; i < n; ++i)
            all[i] = i;
        return all;
    }
    // Partial Fisher-Yates over an index vector: O(n) space, O(n + k) time.
    std::vector<std::size_t> pool(n);
    for (std::size_t i = 0; i < n; ++i)
        pool[i] = i;
    std::vector<std::size_t> picked;
    picked.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
        std::size_t j = static_cast<std::size_t>(
            uniformInt(static_cast<std::int64_t>(i),
                       static_cast<std::int64_t>(n) - 1));
        std::swap(pool[i], pool[j]);
        picked.push_back(pool[i]);
    }
    return picked;
}

Rng
Rng::split()
{
    return Rng(next());
}

} // namespace cminer::util

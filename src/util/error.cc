#include "util/error.h"

#include <cstdio>
#include <cstdlib>

namespace cminer::util {

void
fatal(const std::string &message)
{
    throw FatalError(message);
}

void
panicImpl(const char *message, const char *file, int line)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", message, file, line);
    std::abort();
}

} // namespace cminer::util

/**
 * @file
 * The checkpoint container format (DESIGN.md §12): a little-endian,
 * versioned binary layout shared by every artifact the system persists
 * (the performance database, trained models, the MAPM artifact).
 *
 * Layout:
 *
 *   magic[8] "CMCHKPT1"
 *   u32      container format version (currently 1)
 *   u64      total file size in bytes (truncation tripwire)
 *   str      artifact kind ("cminer-db", "gbrt-model", "mapm-artifact")
 *   u32      artifact version (per-kind schema number)
 *   u64      section count
 *   section* { str name, u64 payload_size, payload bytes }
 *
 * where `str` is a u64 byte length followed by raw UTF-8 bytes and all
 * integers are little-endian regardless of host order. Readers that do
 * not recognize a section name skip it by its declared size (forward
 * compatibility); writers never reorder or remove sections within an
 * artifact version (backward compatibility).
 *
 * BinaryReader does only *bounded* reads: every count and length field
 * is validated against the bytes actually remaining (in the file and in
 * the current section) before any allocation or copy, so a truncated or
 * corrupt file produces a Status error naming the byte offset — never a
 * multi-GB allocation, a silent zero-fill, or undefined behavior. The
 * reader latches its first error: subsequent reads return zero values
 * and the caller checks status() at its convenience.
 *
 * BinaryWriter assembles the container in memory and writeFile() lands
 * it with the atomic temp-file-and-rename discipline (writeFileAtomic),
 * so a crash mid-write never destroys the previous good checkpoint.
 */

#ifndef CMINER_UTIL_BINARY_IO_H
#define CMINER_UTIL_BINARY_IO_H

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace cminer::util {

/** First bytes of every checkpoint container. */
inline constexpr char checkpoint_magic[8] = {'C', 'M', 'C', 'H',
                                             'K', 'P', 'T', '1'};

/** Container layout version written by BinaryWriter. */
inline constexpr std::uint32_t checkpoint_container_version = 1;

/**
 * Read a whole file into memory.
 * @return the bytes, or a DataError naming the path
 */
StatusOr<std::string> readFileBytes(const std::string &path);

/**
 * Write bytes to `path` atomically: the data lands in `path + ".tmp"`
 * in the same directory and is renamed over the destination only after
 * every byte was written and flushed successfully. On any failure the
 * previous file at `path` is left untouched and the temp file is
 * removed.
 */
Status writeFileAtomic(const std::string &path, std::string_view bytes);

/**
 * Serializes one artifact into the checkpoint container format.
 *
 * Usage: construct with the artifact kind/version, emit one or more
 * sections (beginSection / primitive writes / endSection), then either
 * writeFile() or finish(). Sections do not nest.
 */
class BinaryWriter
{
  public:
    /**
     * @param artifact_kind stable artifact identifier, e.g. "gbrt-model"
     * @param artifact_version schema version of this kind
     */
    BinaryWriter(const std::string &artifact_kind,
                 std::uint32_t artifact_version);

    /** Open a named section; all writes until endSection() belong to it. */
    void beginSection(const std::string &name);

    /** Close the open section, patching its payload size. */
    void endSection();

    void u8(std::uint8_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    /** IEEE-754 bits, little-endian. */
    void f64(double v);
    /** u64 byte length followed by the raw bytes. */
    void str(std::string_view s);
    /** A run of f64 values (no count field; callers write their own). */
    void f64Span(std::span<const double> values);

    /**
     * Pad with zero bytes until bytesWritten() is a multiple of 8.
     * Writers of memory-mappable payloads (the segment store) align
     * their f64 runs so a reader can hand out `span<const double>`
     * straight over the mapped file.
     */
    void align8();

    /** Bytes emitted so far (header + sections). */
    std::size_t bytesWritten() const { return buffer_.size(); }

    /**
     * Finalize the container (patch file size and section count) and
     * return the bytes. The writer is spent afterwards.
     */
    std::string finish();

    /**
     * finish() + writeFileAtomic(), counting `checkpoint.bytes_written`.
     */
    Status writeFile(const std::string &path);

  private:
    void patchU64(std::size_t offset, std::uint64_t v);

    std::string buffer_;
    std::size_t fileSizeOffset_ = 0;
    std::size_t sectionCountOffset_ = 0;
    std::size_t sectionSizeOffset_ = 0; ///< size field of the open section
    std::uint64_t sectionCount_ = 0;
    bool inSection_ = false;
    bool finished_ = false;
};

/**
 * Bounded deserializer over a byte buffer.
 *
 * Container mode (fromBytes/open/fromView) parses and validates the
 * header and exposes sections; raw mode (raw/rawView) is a plain
 * bounded cursor for legacy formats that predate the container (the v1
 * database file). The *View variants do not own the bytes — the segment
 * store parses container headers straight over a memory-mapped file —
 * so the caller must keep the underlying storage alive for the
 * reader's lifetime.
 */
class BinaryReader
{
  public:
    /**
     * Parse a container header from bytes.
     *
     * @param bytes the whole file
     * @param expected_kind artifact kind the caller can handle; a
     *        mismatch is a DataError
     */
    static StatusOr<BinaryReader> fromBytes(std::string bytes,
                                            const std::string &expected_kind);

    /**
     * Parse a container header over bytes the caller keeps alive
     * (e.g. a memory-mapped segment file). Nothing is copied.
     */
    static StatusOr<BinaryReader> fromView(std::string_view bytes,
                                           const std::string &expected_kind);

    /** readFileBytes + fromBytes, with the path as error context. */
    static StatusOr<BinaryReader> open(const std::string &path,
                                       const std::string &expected_kind);

    /** Bounded cursor over bytes with no container header. */
    static BinaryReader raw(std::string bytes);

    /** Bounded cursor over caller-owned bytes (nothing is copied). */
    static BinaryReader rawView(std::string_view bytes);

    /** Artifact schema version from the header (container mode). */
    std::uint32_t artifactVersion() const { return artifactVersion_; }

    /** Declared number of sections (container mode). */
    std::uint64_t sectionCount() const { return sectionCount_; }

    /** True until the first failed or out-of-bounds read. */
    bool ok() const { return status_.ok(); }

    /** The latched error (Ok while ok()). */
    const Status &status() const { return status_; }

    /** Current byte offset from the start of the file. */
    std::uint64_t offset() const { return pos_; }

    /** Bytes left before the current bound (section end or file end). */
    std::uint64_t remaining() const;

    /** True when the cursor reached the current bound. */
    bool atEnd() const { return remaining() == 0; }

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    double f64();

    /**
     * A length-prefixed string; the length is validated against the
     * bytes remaining before any allocation.
     */
    std::string str();

    /**
     * A count field for elements of at least `element_size` bytes each:
     * reads a u64 and fails unless count * element_size fits in the
     * bytes remaining. The validated count is safe to allocate for.
     */
    std::uint64_t count(std::size_t element_size);

    /** `n` f64 values; `n` must come from count(sizeof(double)). */
    std::vector<double> f64Vec(std::uint64_t n);

    /**
     * Open the next section: reads its name and payload size (validated
     * against the file) and bounds all reads to the payload until
     * endSection(). Returns the section name ("" once failed).
     */
    std::string beginSection();

    /**
     * Close the current section, skipping any unread payload — this is
     * how unknown sections from newer writers are ignored.
     */
    void endSection();

    /**
     * Latch an error at the current offset. Returns the latched status
     * so parse code can `return in.fail("...")`.
     */
    Status fail(const std::string &message);

    BinaryReader(BinaryReader &&other) noexcept;
    BinaryReader &operator=(BinaryReader &&other) noexcept;
    BinaryReader(const BinaryReader &) = delete;
    BinaryReader &operator=(const BinaryReader &) = delete;

  private:
    explicit BinaryReader(std::string bytes);
    explicit BinaryReader(std::string_view bytes);

    /** Shared container-header validation for fromBytes/fromView. */
    Status parseHeader(const std::string &expected_kind);

    /** True when `n` more bytes may be read within the current bound. */
    bool need(std::uint64_t n, const char *what);

    /** Backing storage when this reader owns its bytes (else empty). */
    std::string owned_;
    /** The bytes being read: `owned_`, or a caller-owned view. */
    std::string_view bytes_;
    /** True when bytes_ points into owned_ (move ops must re-point). */
    bool owns_ = false;
    std::uint64_t pos_ = 0;
    /** End of the current section payload, or bytes_.size(). */
    std::uint64_t bound_ = 0;
    bool inSection_ = false;
    std::uint32_t artifactVersion_ = 0;
    std::uint64_t sectionCount_ = 0;
    Status status_;
};

} // namespace cminer::util

#endif // CMINER_UTIL_BINARY_IO_H

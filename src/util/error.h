/**
 * @file
 * Error-handling primitives shared across the CounterMiner library.
 *
 * Two severities, following the gem5 fatal/panic distinction:
 *  - FatalError: the caller supplied input the library cannot work with
 *    (bad configuration, inconsistent data). Recoverable by the caller.
 *  - panic(): an internal invariant was violated; the library itself is
 *    broken. Aborts.
 */

#ifndef CMINER_UTIL_ERROR_H
#define CMINER_UTIL_ERROR_H

#include <stdexcept>
#include <string>

namespace cminer::util {

/**
 * Exception thrown when caller-supplied input makes continuing impossible.
 *
 * Carries a human-readable message describing what the caller did wrong
 * and, where possible, how to fix it.
 */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &message)
        : std::runtime_error(message)
    {}
};

/**
 * Throw a FatalError with the given message.
 *
 * Kept out-of-line so call sites stay small and so a breakpoint on one
 * function catches every fatal path.
 *
 * @param message description of the user-facing error condition
 */
[[noreturn]] void fatal(const std::string &message);

/**
 * Report an internal invariant violation and abort.
 *
 * @param message description of the broken invariant
 * @param file source file of the failing check
 * @param line source line of the failing check
 */
[[noreturn]] void panicImpl(const char *message, const char *file, int line);

} // namespace cminer::util

/**
 * Abort with a message when an internal invariant is violated.
 */
#define CM_PANIC(msg) ::cminer::util::panicImpl((msg), __FILE__, __LINE__)

/**
 * Check an internal invariant; abort with location info when it fails.
 *
 * Unlike assert(), stays active in release builds: the library's
 * correctness claims are part of its contract.
 */
#define CM_ASSERT(cond)                                                      \
    do {                                                                     \
        if (!(cond))                                                         \
            ::cminer::util::panicImpl("assertion failed: " #cond,            \
                                      __FILE__, __LINE__);                   \
    } while (0)

#endif // CMINER_UTIL_ERROR_H

#include "util/logging.h"

#include <cstdio>

namespace cminer::util {

namespace {

LogLevel globalLevel = LogLevel::Warn;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
    }
    return "?";
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
logMessage(LogLevel level, const std::string &message)
{
    if (static_cast<int>(level) < static_cast<int>(globalLevel))
        return;
    std::fprintf(stderr, "[%s] %s\n", levelName(level), message.c_str());
}

void
inform(const std::string &message)
{
    logMessage(LogLevel::Info, message);
}

void
warn(const std::string &message)
{
    logMessage(LogLevel::Warn, message);
}

void
debug(const std::string &message)
{
    logMessage(LogLevel::Debug, message);
}

} // namespace cminer::util

#include "util/binary_io.h"

#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "util/error.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace cminer::util {

namespace {

/** Hard cap on a single length-prefixed string (names, not payloads). */
constexpr std::uint64_t max_string_bytes = 1ULL << 32;

void
appendU64Le(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
appendU32Le(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint64_t
decodeU64Le(const char *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(p[i]))
             << (8 * i);
    return v;
}

std::uint32_t
decodeU32Le(const char *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(p[i]))
             << (8 * i);
    return v;
}

} // namespace

// --- file helpers ---------------------------------------------------------

StatusOr<std::string>
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return Status::dataError("cannot open for reading: " + path);
    std::string bytes;
    in.seekg(0, std::ios::end);
    const auto size = in.tellg();
    if (size < 0)
        return Status::dataError("cannot determine size of: " + path);
    in.seekg(0, std::ios::beg);
    bytes.resize(static_cast<std::size_t>(size));
    in.read(bytes.data(), size);
    if (!in)
        return Status::dataError("read failed: " + path);
    return bytes;
}

Status
writeFileAtomic(const std::string &path, std::string_view bytes)
{
    // Same directory as the destination so the final rename cannot
    // cross a filesystem boundary (rename is only atomic within one).
    const std::string tmp = path + ".tmp";
    bool opened = false;
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return Status::transient("cannot open for writing: " + tmp);
        opened = true;
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        out.flush();
        if (!out) {
            out.close();
            std::error_code ec;
            std::filesystem::remove(tmp, ec);
            return Status::transient("write failed: " + tmp);
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        if (opened) {
            std::error_code ignore;
            std::filesystem::remove(tmp, ignore);
        }
        return Status::transient("cannot rename " + tmp + " to " + path +
                                 ": " + ec.message());
    }
    return Status::okStatus();
}

// --- BinaryWriter ---------------------------------------------------------

BinaryWriter::BinaryWriter(const std::string &artifact_kind,
                           std::uint32_t artifact_version)
{
    buffer_.append(checkpoint_magic, sizeof(checkpoint_magic));
    appendU32Le(buffer_, checkpoint_container_version);
    fileSizeOffset_ = buffer_.size();
    appendU64Le(buffer_, 0); // patched by finish()
    str(artifact_kind);
    appendU32Le(buffer_, artifact_version);
    sectionCountOffset_ = buffer_.size();
    appendU64Le(buffer_, 0); // patched by finish()
}

void
BinaryWriter::beginSection(const std::string &name)
{
    CM_ASSERT(!inSection_ && !finished_);
    str(name);
    sectionSizeOffset_ = buffer_.size();
    appendU64Le(buffer_, 0); // patched by endSection()
    inSection_ = true;
    ++sectionCount_;
}

void
BinaryWriter::endSection()
{
    CM_ASSERT(inSection_);
    patchU64(sectionSizeOffset_,
             buffer_.size() - (sectionSizeOffset_ + 8));
    inSection_ = false;
}

void
BinaryWriter::u8(std::uint8_t v)
{
    buffer_.push_back(static_cast<char>(v));
}

void
BinaryWriter::u32(std::uint32_t v)
{
    appendU32Le(buffer_, v);
}

void
BinaryWriter::u64(std::uint64_t v)
{
    appendU64Le(buffer_, v);
}

void
BinaryWriter::f64(double v)
{
    appendU64Le(buffer_, std::bit_cast<std::uint64_t>(v));
}

void
BinaryWriter::str(std::string_view s)
{
    appendU64Le(buffer_, s.size());
    buffer_.append(s.data(), s.size());
}

void
BinaryWriter::f64Span(std::span<const double> values)
{
    for (double v : values)
        f64(v);
}

void
BinaryWriter::align8()
{
    while (buffer_.size() % 8 != 0)
        buffer_.push_back('\0');
}

void
BinaryWriter::patchU64(std::size_t offset, std::uint64_t v)
{
    CM_ASSERT(offset + 8 <= buffer_.size());
    for (int i = 0; i < 8; ++i)
        buffer_[offset + static_cast<std::size_t>(i)] =
            static_cast<char>((v >> (8 * i)) & 0xff);
}

std::string
BinaryWriter::finish()
{
    CM_ASSERT(!inSection_ && !finished_);
    finished_ = true;
    patchU64(fileSizeOffset_, buffer_.size());
    patchU64(sectionCountOffset_, sectionCount_);
    return std::move(buffer_);
}

Status
BinaryWriter::writeFile(const std::string &path)
{
    const std::string bytes = finish();
    Status status = writeFileAtomic(path, bytes);
    if (status.ok()) {
        count("checkpoint.files_written");
        count("checkpoint.bytes_written", bytes.size());
    }
    return status;
}

// --- BinaryReader ---------------------------------------------------------

BinaryReader::BinaryReader(std::string bytes)
    : owned_(std::move(bytes)),
      bytes_(owned_),
      owns_(true),
      bound_(bytes_.size())
{
}

BinaryReader::BinaryReader(std::string_view bytes)
    : bytes_(bytes),
      owns_(false),
      bound_(bytes_.size())
{
}

// A defaulted move would leave bytes_ pointing into the source's
// owned_ string (fatal for short strings, which live in the SSO
// buffer); re-point it after the storage moves.
BinaryReader::BinaryReader(BinaryReader &&other) noexcept
{
    *this = std::move(other);
}

BinaryReader &
BinaryReader::operator=(BinaryReader &&other) noexcept
{
    owned_ = std::move(other.owned_);
    owns_ = other.owns_;
    bytes_ = owns_ ? std::string_view(owned_) : other.bytes_;
    pos_ = other.pos_;
    bound_ = other.bound_;
    inSection_ = other.inSection_;
    artifactVersion_ = other.artifactVersion_;
    sectionCount_ = other.sectionCount_;
    status_ = std::move(other.status_);
    return *this;
}

BinaryReader
BinaryReader::raw(std::string bytes)
{
    return BinaryReader(std::move(bytes));
}

BinaryReader
BinaryReader::rawView(std::string_view bytes)
{
    return BinaryReader(bytes);
}

Status
BinaryReader::parseHeader(const std::string &expected_kind)
{
    if (bytes_.size() < sizeof(checkpoint_magic) + 4 + 8)
        return fail("file too small to hold a checkpoint header");
    if (bytes_.compare(0, sizeof(checkpoint_magic),
                       std::string_view(checkpoint_magic,
                                        sizeof(checkpoint_magic))) != 0)
        return fail("bad magic (not a CounterMiner checkpoint)");
    pos_ = sizeof(checkpoint_magic);
    const std::uint32_t container = u32();
    if (ok() && container != checkpoint_container_version)
        return fail(format("unsupported container version %u "
                           "(this build reads %u)",
                           container, checkpoint_container_version));
    const std::uint64_t declared_size = u64();
    if (ok() && declared_size != bytes_.size())
        return fail(format("file size mismatch: header declares "
                           "%llu bytes, file has %zu (truncated or "
                           "over-appended)",
                           static_cast<unsigned long long>(
                               declared_size),
                           bytes_.size()));
    const std::string kind = str();
    if (ok() && kind != expected_kind)
        return fail("artifact kind mismatch: file holds '" + kind +
                    "', expected '" + expected_kind + "'");
    artifactVersion_ = u32();
    sectionCount_ = count(16); // a section is at least name + size
    return status_;
}

StatusOr<BinaryReader>
BinaryReader::fromBytes(std::string bytes,
                        const std::string &expected_kind)
{
    BinaryReader in(std::move(bytes));
    const Status status = in.parseHeader(expected_kind);
    if (!status.ok())
        return status;
    return in;
}

StatusOr<BinaryReader>
BinaryReader::fromView(std::string_view bytes,
                       const std::string &expected_kind)
{
    BinaryReader in(bytes);
    const Status status = in.parseHeader(expected_kind);
    if (!status.ok())
        return status;
    return in;
}

StatusOr<BinaryReader>
BinaryReader::open(const std::string &path,
                   const std::string &expected_kind)
{
    auto bytes = readFileBytes(path);
    if (!bytes.ok())
        return bytes.status();
    auto reader = fromBytes(std::move(bytes).value(), expected_kind);
    if (!reader.ok())
        return reader.status().withContext(path);
    return reader;
}

std::uint64_t
BinaryReader::remaining() const
{
    return pos_ <= bound_ ? bound_ - pos_ : 0;
}

bool
BinaryReader::need(std::uint64_t n, const char *what)
{
    if (!ok())
        return false;
    if (n > remaining()) {
        fail(format("truncated: need %llu bytes for %s, %llu remain",
                    static_cast<unsigned long long>(n), what,
                    static_cast<unsigned long long>(remaining())));
        return false;
    }
    return true;
}

std::uint8_t
BinaryReader::u8()
{
    if (!need(1, "u8"))
        return 0;
    return static_cast<std::uint8_t>(bytes_[pos_++]);
}

std::uint32_t
BinaryReader::u32()
{
    if (!need(4, "u32"))
        return 0;
    const std::uint32_t v = decodeU32Le(bytes_.data() + pos_);
    pos_ += 4;
    return v;
}

std::uint64_t
BinaryReader::u64()
{
    if (!need(8, "u64"))
        return 0;
    const std::uint64_t v = decodeU64Le(bytes_.data() + pos_);
    pos_ += 8;
    return v;
}

double
BinaryReader::f64()
{
    return std::bit_cast<double>(u64());
}

std::string
BinaryReader::str()
{
    const std::uint64_t at = pos_;
    const std::uint64_t size = u64();
    if (!ok())
        return "";
    if (size > max_string_bytes || size > remaining()) {
        fail(format("string length %llu at offset %llu exceeds the "
                    "%llu bytes remaining",
                    static_cast<unsigned long long>(size),
                    static_cast<unsigned long long>(at),
                    static_cast<unsigned long long>(remaining())));
        return "";
    }
    std::string s(bytes_.data() + pos_, size);
    pos_ += size;
    return s;
}

std::uint64_t
BinaryReader::count(std::size_t element_size)
{
    CM_ASSERT(element_size >= 1);
    const std::uint64_t at = pos_;
    const std::uint64_t n = u64();
    if (!ok())
        return 0;
    if (n > remaining() / element_size) {
        fail(format("count field %llu at offset %llu exceeds the %llu "
                    "bytes remaining (>= %zu bytes per element)",
                    static_cast<unsigned long long>(n),
                    static_cast<unsigned long long>(at),
                    static_cast<unsigned long long>(remaining()),
                    element_size));
        return 0;
    }
    return n;
}

std::vector<double>
BinaryReader::f64Vec(std::uint64_t n)
{
    if (!ok())
        return {};
    if (n > remaining() / 8) {
        fail(format("f64 array of %llu values exceeds the %llu bytes "
                    "remaining",
                    static_cast<unsigned long long>(n),
                    static_cast<unsigned long long>(remaining())));
        return {};
    }
    std::vector<double> out;
    out.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
        out.push_back(f64());
    return out;
}

std::string
BinaryReader::beginSection()
{
    CM_ASSERT(!inSection_);
    const std::string name = str();
    const std::uint64_t at = pos_;
    const std::uint64_t size = u64();
    if (!ok())
        return "";
    if (size > remaining()) {
        fail(format("section '%s' declares %llu payload bytes at "
                    "offset %llu but %llu remain",
                    name.c_str(),
                    static_cast<unsigned long long>(size),
                    static_cast<unsigned long long>(at),
                    static_cast<unsigned long long>(remaining())));
        return "";
    }
    bound_ = pos_ + size;
    inSection_ = true;
    return name;
}

void
BinaryReader::endSection()
{
    CM_ASSERT(inSection_);
    if (ok())
        pos_ = bound_;
    bound_ = bytes_.size();
    inSection_ = false;
}

Status
BinaryReader::fail(const std::string &message)
{
    if (status_.ok()) {
        status_ = Status::dataError(
            format("offset %llu: %s",
                   static_cast<unsigned long long>(pos_),
                   message.c_str()));
    }
    return status_;
}

} // namespace cminer::util

/**
 * @file
 * Process-wide named metrics for the mining pipeline: monotonic
 * counters (`ingest.lines_dropped`), last-value gauges
 * (`eir.best_error_percent`), and duration histograms
 * (`threadpool.queue_wait_ms`).
 *
 * Naming scheme: `<component>.<measurement>`, lower snake case, with
 * duration histograms suffixed `_ms`. Metric handles are created on
 * first use under the registry mutex and updated lock-free afterwards
 * (plain atomics), so counters fed from thread-pool workers are
 * race-free and their totals deterministic.
 *
 * Collection is off by default: the `count`/`gaugeSet`/`recordDuration`
 * helpers reduce to one relaxed atomic load and a branch when no
 * registry is installed (same posture as util/trace.h), so instrumented
 * hot paths cost nothing measurable when metrics are disabled.
 */

#ifndef CMINER_UTIL_METRICS_H
#define CMINER_UTIL_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/trace.h"

namespace cminer::util {

/** Monotonic counter; add() is lock-free. */
class Counter
{
  public:
    void
    add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-written value; set() is lock-free. */
class Gauge
{
  public:
    void
    set(double value)
    {
        value_.store(value, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Duration histogram summary: count / total / min / max in
 * milliseconds. record() takes the histogram's own mutex — durations
 * are recorded at task granularity, far off any per-element hot loop.
 */
class DurationHistogram
{
  public:
    /** Aggregates of everything recorded so far. */
    struct Snapshot
    {
        std::uint64_t count = 0;
        double totalMs = 0.0;
        double minMs = 0.0;
        double maxMs = 0.0;

        double
        meanMs() const
        {
            return count > 0
                ? totalMs / static_cast<double>(count) : 0.0;
        }
    };

    void record(double ms);
    Snapshot snapshot() const;

  private:
    mutable std::mutex mutex_;
    Snapshot data_;
};

/**
 * Named metric registry. Handles are stable for the registry's lifetime;
 * lookup by name locks, updates through the handle do not.
 */
class MetricsRegistry
{
  public:
    /**
     * @param clock time source for duration helpers (nowMs); defaults
     *        to a steady wall clock. Tests inject a ManualClock so
     *        recorded durations are deterministic.
     */
    explicit MetricsRegistry(TraceClock *clock = nullptr);

    /** The counter named `name`, created zeroed on first use. */
    Counter &counter(const std::string &name);
    /** The gauge named `name`, created zeroed on first use. */
    Gauge &gauge(const std::string &name);
    /** The histogram named `name`, created empty on first use. */
    DurationHistogram &histogram(const std::string &name);

    /** Current time from the registry's clock, for duration metrics. */
    double nowMs();

    /** Counter (name, value) pairs in name order. */
    std::vector<std::pair<std::string, std::uint64_t>> counters() const;
    /** Gauge (name, value) pairs in name order. */
    std::vector<std::pair<std::string, double>> gauges() const;
    /** Histogram (name, snapshot) pairs in name order. */
    std::vector<std::pair<std::string, DurationHistogram::Snapshot>>
    histograms() const;

    /**
     * All metrics as one JSON object:
     * {"counters": {...}, "gauges": {...}, "histograms": {name:
     * {"count": n, "totalMs": t, "meanMs": m, "minMs": a, "maxMs": b}}}
     */
    std::string toJson() const;

  private:
    TraceClock *clock_;
    SteadyClock steadyClock_;
    mutable std::mutex mutex_;
    // Ordered maps so exports and snapshots are deterministic.
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<DurationHistogram>>
        histograms_;
};

/** The installed registry, or nullptr when metrics are off. */
MetricsRegistry *globalMetrics();

/**
 * Install (or with nullptr remove) the process-wide registry. The
 * caller keeps ownership. Does not return until every in-flight
 * MetricsAccess pin has been released, so after
 * `setGlobalMetrics(nullptr)` the previous registry is safe to
 * destroy even if a pool worker was mid-update when it was removed.
 */
void setGlobalMetrics(MetricsRegistry *registry);

/**
 * Pins the installed registry for the current scope. A bare
 * `globalMetrics()` load is only safe when the caller can prove the
 * registry outlives the use; code running on pool workers cannot (a
 * drained task may execute after the owner uninstalls the registry).
 * The pin count is what setGlobalMetrics waits on, closing that
 * window. Keep the scope tight — an uninstalling thread blocks until
 * every pin is released — and never hold one across task execution.
 */
class MetricsAccess
{
  public:
    MetricsAccess();
    ~MetricsAccess();

    MetricsAccess(const MetricsAccess &) = delete;
    MetricsAccess &operator=(const MetricsAccess &) = delete;

    /** The pinned registry, or nullptr when metrics are off. */
    MetricsRegistry *
    get() const
    {
        return registry_;
    }

    explicit
    operator bool() const
    {
        return registry_ != nullptr;
    }

  private:
    MetricsRegistry *registry_;
};

/** Add to a global counter; no-op when metrics are disabled. */
void count(const char *name, std::uint64_t n = 1);
/** Set a global gauge; no-op when metrics are disabled. */
void gaugeSet(const char *name, double value);
/** Record into a global histogram; no-op when metrics are disabled. */
void recordDuration(const char *name, double ms);

/**
 * A metrics file read back for `cminer stats`. Parses exactly the
 * format MetricsRegistry::toJson emits (flat name -> scalar maps plus
 * per-histogram summary objects).
 */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, DurationHistogram::Snapshot>>
        histograms;
};

/**
 * Parse a MetricsRegistry::toJson document.
 *
 * @return the snapshot, or a ParseError Status naming what broke
 */
StatusOr<MetricsSnapshot> parseMetricsJson(const std::string &text);

} // namespace cminer::util

#endif // CMINER_UTIL_METRICS_H

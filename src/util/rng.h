/**
 * @file
 * Deterministic pseudo-random number generation for the simulator and the
 * ML substrate.
 *
 * Everything in CounterMiner that draws randomness takes an explicit Rng so
 * that experiments are reproducible from a single seed. The generator is
 * xoshiro256** seeded through SplitMix64, which is fast, has a 2^256-1
 * period, and passes BigCrush — more than enough for simulation workloads.
 */

#ifndef CMINER_UTIL_RNG_H
#define CMINER_UTIL_RNG_H

#include <cstdint>
#include <vector>

namespace cminer::util {

/**
 * xoshiro256** pseudo-random generator with distribution helpers.
 *
 * Satisfies UniformRandomBitGenerator so it can also feed <random>
 * adaptors, but the built-in helpers below cover everything the library
 * needs without the standard library's cross-platform nondeterminism.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Seed the generator deterministically via SplitMix64 expansion. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Smallest value next() can return. */
    static constexpr result_type min() { return 0; }
    /** Largest value next() can return. */
    static constexpr result_type max() { return ~0ULL; }

    /** Next raw 64-bit draw. */
    result_type next();

    /** UniformRandomBitGenerator interface. */
    result_type operator()() { return next(); }

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). Requires lo <= hi. */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal draw (Box-Muller with caching). */
    double gaussian();

    /** Normal draw with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Exponential draw with the given rate (lambda > 0). */
    double exponential(double rate);

    /**
     * Generalized-extreme-value draw.
     *
     * Uses the inverse-CDF method; shape == 0 degenerates to Gumbel.
     *
     * @param location GEV location parameter (mu)
     * @param scale GEV scale parameter (sigma > 0)
     * @param shape GEV shape parameter (xi); > 0 gives a heavy right tail
     */
    double gev(double location, double scale, double shape);

    /** Gumbel draw (GEV with shape 0). */
    double gumbel(double location, double scale);

    /** Log-normal draw parameterized by the underlying normal. */
    double logNormal(double mu, double sigma);

    /** Poisson draw (Knuth for small means, normal approx for large). */
    std::int64_t poisson(double mean);

    /** Bernoulli draw with success probability p in [0, 1]. */
    bool bernoulli(double p);

    /** Fisher-Yates shuffle of a vector in place. */
    template <typename T>
    void
    shuffle(std::vector<T> &values)
    {
        for (std::size_t i = values.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(
                uniformInt(0, static_cast<std::int64_t>(i) - 1));
            std::swap(values[i - 1], values[j]);
        }
    }

    /**
     * Sample k distinct indices from [0, n) without replacement.
     *
     * @param n population size
     * @param k sample size; clamped to n
     */
    std::vector<std::size_t> sampleIndices(std::size_t n, std::size_t k);

    /** Derive an independent child generator (for parallel workloads). */
    Rng split();

  private:
    std::uint64_t state_[4];
    bool hasCachedGaussian_ = false;
    double cachedGaussian_ = 0.0;
};

} // namespace cminer::util

#endif // CMINER_UTIL_RNG_H

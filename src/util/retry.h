/**
 * @file
 * Retry-with-exponential-backoff for transient failures.
 *
 * Only Status codes of Transient are retried — a ParseError will not get
 * better by trying again. The clock is injectable so tests (and the
 * simulator, which has no real wall-clock dependencies) run instantly,
 * and jitter is drawn from an explicit Rng so the delay sequence is a
 * pure function of the seed.
 */

#ifndef CMINER_UTIL_RETRY_H
#define CMINER_UTIL_RETRY_H

#include <cstddef>
#include <functional>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace cminer::util {

/** Backoff policy knobs. */
struct RetryOptions
{
    /** Total attempts including the first (>= 1). */
    std::size_t maxAttempts = 3;
    /** Delay before the first retry. */
    double baseDelayMs = 10.0;
    /** Delay growth factor per retry. */
    double multiplier = 2.0;
    /** Delay ceiling. */
    double maxDelayMs = 1000.0;
    /**
     * Uniform jitter as a fraction of the delay: the slept delay is
     * `d * (1 - jitter/2 + jitter*u)` with u drawn from the Rng. 0
     * disables jitter (and leaves the Rng untouched).
     */
    double jitterFraction = 0.0;
    /**
     * Total backoff budget in milliseconds; 0 disables the budget.
     * When the next backoff sleep would push the cumulative delay past
     * this deadline, retrying stops *before* the sleep and the last
     * transient error is returned wrapped with the budget context —
     * a caller under deadline pressure (the serving layer's per-request
     * Deadline) never blocks past its budget inside a retry loop.
     */
    double deadlineMs = 0.0;
};

/**
 * The clock backoff sleeps on. Injectable so retries are testable and,
 * in the simulator, free.
 */
class RetryClock
{
  public:
    virtual ~RetryClock() = default;
    /** Sleep (or pretend to) for the given milliseconds. */
    virtual void sleepMs(double ms) = 0;
};

/**
 * A clock that records requested delays without sleeping — the default
 * for the simulated pipeline, and what tests inspect.
 */
class RecordingClock : public RetryClock
{
  public:
    void
    sleepMs(double ms) override
    {
        delays_.push_back(ms);
        totalMs_ += ms;
    }

    /** Every delay requested, in order. */
    const std::vector<double> &delays() const { return delays_; }
    /** Sum of all requested delays. */
    double totalMs() const { return totalMs_; }
    /** Forget recorded delays. */
    void
    reset()
    {
        delays_.clear();
        totalMs_ = 0.0;
    }

  private:
    std::vector<double> delays_;
    double totalMs_ = 0.0;
};

/** A clock that actually blocks the calling thread. */
class SleepingClock : public RetryClock
{
  public:
    void sleepMs(double ms) override;
};

/** What a retried operation ended with. */
struct RetryResult
{
    /** Final status: Ok, the first non-transient error, or the last
     * transient error when attempts or the deadline budget ran out
     * (budget exhaustion is recorded as message context; the code
     * stays Transient so quarantine policies treat it uniformly). */
    Status status;
    /** True when the deadline budget stopped the retry loop. */
    bool deadlineExhausted = false;
    /** Attempts actually made (>= 1). */
    std::size_t attempts = 0;
    /** Total backoff delay requested from the clock. */
    double totalDelayMs = 0.0;
};

/**
 * The backoff delay before retry number `retry` (0-based), jittered.
 * Exposed for tests; draws from `rng` only when jitter is enabled.
 */
double backoffDelayMs(const RetryOptions &options, std::size_t retry,
                      Rng &rng);

/**
 * Run `attempt` until it returns a non-transient status or attempts run
 * out, sleeping on `clock` with exponential backoff between attempts.
 *
 * @param options backoff policy
 * @param clock sleep implementation
 * @param rng jitter source (untouched when jitterFraction == 0)
 * @param attempt the operation; returns Ok, Transient, or a hard error
 */
RetryResult retryWithBackoff(const RetryOptions &options, RetryClock &clock,
                             Rng &rng,
                             const std::function<Status()> &attempt);

} // namespace cminer::util

#endif // CMINER_UTIL_RETRY_H

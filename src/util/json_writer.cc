#include "util/json_writer.h"

#include <cmath>

#include "util/error.h"
#include "util/string_util.h"

namespace cminer::util {

void
JsonWriter::separatorBeforeValue()
{
    if (stack_.empty())
        return;
    if (stack_.back() == Scope::Object) {
        CM_ASSERT(expectValue_); // object values need a preceding key
        expectValue_ = false;
        return;
    }
    if (hasItems_.back())
        out_ += ',';
    hasItems_.back() = true;
}

void
JsonWriter::beginObject()
{
    separatorBeforeValue();
    out_ += '{';
    stack_.push_back(Scope::Object);
    hasItems_.push_back(false);
}

void
JsonWriter::endObject()
{
    CM_ASSERT(!stack_.empty() && stack_.back() == Scope::Object);
    CM_ASSERT(!expectValue_);
    out_ += '}';
    stack_.pop_back();
    hasItems_.pop_back();
}

void
JsonWriter::beginArray()
{
    separatorBeforeValue();
    out_ += '[';
    stack_.push_back(Scope::Array);
    hasItems_.push_back(false);
}

void
JsonWriter::endArray()
{
    CM_ASSERT(!stack_.empty() && stack_.back() == Scope::Array);
    out_ += ']';
    stack_.pop_back();
    hasItems_.pop_back();
}

void
JsonWriter::key(const std::string &name)
{
    CM_ASSERT(!stack_.empty() && stack_.back() == Scope::Object);
    CM_ASSERT(!expectValue_);
    if (hasItems_.back())
        out_ += ',';
    hasItems_.back() = true;
    out_ += '"';
    out_ += escape(name);
    out_ += "\":";
    expectValue_ = true;
}

void
JsonWriter::value(const std::string &text)
{
    separatorBeforeValue();
    out_ += '"';
    out_ += escape(text);
    out_ += '"';
}

void
JsonWriter::value(const char *text)
{
    value(std::string(text));
}

void
JsonWriter::value(double number)
{
    separatorBeforeValue();
    if (!std::isfinite(number))
        out_ += "null";
    else
        out_ += format("%.12g", number);
}

void
JsonWriter::value(std::int64_t number)
{
    separatorBeforeValue();
    out_ += std::to_string(number);
}

void
JsonWriter::value(std::size_t number)
{
    separatorBeforeValue();
    out_ += std::to_string(number);
}

void
JsonWriter::value(bool flag)
{
    separatorBeforeValue();
    out_ += flag ? "true" : "false";
}

void
JsonWriter::null()
{
    separatorBeforeValue();
    out_ += "null";
}

std::string
JsonWriter::str() const
{
    CM_ASSERT(stack_.empty());
    return out_;
}

std::string
JsonWriter::escape(const std::string &text)
{
    std::string escaped;
    escaped.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"':
            escaped += "\\\"";
            break;
          case '\\':
            escaped += "\\\\";
            break;
          case '\n':
            escaped += "\\n";
            break;
          case '\r':
            escaped += "\\r";
            break;
          case '\t':
            escaped += "\\t";
            break;
          case '\b':
            escaped += "\\b";
            break;
          case '\f':
            escaped += "\\f";
            break;
          default:
            // Every remaining control character must be \u-escaped —
            // RFC 8259 forbids raw chars below 0x20 — and the format
            // argument must go through unsigned char so a negative
            // (high-bit) char can never smuggle a sign extension into
            // the hex digits.
            if (static_cast<unsigned char>(c) < 0x20)
                escaped += format(
                    "\\u%04x",
                    static_cast<unsigned>(
                        static_cast<unsigned char>(c)));
            else
                escaped += c;
        }
    }
    return escaped;
}

} // namespace cminer::util

#include "util/fault_injection.h"

#include <cmath>
#include <limits>

#include "util/error.h"
#include "util/string_util.h"

namespace cminer::util {

bool
FaultSpec::any() const
{
    return corruptRate > 0.0 || dropRate > 0.0 || duplicateRate > 0.0 ||
           nanRate > 0.0 || transientRate > 0.0 || tornFrameRate > 0.0 ||
           hangupRate > 0.0 || delayRate > 0.0;
}

std::string
FaultSpec::toString() const
{
    return format("corrupt=%g,drop=%g,dup=%g,nan=%g,transient=%g,"
                  "torn=%g,hangup=%g,delay=%g,delayms=%g,seed=%llu",
                  corruptRate, dropRate, duplicateRate, nanRate,
                  transientRate, tornFrameRate, hangupRate, delayRate,
                  delayMs,
                  static_cast<unsigned long long>(seed));
}

StatusOr<FaultSpec>
parseFaultSpec(const std::string &text)
{
    FaultSpec spec;
    if (trim(text).empty())
        return Status::parseError("fault spec is empty");
    for (const auto &part : split(text, ',')) {
        const auto kv = split(part, '=');
        if (kv.size() != 2)
            return Status::parseError("fault spec entry '" + part +
                                      "' is not key=value");
        const std::string key = trim(kv[0]);
        double value = 0.0;
        if (!parseDouble(kv[1], value))
            return Status::parseError("fault spec value '" + kv[1] +
                                      "' for key '" + key +
                                      "' is not a number");
        if (key == "seed") {
            if (value < 0.0)
                return Status::parseError("fault spec seed must be >= 0");
            spec.seed = static_cast<std::uint64_t>(value);
            continue;
        }
        if (key == "delayms") {
            if (value < 0.0)
                return Status::parseError(
                    "fault spec delayms must be >= 0");
            spec.delayMs = value;
            continue;
        }
        if (value < 0.0 || value > 1.0)
            return Status::parseError("fault rate '" + key +
                                      "' must be in [0, 1], got " + kv[1]);
        if (key == "corrupt")
            spec.corruptRate = value;
        else if (key == "drop")
            spec.dropRate = value;
        else if (key == "dup")
            spec.duplicateRate = value;
        else if (key == "nan")
            spec.nanRate = value;
        else if (key == "transient")
            spec.transientRate = value;
        else if (key == "torn")
            spec.tornFrameRate = value;
        else if (key == "hangup")
            spec.hangupRate = value;
        else if (key == "delay")
            spec.delayRate = value;
        else
            return Status::parseError(
                "unknown fault spec key '" + key +
                "' (known: corrupt drop dup nan transient torn hangup "
                "delay delayms seed)");
    }
    const double sum = spec.corruptRate + spec.dropRate +
                       spec.duplicateRate + spec.nanRate;
    if (sum > 1.0)
        return Status::parseError(
            "per-sample fault rates sum to more than 1");
    const double transport = spec.tornFrameRate + spec.hangupRate +
                             spec.delayRate;
    if (transport > 1.0)
        return Status::parseError(
            "per-frame transport fault rates sum to more than 1");
    return spec;
}

std::size_t
FaultCounts::total() const
{
    return corrupted + dropped + duplicated + nans + transients +
           tornFrames + hangups + delays;
}

std::string
FaultCounts::toString() const
{
    return format("corrupted=%zu dropped=%zu duplicated=%zu nans=%zu "
                  "transients=%zu torn_frames=%zu hangups=%zu "
                  "delays=%zu",
                  corrupted, dropped, duplicated, nans, transients,
                  tornFrames, hangups, delays);
}

FaultInjector::FaultInjector(FaultSpec spec)
    : spec_(spec), rng_(spec.seed)
{
}

FaultInjector::Damage
FaultInjector::drawDamage()
{
    // One draw per sample, resolved against cumulative rate bands so the
    // classes are mutually exclusive and the stream stays deterministic.
    const double u = rng_.uniform();
    double edge = spec_.corruptRate;
    if (u < edge)
        return Damage::Corrupt;
    edge += spec_.dropRate;
    if (u < edge)
        return Damage::Drop;
    edge += spec_.duplicateRate;
    if (u < edge)
        return Damage::Duplicate;
    edge += spec_.nanRate;
    if (u < edge)
        return Damage::Nan;
    return Damage::None;
}

std::string
FaultInjector::corruptPerfText(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    std::size_t start = 0;
    while (start < text.size()) {
        std::size_t end = text.find('\n', start);
        const bool had_newline = end != std::string::npos;
        if (!had_newline)
            end = text.size();
        const std::string line = text.substr(start, end - start);
        start = end + 1;

        const std::string trimmed = trim(line);
        if (trimmed.empty() || trimmed[0] == '#') {
            out += line;
            if (had_newline)
                out += '\n';
            continue;
        }

        switch (drawDamage()) {
          case Damage::Corrupt: {
            // Tear the line inside its first two fields, the way a
            // crashed writer leaves a half-flushed record: what remains
            // can never parse as a full time,count,event sample.
            std::size_t second_comma = line.find(',');
            if (second_comma != std::string::npos)
                second_comma = line.find(',', second_comma + 1);
            const std::size_t upper = second_comma != std::string::npos
                ? second_comma : std::min<std::size_t>(1, line.size());
            const std::size_t keep = upper == 0 ? 0
                : 1 + static_cast<std::size_t>(rng_.uniformInt(
                      0, static_cast<std::int64_t>(upper) - 1));
            out += line.substr(0, keep);
            if (had_newline)
                out += '\n';
            ++counts_.corrupted;
            break;
          }
          case Damage::Drop:
            ++counts_.dropped;
            break;
          case Damage::Duplicate:
            out += line;
            out += '\n';
            out += line;
            if (had_newline)
                out += '\n';
            ++counts_.duplicated;
            break;
          case Damage::Nan: {
            const auto fields = split(line, ',');
            if (fields.size() >= 3) {
                std::vector<std::string> mutated = fields;
                mutated[1] = "nan";
                out += join(mutated, ",");
            } else {
                out += "nan";
            }
            if (had_newline)
                out += '\n';
            ++counts_.nans;
            break;
          }
          case Damage::None:
            out += line;
            if (had_newline)
                out += '\n';
            break;
        }
    }
    return out;
}

void
FaultInjector::corruptSeries(std::vector<cminer::ts::TimeSeries> &series)
{
    for (auto &s : series) {
        auto &values = s.mutableValues();
        for (std::size_t i = 0; i < values.size(); ++i) {
            switch (drawDamage()) {
              case Damage::Corrupt:
                // An implausible duty-cycle blowup: far above any real
                // extrapolation, squarely in Eq.-6 outlier territory.
                values[i] = (std::fabs(values[i]) + 1.0) *
                            (1.0e4 + 1.0e4 * rng_.uniform());
                ++counts_.corrupted;
                break;
              case Damage::Drop:
                values[i] = 0.0; // the MLPX missing-value encoding
                ++counts_.dropped;
                break;
              case Damage::Duplicate:
                if (i > 0)
                    values[i] = values[i - 1];
                ++counts_.duplicated;
                break;
              case Damage::Nan:
                values[i] = std::numeric_limits<double>::quiet_NaN();
                ++counts_.nans;
                break;
              case Damage::None:
                break;
            }
        }
    }
}

TransportFault
FaultInjector::transportFault(std::size_t frame_bytes)
{
    TransportFault fault;
    if (spec_.tornFrameRate <= 0.0 && spec_.hangupRate <= 0.0 &&
        spec_.delayRate <= 0.0)
        return fault; // rate-free: leave the RNG stream untouched
    // One draw per frame against cumulative bands, mirroring
    // drawDamage() so transport damage is a pure function of
    // (spec, seed, call order).
    const double u = rng_.uniform();
    double edge = spec_.tornFrameRate;
    if (u < edge) {
        fault.kind = TransportFault::Kind::TornFrame;
        // Tear strictly inside the frame: at least the first byte is
        // lost, at least zero survive — the shapes a crashed peer or a
        // cut wire actually produces.
        fault.tearAt = frame_bytes == 0 ? 0
            : static_cast<std::size_t>(rng_.uniformInt(
                  0, static_cast<std::int64_t>(frame_bytes) - 1));
        ++counts_.tornFrames;
        return fault;
    }
    edge += spec_.hangupRate;
    if (u < edge) {
        fault.kind = TransportFault::Kind::Hangup;
        ++counts_.hangups;
        return fault;
    }
    edge += spec_.delayRate;
    if (u < edge) {
        fault.kind = TransportFault::Kind::Delay;
        fault.delayMs = spec_.delayMs;
        ++counts_.delays;
        return fault;
    }
    return fault;
}

Status
FaultInjector::transientFault(const char *site)
{
    CM_ASSERT(site != nullptr);
    if (spec_.transientRate > 0.0 && rng_.uniform() < spec_.transientRate) {
        ++counts_.transients;
        return Status::transient(std::string("injected transient fault at ") +
                                 site);
    }
    return Status::okStatus();
}

} // namespace cminer::util

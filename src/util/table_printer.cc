#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "util/error.h"
#include "util/string_util.h"

namespace cminer::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    CM_ASSERT(!headers_.empty());
}

void
TablePrinter::addRow(std::vector<std::string> row)
{
    CM_ASSERT(row.size() == headers_.size());
    rows_.push_back(std::move(row));
}

void
TablePrinter::addRow(const std::string &label,
                     const std::vector<double> &values, int decimals)
{
    std::vector<std::string> row;
    row.reserve(values.size() + 1);
    row.push_back(label);
    for (double v : values)
        row.push_back(formatDouble(v, decimals));
    addRow(std::move(row));
}

std::string
TablePrinter::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto render_row = [&](const std::vector<std::string> &row) {
        std::string line = "|";
        for (std::size_t c = 0; c < row.size(); ++c) {
            line += ' ';
            line += row[c];
            line += std::string(widths[c] - row[c].size(), ' ');
            line += " |";
        }
        return line + "\n";
    };

    std::string separator = "+";
    for (std::size_t width : widths)
        separator += std::string(width + 2, '-') + "+";
    separator += "\n";

    std::string text = separator + render_row(headers_) + separator;
    for (const auto &row : rows_)
        text += render_row(row);
    text += separator;
    return text;
}

void
TablePrinter::print() const
{
    std::fputs(render().c_str(), stdout);
}

void
printBanner(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

std::string
asciiBar(double percent, double full_scale, int width)
{
    if (full_scale <= 0.0)
        full_scale = 100.0;
    double fraction = percent / full_scale;
    fraction = std::clamp(fraction, 0.0, 1.0);
    const int filled = static_cast<int>(fraction * width + 0.5);
    return std::string(static_cast<std::size_t>(filled), '#') +
           std::string(static_cast<std::size_t>(width - filled), '.');
}

} // namespace cminer::util

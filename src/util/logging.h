/**
 * @file
 * Minimal leveled logging for library status messages.
 *
 * Follows the gem5 inform/warn convention: these functions report status to
 * the user and never stop execution. Output goes to stderr so bench tables
 * on stdout stay machine-parseable.
 */

#ifndef CMINER_UTIL_LOGGING_H
#define CMINER_UTIL_LOGGING_H

#include <string>

namespace cminer::util {

/** Severity of a log message. */
enum class LogLevel
{
    Debug,
    Info,
    Warn,
};

/**
 * Set the global minimum level that will be printed.
 *
 * Defaults to Warn so library consumers see nothing unless something is
 * off; benches and examples raise it to Info.
 */
void setLogLevel(LogLevel level);

/** Current global minimum level. */
LogLevel logLevel();

/** Emit a message at the given level (filtered by the global level). */
void logMessage(LogLevel level, const std::string &message);

/** Status message with no connotation of incorrect behaviour. */
void inform(const std::string &message);

/** Something may be wrong but execution can continue. */
void warn(const std::string &message);

/** Developer-facing detail, hidden by default. */
void debug(const std::string &message);

} // namespace cminer::util

#endif // CMINER_UTIL_LOGGING_H

#include "util/metrics.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <thread>

#include "util/error.h"
#include "util/json_writer.h"
#include "util/string_util.h"

namespace cminer::util {

void
DurationHistogram::record(double ms)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (data_.count == 0) {
        data_.minMs = ms;
        data_.maxMs = ms;
    } else {
        data_.minMs = std::min(data_.minMs, ms);
        data_.maxMs = std::max(data_.maxMs, ms);
    }
    ++data_.count;
    data_.totalMs += ms;
}

DurationHistogram::Snapshot
DurationHistogram::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return data_;
}

MetricsRegistry::MetricsRegistry(TraceClock *clock)
    : clock_(clock)
{
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

DurationHistogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<DurationHistogram>();
    return *slot;
}

double
MetricsRegistry::nowMs()
{
    return clock_ != nullptr ? clock_->nowMs() : steadyClock_.nowMs();
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto &[name, counter] : counters_)
        out.emplace_back(name, counter->value());
    return out;
}

std::vector<std::pair<std::string, double>>
MetricsRegistry::gauges() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, double>> out;
    out.reserve(gauges_.size());
    for (const auto &[name, gauge] : gauges_)
        out.emplace_back(name, gauge->value());
    return out;
}

std::vector<std::pair<std::string, DurationHistogram::Snapshot>>
MetricsRegistry::histograms() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, DurationHistogram::Snapshot>> out;
    out.reserve(histograms_.size());
    for (const auto &[name, histogram] : histograms_)
        out.emplace_back(name, histogram->snapshot());
    return out;
}

std::string
MetricsRegistry::toJson() const
{
    JsonWriter json;
    json.beginObject();

    json.key("counters");
    json.beginObject();
    for (const auto &[name, value] : counters()) {
        json.key(name);
        json.value(static_cast<std::size_t>(value));
    }
    json.endObject();

    json.key("gauges");
    json.beginObject();
    for (const auto &[name, value] : gauges()) {
        json.key(name);
        json.value(value);
    }
    json.endObject();

    json.key("histograms");
    json.beginObject();
    for (const auto &[name, data] : histograms()) {
        json.key(name);
        json.beginObject();
        json.key("count");
        json.value(static_cast<std::size_t>(data.count));
        json.key("totalMs");
        json.value(data.totalMs);
        json.key("meanMs");
        json.value(data.meanMs());
        json.key("minMs");
        json.value(data.minMs);
        json.key("maxMs");
        json.value(data.maxMs);
        json.endObject();
    }
    json.endObject();

    json.endObject();
    return json.str();
}

namespace {

std::atomic<MetricsRegistry *> global_metrics{nullptr};

/**
 * Rundown protection for the global registry. MetricsAccess raises the
 * pin count *before* loading the pointer; setGlobalMetrics publishes
 * the new pointer *before* waiting for the count to drain. Both sides
 * are seq_cst, so either the pinning thread observes the replacement
 * (and never touches the old registry) or the uninstalling thread
 * observes the pin (and waits for its release) — a late pool task can
 * therefore never dereference a destroyed registry.
 */
std::atomic<std::uint32_t> global_metrics_pins{0};

} // namespace

MetricsRegistry *
globalMetrics()
{
    return global_metrics.load(std::memory_order_relaxed);
}

void
setGlobalMetrics(MetricsRegistry *registry)
{
    global_metrics.store(registry, std::memory_order_seq_cst);
    while (global_metrics_pins.load(std::memory_order_seq_cst) != 0)
        std::this_thread::yield();
}

MetricsAccess::MetricsAccess()
{
    global_metrics_pins.fetch_add(1, std::memory_order_seq_cst);
    registry_ = global_metrics.load(std::memory_order_seq_cst);
}

MetricsAccess::~MetricsAccess()
{
    global_metrics_pins.fetch_sub(1, std::memory_order_seq_cst);
}

void
count(const char *name, std::uint64_t n)
{
    if (globalMetrics() == nullptr) // fast path: one relaxed load
        return;
    MetricsAccess access;
    if (access)
        access.get()->counter(name).add(n);
}

void
gaugeSet(const char *name, double value)
{
    if (globalMetrics() == nullptr) // fast path: one relaxed load
        return;
    MetricsAccess access;
    if (access)
        access.get()->gauge(name).set(value);
}

void
recordDuration(const char *name, double ms)
{
    if (globalMetrics() == nullptr) // fast path: one relaxed load
        return;
    MetricsAccess access;
    if (access)
        access.get()->histogram(name).record(ms);
}

// --- metrics JSON read-back (cminer stats) ------------------------------
//
// A deliberately small recursive parser for the document toJson emits:
// three fixed top-level sections whose members are either scalars
// (counters, gauges) or flat summary objects (histograms). Anything
// outside that shape is a ParseError — this is a read-back of our own
// format, not a general JSON library.

namespace {

/** Cursor over the JSON text with Status-returning primitives. */
struct MetricsParser
{
    const std::string &text;
    std::size_t pos = 0;

    void
    skipSpace()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    Status
    expect(char c)
    {
        skipSpace();
        if (pos >= text.size() || text[pos] != c) {
            return Status::parseError(format(
                "metrics json: expected '%c' at offset %zu", c, pos));
        }
        ++pos;
        return Status::okStatus();
    }

    bool
    tryConsume(char c)
    {
        skipSpace();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    StatusOr<std::string>
    parseString()
    {
        Status open = expect('"');
        if (!open.ok())
            return open;
        std::string out;
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c == '\\') {
                if (pos >= text.size())
                    break;
                const char esc = text[pos++];
                switch (esc) {
                  case 'n': c = '\n'; break;
                  case 'r': c = '\r'; break;
                  case 't': c = '\t'; break;
                  case 'u': {
                      // Metric names never need \u escapes; reject
                      // rather than mis-decode.
                      return Status::parseError(
                          "metrics json: \\u escape in metric name");
                  }
                  default: c = esc; break;
                }
            }
            out += c;
        }
        if (pos >= text.size())
            return Status::parseError(
                "metrics json: unterminated string");
        ++pos; // closing quote
        return out;
    }

    StatusOr<double>
    parseNumber()
    {
        skipSpace();
        const std::size_t start = pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '-' || text[pos] == '+' ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E'))
            ++pos;
        double value = 0.0;
        if (pos == start ||
            !parseDouble(text.substr(start, pos - start), value)) {
            return Status::parseError(format(
                "metrics json: bad number at offset %zu", start));
        }
        return value;
    }
};

} // namespace

StatusOr<MetricsSnapshot>
parseMetricsJson(const std::string &text)
{
    MetricsParser parser{text};
    MetricsSnapshot snapshot;

    Status status = parser.expect('{');
    if (!status.ok())
        return status;

    bool first_section = true;
    while (!parser.tryConsume('}')) {
        if (!first_section) {
            status = parser.expect(',');
            if (!status.ok())
                return status;
        }
        first_section = false;

        auto section = parser.parseString();
        if (!section.ok())
            return section.status();
        // Validate the section name up front, so an unknown-but-empty
        // section ({"surprise":{}}) is rejected too.
        if (section.value() != "counters" &&
            section.value() != "gauges" &&
            section.value() != "histograms") {
            return Status::parseError(
                "metrics json: unknown section '" + section.value() +
                "'");
        }
        status = parser.expect(':');
        if (!status.ok())
            return status;
        status = parser.expect('{');
        if (!status.ok())
            return status;

        bool first_member = true;
        while (!parser.tryConsume('}')) {
            if (!first_member) {
                status = parser.expect(',');
                if (!status.ok())
                    return status;
            }
            first_member = false;

            auto name = parser.parseString();
            if (!name.ok())
                return name.status();
            status = parser.expect(':');
            if (!status.ok())
                return status;

            if (section.value() == "counters") {
                auto value = parser.parseNumber();
                if (!value.ok())
                    return value.status();
                snapshot.counters.emplace_back(
                    name.value(),
                    static_cast<std::uint64_t>(value.value()));
            } else if (section.value() == "gauges") {
                auto value = parser.parseNumber();
                if (!value.ok())
                    return value.status();
                snapshot.gauges.emplace_back(name.value(),
                                             value.value());
            } else if (section.value() == "histograms") {
                status = parser.expect('{');
                if (!status.ok())
                    return status;
                DurationHistogram::Snapshot data;
                bool first_field = true;
                while (!parser.tryConsume('}')) {
                    if (!first_field) {
                        status = parser.expect(',');
                        if (!status.ok())
                            return status;
                    }
                    first_field = false;
                    auto field = parser.parseString();
                    if (!field.ok())
                        return field.status();
                    status = parser.expect(':');
                    if (!status.ok())
                        return status;
                    auto value = parser.parseNumber();
                    if (!value.ok())
                        return value.status();
                    if (field.value() == "count")
                        data.count = static_cast<std::uint64_t>(
                            value.value());
                    else if (field.value() == "totalMs")
                        data.totalMs = value.value();
                    else if (field.value() == "minMs")
                        data.minMs = value.value();
                    else if (field.value() == "maxMs")
                        data.maxMs = value.value();
                    else if (field.value() != "meanMs")
                        return Status::parseError(
                            "metrics json: unknown histogram field '" +
                            field.value() + "'");
                }
                snapshot.histograms.emplace_back(name.value(), data);
            } else {
                return Status::parseError(
                    "metrics json: unknown section '" +
                    section.value() + "'");
            }
        }
    }
    parser.skipSpace();
    if (parser.pos != text.size()) {
        return Status::parseError(
            "metrics json: trailing content after document");
    }
    return snapshot;
}

} // namespace cminer::util

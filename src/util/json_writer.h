/**
 * @file
 * A minimal streaming JSON writer (objects, arrays, scalars) for report
 * export. Write-only by design — the one place the library reads JSON
 * back (`util::parseMetricsJson` for `cminer stats`) parses only the
 * fixed format its own registry emits.
 */

#ifndef CMINER_UTIL_JSON_WRITER_H
#define CMINER_UTIL_JSON_WRITER_H

#include <string>
#include <vector>

namespace cminer::util {

/**
 * Builds a JSON document incrementally.
 *
 * Usage:
 *   JsonWriter json;
 *   json.beginObject();
 *   json.key("benchmark"); json.value("wordcount");
 *   json.key("events"); json.beginArray();
 *   json.value(1.5); json.value("x");
 *   json.endArray();
 *   json.endObject();
 *   std::string text = json.str();
 *
 * Nesting is validated with internal assertions; escaping follows RFC
 * 8259 for the characters that require it.
 */
class JsonWriter
{
  public:
    /** Begin an object ({). */
    void beginObject();
    /** End the current object (}). */
    void endObject();
    /** Begin an array ([). */
    void beginArray();
    /** End the current array (]). */
    void endArray();

    /** Emit an object key; must be inside an object. */
    void key(const std::string &name);

    /** String value. */
    void value(const std::string &text);
    /** C-string value (disambiguates from bool). */
    void value(const char *text);
    /** Numeric value; non-finite numbers emit null. */
    void value(double number);
    /** Integer value. */
    void value(std::int64_t number);
    /** Unsigned value. */
    void value(std::size_t number);
    /** Boolean value. */
    void value(bool flag);
    /** Null value. */
    void null();

    /** The finished document; all scopes must be closed. */
    std::string str() const;

    /** Escape a string per JSON rules (exposed for tests). */
    static std::string escape(const std::string &text);

  private:
    enum class Scope
    {
        Object,
        Array,
    };

    void separatorBeforeValue();

    std::string out_;
    std::vector<Scope> stack_;
    std::vector<bool> hasItems_;
    bool expectValue_ = false; ///< a key was just written
};

} // namespace cminer::util

#endif // CMINER_UTIL_JSON_WRITER_H

#include "util/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/error.h"
#include "util/string_util.h"

namespace cminer::util {

void
SleepingClock::sleepMs(double ms)
{
    if (ms <= 0.0)
        return;
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(ms));
}

double
backoffDelayMs(const RetryOptions &options, std::size_t retry, Rng &rng)
{
    double delay = options.baseDelayMs;
    for (std::size_t r = 0; r < retry; ++r)
        delay *= options.multiplier;
    delay = std::min(delay, options.maxDelayMs);
    if (options.jitterFraction > 0.0) {
        const double u = rng.uniform();
        delay *= 1.0 - options.jitterFraction / 2.0 +
                 options.jitterFraction * u;
    }
    return delay;
}

RetryResult
retryWithBackoff(const RetryOptions &options, RetryClock &clock, Rng &rng,
                 const std::function<Status()> &attempt)
{
    CM_ASSERT(options.maxAttempts >= 1);
    CM_ASSERT(attempt != nullptr);
    RetryResult result;
    for (std::size_t a = 0; a < options.maxAttempts; ++a) {
        ++result.attempts;
        result.status = attempt();
        if (!result.status.isTransient())
            return result;
        if (a + 1 == options.maxAttempts)
            break; // out of attempts: report the transient failure
        const double delay = backoffDelayMs(options, a, rng);
        // Deadline budget: sleeping past it would hold a deadlined
        // caller hostage to a dependency that may never recover, so the
        // loop stops *before* the offending sleep and reports the last
        // transient error with the budget spelled out.
        if (options.deadlineMs > 0.0 &&
            result.totalDelayMs + delay > options.deadlineMs) {
            result.deadlineExhausted = true;
            result.status = result.status.withContext(format(
                "retry deadline %gms exhausted after %zu attempts",
                options.deadlineMs, result.attempts));
            return result;
        }
        clock.sleepMs(delay);
        result.totalDelayMs += delay;
    }
    return result;
}

} // namespace cminer::util

/**
 * @file
 * Console table formatting for the bench harness.
 *
 * Every figure/table bench prints its result through TablePrinter so the
 * regenerated paper rows have a uniform, diffable layout.
 */

#ifndef CMINER_UTIL_TABLE_PRINTER_H
#define CMINER_UTIL_TABLE_PRINTER_H

#include <string>
#include <vector>

namespace cminer::util {

/**
 * Accumulates rows and renders an aligned ASCII table.
 */
class TablePrinter
{
  public:
    /** Create a table with the given column headers. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append a row; must have the same width as the header. */
    void addRow(std::vector<std::string> row);

    /** Convenience: first cell is a label, the rest formatted doubles. */
    void addRow(const std::string &label, const std::vector<double> &values,
                int decimals = 2);

    /** Render the full table. */
    std::string render() const;

    /** Render to stdout. */
    void print() const;

    /** Number of data rows so far. */
    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Print a section banner so multi-table bench output reads like the paper
 * ("=== Figure 6: ... ===").
 */
void printBanner(const std::string &title);

/** Render a 0..100 value as a short ASCII bar for figure-style output. */
std::string asciiBar(double percent, double full_scale = 100.0,
                     int width = 40);

} // namespace cminer::util

#endif // CMINER_UTIL_TABLE_PRINTER_H

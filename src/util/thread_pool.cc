#include "util/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>

#include "util/error.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace cminer::util {

namespace {

/**
 * Wrap a task with per-task metrics (queue wait + run time + count)
 * when a metrics registry is installed at enqueue time. Returns the
 * task untouched when metrics are off, so the disabled path adds one
 * atomic load per enqueue and nothing per element.
 *
 * At execution time the registry is re-resolved through MetricsAccess:
 * parallelFor returns once every *chunk* is done, not every helper
 * task, so a drained helper (or the helper that ran the final chunk
 * and woke the caller) can still be in this wrapper after the owner
 * uninstalls and destroys the registry. The access pin makes that
 * safe — setGlobalMetrics waits for it — and a task that drains after
 * uninstall simply runs unrecorded. The pin is never held across
 * task() itself, so uninstalling never blocks on a long task.
 */
std::function<void()>
instrumentTask(std::function<void()> task)
{
    MetricsRegistry *metrics = globalMetrics();
    if (metrics == nullptr)
        return task;
    const double enqueued_ms = metrics->nowMs();
    return [task = std::move(task), enqueued_ms] {
        double start_ms = 0.0;
        bool recorded = false;
        {
            MetricsAccess access;
            if (MetricsRegistry *m = access.get()) {
                start_ms = m->nowMs();
                m->counter("threadpool.tasks").add(1);
                m->histogram("threadpool.queue_wait_ms")
                    .record(start_ms - enqueued_ms);
                recorded = true;
            }
        }
        task();
        if (recorded) {
            MetricsAccess access;
            if (MetricsRegistry *m = access.get())
                m->histogram("threadpool.run_ms")
                    .record(m->nowMs() - start_ms);
        }
    };
}

/** Set while the current thread is executing inside a pool worker. */
thread_local bool inside_worker = false;

/** Explicit override from Parallelism::setThreadCount; 0 = automatic. */
std::atomic<std::size_t> thread_override{0};

std::size_t
envThreadCount()
{
    const char *env = std::getenv("CMINER_THREADS");
    if (env == nullptr || *env == '\0')
        return 0;
    double parsed = 0.0;
    if (!parseDouble(env, parsed) || parsed < 1.0)
        return 0; // unparsable or nonsense: fall through to hardware
    return static_cast<std::size_t>(parsed);
}

} // namespace

std::size_t
Parallelism::threadCount()
{
    const std::size_t override = thread_override.load();
    if (override > 0)
        return override;
    const std::size_t env = envThreadCount();
    if (env > 0)
        return env;
    const unsigned hardware = std::thread::hardware_concurrency();
    return hardware > 0 ? hardware : 1;
}

void
Parallelism::setThreadCount(std::size_t count)
{
    thread_override.store(count);
}

ThreadPool::ThreadPool(std::size_t workers)
{
    workers_.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    inside_worker = true;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) // stopping_ and drained
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    CM_ASSERT(task != nullptr);
    auto packaged = std::make_shared<std::packaged_task<void()>>(
        std::move(task));
    std::future<void> future = packaged->get_future();
    if (workers_.empty()) {
        (*packaged)();
        return future;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        CM_ASSERT(!stopping_);
        queue_.emplace_back(
            instrumentTask([packaged] { (*packaged)(); }));
    }
    wake_.notify_one();
    return future;
}

std::optional<std::future<void>>
ThreadPool::trySubmit(std::function<void()> task, std::size_t max_queued)
{
    CM_ASSERT(task != nullptr);
    auto packaged = std::make_shared<std::packaged_task<void()>>(
        std::move(task));
    std::future<void> future = packaged->get_future();
    if (workers_.empty()) {
        // No workers: the caller is the pool's only execution resource,
        // exactly like submit(). There is no queue to overflow.
        (*packaged)();
        return future;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        CM_ASSERT(!stopping_);
        if (queue_.size() >= max_queued)
            return std::nullopt; // shed: never block the caller
        queue_.emplace_back(
            instrumentTask([packaged] { (*packaged)(); }));
    }
    wake_.notify_one();
    return future;
}

std::size_t
ThreadPool::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

void
ThreadPool::parallelFor(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)> &fn)
{
    CM_ASSERT(grain >= 1);
    if (begin >= end)
        return;
    const std::size_t count = end - begin;
    const std::size_t chunks = (count + grain - 1) / grain;

    // Serial path: identical chunk boundaries, plain loop, no pool.
    // Also taken for nested calls (a worker running fn calls
    // parallelFor again): serializing is always safe and deadlock-free.
    if (chunks == 1 || workers_.empty() || insideWorker()) {
        for (std::size_t c = 0; c < chunks; ++c) {
            const std::size_t lo = begin + c * grain;
            fn(lo, std::min(lo + grain, end));
        }
        return;
    }

    // Shared loop state. Chunk boundaries depend only on (begin, end,
    // grain); the cursor only decides which thread runs which chunk.
    struct Loop
    {
        std::atomic<std::size_t> cursor{0};
        std::atomic<std::size_t> finished{0};
        /** Queued helper tasks that have fully completed. */
        std::atomic<std::size_t> helpersDone{0};
        /** Lowest chunk index that threw; SIZE_MAX while none has. */
        std::atomic<std::size_t> errorChunk{SIZE_MAX};
        std::exception_ptr error;
        std::mutex mutex;
        std::condition_variable done;
    };
    auto loop = std::make_shared<Loop>();

    // Exception propagation is deterministic: the rethrown exception is
    // always the one from the *lowest-index* throwing chunk, for any
    // thread count or claim order. A chunk is skipped only when a
    // lower-index chunk has already failed — so every chunk below the
    // final errorChunk provably ran clean, and a chunk above it can
    // never replace the recorded exception.
    auto runner = [loop, begin, end, grain, chunks, &fn] {
        std::size_t c;
        while ((c = loop->cursor.fetch_add(1)) < chunks) {
            if (c < loop->errorChunk.load()) {
                try {
                    const std::size_t lo = begin + c * grain;
                    fn(lo, std::min(lo + grain, end));
                } catch (...) {
                    std::lock_guard<std::mutex> lock(loop->mutex);
                    if (c < loop->errorChunk.load()) {
                        loop->error = std::current_exception();
                        loop->errorChunk.store(c);
                    }
                }
            }
            if (loop->finished.fetch_add(1) + 1 == chunks) {
                std::lock_guard<std::mutex> lock(loop->mutex);
                loop->done.notify_all();
            }
        }
    };

    // Helpers claim chunks from the shared cursor; the caller is one of
    // them, so the pool never waits on an idle caller. Each queued
    // helper signals completion of its whole task — including any
    // metrics instrumentation around the runner — so the join below is
    // a true fork-join: nothing enqueued here outlives this call. That
    // keeps the by-reference fn capture sound and makes per-task
    // counters reconcile exactly the moment parallelFor returns.
    const std::size_t helpers = std::min(workerCount(), chunks - 1);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        CM_ASSERT(!stopping_);
        for (std::size_t h = 0; h < helpers; ++h) {
            queue_.emplace_back(
                [loop, helper = instrumentTask(runner)] {
                    helper();
                    // Notify while holding the mutex: the caller can
                    // only leave its wait through this mutex, so the
                    // Loop (condvar included) cannot be destroyed
                    // while the notify is still in flight.
                    std::lock_guard<std::mutex> done_lock(loop->mutex);
                    loop->helpersDone.fetch_add(1);
                    loop->done.notify_all();
                });
        }
    }
    if (helpers == 1)
        wake_.notify_one();
    else
        wake_.notify_all();

    // The caller's own share is a task too: zero queue wait, same
    // counting, so `threadpool.tasks` covers every pool execution.
    instrumentTask(runner)();

    // Take the exception out under the lock: the last Loop reference
    // may be dropped by a worker, and the exception object must be
    // destroyed on this thread — the caller may still be inspecting
    // the rethrown exception when the worker-side release runs.
    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(loop->mutex);
        loop->done.wait(lock, [&loop, chunks, helpers] {
            return loop->finished.load() == chunks &&
                   loop->helpersDone.load() == helpers;
        });
        error = std::move(loop->error);
    }
    loop.reset();
    if (error)
        std::rethrow_exception(error);
}

bool
ThreadPool::insideWorker()
{
    return inside_worker;
}

namespace {

std::mutex global_pool_mutex;
std::unique_ptr<ThreadPool> global_pool;
std::size_t global_pool_workers = 0;

} // namespace

ThreadPool &
globalPool()
{
    const std::size_t wanted = Parallelism::threadCount() - 1;
    std::lock_guard<std::mutex> lock(global_pool_mutex);
    if (!global_pool || global_pool_workers != wanted) {
        global_pool.reset(); // join the old workers before respawning
        global_pool = std::make_unique<ThreadPool>(wanted);
        global_pool_workers = wanted;
    }
    return *global_pool;
}

void
parallelFor(std::size_t begin, std::size_t end, std::size_t grain,
            const std::function<void(std::size_t, std::size_t)> &fn)
{
    // Nested or single-threaded: skip the pool lookup entirely so the
    // serial path stays allocation- and lock-free.
    if (ThreadPool::insideWorker() || Parallelism::threadCount() <= 1) {
        CM_ASSERT(grain >= 1);
        for (std::size_t lo = begin; lo < end; lo += grain)
            fn(lo, std::min(lo + grain, end));
        return;
    }
    globalPool().parallelFor(begin, end, grain, fn);
}

} // namespace cminer::util

/**
 * @file
 * RAII phase spans for pipeline observability.
 *
 * A Span marks the lifetime of one pipeline stage (collect, clean, fit,
 * ...). Spans nest through a per-thread stack, so the collected records
 * form a tree, and carry optional numeric/text attributes (event count,
 * CV error, benchmark name). The clock is injectable — the same pattern
 * as util/retry.h — so tests assert exact durations with a ManualClock
 * and never touch the wall clock.
 *
 * Tracing is off by default: Span construction reduces to one relaxed
 * atomic load of the global tracer pointer and a branch, so instrumented
 * code pays nothing measurable when no tracer is installed (verified by
 * BM_SpanOverhead in bench/perf_kernels.cc).
 */

#ifndef CMINER_UTIL_TRACE_H
#define CMINER_UTIL_TRACE_H

#include <cstddef>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace cminer::util {

/** Monotonic time source for spans and duration metrics. */
class TraceClock
{
  public:
    virtual ~TraceClock() = default;
    /** Milliseconds since an arbitrary fixed origin. */
    virtual double nowMs() = 0;
};

/** Real monotonic clock (std::chrono::steady_clock). */
class SteadyClock : public TraceClock
{
  public:
    double nowMs() override;
};

/**
 * A clock tests drive by hand; time only moves when advanced, so span
 * durations are exact and wall-clock-free.
 */
class ManualClock : public TraceClock
{
  public:
    double nowMs() override { return now_; }
    /** Move time forward by `ms`. */
    void advance(double ms) { now_ += ms; }

  private:
    double now_ = 0.0;
};

/** One finished (or still open) span as the tracer recorded it. */
struct SpanRecord
{
    std::string name;
    /** 1-based id; 0 is reserved for "no span". */
    std::size_t id = 0;
    /** Id of the enclosing span on the same thread; 0 = root. */
    std::size_t parent = 0;
    double startMs = 0.0;
    double endMs = 0.0;
    /** True once the owning Span was destroyed. */
    bool closed = false;
    /** Numeric attributes (e.g. {"events", 226}). */
    std::vector<std::pair<std::string, double>> numbers;
    /** Text attributes (e.g. {"benchmark", "sort"}). */
    std::vector<std::pair<std::string, std::string>> labels;

    double durationMs() const { return endMs - startMs; }
};

/**
 * Collects spans from any thread. Begin/end are mutex-protected; span
 * ids are assigned in begin order, so exports are deterministic under a
 * ManualClock.
 */
class Tracer
{
  public:
    explicit Tracer(TraceClock &clock)
        : clock_(clock)
    {
    }

    /** Open a span; returns its id. Parent = the thread's current span. */
    std::size_t beginSpan(std::string name);

    /** Close span `id`, folding in the attributes gathered by the Span. */
    void endSpan(std::size_t id,
                 std::vector<std::pair<std::string, double>> numbers,
                 std::vector<std::pair<std::string, std::string>> labels);

    /** Snapshot of every span recorded so far, in begin order. */
    std::vector<SpanRecord> spans() const;

    /**
     * The span tree as JSON: {"spans": [...]} with children nested under
     * their parents, each node carrying name/start/end/duration/attrs.
     */
    std::string toJson() const;

    /** The clock this tracer stamps spans with. */
    TraceClock &clock() { return clock_; }

  private:
    TraceClock &clock_;
    mutable std::mutex mutex_;
    std::vector<SpanRecord> spans_;
};

/** The installed tracer, or nullptr when tracing is off. */
Tracer *globalTracer();

/**
 * Install (or with nullptr remove) the process-wide tracer. The caller
 * keeps ownership and must outlive any Span opened while installed.
 */
void setGlobalTracer(Tracer *tracer);

/**
 * RAII span handle. Opens a span on the global tracer at construction,
 * closes it at destruction; inert (a pointer load and a branch) when no
 * tracer is installed.
 */
class Span
{
  public:
    explicit Span(const char *name);
    ~Span();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** Attach a numeric attribute, exported when the span closes. */
    void number(const char *key, double value);
    /** Attach a text attribute, exported when the span closes. */
    void label(const char *key, const std::string &value);

    /** True when a tracer was installed at construction. */
    bool active() const { return tracer_ != nullptr; }

  private:
    Tracer *tracer_;
    std::size_t id_ = 0;
    std::vector<std::pair<std::string, double>> numbers_;
    std::vector<std::pair<std::string, std::string>> labels_;
};

} // namespace cminer::util

#endif // CMINER_UTIL_TRACE_H

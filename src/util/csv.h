/**
 * @file
 * Minimal CSV reader/writer used by the store's text export and the bench
 * harness. Handles quoting of fields that contain commas, quotes, or
 * newlines (RFC 4180 subset).
 */

#ifndef CMINER_UTIL_CSV_H
#define CMINER_UTIL_CSV_H

#include <string>
#include <vector>

#include "util/status.h"

namespace cminer::util {

/** A parsed CSV document: a header row plus data rows of strings. */
struct CsvDocument
{
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;

    /** Index of a header column, or npos when absent. */
    std::size_t columnIndex(const std::string &name) const;

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/** Streaming CSV writer. */
class CsvWriter
{
  public:
    /**
     * Open a file for writing; throws FatalError when the file cannot be
     * created.
     */
    explicit CsvWriter(const std::string &path);

    /** Write one row, quoting fields as needed. */
    void writeRow(const std::vector<std::string> &fields);

    /** Convenience: write a row of doubles at full precision. */
    void writeNumericRow(const std::vector<double> &values);

    /** Flush and close; called by the destructor as well. */
    void close();

    ~CsvWriter();

    CsvWriter(const CsvWriter &) = delete;
    CsvWriter &operator=(const CsvWriter &) = delete;

  private:
    std::string path_;
    std::string buffer_;
    bool closed_ = false;
};

/** Parsing policy for CSV text. */
struct CsvParseOptions
{
    /**
     * Lenient mode skips rows whose field count disagrees with the
     * header (counting them in the report) instead of rejecting the
     * document. Strict mode (the default) rejects with the offending
     * line number and both widths.
     */
    bool lenient = false;
};

/** What a lenient CSV parse had to tolerate. */
struct CsvParseReport
{
    std::size_t totalRows = 0;    ///< data rows seen (header excluded)
    std::size_t skippedRows = 0;  ///< rows dropped for a width mismatch
};

/**
 * Parse CSV text with a header row.
 *
 * @param text document contents
 * @param options parsing policy
 * @param report optional damage accounting (filled in either mode)
 * @return the document, or a ParseError naming the first bad line in
 *         strict mode / a DataError when no header row exists
 */
StatusOr<CsvDocument> parseCsv(const std::string &text,
                               const CsvParseOptions &options = {},
                               CsvParseReport *report = nullptr);

/**
 * Parse a CSV file with a header row (strict).
 *
 * @param path file to read
 * @return parsed document
 * @throws FatalError when the file is missing or malformed
 */
CsvDocument readCsv(const std::string &path);

/** Quote a single field per RFC 4180 when necessary. */
std::string csvQuote(const std::string &field);

/** Parse one CSV line into fields (handles quoted fields). */
std::vector<std::string> parseCsvLine(const std::string &line);

} // namespace cminer::util

#endif // CMINER_UTIL_CSV_H

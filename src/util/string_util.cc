#include "util/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace cminer::util {

std::vector<std::string>
split(std::string_view text, char delimiter)
{
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (true) {
        std::size_t pos = text.find(delimiter, start);
        if (pos == std::string_view::npos) {
            fields.emplace_back(text.substr(start));
            break;
        }
        fields.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
    return fields;
}

std::string
join(const std::vector<std::string> &parts, std::string_view separator)
{
    std::string joined;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            joined += separator;
        joined += parts[i];
    }
    return joined;
}

std::string
trim(std::string_view text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return std::string(text.substr(begin, end - begin));
}

std::string
toLower(std::string_view text)
{
    std::string lowered(text);
    for (char &c : lowered)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return lowered;
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (needed < 0) {
        va_end(args_copy);
        return {};
    }
    std::string buffer(static_cast<std::size_t>(needed) + 1, '\0');
    std::vsnprintf(buffer.data(), buffer.size(), fmt, args_copy);
    va_end(args_copy);
    buffer.resize(static_cast<std::size_t>(needed));
    return buffer;
}

std::string
formatDouble(double value, int decimals)
{
    return format("%.*f", decimals, value);
}

bool
parseDouble(std::string_view text, double &out)
{
    const std::string field = trim(text);
    if (field.empty())
        return false;
    char *end = nullptr;
    const double value = std::strtod(field.c_str(), &end);
    if (end != field.c_str() + field.size())
        return false;
    out = value;
    return true;
}

} // namespace cminer::util

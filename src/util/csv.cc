#include "util/csv.h"

#include <fstream>
#include <sstream>

#include "util/error.h"
#include "util/string_util.h"

namespace cminer::util {

std::size_t
CsvDocument::columnIndex(const std::string &name) const
{
    for (std::size_t i = 0; i < header.size(); ++i) {
        if (header[i] == name)
            return i;
    }
    return npos;
}

CsvWriter::CsvWriter(const std::string &path)
    : path_(path)
{
    std::ofstream probe(path_, std::ios::trunc);
    if (!probe)
        fatal("cannot open CSV file for writing: " + path_);
}

void
CsvWriter::writeRow(const std::vector<std::string> &fields)
{
    CM_ASSERT(!closed_);
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i > 0)
            buffer_ += ',';
        buffer_ += csvQuote(fields[i]);
    }
    buffer_ += '\n';
}

void
CsvWriter::writeNumericRow(const std::vector<double> &values)
{
    std::vector<std::string> fields;
    fields.reserve(values.size());
    for (double v : values)
        fields.push_back(format("%.17g", v));
    writeRow(fields);
}

void
CsvWriter::close()
{
    if (closed_)
        return;
    std::ofstream out(path_, std::ios::trunc);
    if (!out)
        fatal("cannot write CSV file: " + path_);
    out << buffer_;
    closed_ = true;
}

CsvWriter::~CsvWriter()
{
    close();
}

std::string
csvQuote(const std::string &field)
{
    const bool needs_quoting =
        field.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quoting)
        return field;
    std::string quoted = "\"";
    for (char c : field) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

std::vector<std::string>
parseCsvLine(const std::string &line)
{
    std::vector<std::string> fields;
    std::string current;
    bool in_quotes = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (in_quotes) {
            if (c == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    current += '"';
                    ++i;
                } else {
                    in_quotes = false;
                }
            } else {
                current += c;
            }
        } else if (c == '"') {
            in_quotes = true;
        } else if (c == ',') {
            fields.push_back(current);
            current.clear();
        } else if (c != '\r') {
            current += c;
        }
    }
    fields.push_back(current);
    return fields;
}

StatusOr<CsvDocument>
parseCsv(const std::string &text, const CsvParseOptions &options,
         CsvParseReport *report)
{
    CsvDocument doc;
    CsvParseReport local;
    std::istringstream in(text);
    std::string line;
    std::size_t line_no = 0;
    bool first = true;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        auto fields = parseCsvLine(line);
        if (first) {
            doc.header = std::move(fields);
            first = false;
            continue;
        }
        ++local.totalRows;
        if (fields.size() != doc.header.size()) {
            if (!options.lenient) {
                return Status::parseError(format(
                    "csv: line %zu: row has %zu fields, header has %zu",
                    line_no, fields.size(), doc.header.size()));
            }
            ++local.skippedRows;
            continue;
        }
        doc.rows.push_back(std::move(fields));
    }
    if (report != nullptr)
        *report = local;
    if (first)
        return Status::dataError("csv: no header row");
    return doc;
}

CsvDocument
readCsv(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open CSV file for reading: " + path);
    std::ostringstream text;
    text << in.rdbuf();
    auto result = parseCsv(text.str());
    if (!result.ok())
        result.status().withContext("reading " + path).throwIfError();
    return std::move(result).value();
}

} // namespace cminer::util

#include "workload/synthetic_load.h"

#include <algorithm>
#include <numeric>
#include <utility>

namespace cminer::workload {

namespace {

/** splitmix64: small, fast, and good enough to shuffle with. */
std::uint64_t
nextRand(std::uint64_t &state)
{
    state += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

constexpr std::uint64_t load_seed = 0xC0117EC7ED10ADULL;

} // namespace

SyntheticLoad::SyntheticLoad(std::size_t working_set_bytes)
{
    const std::size_t slots =
        std::max<std::size_t>(64, working_set_bytes / sizeof(std::uint32_t));
    // A single random cycle: successor[i] is a permutation with one
    // orbit, so the chase visits the whole working set in cache-hostile
    // order and can never get stuck in a short loop.
    std::vector<std::uint32_t> order(slots);
    std::iota(order.begin(), order.end(), 0u);
    std::uint64_t state = load_seed;
    for (std::size_t i = slots - 1; i > 0; --i) {
        const std::size_t j = nextRand(state) % (i + 1);
        std::swap(order[i], order[j]);
    }
    chase_.assign(slots, 0);
    for (std::size_t i = 0; i + 1 < slots; ++i)
        chase_[order[i]] = order[i + 1];
    chase_[order[slots - 1]] = order[0];

    branchData_.resize(4096);
    for (auto &b : branchData_)
        b = static_cast<std::uint8_t>(nextRand(state));
}

std::uint64_t
SyntheticLoad::arithmeticChunk()
{
    std::uint64_t acc = checksum_ | 1;
    for (int i = 0; i < 20000; ++i) {
        acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
        acc ^= acc >> 29;
    }
    return acc;
}

std::uint64_t
SyntheticLoad::chaseChunk()
{
    std::uint32_t pos = chasePos_;
    std::uint64_t acc = 0;
    for (int i = 0; i < 4000; ++i) {
        pos = chase_[pos];
        acc += pos;
    }
    chasePos_ = pos;
    return acc;
}

std::uint64_t
SyntheticLoad::branchyChunk()
{
    std::uint64_t acc = 0;
    std::uint64_t state = checksum_ ^ load_seed;
    for (int i = 0; i < 8000; ++i) {
        const std::uint8_t b =
            branchData_[nextRand(state) % branchData_.size()];
        // Data-dependent, unpredictable branches.
        if (b & 1)
            acc += b * 3;
        else if (b & 2)
            acc ^= acc << 7 | 1;
        else
            acc -= b;
    }
    return acc;
}

std::uint64_t
SyntheticLoad::runChunk()
{
    std::uint64_t value = 0;
    switch (chunks_ % 3) {
      case 0:
        value = arithmeticChunk();
        break;
      case 1:
        value = chaseChunk();
        break;
      default:
        value = branchyChunk();
        break;
    }
    ++chunks_;
    checksum_ = (checksum_ * 31) ^ value;
    return checksum_;
}

} // namespace cminer::workload

/**
 * @file
 * A GWP-style fleet simulator (the paper's motivating setting: thousands
 * of servers running millions of jobs "24/7/365", profiled continuously
 * by an infrastructure like the Google-Wide Profiler).
 *
 * The fleet holds N servers; each server runs a stream of jobs drawn
 * from the benchmark suite (optionally co-located pairs). Profiling uses
 * GWP's two-level sampling: sample a subset of machines each cycle, and
 * sample a time window within each selected machine's current job rather
 * than the whole run. The result is exactly the kind of heterogeneous,
 * windowed, multiplexed data CounterMiner is built to mine.
 */

#ifndef CMINER_WORKLOAD_FLEET_H
#define CMINER_WORKLOAD_FLEET_H

#include <string>
#include <vector>

#include "pmu/trace.h"
#include "util/rng.h"
#include "workload/suites.h"

namespace cminer::workload {

/** Fleet shape and sampling policy. */
struct FleetConfig
{
    std::size_t serverCount = 64;
    /** Fraction of servers profiled per sampling cycle. */
    double machineSampleFraction = 0.125;
    /** Length of the profiled window within a job, in intervals. */
    std::size_t windowIntervals = 120;
    /** Probability a server runs a co-located pair instead of one job. */
    double colocationProbability = 0.2;
};

/** One profiled window from one server. */
struct FleetSample
{
    std::size_t serverId = 0;
    std::string program;  ///< "a" or "a+b" for co-located pairs
    cminer::pmu::TrueTrace window; ///< ground truth of the window
};

/**
 * The simulated fleet.
 */
class Fleet
{
  public:
    /**
     * @param suite benchmark population servers draw jobs from
     * @param config fleet shape
     */
    Fleet(const BenchmarkSuite &suite, FleetConfig config = {});

    /** Fleet shape in effect. */
    const FleetConfig &config() const { return config_; }

    /**
     * Run one GWP sampling cycle: pick machines, pick a window of each
     * machine's current job, and return the ground-truth windows (the
     * caller measures them through the PMU sampler, typically MLPX).
     *
     * @param rng job assignment + sampling randomness
     */
    std::vector<FleetSample> sampleCycle(cminer::util::Rng &rng) const;

    /**
     * Aggregate job mix of many cycles: how often each program (or
     * co-located pair) was profiled. Useful to verify coverage.
     */
    static std::vector<std::pair<std::string, std::size_t>>
    jobMix(const std::vector<FleetSample> &samples);

  private:
    const BenchmarkSuite &suite_;
    FleetConfig config_;
};

} // namespace cminer::workload

#endif // CMINER_WORKLOAD_FLEET_H

/**
 * @file
 * The Spark configuration-parameter catalog (paper Table IV) and a value
 * assignment over it.
 *
 * Each parameter has a tuning range; a SparkConfig holds concrete values.
 * The workload model consumes *normalized* values in [-1, 1] (default
 * maps to 0) so coupling strengths compose cleanly.
 */

#ifndef CMINER_WORKLOAD_SPARK_CONFIG_H
#define CMINER_WORKLOAD_SPARK_CONFIG_H

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.h"

namespace cminer::workload {

/** One tunable Spark parameter. */
struct SparkParam
{
    std::string name;    ///< full name, e.g. "spark.broadcast.blockSize"
    std::string abbrev;  ///< paper code, e.g. "bbs"
    std::string unit;    ///< display unit ("MB", "s", "", ...)
    double minValue = 0.0;
    double maxValue = 1.0;
    double defaultValue = 0.5;
    bool logScale = false; ///< normalize in log space (sizes, timeouts)
};

/** The catalog of tunable parameters (paper Table IV). */
class SparkParamCatalog
{
  public:
    SparkParamCatalog();

    /** Number of parameters. */
    std::size_t size() const { return params_.size(); }

    /** Parameter by position. */
    const SparkParam &param(std::size_t index) const;

    /** Parameter by abbreviation; fatal when unknown. */
    const SparkParam &byAbbrev(const std::string &abbrev) const;

    /** True when the abbreviation exists. */
    bool has(const std::string &abbrev) const;

    /** All abbreviations, in catalog order. */
    std::vector<std::string> abbrevs() const;

    /** Shared instance. */
    static const SparkParamCatalog &instance();

  private:
    std::vector<SparkParam> params_;
};

/**
 * A concrete assignment of values to (a subset of) the parameters.
 * Unset parameters read as their defaults.
 */
class SparkConfig
{
  public:
    /** All parameters at their defaults. */
    SparkConfig() = default;

    /** Set a parameter by abbreviation (clamped to its range). */
    void set(const std::string &abbrev, double value);

    /** Value of a parameter (default when unset). */
    double get(const std::string &abbrev) const;

    /**
     * Normalized value in [-1, 1]: -1 at min, +1 at max, 0 at the
     * default. Log-scale parameters normalize in log space.
     */
    double normalized(const std::string &abbrev) const;

    /** Uniformly random configuration over all parameters. */
    static SparkConfig random(cminer::util::Rng &rng);

  private:
    std::map<std::string, double> values_;
};

} // namespace cminer::workload

#endif // CMINER_WORKLOAD_SPARK_CONFIG_H

#include "workload/cluster.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace cminer::workload {

using cminer::util::Rng;

SimulatedCluster::SimulatedCluster(ClusterConfig config)
    : config_(config)
{
    CM_ASSERT(config_.slaveNodes >= 1);
}

JobResult
SimulatedCluster::runJob(const SyntheticBenchmark &benchmark,
                         const SparkConfig &spark_config, Rng &rng) const
{
    JobResult result;
    result.profiledTrace = benchmark.generateTrace(rng, spark_config);
    const double profiled_ms = result.profiledTrace.durationMs();

    result.nodeTimesMs.push_back(profiled_ms);
    for (std::size_t node = 1; node < config_.slaveNodes; ++node) {
        // Sibling nodes run the same work with straggler jitter.
        const double straggle =
            std::exp(rng.gaussian(0.0, config_.stragglerSigma));
        result.nodeTimesMs.push_back(profiled_ms * straggle);
    }
    result.execTimeMs =
        *std::max_element(result.nodeTimesMs.begin(),
                          result.nodeTimesMs.end()) +
        config_.schedulingOverheadMs;
    return result;
}

double
SimulatedCluster::runJobTimeOnly(const SyntheticBenchmark &benchmark,
                                 const SparkConfig &spark_config,
                                 Rng &rng) const
{
    // Same timing model as runJob without materializing the trace: mean
    // intervals scaled by the config factor and OS jitter per node.
    const double base_ms = benchmark.spec().meanIntervals *
                           benchmark.spec().intervalMs *
                           benchmark.durationFactor(spark_config);
    double slowest = 0.0;
    for (std::size_t node = 0; node < config_.slaveNodes; ++node) {
        const double jitter = std::exp(
            rng.gaussian(0.0, benchmark.spec().lengthJitter));
        const double straggle =
            std::exp(rng.gaussian(0.0, config_.stragglerSigma));
        slowest = std::max(slowest, base_ms * jitter * straggle);
    }
    return slowest + config_.schedulingOverheadMs;
}

} // namespace cminer::workload

#include "workload/fleet.h"

#include <algorithm>
#include <map>

#include "util/error.h"
#include "workload/colocate.h"

namespace cminer::workload {

using cminer::pmu::TrueTrace;
using cminer::util::Rng;

Fleet::Fleet(const BenchmarkSuite &suite, FleetConfig config)
    : suite_(suite), config_(config)
{
    CM_ASSERT(config_.serverCount >= 1);
    CM_ASSERT(config_.machineSampleFraction > 0.0 &&
              config_.machineSampleFraction <= 1.0);
    CM_ASSERT(config_.windowIntervals >= 8);
    CM_ASSERT(config_.colocationProbability >= 0.0 &&
              config_.colocationProbability <= 1.0);
}

std::vector<FleetSample>
Fleet::sampleCycle(Rng &rng) const
{
    const auto benchmarks = suite_.all();
    CM_ASSERT(!benchmarks.empty());

    // Level-1 sampling: which machines get profiled this cycle.
    const std::size_t sampled_machines = std::max<std::size_t>(
        1, static_cast<std::size_t>(config_.machineSampleFraction *
                                    static_cast<double>(
                                        config_.serverCount)));
    const auto machines =
        rng.sampleIndices(config_.serverCount, sampled_machines);

    std::vector<FleetSample> samples;
    samples.reserve(machines.size());
    for (std::size_t server : machines) {
        FleetSample sample;
        sample.serverId = server;

        // The server's current job: one benchmark, or a co-located pair.
        const auto *primary = benchmarks[static_cast<std::size_t>(
            rng.uniformInt(0,
                           static_cast<std::int64_t>(benchmarks.size()) -
                               1))];
        TrueTrace run;
        if (rng.bernoulli(config_.colocationProbability)) {
            const auto *secondary = benchmarks[static_cast<std::size_t>(
                rng.uniformInt(
                    0,
                    static_cast<std::int64_t>(benchmarks.size()) - 1))];
            sample.program = primary->name() + "+" + secondary->name();
            run = composeColocated(*primary, *secondary, rng);
        } else {
            sample.program = primary->name();
            run = primary->generateTrace(rng);
        }

        // Level-2 sampling: a window within the job, not the whole run.
        const std::size_t window =
            std::min(config_.windowIntervals, run.intervalCount());
        const std::size_t max_start = run.intervalCount() - window;
        const std::size_t start = max_start == 0
            ? 0
            : static_cast<std::size_t>(rng.uniformInt(
                  0, static_cast<std::int64_t>(max_start)));

        TrueTrace windowed(window, run.eventCount(), run.intervalMs());
        for (std::size_t e = 0; e < run.eventCount(); ++e) {
            for (std::size_t t = 0; t < window; ++t)
                windowed.setCount(e, t, run.count(e, start + t));
        }
        for (std::size_t t = 0; t < window; ++t)
            windowed.setIpc(t, run.ipc(start + t));
        sample.window = std::move(windowed);
        samples.push_back(std::move(sample));
    }
    return samples;
}

std::vector<std::pair<std::string, std::size_t>>
Fleet::jobMix(const std::vector<FleetSample> &samples)
{
    std::map<std::string, std::size_t> counts;
    for (const auto &sample : samples)
        ++counts[sample.program];
    std::vector<std::pair<std::string, std::size_t>> mix(counts.begin(),
                                                         counts.end());
    std::sort(mix.begin(), mix.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });
    return mix;
}

} // namespace cminer::workload

/**
 * @file
 * The simulated experimental cluster (paper Section IV-A): one master
 * and three slave nodes running Spark jobs. Execution time is the slowest
 * node plus scheduling overhead; one node is profiled (the trace the
 * collector sees).
 */

#ifndef CMINER_WORKLOAD_CLUSTER_H
#define CMINER_WORKLOAD_CLUSTER_H

#include <string>
#include <vector>

#include "pmu/trace.h"
#include "util/rng.h"
#include "workload/benchmark.h"
#include "workload/spark_config.h"

namespace cminer::workload {

/** Cluster shape and timing model. */
struct ClusterConfig
{
    std::size_t slaveNodes = 3;
    /** Fixed job submission + scheduling overhead. */
    double schedulingOverheadMs = 350.0;
    /** Lognormal sigma of per-node straggling. */
    double stragglerSigma = 0.06;
};

/** Outcome of one cluster job. */
struct JobResult
{
    double execTimeMs = 0.0;           ///< wall-clock job time
    std::vector<double> nodeTimesMs;   ///< per-slave completion time
    cminer::pmu::TrueTrace profiledTrace; ///< trace of the profiled node
};

/**
 * A four-node Spark/Mesos cluster, simulated.
 */
class SimulatedCluster
{
  public:
    explicit SimulatedCluster(ClusterConfig config = {});

    /** Cluster shape. */
    const ClusterConfig &config() const { return config_; }

    /**
     * Run one job: the benchmark executes on every slave; the first
     * slave is profiled.
     *
     * @param benchmark what to run
     * @param spark_config configuration for this run
     * @param rng randomness for the run
     */
    JobResult runJob(const SyntheticBenchmark &benchmark,
                     const SparkConfig &spark_config,
                     cminer::util::Rng &rng) const;

    /**
     * Execution time only — cheaper when the caller does not need the
     * trace (e.g. the method-B parameter sweeps of Fig. 15).
     */
    double runJobTimeOnly(const SyntheticBenchmark &benchmark,
                          const SparkConfig &spark_config,
                          cminer::util::Rng &rng) const;

  private:
    ClusterConfig config_;
};

} // namespace cminer::workload

#endif // CMINER_WORKLOAD_CLUSTER_H

#include "workload/suites.h"

#include "pmu/event.h"
#include "util/error.h"

namespace cminer::workload {

using cminer::pmu::EventCatalog;
using cminer::pmu::EventCategory;

namespace {

/**
 * Importance-weight sequences for the one-three SMI law: `dominant`
 * events clearly above the rest, the tail tapering below 2.2%.
 */
std::vector<double>
topWeights(std::size_t dominant)
{
    switch (dominant) {
      case 1:
        return {6.9, 2.4, 2.2, 2.1, 2.0, 1.9, 1.8, 1.7, 1.6, 1.5};
      case 2:
        return {6.7, 5.8, 2.2, 2.0, 1.9, 1.8, 1.7, 1.6, 1.5, 1.4};
      default:
        return {6.2, 5.6, 5.1, 2.2, 2.0, 1.8, 1.7, 1.6, 1.5, 1.4};
    }
}

/** Build the effect list for a ranked top-10 with given dominance. */
std::vector<EventEffect>
effects(const std::vector<std::string> &ranked, std::size_t dominant)
{
    const auto weights = topWeights(dominant);
    CM_ASSERT(ranked.size() == weights.size());
    static const EffectShape shapes[] = {
        EffectShape::Softplus, EffectShape::Linear, EffectShape::Quadratic,
        EffectShape::Linear, EffectShape::Cubic, EffectShape::Linear,
        EffectShape::Quadratic, EffectShape::Softplus, EffectShape::Linear,
        EffectShape::Quadratic};
    std::vector<EventEffect> out;
    for (std::size_t i = 0; i < ranked.size(); ++i)
        out.push_back({ranked[i], weights[i], shapes[i]});
    return out;
}

/**
 * Interaction list from ranked pairs. The ranker's intensities scale as
 * weight^2, so a `dominance` around 3 puts the top pair far ahead
 * (CloudSuite) while ~1.4 keeps it moderate (HiBench).
 */
std::vector<InteractionEffect>
interactions(const std::vector<std::pair<std::string, std::string>> &pairs,
             double dominance)
{
    std::vector<InteractionEffect> out;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        const double weight =
            (i == 0 ? dominance : 1.0) * (6.0 - 0.35 * static_cast<double>(i));
        out.push_back({pairs[i].first, pairs[i].second, weight});
    }
    return out;
}

PhaseSpec
phase(const std::string &name, double fraction,
      std::map<EventCategory, double> scale)
{
    PhaseSpec p;
    p.name = name;
    p.fraction = fraction;
    p.categoryScale = std::move(scale);
    return p;
}

} // namespace

BenchmarkSuite::BenchmarkSuite()
{
    const EventCatalog &catalog = EventCatalog::instance();
    std::uint64_t seed = 101;

    auto add = [&](BenchmarkSpec spec) {
        spec.structureSeed = seed++;
        benchmarks_.push_back(
            std::make_unique<SyntheticBenchmark>(std::move(spec), catalog));
    };

    // ---------------- HiBench (Spark 2.0) -------------------------------

    {
        BenchmarkSpec s;
        s.name = "wordcount";
        s.suite = "hibench";
        s.baseIpc = 1.25;
        s.meanIntervals = 440;
        s.effects = effects({"ISF", "BRE", "ORA", "IPD", "BRB", "BMP",
                             "MSL", "URA", "URS", "ITM"}, 3);
        s.interactions = interactions({{"BRB", "BMP"}, {"ORA", "BRB"},
                                       {"URA", "URS"}, {"BRB", "ITM"},
                                       {"ORA", "BMP"}, {"ISF", "BRB"},
                                       {"BRB", "URA"}, {"BRE", "BRB"},
                                       {"ORA", "ITM"}, {"ISF", "BRE"}},
                                      1.5);
        s.couplings = {
            {"exm", "ISF", 0.55, 0.30, 0.18, 0.02},
            {"dpl", "ISF", 0.30, 0.12, 0.08, 0.01},
            {"exm", "LMH", 0.25, 0.10, 0.03, 0.0},
            {"rdm", "BMP", 0.20, 0.08, 0.02, 0.0},
            {"mmf", "ITM", 0.22, 0.09, 0.02, 0.0},
            {"exc", "BMP", 0.15, 0.06, 0.02, 0.0},
            {"dpl", "BRC", 0.15, 0.05, 0.01, 0.0},
            {"bbs", "MCO", 0.12, 0.04, 0.01, 0.0},
        };
        s.phases = {phase("map", 0.45, {{EventCategory::Branch, 1.2}}),
                    phase("shuffle", 0.25,
                          {{EventCategory::Remote, 1.8},
                           {EventCategory::Memory, 1.3}}),
                    phase("reduce", 0.30, {{EventCategory::Memory, 1.2}})};
        add(std::move(s));
    }

    {
        BenchmarkSpec s;
        s.name = "pagerank";
        s.suite = "hibench";
        s.baseIpc = 0.95;
        s.meanIntervals = 560;
        s.effects = effects({"BRE", "ISF", "BRB", "LMH", "BMP", "ITM",
                             "PI3", "MCO", "BRC", "TFA"}, 2);
        s.interactions = interactions({{"BRB", "BMP"}, {"BRE", "ISF"},
                                       {"BRE", "BRB"}, {"BRE", "BMP"},
                                       {"ISF", "BRB"}, {"ISF", "BMP"},
                                       {"BRB", "BRC"}, {"BRE", "PI3"},
                                       {"BRE", "ITM"}, {"ISF", "ITM"}},
                                      1.4);
        s.couplings = {
            {"mmf", "BRE", 0.55, 0.28, 0.16, 0.02},
            {"mmf", "BAA", 0.25, 0.10, 0.03, 0.0},
            {"mmf", "PI3", 0.22, 0.09, 0.02, 0.0},
            {"kbf", "MMR", 0.20, 0.08, 0.02, 0.0},
            {"nwt", "BAA", 0.14, 0.05, 0.02, 0.0},
            {"ssb", "PI3", 0.16, 0.06, 0.02, 0.0},
            {"ics", "ITM", 0.14, 0.05, 0.01, 0.0},
        };
        add(std::move(s));
    }

    {
        BenchmarkSpec s;
        s.name = "aggregation";
        s.suite = "hibench";
        s.baseIpc = 1.05;
        s.meanIntervals = 420;
        s.effects = effects({"ISF", "BRE", "BRB", "MSL", "BAA", "MMR",
                             "PI3", "BMP", "IPD", "MCO"}, 3);
        s.interactions = interactions({{"BRE", "MSL"}, {"ISF", "MSL"},
                                       {"MSL", "BMP"}, {"MSL", "BAA"},
                                       {"MMR", "BMP"}, {"ISF", "BRE"},
                                       {"MSL", "PI3"}, {"BRB", "BMP"},
                                       {"BRB", "MSL"}, {"BRE", "BRB"}},
                                      1.5);
        s.couplings = {
            {"rdm", "MSL", 0.50, 0.26, 0.15, 0.02},
            {"mmf", "BRE", 0.24, 0.10, 0.03, 0.0},
            {"ics", "MMR", 0.20, 0.08, 0.02, 0.0},
            {"nwt", "BAA", 0.14, 0.05, 0.02, 0.0},
            {"dpl", "ISF", 0.22, 0.09, 0.03, 0.0},
        };
        add(std::move(s));
    }

    {
        BenchmarkSpec s;
        s.name = "join";
        s.suite = "hibench";
        s.baseIpc = 1.0;
        s.meanIntervals = 480;
        s.effects = effects({"BRE", "LRC", "ISF", "BRB", "LMH", "IPD",
                             "BMP", "IMC", "IM4", "ITM"}, 2);
        s.interactions = interactions({{"BRB", "BMP"}, {"BRE", "BRB"},
                                       {"ISF", "BMP"}, {"ISF", "BRB"},
                                       {"BRE", "ISF"}, {"BRE", "BMP"},
                                       {"LRC", "BRB"}, {"LRC", "BMP"},
                                       {"BRE", "IPD"}, {"BMP", "IMC"}},
                                      1.4);
        s.couplings = {
            {"kbm", "BRE", 0.52, 0.27, 0.15, 0.02},
            {"kbm", "ISF", 0.26, 0.11, 0.04, 0.0},
            {"kbm", "BRB", 0.20, 0.08, 0.02, 0.0},
            {"dmm", "LRC", 0.22, 0.09, 0.03, 0.0},
            {"dpl", "IPD", 0.18, 0.07, 0.02, 0.0},
            {"sfb", "ITM", 0.14, 0.05, 0.01, 0.0},
        };
        add(std::move(s));
    }

    {
        BenchmarkSpec s;
        s.name = "scan";
        s.suite = "hibench";
        s.baseIpc = 1.35;
        s.meanIntervals = 390;
        s.effects = effects({"BRE", "ISF", "LMH", "BRB", "MSL", "PI3",
                             "MMR", "BMP", "MIE", "CAC"}, 2);
        s.interactions = interactions({{"ISF", "BMP"}, {"ISF", "LMH"},
                                       {"BRE", "BMP"}, {"LMH", "MMR"},
                                       {"LMH", "BMP"}, {"BRE", "LMH"},
                                       {"BRE", "ISF"}, {"MMR", "BMP"},
                                       {"ISF", "MMR"}, {"BRE", "MMR"}},
                                      1.4);
        s.couplings = {
            {"dmm", "BRE", 0.50, 0.26, 0.14, 0.02},
            {"ics", "MMR", 0.20, 0.08, 0.02, 0.0},
            {"exm", "LMH", 0.24, 0.10, 0.03, 0.0},
            {"ssb", "ISF", 0.22, 0.09, 0.03, 0.0},
            {"rdm", "BRE", 0.18, 0.07, 0.02, 0.0},
        };
        add(std::move(s));
    }

    {
        BenchmarkSpec s;
        s.name = "sort";
        s.suite = "hibench";
        s.baseIpc = 1.1;
        s.meanIntervals = 460;
        s.effects = effects({"ORO", "IDU", "ISF", "LRA", "BRE", "BRB",
                             "BMP", "LMH", "MSL", "MST"}, 2);
        s.interactions = interactions({{"ISF", "MST"}, {"LRA", "MST"},
                                       {"ORO", "MST"}, {"BRE", "MST"},
                                       {"IDU", "MST"}, {"BMP", "LMH"},
                                       {"LRA", "BRE"}, {"BMP", "MST"},
                                       {"ORO", "LRA"}, {"BRE", "MSL"}},
                                      1.5);
        // The case-study couplings: bbs drives the top event (ORO) and
        // runtime hard (~111% swing over its range); nwt couples to the
        // unimportant I4U with a mild runtime effect (~29%).
        s.couplings = {
            {"bbs", "ORO", 0.60, 0.32, 0.47, 0.05},
            {"nwt", "I4U", 0.30, 0.05, 0.16, 0.01},
            {"exm", "LRA", 0.22, 0.09, 0.03, 0.0},
            {"rdm", "MSL", 0.18, 0.07, 0.02, 0.0},
            {"kbf", "MST", 0.16, 0.06, 0.02, 0.0},
            {"mmf", "BRB", 0.14, 0.05, 0.01, 0.0},
        };
        s.phases = {phase("sample", 0.15, {{EventCategory::Memory, 1.2}}),
                    phase("shuffle", 0.45,
                          {{EventCategory::Remote, 2.0},
                           {EventCategory::Memory, 1.4}}),
                    phase("merge", 0.40, {{EventCategory::Cache, 1.3}})};
        add(std::move(s));
    }

    {
        BenchmarkSpec s;
        s.name = "bayes";
        s.suite = "hibench";
        s.baseIpc = 0.9;
        s.meanIntervals = 610;
        s.effects = effects({"BRE", "ISF", "PI3", "MSL", "BRB", "IPD",
                             "MST", "TFA", "MMR", "LMH"}, 2);
        s.interactions = interactions({{"ISF", "BRB"}, {"BRE", "BRB"},
                                       {"BRE", "ISF"}, {"PI3", "BRB"},
                                       {"ISF", "PI3"}, {"BRE", "PI3"},
                                       {"MSL", "MST"}, {"MMR", "LMH"},
                                       {"BRB", "LMH"}, {"BRE", "LMH"}},
                                      1.4);
        s.couplings = {
            {"ssb", "PI3", 0.52, 0.27, 0.15, 0.02},
            {"dpl", "BRE", 0.24, 0.10, 0.03, 0.0},
            {"nwt", "MSL", 0.16, 0.06, 0.02, 0.0},
            {"nwt", "MST", 0.14, 0.05, 0.02, 0.0},
            {"mmf", "ISF", 0.22, 0.09, 0.03, 0.0},
        };
        add(std::move(s));
    }

    {
        BenchmarkSpec s;
        s.name = "kmeans";
        s.suite = "hibench";
        s.baseIpc = 1.45;
        s.meanIntervals = 520;
        s.effects = effects({"ISF", "BRE", "IPD", "BRB", "IMT", "MSL",
                             "PI3", "OTS", "BMP", "MCO"}, 2);
        s.interactions = interactions({{"BRB", "BMP"}, {"ISF", "BMP"},
                                       {"ISF", "BRB"}, {"ITM", "BMP"},
                                       {"BRB", "ITM"}, {"BRE", "BRB"},
                                       {"BRE", "BMP"}, {"PI3", "BMP"},
                                       {"MSL", "BMP"}, {"BRB", "PI3"}},
                                      1.5);
        s.couplings = {
            {"mmf", "IPD", 0.52, 0.27, 0.15, 0.02},
            {"kbm", "ISF", 0.24, 0.10, 0.03, 0.0},
            {"ics", "IM4", 0.18, 0.07, 0.02, 0.0},
            {"dpl", "BMP", 0.16, 0.06, 0.02, 0.0},
            {"dpl", "MCO", 0.14, 0.05, 0.01, 0.0},
        };
        add(std::move(s));
    }

    // ---------------- CloudSuite 3.0 -------------------------------------

    {
        BenchmarkSpec s;
        s.name = "DataAnalytics";
        s.suite = "cloudsuite";
        s.baseIpc = 0.85;
        s.meanIntervals = 640;
        s.effects = effects({"ISF", "BRB", "BRE", "IPD", "MMR", "MSL",
                             "LMH", "MUL", "MST", "MLL"}, 1);
        s.interactions = interactions({{"ISF", "BRB"}, {"BRB", "BMP"},
                                       {"BRE", "BRB"}, {"MMR", "MSL"},
                                       {"ISF", "BRE"}, {"MSL", "LMH"},
                                       {"ISF", "MSL"}, {"MUL", "MST"},
                                       {"IPD", "MMR"}, {"BRB", "MSL"}},
                                      2.6);
        add(std::move(s));
    }

    {
        BenchmarkSpec s;
        s.name = "DataCaching";
        s.suite = "cloudsuite";
        s.baseIpc = 1.15;
        s.meanIntervals = 500;
        s.effects = effects({"ISF", "BRB", "IPD", "BRE", "MSL", "BMP",
                             "MMR", "LMH", "MST", "MLL"}, 1);
        s.interactions = interactions({{"BRB", "BMP"}, {"ISF", "BRB"},
                                       {"BRE", "BRB"}, {"ISF", "BMP"},
                                       {"BRE", "BMP"}, {"MSL", "LMH"},
                                       {"IPD", "MMR"}, {"ISF", "BRE"},
                                       {"MSL", "MMR"}, {"BRB", "MST"}},
                                      2.8);
        add(std::move(s));
    }

    {
        BenchmarkSpec s;
        s.name = "DataServing";
        s.suite = "cloudsuite";
        s.baseIpc = 1.05;
        s.meanIntervals = 540;
        s.effects = effects({"ISF", "PI3", "BRE", "BRB", "IPD", "MMR",
                             "MSL", "LMH", "ITM", "BMP"}, 1);
        s.interactions = interactions({{"BRB", "BMP"}, {"ISF", "PI3"},
                                       {"BRE", "BRB"}, {"PI3", "IPD"},
                                       {"ISF", "BRB"}, {"MMR", "MSL"},
                                       {"BRE", "BMP"}, {"ITM", "PI3"},
                                       {"ISF", "BRE"}, {"LMH", "MSL"}},
                                      2.7);
        add(std::move(s));
    }

    {
        BenchmarkSpec s;
        s.name = "GraphAnalytics";
        s.suite = "cloudsuite";
        s.baseIpc = 0.8;
        s.meanIntervals = 620;
        s.effects = effects({"ISF", "BRE", "BRB", "MSL", "DSP", "TFA",
                             "MMR", "DSH", "MST", "BMP"}, 1);
        // The paper singles GraphAnalytics out as the *weakest* dominant
        // pair among CloudSuite (19% vs WebServing's 64%).
        s.interactions = interactions({{"BRE", "BRB"}, {"BRB", "BMP"},
                                       {"ISF", "BRE"}, {"MSL", "MMR"},
                                       {"DSP", "DSH"}, {"ISF", "BRB"},
                                       {"BRE", "MSL"}, {"TFA", "ITM"},
                                       {"MST", "MSL"}, {"BRE", "BMP"}},
                                      1.3);
        add(std::move(s));
    }

    {
        BenchmarkSpec s;
        s.name = "InMemoryAnalytics";
        s.suite = "cloudsuite";
        s.baseIpc = 1.3;
        s.meanIntervals = 470;
        s.effects = effects({"BRE", "ISF", "BRB", "MSL", "IPD", "MMR",
                             "BMP", "PI3", "LMH", "MLL"}, 2);
        s.interactions = interactions({{"BRB", "BMP"}, {"BRE", "BRB"},
                                       {"BRE", "ISF"}, {"ISF", "BRB"},
                                       {"MSL", "MMR"}, {"BRE", "BMP"},
                                       {"IPD", "PI3"}, {"MSL", "LMH"},
                                       {"ISF", "BMP"}, {"BRB", "MSL"}},
                                      2.5);
        add(std::move(s));
    }

    {
        BenchmarkSpec s;
        s.name = "MediaStreaming";
        s.suite = "cloudsuite";
        s.baseIpc = 1.2;
        s.meanIntervals = 520;
        s.effects = effects({"BRE", "ISF", "BRB", "MMR", "IPD", "MSL",
                             "LMH", "BMP", "MCO", "PI3"}, 2);
        s.interactions = interactions({{"BRB", "BMP"}, {"BRE", "BRB"},
                                       {"ISF", "BRB"}, {"MMR", "MCO"},
                                       {"BRE", "ISF"}, {"MSL", "LMH"},
                                       {"BRE", "BMP"}, {"IPD", "MSL"},
                                       {"ISF", "BMP"}, {"MMR", "MSL"}},
                                      2.6);
        add(std::move(s));
    }

    {
        BenchmarkSpec s;
        s.name = "WebSearch";
        s.suite = "cloudsuite";
        s.baseIpc = 1.0;
        s.meanIntervals = 560;
        s.effects = effects({"ISF", "MSL", "IPD", "BRE", "MMR", "BMP",
                             "BRB", "MST", "LHN", "MLL"}, 1);
        s.interactions = interactions({{"BRB", "BMP"}, {"ISF", "MSL"},
                                       {"BRE", "BRB"}, {"MSL", "MMR"},
                                       {"ISF", "BRB"}, {"IPD", "MSL"},
                                       {"BRE", "BMP"}, {"LHN", "MSL"},
                                       {"MST", "MSL"}, {"ISF", "BRE"}},
                                      2.7);
        add(std::move(s));
    }

    {
        BenchmarkSpec s;
        s.name = "WebServing";
        s.suite = "cloudsuite";
        s.baseIpc = 0.9;
        s.meanIntervals = 580;
        s.effects = effects({"MSL", "ISF", "BMP", "MMR", "LHN", "IPD",
                             "ISL", "BRE", "MLL", "LMH"}, 1);
        // Four software tiers -> the strongest dominant pair (about 64%).
        s.interactions = interactions({{"MSL", "MMR"}, {"BRB", "BMP"},
                                       {"ISF", "MSL"}, {"LHN", "MSL"},
                                       {"BRE", "BMP"}, {"ISL", "ISF"},
                                       {"IPD", "MSL"}, {"MLL", "MSL"},
                                       {"ISF", "BMP"}, {"LMH", "MSL"}},
                                      6.0);
        add(std::move(s));
    }
}

std::vector<const SyntheticBenchmark *>
BenchmarkSuite::all() const
{
    std::vector<const SyntheticBenchmark *> out;
    out.reserve(benchmarks_.size());
    for (const auto &b : benchmarks_)
        out.push_back(b.get());
    return out;
}

std::vector<const SyntheticBenchmark *>
BenchmarkSuite::hibench() const
{
    std::vector<const SyntheticBenchmark *> out;
    for (const auto &b : benchmarks_) {
        if (b->suite() == "hibench")
            out.push_back(b.get());
    }
    return out;
}

std::vector<const SyntheticBenchmark *>
BenchmarkSuite::cloudsuite() const
{
    std::vector<const SyntheticBenchmark *> out;
    for (const auto &b : benchmarks_) {
        if (b->suite() == "cloudsuite")
            out.push_back(b.get());
    }
    return out;
}

const SyntheticBenchmark &
BenchmarkSuite::byName(const std::string &name) const
{
    for (const auto &b : benchmarks_) {
        if (b->name() == name)
            return *b;
    }
    util::fatal("workload: unknown benchmark: " + name);
}

bool
BenchmarkSuite::has(const std::string &name) const
{
    for (const auto &b : benchmarks_) {
        if (b->name() == name)
            return true;
    }
    return false;
}

const BenchmarkSuite &
BenchmarkSuite::instance()
{
    static const BenchmarkSuite suite;
    return suite;
}

} // namespace cminer::workload

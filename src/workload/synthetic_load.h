/**
 * @file
 * A built-in, in-process workload for real counter collection.
 *
 * When the perf backend measures, something must actually execute: this
 * load alternates short phases of arithmetic (ALU/uop pressure),
 * pointer chasing over a working set (cache and TLB misses), and
 * data-dependent branching (mispredictions), so real counters see
 * varied, program-like activity rather than a flat spin. Every chunk
 * folds its work into a checksum the caller must consume, which keeps
 * the optimizer from deleting the load.
 *
 * The load is deterministic in the work it performs (fixed seed for the
 * chase permutation and branch data); only its *measured* counts vary,
 * because real hardware is the noise source.
 */

#ifndef CMINER_WORKLOAD_SYNTHETIC_LOAD_H
#define CMINER_WORKLOAD_SYNTHETIC_LOAD_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cminer::workload {

/**
 * The phase-rotating compute loop the perf backend drives between
 * counter reads.
 */
class SyntheticLoad
{
  public:
    /**
     * @param working_set_bytes pointer-chase working set; the default
     *        (4 MiB) exceeds typical L2 so the chase phase misses in
     *        cache, giving the memory-category counters real activity
     */
    explicit SyntheticLoad(std::size_t working_set_bytes = 4u << 20);

    /**
     * Run one chunk (tens of microseconds of work) and fold it into
     * the checksum. The phase advances every chunk.
     *
     * @return the running checksum (consume it; see checksum())
     */
    std::uint64_t runChunk();

    /** Accumulated checksum over all chunks run. */
    std::uint64_t checksum() const { return checksum_; }

    /** Chunks run so far. */
    std::uint64_t chunksRun() const { return chunks_; }

  private:
    std::uint64_t arithmeticChunk();
    std::uint64_t chaseChunk();
    std::uint64_t branchyChunk();

    std::vector<std::uint32_t> chase_; ///< random-cycle successor table
    std::vector<std::uint8_t> branchData_;
    std::uint32_t chasePos_ = 0;
    std::uint64_t checksum_ = 0;
    std::uint64_t chunks_ = 0;
};

} // namespace cminer::workload

#endif // CMINER_WORKLOAD_SYNTHETIC_LOAD_H

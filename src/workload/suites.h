/**
 * @file
 * The sixteen evaluated benchmarks (paper Table II): eight Spark programs
 * from HiBench and eight CloudSuite 3.0 services.
 *
 * Each benchmark's planted structure encodes the paper's published
 * results: the top-10 important events (Figs. 9-10, with the one-three
 * SMI dominance), the top-10 interaction pairs (Figs. 11-12, BRB-BMP
 * dominating, CloudSuite pairs stronger than HiBench's), and — for the
 * Spark programs — the configuration couplings behind the case study
 * (Figs. 13-15).
 */

#ifndef CMINER_WORKLOAD_SUITES_H
#define CMINER_WORKLOAD_SUITES_H

#include <memory>
#include <string>
#include <vector>

#include "workload/benchmark.h"

namespace cminer::workload {

/**
 * Owns the sixteen benchmark instances.
 */
class BenchmarkSuite
{
  public:
    /** Build all benchmarks against the default event catalog. */
    BenchmarkSuite();

    /** All sixteen benchmarks. */
    std::vector<const SyntheticBenchmark *> all() const;

    /** The eight HiBench (Spark) benchmarks. */
    std::vector<const SyntheticBenchmark *> hibench() const;

    /** The eight CloudSuite benchmarks. */
    std::vector<const SyntheticBenchmark *> cloudsuite() const;

    /** Lookup by name; fatal when unknown. */
    const SyntheticBenchmark &byName(const std::string &name) const;

    /** True when the name exists. */
    bool has(const std::string &name) const;

    /** Shared instance (builds once). */
    static const BenchmarkSuite &instance();

  private:
    std::vector<std::unique_ptr<SyntheticBenchmark>> benchmarks_;
};

} // namespace cminer::workload

#endif // CMINER_WORKLOAD_SUITES_H

#include "workload/colocate.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace cminer::workload {

using cminer::pmu::EventCatalog;
using cminer::pmu::EventId;
using cminer::pmu::TrueTrace;
using cminer::util::Rng;

TrueTrace
composeColocated(const SyntheticBenchmark &a, const SyntheticBenchmark &b,
                 Rng &rng, const ColocationOptions &options)
{
    CM_ASSERT(&a.catalog() == &b.catalog());
    const EventCatalog &catalog = a.catalog();

    const TrueTrace trace_a = a.generateTrace(rng);
    const TrueTrace trace_b = b.generateTrace(rng);
    const std::size_t n =
        std::min(trace_a.intervalCount(), trace_b.intervalCount());
    CM_ASSERT(trace_a.intervalMs() == trace_b.intervalMs());

    double contention = options.contention;
    if (contention < 0.0)
        contention = a.name() == b.name() ? 0.15 : 0.75;
    contention = std::clamp(contention, 0.0, 1.0);

    // Contention pressure: a slow AR(1) process squashed to [0, 1],
    // standing in for how badly the two footprints collide over time.
    std::vector<double> pressure(n);
    {
        double x = 0.0;
        for (std::size_t t = 0; t < n; ++t) {
            x = 0.9 * x + rng.gaussian(0.0, 0.5);
            pressure[t] = 1.0 / (1.0 + std::exp(-x));
        }
    }

    // L2 events get inflated by contention.
    std::vector<bool> is_l2(catalog.size(), false);
    for (const char *abbrev :
         {"L2H", "L2R", "L2C", "L2A", "L2M", "L2S"})
        is_l2[catalog.idOfAbbrev(abbrev)] = true;

    TrueTrace combined(n, catalog.size(), trace_a.intervalMs());
    for (EventId id = 0; id < catalog.size(); ++id) {
        const bool fixed = catalog.info(id).fixedCounter;
        for (std::size_t t = 0; t < n; ++t) {
            double count = trace_a.count(id, t) + trace_b.count(id, t);
            if (fixed) {
                // Cycles don't add across co-runners on a shared core
                // budget; keep the single-node scale.
                count *= 0.5;
            }
            if (is_l2[id]) {
                count *= 1.0 + contention * options.l2Boost * pressure[t];
            }
            combined.setCount(id, t, count);
        }
    }

    // Combined IPC: harmonic mean of the two programs' IPCs (shared
    // pipeline), degraded in proportion to the same contention pressure
    // that inflated the L2 events — that correlation is what makes the
    // importance ranker surface L2 events for dissimilar pairs.
    const EventId inst = catalog.idOf("INST_RETIRED.ANY");
    const EventId cyc = catalog.idOf("CPU_CLK_UNHALTED.THREAD");
    for (std::size_t t = 0; t < n; ++t) {
        const double ipc_a = trace_a.ipc(t);
        const double ipc_b = trace_b.ipc(t);
        const double harmonic =
            2.0 * ipc_a * ipc_b / std::max(1e-9, ipc_a + ipc_b);
        const double penalty = std::exp(
            -contention * options.ipcPenalty * pressure[t]);
        const double ipc = std::clamp(harmonic * penalty, 0.05, 5.0);
        combined.setIpc(t, ipc);
        // Keep the fixed counters consistent with the combined IPC.
        const double cycles = combined.count(cyc, t);
        combined.setCount(inst, t, cycles * ipc);
    }

    return combined;
}

} // namespace cminer::workload

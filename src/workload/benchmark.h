/**
 * @file
 * Synthetic cloud benchmarks with planted ground truth.
 *
 * Each benchmark generates TrueTraces: per-interval activity for all 229
 * catalog events plus true IPC. The generative model is
 *
 *   x_e(t)   = AR(1) latent activity + phase offsets + config shifts
 *              (+ GEV spikes for long-tailed events, + cold-start boost
 *               for the frontend at the beginning of a run)
 *   count_e  = baseRate_e * exp(x_e)
 *   log IPC  = log(baseIpc) - sum_i w_i * g_i(x_i)            (effects)
 *              - sum_(a,b) w_ab * x_a * x_b                   (interactions)
 *              - sum_(p,e) w_pe * norm(p) * x_e     (config interactions)
 *              + noise
 *
 * Because the weights w are planted, the benches can check that the
 * importance ranker recovers the paper's per-benchmark rankings and the
 * interaction ranker recovers the planted pairs — ground truth the real
 * CloudSuite/HiBench runs never provided.
 */

#ifndef CMINER_WORKLOAD_BENCHMARK_H
#define CMINER_WORKLOAD_BENCHMARK_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "pmu/event.h"
#include "pmu/trace.h"
#include "util/rng.h"
#include "workload/spark_config.h"

namespace cminer::workload {

/** Nonlinear response shape linking event activity to IPC. */
enum class EffectShape
{
    Linear,    ///< g(x) = x
    Quadratic, ///< g(x) = x + x^2 / 2
    Softplus,  ///< g(x) = log(1 + e^x) - log 2
    Cubic,     ///< g(x) = x + x^3 / 4
};

/** One event's planted contribution to IPC. */
struct EventEffect
{
    std::string abbrev;  ///< catalog abbreviation ("ISF")
    double weight = 0.0; ///< importance-like weight (percent scale)
    EffectShape shape = EffectShape::Linear;
};

/** A planted pairwise interaction. */
struct InteractionEffect
{
    std::string first;
    std::string second;
    double weight = 0.0; ///< interaction weight (percent scale)
};

/** Coupling between a Spark parameter and an event. */
struct ConfigCoupling
{
    std::string param;          ///< Spark abbreviation ("bbs")
    std::string event;          ///< event abbreviation ("ORO")
    double eventShift = 0.0;    ///< latent shift per unit normalized value
    double ipcInteraction = 0.0;///< weight of the norm(p) * x_e IPC term
    double runtimeEffect = 0.0; ///< log-runtime slope per unit norm value
    double runtimeCurve = 0.0;  ///< log-runtime curvature (norm^2 term)
};

/** One execution phase: a stretch of the run with scaled activity. */
struct PhaseSpec
{
    std::string name;
    double fraction = 1.0; ///< share of the run's intervals
    /** Per-category activity multiplier (unlisted categories are 1.0). */
    std::map<cminer::pmu::EventCategory, double> categoryScale;
};

/** Full specification of a synthetic benchmark. */
struct BenchmarkSpec
{
    std::string name;
    std::string suite;          ///< "hibench" or "cloudsuite"
    double baseIpc = 1.2;
    double meanIntervals = 450; ///< average run length in intervals
    double lengthJitter = 0.03; ///< lognormal sigma of the run length
    double intervalMs = 10.0;
    double noiseSigma = 0.04;   ///< log-IPC observation noise
    double coldStartBoost = 3.5;///< frontend boost at run start
    std::size_t coldStartIntervals = 30;
    /**
     * Number of non-top events that receive small background weights
     * (what makes the EIR curve turn back up once real-but-minor signal
     * starts being pruned).
     */
    std::size_t backgroundEvents = 60;
    double backgroundWeight = 1.25; ///< mean background weight (percent)
    std::uint64_t structureSeed = 1;///< seeds the background structure
    std::vector<PhaseSpec> phases;
    std::vector<EventEffect> effects;
    std::vector<InteractionEffect> interactions;
    std::vector<ConfigCoupling> couplings;
};

/**
 * A runnable synthetic benchmark.
 */
class SyntheticBenchmark
{
  public:
    /**
     * @param spec planted structure
     * @param catalog event catalog (lifetime must cover the benchmark's)
     */
    SyntheticBenchmark(BenchmarkSpec spec,
                       const cminer::pmu::EventCatalog &catalog);

    /** Benchmark name ("wordcount"). */
    const std::string &name() const { return spec_.name; }

    /** Suite name ("hibench" / "cloudsuite"). */
    const std::string &suite() const { return spec_.suite; }

    /** Full planted specification. */
    const BenchmarkSpec &spec() const { return spec_; }

    /** Catalog this benchmark resolves abbreviations against. */
    const cminer::pmu::EventCatalog &catalog() const { return catalog_; }

    /**
     * Generate one run's ground-truth trace.
     *
     * Run lengths differ between calls (OS nondeterminism); all planted
     * structure is deterministic given the rng state.
     *
     * @param rng randomness source for this run
     * @param config Spark configuration (defaults when omitted)
     */
    cminer::pmu::TrueTrace
    generateTrace(cminer::util::Rng &rng,
                  const SparkConfig &config = SparkConfig()) const;

    /**
     * Deterministic part of the runtime model: the factor the given
     * configuration applies to the mean run length.
     */
    double durationFactor(const SparkConfig &config) const;

    /**
     * Planted importance share of an event (percent of the total planted
     * weight; 0 for unweighted events). Ground truth for the tests.
     */
    double plantedImportance(const std::string &abbrev) const;

    /** Events with planted weights, ordered by descending weight. */
    std::vector<std::string> plantedRanking(std::size_t top_n) const;

  private:
    /** Per-event resolved generation parameters. */
    struct EventGen
    {
        double sigma = 0.20;     ///< AR(1) innovation scale (run noise)
        double rho = 0.65;       ///< AR(1) persistence
        double spikeProb = 0.0;  ///< per-interval long-tail spike chance
        double spikeScale = 0.5; ///< Gumbel scale of spikes
        double weight = 0.0;     ///< IPC effect weight (fraction, not %)
        EffectShape shape = EffectShape::Linear;
        /**
         * Deterministic time profile: the program does the same work in
         * every run, so most of an event's trajectory repeats run to
         * run. Three harmonics over normalized run time.
         */
        double profileAmp[3] = {0.0, 0.0, 0.0};
        double profilePhase[3] = {0.0, 0.0, 0.0};
    };

    /** Evaluate the deterministic profile at normalized time u. */
    static double profileValue(const EventGen &gen, double u);

    void resolveStructure();

    BenchmarkSpec spec_;
    const cminer::pmu::EventCatalog &catalog_;
    std::vector<EventGen> gen_;  ///< indexed by EventId
    /** Resolved interactions: (event a, event b, weight fraction). */
    std::vector<std::tuple<cminer::pmu::EventId, cminer::pmu::EventId,
                           double>> pairTerms_;
    /** Resolved couplings, with event ids. */
    struct ResolvedCoupling
    {
        std::string param;
        cminer::pmu::EventId event;
        double eventShift;
        double ipcInteraction;
    };
    std::vector<ResolvedCoupling> couplings_;
    /** Derived-event blending: (derived, source, blend weight). */
    std::vector<std::tuple<cminer::pmu::EventId, cminer::pmu::EventId,
                           double>> derived_;
    cminer::pmu::EventId fixedInst_;
    cminer::pmu::EventId fixedCyc_;
    cminer::pmu::EventId fixedRef_;
};

/** Shape function evaluation (exposed for tests). */
double effectShapeValue(EffectShape shape, double x);

} // namespace cminer::workload

#endif // CMINER_WORKLOAD_BENCHMARK_H

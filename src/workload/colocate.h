/**
 * @file
 * Co-located workload composition (paper Section V-E).
 *
 * Two benchmarks share a node: their event activity adds, and cache
 * contention (a) inflates the L2 events and (b) depresses the combined
 * IPC in a way correlated with that inflation — which is why L2 events
 * climb into the top-10 importance list for dissimilar pairs like
 * DataCaching + GraphAnalytics while same-program pairs barely move.
 */

#ifndef CMINER_WORKLOAD_COLOCATE_H
#define CMINER_WORKLOAD_COLOCATE_H

#include "pmu/trace.h"
#include "util/rng.h"
#include "workload/benchmark.h"

namespace cminer::workload {

/** Knobs of the interference model. */
struct ColocationOptions
{
    /**
     * Contention level in [0, 1]. Negative means "auto": 0.15 for two
     * instances of the same program (similar phase-aligned footprints),
     * 0.75 for different programs.
     */
    double contention = -1.0;
    /** L2 inflation per unit contention-pressure. */
    double l2Boost = 1.6;
    /** Log-IPC penalty per unit contention-pressure. */
    double ipcPenalty = 0.35;
};

/**
 * Compose the shared-node trace of two co-running benchmarks.
 *
 * The result is truncated to the shorter of the two runs; counters and
 * events are shared resources, so per-benchmark attribution is not
 * possible (as the paper notes).
 *
 * @param a first benchmark
 * @param b second benchmark (may be the same object as `a`)
 * @param rng randomness for both runs and the interference process
 * @param options interference model knobs
 */
cminer::pmu::TrueTrace
composeColocated(const SyntheticBenchmark &a, const SyntheticBenchmark &b,
                 cminer::util::Rng &rng,
                 const ColocationOptions &options = {});

} // namespace cminer::workload

#endif // CMINER_WORKLOAD_COLOCATE_H

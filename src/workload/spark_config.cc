#include "workload/spark_config.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace cminer::workload {

SparkParamCatalog::SparkParamCatalog()
{
    // Paper Table IV: Spark parameters that interact strongly with the
    // important events. Ranges follow the Spark 2.0 documentation.
    params_ = {
        {"spark.broadcast.blockSize", "bbs", "MB", 1, 32, 4, true},
        {"spark.network.timeout", "nwt", "s", 30, 600, 120, true},
        {"spark.executor.memory", "exm", "GB", 1, 16, 4, true},
        {"spark.executor.cores", "exc", "cores", 1, 8, 2, false},
        {"spark.default.parallelism", "dpl", "tasks", 8, 256, 64, true},
        {"spark.reducer.maxSizeInFlight", "rdm", "MB", 8, 192, 48, true},
        {"spark.memory.fraction", "mmf", "", 0.3, 0.9, 0.6, false},
        {"spark.kryoserializer.buffer", "kbf", "KB", 16, 512, 64, true},
        {"spark.kryoserializer.buffer.max", "kbm", "MB", 8, 256, 64, true},
        {"spark.shuffle.sort.bypassMergeThreshold", "ssb", "parts",
         50, 800, 200, true},
        {"spark.io.compression.snappy.blockSize", "ics", "KB",
         8, 128, 32, true},
        {"spark.shuffle.file.buffer", "sfb", "KB", 8, 128, 32, true},
        {"spark.driver.memory", "dmm", "GB", 1, 16, 4, true},
        {"spark.memory.storageFraction", "msf", "", 0.2, 0.8, 0.5, false},
        {"spark.locality.wait", "lcw", "s", 0, 10, 3, false},
        {"spark.speculation.quantile", "spq", "", 0.5, 0.95, 0.75, false},
    };
}

const SparkParam &
SparkParamCatalog::param(std::size_t index) const
{
    CM_ASSERT(index < params_.size());
    return params_[index];
}

const SparkParam &
SparkParamCatalog::byAbbrev(const std::string &abbrev) const
{
    for (const auto &p : params_) {
        if (p.abbrev == abbrev)
            return p;
    }
    util::fatal("workload: unknown Spark parameter abbreviation: " +
                abbrev);
}

bool
SparkParamCatalog::has(const std::string &abbrev) const
{
    for (const auto &p : params_) {
        if (p.abbrev == abbrev)
            return true;
    }
    return false;
}

std::vector<std::string>
SparkParamCatalog::abbrevs() const
{
    std::vector<std::string> out;
    out.reserve(params_.size());
    for (const auto &p : params_)
        out.push_back(p.abbrev);
    return out;
}

const SparkParamCatalog &
SparkParamCatalog::instance()
{
    static const SparkParamCatalog catalog;
    return catalog;
}

void
SparkConfig::set(const std::string &abbrev, double value)
{
    const SparkParam &p = SparkParamCatalog::instance().byAbbrev(abbrev);
    values_[abbrev] = std::clamp(value, p.minValue, p.maxValue);
}

double
SparkConfig::get(const std::string &abbrev) const
{
    const SparkParam &p = SparkParamCatalog::instance().byAbbrev(abbrev);
    auto it = values_.find(abbrev);
    return it != values_.end() ? it->second : p.defaultValue;
}

double
SparkConfig::normalized(const std::string &abbrev) const
{
    const SparkParam &p = SparkParamCatalog::instance().byAbbrev(abbrev);
    double value = get(abbrev);
    double lo = p.minValue;
    double hi = p.maxValue;
    double mid = p.defaultValue;
    if (p.logScale) {
        // Guard against zero lower bounds in log space.
        const double eps = 1e-9;
        value = std::log(std::max(value, eps));
        lo = std::log(std::max(p.minValue, eps));
        hi = std::log(std::max(p.maxValue, eps));
        mid = std::log(std::max(p.defaultValue, eps));
    }
    // Piecewise-linear map: [lo, mid] -> [-1, 0], [mid, hi] -> [0, 1].
    if (value <= mid) {
        if (mid <= lo)
            return 0.0;
        return (value - mid) / (mid - lo);
    }
    if (hi <= mid)
        return 0.0;
    return (value - mid) / (hi - mid);
}

SparkConfig
SparkConfig::random(cminer::util::Rng &rng)
{
    SparkConfig config;
    const auto &catalog = SparkParamCatalog::instance();
    for (std::size_t i = 0; i < catalog.size(); ++i) {
        const SparkParam &p = catalog.param(i);
        double value;
        if (p.logScale) {
            const double eps = 1e-9;
            const double lo = std::log(std::max(p.minValue, eps));
            const double hi = std::log(std::max(p.maxValue, eps));
            value = std::exp(rng.uniform(lo, hi));
        } else {
            value = rng.uniform(p.minValue, p.maxValue);
        }
        config.set(p.abbrev, value);
    }
    return config;
}

} // namespace cminer::workload

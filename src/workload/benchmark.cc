#include "workload/benchmark.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace cminer::workload {

using cminer::pmu::EventCatalog;
using cminer::pmu::EventCategory;
using cminer::pmu::EventId;
using cminer::pmu::TrueTrace;
using cminer::util::Rng;

double
effectShapeValue(EffectShape shape, double x)
{
    double g = x;
    switch (shape) {
      case EffectShape::Linear:
        g = x;
        break;
      case EffectShape::Quadratic:
        g = x + 0.5 * x * x;
        break;
      case EffectShape::Softplus:
        // Scaled so the local slope at x = 0 is 1, like the other shapes.
        g = 2.0 * (std::log1p(std::exp(std::min(x, 30.0))) -
                   std::log(2.0));
        break;
      case EffectShape::Cubic:
        g = x + 0.25 * x * x * x;
        break;
    }
    // Keep pathological latent excursions from collapsing IPC to zero.
    return std::clamp(g, -3.0, 3.0);
}

SyntheticBenchmark::SyntheticBenchmark(BenchmarkSpec spec,
                                       const EventCatalog &catalog)
    : spec_(std::move(spec)), catalog_(catalog)
{
    if (spec_.name.empty())
        util::fatal("workload: benchmark needs a name");
    if (spec_.phases.empty()) {
        // Default three-phase structure: startup, steady, teardown.
        spec_.phases = {
            {"startup", 0.12, {{EventCategory::Frontend, 1.8}}},
            {"steady", 0.76, {}},
            {"teardown", 0.12, {{EventCategory::Memory, 1.3}}},
        };
    }
    resolveStructure();
}

void
SyntheticBenchmark::resolveStructure()
{
    gen_.assign(catalog_.size(), EventGen{});
    for (EventId id = 0; id < catalog_.size(); ++id) {
        const auto &info = catalog_.info(id);
        if (info.family == cminer::pmu::DistFamily::LongTail) {
            gen_[id].spikeProb = 0.12;
            gen_[id].spikeScale = 0.30;
        }
    }

    // Planted (top-ranked) effects.
    for (const auto &effect : spec_.effects) {
        const EventId id = catalog_.idOfAbbrev(effect.abbrev);
        gen_[id].weight = effect.weight / 100.0;
        gen_[id].shape = effect.shape;
        gen_[id].sigma = 0.30;
    }

    // Background weights: many events matter a little. Deterministic per
    // benchmark via the structure seed, independent of run RNGs.
    Rng structure_rng(spec_.structureSeed ^ 0x5bd1e995u);
    std::vector<EventId> candidates;
    for (EventId id : catalog_.programmableEvents()) {
        if (gen_[id].weight == 0.0)
            candidates.push_back(id);
    }
    const std::size_t background =
        std::min(spec_.backgroundEvents, candidates.size());
    const auto picked =
        structure_rng.sampleIndices(candidates.size(), background);
    for (std::size_t pick : picked) {
        const EventId id = candidates[pick];
        gen_[id].weight = spec_.backgroundWeight / 100.0 *
                          structure_rng.uniform(0.5, 1.0);
        gen_[id].shape = static_cast<EffectShape>(
            structure_rng.uniformInt(0, 3));
        gen_[id].sigma = 0.30; // strong enough to be learnable
    }

    // Deterministic per-event time profiles (the repeatable part of a
    // run). Weighted events get larger profiles so the IPC signal has
    // stable structure the model can learn.
    Rng profile_rng(spec_.structureSeed * 0x9e3779b97f4a7c15ULL + 17);
    for (EventId id = 0; id < catalog_.size(); ++id) {
        const double amp = gen_[id].weight != 0.0 ? 0.12 : 0.08;
        for (int h = 0; h < 3; ++h) {
            gen_[id].profileAmp[h] =
                amp / static_cast<double>(h + 1) *
                profile_rng.uniform(0.4, 1.0);
            gen_[id].profilePhase[h] =
                profile_rng.uniform(0.0, 6.283185307179586);
        }
    }

    // Interactions.
    pairTerms_.clear();
    for (const auto &inter : spec_.interactions) {
        pairTerms_.emplace_back(catalog_.idOfAbbrev(inter.first),
                                catalog_.idOfAbbrev(inter.second),
                                inter.weight / 100.0);
    }

    // Config couplings.
    couplings_.clear();
    for (const auto &coupling : spec_.couplings) {
        // Validate the param abbreviation eagerly.
        SparkParamCatalog::instance().byAbbrev(coupling.param);
        couplings_.push_back({coupling.param,
                              catalog_.idOfAbbrev(coupling.event),
                              coupling.eventShift,
                              coupling.ipcInteraction});
    }

    // Derived events: mispredictions track branches, retire slots track
    // retired uops, L2 misses track L2 reads, completed ITLB walks track
    // ITLB misses. Blending latents plants the correlations the paper
    // observes (a large BMP is caused by a large BRB).
    derived_.clear();
    auto derive = [this](const char *dst, const char *src, double blend) {
        derived_.emplace_back(catalog_.idOfAbbrev(dst),
                              catalog_.idOfAbbrev(src), blend);
    };
    derive("BMP", "BRB", 0.45);
    derive("URS", "URA", 0.50);
    derive("L2M", "L2R", 0.70);
    derive("IMT", "ITM", 0.80);
    derive("BRE", "BRB", 0.40);

    fixedInst_ = catalog_.idOf("INST_RETIRED.ANY");
    fixedCyc_ = catalog_.idOf("CPU_CLK_UNHALTED.THREAD");
    fixedRef_ = catalog_.idOf("CPU_CLK_UNHALTED.REF_TSC");
}

double
SyntheticBenchmark::durationFactor(const SparkConfig &config) const
{
    double log_factor = 0.0;
    for (const auto &coupling : spec_.couplings) {
        const double norm = config.normalized(coupling.param);
        log_factor += coupling.runtimeEffect * norm +
                      coupling.runtimeCurve * norm * norm;
    }
    return std::exp(log_factor);
}

TrueTrace
SyntheticBenchmark::generateTrace(Rng &rng, const SparkConfig &config) const
{
    // Run length: config-driven factor times lognormal OS jitter.
    const double mean_n =
        spec_.meanIntervals * durationFactor(config) *
        std::exp(rng.gaussian(0.0, spec_.lengthJitter));
    const std::size_t n = static_cast<std::size_t>(
        std::clamp(mean_n, 80.0, 20000.0));

    TrueTrace trace(n, catalog_.size(), spec_.intervalMs);

    // Phase index per interval.
    std::vector<std::size_t> phase_of(n, 0);
    {
        double total_fraction = 0.0;
        for (const auto &phase : spec_.phases)
            total_fraction += phase.fraction;
        CM_ASSERT(total_fraction > 0.0);
        std::size_t t = 0;
        for (std::size_t p = 0; p < spec_.phases.size(); ++p) {
            const double share =
                spec_.phases[p].fraction / total_fraction;
            std::size_t span = static_cast<std::size_t>(
                share * static_cast<double>(n) + 0.5);
            if (p + 1 == spec_.phases.size())
                span = n - t; // absorb rounding in the last phase
            for (std::size_t i = 0; i < span && t < n; ++i, ++t)
                phase_of[t] = p;
        }
        while (t < n)
            phase_of[t++] = spec_.phases.size() - 1;
    }

    // Per-event config shift.
    std::vector<double> config_shift(catalog_.size(), 0.0);
    for (const auto &coupling : couplings_)
        config_shift[coupling.event] +=
            coupling.eventShift * config.normalized(coupling.param);

    // Latent activity per event.
    std::vector<std::vector<double>> latent(
        catalog_.size(), std::vector<double>(n, 0.0));
    for (EventId id = 0; id < catalog_.size(); ++id) {
        const auto &info = catalog_.info(id);
        const EventGen &g = gen_[id];
        double x = rng.gaussian(0.0, g.sigma);
        for (std::size_t t = 0; t < n; ++t) {
            const double u =
                static_cast<double>(t) / static_cast<double>(n);
            x = g.rho * x + rng.gaussian(0.0, g.sigma);
            double value = x + profileValue(g, u) + config_shift[id];
            // Phase offset.
            const auto &phase = spec_.phases[phase_of[t]];
            auto it = phase.categoryScale.find(info.category);
            if (it != phase.categoryScale.end())
                value += std::log(it->second);
            // Long-tail spikes.
            if (g.spikeProb > 0.0 && rng.bernoulli(g.spikeProb))
                value += std::abs(rng.gumbel(0.0, g.spikeScale));
            // Cold-start boost for the frontend (empty icache/DSB).
            if (info.category == EventCategory::Frontend &&
                t < spec_.coldStartIntervals && spec_.coldStartBoost > 1.0) {
                const double decay =
                    1.0 - static_cast<double>(t) /
                              static_cast<double>(spec_.coldStartIntervals);
                value += std::log1p((spec_.coldStartBoost - 1.0) * decay);
            }
            latent[id][t] = value;
        }
    }

    // Derived-event blending (plants cross-event correlation).
    for (const auto &[dst, src, blend] : derived_) {
        for (std::size_t t = 0; t < n; ++t)
            latent[dst][t] =
                blend * latent[src][t] + (1.0 - blend) * latent[dst][t];
    }

    // Counts and IPC.
    for (std::size_t t = 0; t < n; ++t) {
        double log_ipc = std::log(spec_.baseIpc);
        for (EventId id = 0; id < catalog_.size(); ++id) {
            const EventGen &g = gen_[id];
            if (g.weight != 0.0)
                log_ipc -= g.weight * effectShapeValue(g.shape,
                                                       latent[id][t]);
        }
        for (const auto &[a, b, weight] : pairTerms_) {
            const double product =
                std::clamp(latent[a][t] * latent[b][t], -6.0, 6.0);
            log_ipc -= 0.35 * weight * product;
        }
        for (const auto &coupling : couplings_) {
            if (coupling.ipcInteraction == 0.0)
                continue;
            const double norm = config.normalized(coupling.param);
            log_ipc -= coupling.ipcInteraction * norm *
                       std::clamp(latent[coupling.event][t], -3.0, 3.0);
        }
        log_ipc += rng.gaussian(0.0, spec_.noiseSigma);
        const double ipc = std::clamp(std::exp(log_ipc), 0.05, 5.0);
        trace.setIpc(t, ipc);

        for (EventId id = 0; id < catalog_.size(); ++id) {
            if (catalog_.info(id).fixedCounter)
                continue;
            const double count =
                catalog_.info(id).baseRate * std::exp(latent[id][t]);
            trace.setCount(id, t, count);
        }

        // Fixed counters stay mutually consistent: IPC = INST / CYC.
        const double cycles = catalog_.info(fixedCyc_).baseRate *
                              std::exp(rng.gaussian(0.0, 0.01));
        trace.setCount(fixedCyc_, t, cycles);
        trace.setCount(fixedInst_, t, cycles * ipc);
        trace.setCount(fixedRef_, t,
                       cycles * std::exp(rng.gaussian(0.0, 0.002)));
    }

    return trace;
}

double
SyntheticBenchmark::profileValue(const EventGen &gen, double u)
{
    constexpr double two_pi = 6.283185307179586;
    double value = 0.0;
    for (int h = 0; h < 3; ++h) {
        value += gen.profileAmp[h] *
                 std::sin(two_pi * static_cast<double>(h + 1) * u +
                          gen.profilePhase[h]);
    }
    return value;
}

double
SyntheticBenchmark::plantedImportance(const std::string &abbrev) const
{
    const EventId id = catalog_.idOfAbbrev(abbrev);
    double total = 0.0;
    for (const auto &g : gen_)
        total += std::abs(g.weight);
    if (total <= 0.0)
        return 0.0;
    return 100.0 * std::abs(gen_[id].weight) / total;
}

std::vector<std::string>
SyntheticBenchmark::plantedRanking(std::size_t top_n) const
{
    std::vector<std::pair<double, EventId>> weighted;
    for (EventId id = 0; id < gen_.size(); ++id) {
        if (gen_[id].weight != 0.0)
            weighted.emplace_back(std::abs(gen_[id].weight), id);
    }
    std::sort(weighted.begin(), weighted.end(),
              [](const auto &a, const auto &b) { return a.first > b.first; });
    std::vector<std::string> out;
    for (std::size_t i = 0; i < std::min(top_n, weighted.size()); ++i)
        out.push_back(catalog_.info(weighted[i].second).abbrev);
    return out;
}

} // namespace cminer::workload

/**
 * @file
 * google-benchmark microbenchmarks for the library's hot kernels: DTW
 * (full and banded), SGBRT training, the cleaner, the Anderson-Darling
 * triage, and trace generation.
 */

#include <benchmark/benchmark.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <new>
#include <optional>

#include "common.h"
#include "ml/dataset_view.h"
#include "core/checkpoint.h"
#include "mining/anomaly.h"
#include "mining/distance.h"
#include "core/cleaner.h"
#include "ml/gbrt.h"
#include "ml/model_io.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "simd/simd.h"
#include "stats/anderson_darling.h"
#include "store/database.h"
#include "ts/dtw.h"
#include "ts/lb_keogh.h"
#include "ts/time_series.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/trace.h"
#include "workload/suites.h"

using namespace cminer;

// --- allocation accounting -----------------------------------------------
// Global new/delete replacements tallying every heap allocation in the
// process. The columnar data plane's contract is that deriving a view
// performs no matrix copy; the *Copy/*View benchmark twins below report
// allocs/iter and alloc_kb/iter so the difference shows up in the bench
// output, not just in wall clock.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};
} // namespace

void *
operator new(std::size_t size)
{
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
    if (void *p = std::malloc(size > 0 ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

/** Snapshot of the global allocation tallies. */
struct AllocCounters
{
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;

    static AllocCounters
    now()
    {
        return {g_alloc_count.load(std::memory_order_relaxed),
                g_alloc_bytes.load(std::memory_order_relaxed)};
    }
};

/** Report per-iteration allocation deltas as benchmark counters. */
void
reportAllocsPerIter(benchmark::State &state, const AllocCounters &before)
{
    const auto after = AllocCounters::now();
    const auto iters =
        static_cast<double>(std::max<std::int64_t>(1, state.iterations()));
    state.counters["allocs_per_iter"] =
        static_cast<double>(after.count - before.count) / iters;
    state.counters["alloc_kb_per_iter"] =
        static_cast<double>(after.bytes - before.bytes) / 1024.0 / iters;
}

} // namespace

namespace {

/** Training set for the GBRT-fit benchmarks. */
ml::Dataset
gbrtBenchData(std::size_t features, int rows)
{
    std::vector<std::string> names;
    for (std::size_t f = 0; f < features; ++f)
        names.push_back("f" + std::to_string(f));
    ml::Dataset data(names);
    util::Rng gen(5);
    for (int r = 0; r < rows; ++r) {
        std::vector<double> row(features);
        for (auto &v : row)
            v = gen.gaussian();
        data.addRow(row, row[0] * 2.0 + row[1 % features]);
    }
    return data;
}

std::vector<double>
randomSeries(std::size_t n, std::uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<double> values(n);
    double x = 0.0;
    for (auto &v : values) {
        x = 0.8 * x + rng.gaussian();
        v = 100.0 + 10.0 * x;
    }
    return values;
}

void
BM_DtwFull(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto a = randomSeries(n, 1);
    const auto b = randomSeries(n + n / 10, 2);
    for (auto _ : state)
        benchmark::DoNotOptimize(ts::dtwDistance(a, b));
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DtwFull)->Range(64, 2048)->Complexity();

void
BM_DtwBanded(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto a = randomSeries(n, 3);
    const auto b = randomSeries(n + n / 10, 4);
    ts::DtwOptions options;
    options.bandFraction = 0.1;
    for (auto _ : state)
        benchmark::DoNotOptimize(ts::dtwDistance(a, b, options));
}
BENCHMARK(BM_DtwBanded)->Range(64, 2048);

void
BM_LbKeoghBound(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto a = randomSeries(n, 21);
    const auto b = randomSeries(n, 22);
    const auto envelope = ts::computeEnvelope(a, n / 10 + 1);
    for (auto _ : state)
        benchmark::DoNotOptimize(ts::lbKeogh(envelope, b));
}
BENCHMARK(BM_LbKeoghBound)->Range(64, 2048);

void
BM_GbrtFit(benchmark::State &state)
{
    const auto features = static_cast<std::size_t>(state.range(0));
    const auto data = gbrtBenchData(features, 800);
    for (auto _ : state) {
        util::Rng rng(7);
        ml::GbrtParams params;
        params.treeCount = 50;
        ml::Gbrt model(params);
        model.fit(data, rng);
        benchmark::DoNotOptimize(model.treeCount());
    }
    state.counters["threads"] =
        static_cast<double>(bench::activeThreads());
}
BENCHMARK(BM_GbrtFit)->Arg(16)->Arg(64)->Arg(226);

/**
 * GBRT fit at an explicit thread count (the determinism contract makes
 * the outputs identical; only wall clock changes). Compare e.g.
 * `BM_GbrtFitThreads/1` vs `/4` for the parallel-speedup check.
 */
void
BM_GbrtFitThreads(benchmark::State &state)
{
    const auto data = gbrtBenchData(226, 1600);
    util::Parallelism::setThreadCount(
        static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        util::Rng rng(7);
        ml::GbrtParams params;
        params.treeCount = 50;
        ml::Gbrt model(params);
        model.fit(data, rng);
        benchmark::DoNotOptimize(model.treeCount());
    }
    state.counters["threads"] =
        static_cast<double>(bench::activeThreads());
    util::Parallelism::setThreadCount(0); // restore automatic sizing
}
BENCHMARK(BM_GbrtFitThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/** Full-dataset prediction across the ensemble (parallel across rows). */
void
BM_GbrtPredictAll(benchmark::State &state)
{
    const auto data = gbrtBenchData(64, 4096);
    util::Rng rng(7);
    ml::GbrtParams params;
    params.treeCount = 50;
    ml::Gbrt model(params);
    model.fit(data, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(model.predictAll(data));
    state.counters["threads"] =
        static_cast<double>(bench::activeThreads());
}
BENCHMARK(BM_GbrtPredictAll)->UseRealTime();

// --- checkpoint subsystem -------------------------------------------------

/** Full model checkpoint round trip: serialize, atomic write, load. */
void
BM_ModelSaveLoad(benchmark::State &state)
{
    const auto data = gbrtBenchData(64, 800);
    util::Rng rng(7);
    ml::GbrtParams params;
    params.treeCount = static_cast<std::size_t>(state.range(0));
    ml::Gbrt model(params);
    model.fit(data, rng);
    const std::string path = "/tmp/cminer_bench_model.ckpt";
    const auto before = AllocCounters::now();
    for (auto _ : state) {
        if (!ml::saveModel(model, path).ok())
            state.SkipWithError("save failed");
        auto loaded = ml::loadModel(path);
        if (!loaded.ok())
            state.SkipWithError("load failed");
        benchmark::DoNotOptimize(loaded);
    }
    reportAllocsPerIter(state, before);
    std::error_code ec;
    state.counters["file_kb"] = static_cast<double>(
        std::filesystem::file_size(path, ec)) / 1024.0;
    std::filesystem::remove(path, ec);
}
BENCHMARK(BM_ModelSaveLoad)->Arg(50)->Arg(150)
    ->Unit(benchmark::kMillisecond);

/** The predict serving path: score a reloaded checkpoint over a view. */
void
BM_PredictThroughput(benchmark::State &state)
{
    const auto data = gbrtBenchData(64, 4096);
    util::Rng rng(7);
    ml::GbrtParams params;
    params.treeCount = 50;
    ml::Gbrt trained(params);
    trained.fit(data, rng);
    const std::string path = "/tmp/cminer_bench_predict.ckpt";
    if (!ml::saveModel(trained, path).ok()) {
        state.SkipWithError("save failed");
        return;
    }
    auto loaded = ml::loadModel(path);
    if (!loaded.ok()) {
        state.SkipWithError("load failed");
        return;
    }
    const ml::Gbrt &model = loaded.value();
    const ml::DatasetView view(data);
    const auto before = AllocCounters::now();
    for (auto _ : state)
        benchmark::DoNotOptimize(model.predictAll(view));
    reportAllocsPerIter(state, before);
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(view.rowCount()));
    state.counters["threads"] =
        static_cast<double>(bench::activeThreads());
    std::error_code ec;
    std::filesystem::remove(path, ec);
}
BENCHMARK(BM_PredictThroughput)->UseRealTime();

// --- columnar data plane: copy vs view twins ------------------------------
// Each pair runs the identical workload through the legacy materializing
// path (Dataset::project / subset copies) and the DatasetView path. The
// allocs_per_iter / alloc_kb_per_iter counters prove the view twin does
// no per-iteration matrix copy; wall clock proves it is no slower.

/** The EIR survivor set: every feature but the 10 dropped last round. */
std::vector<std::string>
eirSurvivors(const ml::Dataset &data)
{
    std::vector<std::string> keep = data.featureNames();
    keep.resize(keep.size() - 10);
    return keep;
}

void
BM_DatasetProjectCopy(benchmark::State &state)
{
    const auto data = gbrtBenchData(226, 800);
    const auto keep = eirSurvivors(data);
    const auto before = AllocCounters::now();
    for (auto _ : state)
        benchmark::DoNotOptimize(data.project(keep));
    reportAllocsPerIter(state, before);
}
BENCHMARK(BM_DatasetProjectCopy);

void
BM_DatasetProjectView(benchmark::State &state)
{
    const auto data = gbrtBenchData(226, 800);
    const auto keep = eirSurvivors(data);
    const auto before = AllocCounters::now();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            ml::DatasetView(data).withFeatures(keep));
    reportAllocsPerIter(state, before);
}
BENCHMARK(BM_DatasetProjectView);

/**
 * One EIR drop-10-retrain iteration: narrow the training matrix to the
 * surviving events, then refit the GBRT. The Copy twin materializes the
 * narrowed matrix the way the pre-columnar pipeline did; the View twin
 * shrinks a column mask. Both run with a metrics registry installed so
 * the gbrt.split_scan_ms histogram wiring is exercised and surfaced.
 */
void
BM_EirRefitCopy(benchmark::State &state)
{
    const auto data = gbrtBenchData(226, 800);
    const auto keep = eirSurvivors(data);
    ml::GbrtParams params;
    params.treeCount = 20;
    util::MetricsRegistry registry;
    util::setGlobalMetrics(&registry);
    const auto before = AllocCounters::now();
    for (auto _ : state) {
        util::Rng rng(7);
        const ml::Dataset current = data.project(keep);
        ml::Gbrt model(params);
        model.fit(current, rng);
        benchmark::DoNotOptimize(model.treeCount());
    }
    reportAllocsPerIter(state, before);
    util::setGlobalMetrics(nullptr);
    const auto scan =
        registry.histogram("gbrt.split_scan_ms").snapshot();
    state.counters["split_scan_ms_per_iter"] =
        scan.totalMs /
        static_cast<double>(std::max<std::int64_t>(1, state.iterations()));
}
BENCHMARK(BM_EirRefitCopy)->Unit(benchmark::kMillisecond);

void
BM_EirRefitView(benchmark::State &state)
{
    const auto data = gbrtBenchData(226, 800);
    const auto keep = eirSurvivors(data);
    ml::GbrtParams params;
    params.treeCount = 20;
    util::MetricsRegistry registry;
    util::setGlobalMetrics(&registry);
    const auto before = AllocCounters::now();
    for (auto _ : state) {
        util::Rng rng(7);
        const ml::DatasetView current =
            ml::DatasetView(data).withFeatures(keep);
        ml::Gbrt model(params);
        model.fit(current, rng);
        benchmark::DoNotOptimize(model.treeCount());
    }
    reportAllocsPerIter(state, before);
    util::setGlobalMetrics(nullptr);
    const auto scan =
        registry.histogram("gbrt.split_scan_ms").snapshot();
    state.counters["split_scan_ms_per_iter"] =
        scan.totalMs /
        static_cast<double>(std::max<std::int64_t>(1, state.iterations()));
}
BENCHMARK(BM_EirRefitView)->Unit(benchmark::kMillisecond);

void
BM_CleanerSeries(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    auto values = randomSeries(n, 8);
    util::Rng rng(9);
    for (std::size_t i = 0; i < n / 20; ++i)
        values[rng.uniformInt(0, static_cast<std::int64_t>(n) - 1)] = 0.0;
    const core::DataCleaner cleaner;
    for (auto _ : state) {
        ts::TimeSeries series("X", values);
        benchmark::DoNotOptimize(cleaner.clean(series));
    }
}
BENCHMARK(BM_CleanerSeries)->Range(256, 4096);

void
BM_AndersonDarlingTriage(benchmark::State &state)
{
    const auto values = randomSeries(
        static_cast<std::size_t>(state.range(0)), 10);
    for (auto _ : state)
        benchmark::DoNotOptimize(stats::fitBestDistribution(values));
}
BENCHMARK(BM_AndersonDarlingTriage)->Range(256, 4096);

void
BM_TraceGeneration(benchmark::State &state)
{
    const auto &benchmark_obj =
        workload::BenchmarkSuite::instance().byName("wordcount");
    util::Rng rng(11);
    for (auto _ : state) {
        benchmark::DoNotOptimize(benchmark_obj.generateTrace(rng));
    }
}
BENCHMARK(BM_TraceGeneration);

// --- SIMD kernel layer: forced-scalar vs best-available twins -------------
// Each pair runs the identical workload with the dispatch level forced
// to scalar (range(0) == 0) and at the best level the machine supports
// (range(0) == 1). The speedup between the two is the SIMD layer's
// whole contribution; the differential harness (test_simd_kernels)
// guarantees the outputs are interchangeable.

/** Force the dispatch level from the benchmark arg; label the run. */
simd::Level
simdLevelFromArg(benchmark::State &state)
{
    const simd::Level level = state.range(0) == 0
        ? simd::Level::Scalar : simd::detectedLevel();
    simd::setLevel(level);
    state.SetLabel(simd::levelName(level));
    return level;
}

/**
 * The GBRT split scan's histogram fill over one feature column. This
 * twin pins *parity*, not speedup: the order-preserving fill is
 * scatter-bound and every dispatch level shares the sequential kernel
 * (a bucketed AVX2 variant measured ~2x slower; see simd.h). A future
 * vector specialization has to beat the scalar twin here to earn its
 * slot in the table.
 */
void
BM_SplitScan(benchmark::State &state)
{
    simdLevelFromArg(state);
    constexpr std::size_t kRows = 8192;
    constexpr std::size_t kBins = 64;
    util::Rng rng(31);
    std::vector<std::uint8_t> bin_col(kRows);
    std::vector<double> targets(kRows);
    std::vector<std::size_t> rows(kRows);
    for (std::size_t r = 0; r < kRows; ++r) {
        bin_col[r] = static_cast<std::uint8_t>(
            rng.uniformInt(0, kBins - 1));
        targets[r] = rng.gaussian();
        rows[r] = r;
    }
    std::vector<double> bin_sum(kBins);
    std::vector<std::size_t> bin_count(kBins);
    for (auto _ : state) {
        std::fill(bin_sum.begin(), bin_sum.end(), 0.0);
        std::fill(bin_count.begin(), bin_count.end(), 0);
        simd::splitScanHistogram(bin_col, targets, rows, bin_sum,
                                 bin_count);
        benchmark::DoNotOptimize(bin_sum.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kRows));
    simd::setLevel(simd::detectedLevel());
}
BENCHMARK(BM_SplitScan)->Arg(0)->Arg(1);

/**
 * KNN's per-neighbor squared Euclidean distance over a feature row.
 * The training block is sized to stay cache-resident (226 features x
 * 64 neighbors ~ 113 KiB) so the twin measures the kernel, not DRAM
 * bandwidth.
 */
void
BM_KnnDistance(benchmark::State &state)
{
    simdLevelFromArg(state);
    constexpr std::size_t kDim = 226;
    constexpr std::size_t kNeighbors = 64;
    util::Rng rng(32);
    std::vector<double> query(kDim);
    for (auto &v : query)
        v = rng.gaussian();
    std::vector<double> train(kDim * kNeighbors);
    for (auto &v : train)
        v = rng.gaussian();
    for (auto _ : state) {
        double total = 0.0;
        for (std::size_t r = 0; r < kNeighbors; ++r) {
            total += simd::squaredDistance(
                query, std::span<const double>(train.data() + r * kDim,
                                               kDim));
        }
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kNeighbors * kDim));
    simd::setLevel(simd::detectedLevel());
}
BENCHMARK(BM_KnnDistance)->Arg(0)->Arg(1);

/** The LB_Keogh envelope bound (envelope precomputed, as in the scan). */
void
BM_LbKeogh(benchmark::State &state)
{
    simdLevelFromArg(state);
    constexpr std::size_t kLength = 2048;
    const auto query = randomSeries(kLength, 33);
    const auto candidate = randomSeries(kLength, 34);
    const auto envelope = ts::computeEnvelope(query, kLength / 10 + 1);
    for (auto _ : state)
        benchmark::DoNotOptimize(ts::lbKeogh(envelope, candidate));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kLength));
    simd::setLevel(simd::detectedLevel());
}
BENCHMARK(BM_LbKeogh)->Arg(0)->Arg(1);

/** The cleaner/histogram equi-width bin-assignment pass. */
void
BM_CleanerBinning(benchmark::State &state)
{
    simdLevelFromArg(state);
    constexpr std::size_t kValues = 4096;
    const auto values = randomSeries(kValues, 35);
    double low = 0.0;
    double high = 0.0;
    std::size_t finite = 0;
    simd::minMaxFinite(values, low, high, finite);
    constexpr std::size_t kBins = 64;
    const double width =
        (high - low) / static_cast<double>(kBins);
    std::vector<std::uint32_t> bins(kValues);
    for (auto _ : state) {
        simd::equiWidthBins(values, low, high, width, kBins, bins);
        benchmark::DoNotOptimize(bins.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kValues));
    simd::setLevel(simd::detectedLevel());
}
BENCHMARK(BM_CleanerBinning)->Arg(0)->Arg(1);

// --- observability overhead ----------------------------------------------
// The disabled variants are the zero-overhead contract: with no tracer
// or registry installed, a Span or counter update must reduce to one
// relaxed atomic load and a branch. Compare each *Disabled bench with
// its *Enabled twin (and BM_GbrtFitThreads with flags absent for the
// macro check).

void
BM_SpanDisabled(benchmark::State &state)
{
    for (auto _ : state) {
        util::Span span("bench.span");
        benchmark::DoNotOptimize(span.active());
    }
}
BENCHMARK(BM_SpanDisabled);

void
BM_SpanEnabled(benchmark::State &state)
{
    util::SteadyClock clock;
    util::Tracer tracer(clock);
    util::setGlobalTracer(&tracer);
    for (auto _ : state) {
        util::Span span("bench.span");
        benchmark::DoNotOptimize(span.active());
    }
    util::setGlobalTracer(nullptr);
}
// Every iteration appends a span record; cap the count so the tracer's
// backing store stays small.
BENCHMARK(BM_SpanEnabled)->Iterations(16384);

void
BM_CounterDisabled(benchmark::State &state)
{
    for (auto _ : state)
        util::count("bench.counter");
}
BENCHMARK(BM_CounterDisabled);

void
BM_CounterEnabled(benchmark::State &state)
{
    util::MetricsRegistry registry;
    util::setGlobalMetrics(&registry);
    for (auto _ : state)
        util::count("bench.counter");
    util::setGlobalMetrics(nullptr);
}
BENCHMARK(BM_CounterEnabled);

// --- serving wire protocol -----------------------------------------------
// The serve daemon decodes one frame per request on the accept loop
// thread; encode/decode cost bounds per-connection throughput before
// batching even starts (DESIGN.md §14).

/** A predict payload with `rows` rows over 16 events. */
std::string
makePredictPayload(std::size_t rows)
{
    serve::PredictRequest request;
    request.id = 1;
    request.model = "bench";
    for (int e = 0; e < 16; ++e)
        request.events.push_back("EVT_" + std::to_string(e));
    request.rowCount = rows;
    request.values.resize(rows * request.events.size());
    util::Rng rng(11);
    for (auto &v : request.values)
        v = rng.uniform();
    return serve::encodeRequest(serve::Request(std::move(request)));
}

void
BM_ServeEncodePredict(benchmark::State &state)
{
    const std::size_t rows = static_cast<std::size_t>(state.range(0));
    serve::PredictRequest request;
    request.id = 1;
    request.model = "bench";
    for (int e = 0; e < 16; ++e)
        request.events.push_back("EVT_" + std::to_string(e));
    request.rowCount = rows;
    request.values.assign(rows * request.events.size(), 1.5);
    const serve::Request wrapped(std::move(request));
    for (auto _ : state) {
        auto payload = serve::encodeRequest(wrapped);
        benchmark::DoNotOptimize(payload.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * rows * 16 *
                                  sizeof(double)));
}
BENCHMARK(BM_ServeEncodePredict)->Arg(1)->Arg(64)->Arg(1024);

void
BM_ServeDecodePredict(benchmark::State &state)
{
    const auto payload =
        makePredictPayload(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        auto decoded = serve::decodeRequest(payload);
        benchmark::DoNotOptimize(decoded.ok());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(
        state.iterations() * payload.size()));
}
BENCHMARK(BM_ServeDecodePredict)->Arg(1)->Arg(64)->Arg(1024);

// Admission -> batch -> score -> respond for single-row requests, the
// worst case for batching overhead: how much daemon machinery costs on
// top of the bare Gbrt::predictAll the CLI path uses.
void
BM_ServeBatchPipeline(benchmark::State &state)
{
    const std::size_t burst = static_cast<std::size_t>(state.range(0));
    ml::Dataset data = gbrtBenchData(16, 256);
    ml::GbrtParams params;
    params.treeCount = 50;
    ml::Gbrt model(params);
    util::Rng rng(21);
    model.fit(data, rng);

    core::MapmArtifact artifact;
    artifact.benchmark = "bench";
    artifact.microarch = "haswell-e";
    artifact.events = data.featureNames();
    artifact.model = std::move(model);

    serve::ServerOptions options;
    options.startBatcher = false;
    options.queueCap = burst;
    options.maxBatchRows = burst;
    serve::Server server(options);
    server.registerModel("bench", std::move(artifact));

    std::vector<std::string> payloads;
    for (std::size_t i = 0; i < burst; ++i) {
        serve::PredictRequest request;
        request.id = i + 1;
        request.model = "bench";
        request.events = data.featureNames();
        request.rowCount = 1;
        request.values = ml::DatasetView(data).row(i % data.rowCount());
        payloads.push_back(
            serve::encodeRequest(serve::Request(std::move(request))));
    }

    std::size_t responses = 0;
    for (auto _ : state) {
        for (const auto &payload : payloads)
            server.submitFrame(payload, [&responses](std::string r) {
                ++responses;
                benchmark::DoNotOptimize(r.data());
            });
        while (server.runBatchOnce() > 0) {
        }
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * burst));
    if (responses != state.iterations() * burst)
        state.SkipWithError("response count mismatch");
}
BENCHMARK(BM_ServeBatchPipeline)->Arg(16)->Arg(256)->UseRealTime();

// --- out-of-core segment store -------------------------------------------
// Twin benchmarks over the same synthetic fleet: Arg(0) keeps every run
// in the in-RAM Database, Arg(1) routes it through the out-of-core
// segment store with a seal threshold small enough that ingest really
// seals and mining really reads mapped files. The rss/hwm counters show
// the resident-memory story the store exists for; allocs_per_iter shows
// the read path staying zero-copy either way.

/** A /proc/self/status gauge in KiB (VmRSS, VmHWM), 0 if unreadable. */
std::size_t
procStatusKb(const char *key)
{
    std::ifstream status("/proc/self/status");
    std::string line;
    const std::string prefix = std::string(key) + ":";
    while (std::getline(status, line)) {
        if (line.rfind(prefix, 0) == 0)
            return static_cast<std::size_t>(
                std::stoull(line.substr(prefix.size())));
    }
    return 0;
}

/** The fleet both store benchmarks ingest: `runs` windows, 8 events. */
std::vector<std::vector<ts::TimeSeries>>
storeBenchFleet(std::size_t runs, std::size_t length)
{
    util::Rng rng(33);
    std::vector<std::vector<ts::TimeSeries>> fleet;
    fleet.reserve(runs);
    for (std::size_t r = 0; r < runs; ++r) {
        std::vector<ts::TimeSeries> window;
        for (int e = 0; e < 8; ++e) {
            std::vector<double> values(length);
            for (auto &v : values)
                v = 100.0 * (e + 1) + rng.gaussian();
            window.emplace_back("EVT_" + std::to_string(e),
                                std::move(values), 10.0);
        }
        fleet.push_back(std::move(window));
    }
    return fleet;
}

void
BM_IngestOutOfCore(benchmark::State &state)
{
    const bool out_of_core = state.range(0) != 0;
    const std::string dir = "/tmp/cminer_bench_store_ingest";
    const std::size_t runs = 24;
    const std::size_t length = 4096;
    const auto fleet = storeBenchFleet(runs, length);

    const auto before = AllocCounters::now();
    for (auto _ : state) {
        state.PauseTiming();
        std::filesystem::remove_all(dir);
        state.ResumeTiming();
        if (out_of_core) {
            store::StoreOptions options;
            options.directory = dir;
            options.sealThresholdBytes = 1ull << 20;
            store::Database db = store::Database::openStore(options);
            for (const auto &window : fleet)
                db.addRun("p", "s", "mlpx", 1.0, window);
            db.flush();
        } else {
            store::Database db;
            for (const auto &window : fleet)
                db.addRun("p", "s", "mlpx", 1.0, window);
        }
    }
    reportAllocsPerIter(state, before);
    state.counters["ingest_mb"] = static_cast<double>(
        runs * 8 * length * sizeof(double)) / (1024.0 * 1024.0);
    state.counters["rss_hwm_mb"] =
        static_cast<double>(procStatusKb("VmHWM")) / 1024.0;
    state.SetBytesProcessed(static_cast<std::int64_t>(
        state.iterations() * runs * 8 * length * sizeof(double)));
    std::filesystem::remove_all(dir);
}
BENCHMARK(BM_IngestOutOfCore)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void
BM_MineFromSegments(benchmark::State &state)
{
    const bool out_of_core = state.range(0) != 0;
    const std::string dir = "/tmp/cminer_bench_store_mine";
    std::filesystem::remove_all(dir);
    const std::size_t runs = 24;
    const std::size_t length = 4096;
    const auto fleet = storeBenchFleet(runs, length);

    std::optional<store::Database> db;
    if (out_of_core) {
        store::StoreOptions options;
        options.directory = dir;
        options.sealThresholdBytes = 1ull << 20;
        db.emplace(store::Database::openStore(options));
    } else {
        db.emplace();
    }
    for (const auto &window : fleet)
        db->addRun("p", "s", "mlpx", 1.0, window);
    if (out_of_core)
        db->flush();

    const auto before = AllocCounters::now();
    for (auto _ : state) {
        // The mining access pattern: pin a snapshot, touch every sample
        // of every column through the zero-copy span path.
        const store::StoreSnapshot snap = db->snapshot();
        double acc = 0.0;
        for (std::size_t r = 0; r < runs; ++r) {
            const auto id = static_cast<store::RunId>(r);
            const std::size_t events = snap.runInfo(id).events.size();
            for (std::size_t e = 0; e < events; ++e) {
                for (const double v : snap.values(id, e))
                    acc += v;
            }
        }
        benchmark::DoNotOptimize(acc);
    }
    reportAllocsPerIter(state, before);
    state.counters["rss_mb"] =
        static_cast<double>(procStatusKb("VmRSS")) / 1024.0;
    state.SetBytesProcessed(static_cast<std::int64_t>(
        state.iterations() * runs * 8 * length * sizeof(double)));
    db.reset();
    std::filesystem::remove_all(dir);
}
BENCHMARK(BM_MineFromSegments)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Mining layer: DTW distance work and end-to-end anomaly scoring
// (DESIGN.md §17).

/** `count` z-normalized signatures from a handful of shape families. */
std::vector<std::vector<double>>
syntheticSignatures(std::size_t count, std::size_t length,
                    std::uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<std::vector<double>> signatures;
    signatures.reserve(count);
    mining::SignatureOptions options;
    options.length = length;
    for (std::size_t i = 0; i < count; ++i) {
        std::vector<double> values(length);
        for (std::size_t t = 0; t < length; ++t) {
            const double x = static_cast<double>(t) /
                             static_cast<double>(length - 1);
            values[t] = std::sin(2.0 * M_PI *
                                 (static_cast<double>(i % 4 + 1) * x)) +
                        0.5 * x + rng.gaussian(0.0, 0.05);
        }
        signatures.push_back(mining::makeSignature(values, options));
    }
    return signatures;
}

/**
 * Assign every signature to its nearest of k medoids — the k-medoids
 * inner loop and the scorer's family lookup. Arg(1) picks the twin:
 * 0 = full DTW against every candidate, 1 = LB_Keogh-pruned search
 * (mining::nearestMedoid). The pairwise matrix feeding PAM is exact by
 * contract, so assignment is where pruning pays.
 */
void
BM_DtwMatrix(benchmark::State &state)
{
    const auto count = static_cast<std::size_t>(state.range(0));
    const bool pruned = state.range(1) != 0;
    mining::SignatureOptions options;
    options.length = 128;
    const auto signatures = syntheticSignatures(count, 128, 0x5e7);
    const std::vector<std::vector<double>> medoids(
        signatures.begin(), signatures.begin() + 8);

    std::size_t dtw_evaluations = 0;
    std::size_t assignments = 0;
    for (auto _ : state) {
        double acc = 0.0;
        for (const auto &signature : signatures) {
            if (pruned) {
                const auto nearest =
                    mining::nearestMedoid(signature, medoids, options);
                acc += nearest.distance;
                dtw_evaluations += nearest.dtwEvaluations;
            } else {
                double best = mining::signatureDistance(
                    signature, medoids[0], options);
                for (std::size_t m = 1; m < medoids.size(); ++m)
                    best = std::min(
                        best, mining::signatureDistance(
                                  signature, medoids[m], options));
                acc += best;
                dtw_evaluations += medoids.size();
            }
            ++assignments;
        }
        benchmark::DoNotOptimize(acc);
    }
    state.counters["dtw_per_assign"] =
        static_cast<double>(dtw_evaluations) /
        static_cast<double>(assignments);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * count));
}
BENCHMARK(BM_DtwMatrix)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Unit(benchmark::kMillisecond);

/**
 * One end-to-end anomaly score: a Gbrt predictAll pass over the run's
 * rows, the residual z-score, and the LB-pruned medoid search — the
 * per-request cost of `cminer serve`'s score path.
 */
void
BM_AnomalyScore(benchmark::State &state)
{
    const std::size_t rows = 96;
    const std::vector<std::string> events = {"FA", "FB", "FC"};
    util::Rng rng(0xab5);

    // A small synthetic training set: IPC is a noisy linear blend of
    // the three features with an asymmetric ramp-driven shape.
    ml::Dataset data(events);
    std::vector<double> train_measured;
    for (std::size_t run = 0; run < 8; ++run) {
        for (std::size_t i = 0; i < rows; ++i) {
            const double x = static_cast<double>(i) /
                             static_cast<double>(rows - 1);
            const double fa =
                100.0 + 40.0 * std::sin(2.0 * M_PI * x) +
                rng.gaussian(0.0, 1.0);
            const double fb = 50.0 + 30.0 * x + rng.gaussian(0.0, 1.0);
            const double fc = 10.0 + 5.0 * std::cos(2.0 * M_PI * x) +
                              rng.gaussian(0.0, 0.5);
            const double ipc = 0.2 + 0.0008 * fa + 0.012 * fb -
                               0.002 * fc + rng.gaussian(0.0, 0.01);
            data.addRow({fa, fb, fc}, ipc);
            if (run == 0)
                train_measured.push_back(ipc);
        }
    }
    ml::GbrtParams params;
    params.treeCount = 50;
    ml::Gbrt gbrt(params);
    util::Rng fit_rng(7);
    gbrt.fit(data, fit_rng);

    core::MapmArtifact artifact;
    artifact.benchmark = "bench";
    artifact.microarch = "haswell-e";
    artifact.events = events;
    artifact.cvErrorPercent = 1.0;
    artifact.model = std::move(gbrt);

    mining::SignatureOptions sig_options;
    sig_options.length = 64;
    mining::ClusterArtifact clusters;
    clusters.benchmark = "bench";
    clusters.microarch = "haswell-e";
    clusters.signature = sig_options;
    mining::ClusterFamily family;
    family.medoidRun = 0;
    family.program = "bench";
    family.memberCount = 8;
    family.signature =
        mining::makeSignature(train_measured, sig_options);
    clusters.families.push_back(std::move(family));
    clusters.residualMean = 0.0;
    clusters.residualStddev = 0.01;
    clusters.residualZThreshold = 6.0;
    clusters.signatureThreshold = 2.0;

    const mining::AnomalyScorer scorer(
        std::make_shared<const core::MapmArtifact>(std::move(artifact)),
        std::move(clusters));

    // One incoming run's wire payload: row-major features + measured.
    std::vector<double> values(rows * events.size());
    std::vector<double> measured(rows);
    for (std::size_t i = 0; i < rows; ++i) {
        const double x =
            static_cast<double>(i) / static_cast<double>(rows - 1);
        const double fa = 100.0 + 40.0 * std::sin(2.0 * M_PI * x);
        const double fb = 50.0 + 30.0 * x;
        const double fc = 10.0 + 5.0 * std::cos(2.0 * M_PI * x);
        values[i * 3 + 0] = fa;
        values[i * 3 + 1] = fb;
        values[i * 3 + 2] = fc;
        measured[i] = 0.2 + 0.0008 * fa + 0.012 * fb - 0.002 * fc;
    }

    for (auto _ : state) {
        auto result = scorer.score(values, rows, measured);
        benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AnomalyScore)->Unit(benchmark::kMicrosecond);

} // namespace

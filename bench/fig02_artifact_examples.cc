/**
 * @file
 * Figure 2: the two MLPX artifact types on benchmark wordcount.
 *  (a) outliers in the IDQ.DSB_UOPS series — extrapolated values several
 *      times the OCOE level;
 *  (b) missing values in the ICACHE.MISSES series — the cold-start
 *      misses OCOE sees but MLPX reports as zero.
 */

#include "common.h"
#include "util/csv.h"

using namespace cminer;

namespace {

void
showSeries(const char *label, const ts::TimeSeries &ocoe,
           const ts::TimeSeries &mlpx, std::size_t first,
           std::size_t count)
{
    util::TablePrinter table({"interval", "OCOE", "MLPX", "artifact"});
    const std::size_t last =
        std::min({first + count, ocoe.size(), mlpx.size()});
    for (std::size_t t = first; t < last; ++t) {
        const double o = ocoe.at(t);
        const double m = mlpx.at(t);
        std::string artifact;
        if (m == 0.0)
            artifact = "<- missing";
        else if (m > 2.5 * o)
            artifact = "<- outlier";
        table.addRow({std::to_string(t), util::formatDouble(o, 0),
                      util::formatDouble(m, 0), artifact});
    }
    std::printf("%s\n", label);
    table.print();
}

} // namespace

int
main()
{
    util::printBanner(
        "Figure 2: outlier and missing-value examples (wordcount)");

    const auto &catalog = pmu::EventCatalog::instance();
    const auto &benchmark =
        workload::BenchmarkSuite::instance().byName("wordcount");
    store::Database db;
    core::DataCollector collector(db, catalog);
    util::Rng rng(202);

    const auto events = bench::errorFigureEvents();
    const auto imc = catalog.idOf("ICACHE.MISSES");
    const auto idu = catalog.idOf("IDQ.DSB_UOPS");

    // One OCOE golden run per event and one MLPX run covering both.
    auto ocoe = collector.collectOcoe(benchmark, {imc, idu}, rng);
    auto mlpx = collector.collectMlpx(benchmark, events, rng);

    // Locate the event series inside the MLPX run.
    const ts::TimeSeries *mlpx_imc = nullptr;
    const ts::TimeSeries *mlpx_idu = nullptr;
    for (const auto &series : mlpx.series) {
        if (series.eventName() == "ICACHE.MISSES")
            mlpx_imc = &series;
        if (series.eventName() == "IDQ.DSB_UOPS")
            mlpx_idu = &series;
    }

    showSeries("(a) IDQ.DSB_UOPS - outliers from duty-cycle "
               "extrapolation of bursts",
               ocoe.series[1], *mlpx_idu, 40, 30);
    showSeries("(b) ICACHE.MISSES - missing values during the "
               "cold-start miss ramp",
               ocoe.series[0], *mlpx_imc, 0, 30);

    // Machine-readable dump of both full series.
    util::CsvWriter csv(bench::resultCsvPath("fig02_artifact_examples"));
    csv.writeRow({"interval", "imc_ocoe", "imc_mlpx", "idu_ocoe",
                  "idu_mlpx"});
    const std::size_t n = std::min({ocoe.series[0].size(),
                                    mlpx_imc->size(), mlpx_idu->size()});
    for (std::size_t t = 0; t < n; ++t) {
        csv.writeNumericRow({static_cast<double>(t),
                             ocoe.series[0].at(t), mlpx_imc->at(t),
                             ocoe.series[1].at(t), mlpx_idu->at(t)});
    }

    // Headline counts.
    std::size_t missing = 0;
    std::size_t outliers = 0;
    for (std::size_t t = 0; t < n; ++t) {
        if (mlpx_imc->at(t) == 0.0)
            ++missing;
        if (mlpx_idu->at(t) > 2.5 * ocoe.series[1].at(t))
            ++outliers;
    }
    std::printf("ICACHE.MISSES missing values: %zu of %zu intervals\n",
                missing, n);
    std::printf("IDQ.DSB_UOPS outliers (>2.5x OCOE): %zu of %zu "
                "intervals\n",
                outliers, n);
    std::printf("paper: outliers reach ~4.2x the OCOE level; the "
                "cold-start miss ramp is absent under MLPX\n");
    return 0;
}

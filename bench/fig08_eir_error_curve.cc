/**
 * @file
 * Figure 8: performance-model error (Eq. 14) versus the number of input
 * events during EIR, averaged over the eight HiBench benchmarks.
 *
 * Paper reference: 14% with all 229 events, a minimum of 6.3% around
 * 150 events, 9.6% at 99 events, and back to 14% at 59 events — a
 * U-shaped curve showing modern processors expose many noisy events.
 */

#include <map>

#include "common.h"
#include "util/csv.h"

using namespace cminer;

int
main()
{
    util::printBanner(
        "Figure 8: EIR model-error curve (HiBench average)");

    const auto &suite = workload::BenchmarkSuite::instance();
    util::Rng rng(808);

    // Accumulate per-event-count errors across benchmarks.
    std::map<std::size_t, double> totals;
    std::map<std::size_t, int> counts;
    std::map<std::size_t, double> mapm_counts;
    for (const auto *benchmark : suite.hibench()) {
        const auto profiled =
            bench::profileBenchmark(*benchmark, rng, 2, 16);
        for (const auto &point : profiled.importance.curve) {
            totals[point.eventCount] += point.testErrorPercent;
            counts[point.eventCount] += 1;
        }
        std::printf("  %-12s MAPM at %zu events, error %.2f%%\n",
                    benchmark->name().c_str(),
                    profiled.importance.mapmEventCount,
                    profiled.importance.mapmErrorPercent);
    }

    util::TablePrinter table({"events", "avg model error %", ""});
    util::CsvWriter csv(bench::resultCsvPath("fig08_eir_error_curve"));
    csv.writeRow({"event_count", "avg_error_percent"});

    double full_error = 0.0;
    double min_error = 1e300;
    std::size_t min_count = 0;
    for (auto it = totals.rbegin(); it != totals.rend(); ++it) {
        const std::size_t event_count = it->first;
        const double avg = it->second / counts[event_count];
        table.addRow({std::to_string(event_count),
                      util::formatDouble(avg, 2),
                      util::asciiBar(avg, 10.0)});
        csv.writeNumericRow({static_cast<double>(event_count), avg});
        if (event_count == 226)
            full_error = avg;
        if (avg < min_error) {
            min_error = avg;
            min_count = event_count;
        }
    }
    table.print();

    std::printf("measured: %.2f%% with all events, minimum %.2f%% at "
                "%zu events\n",
                full_error, min_error, min_count);
    std::printf("paper:    14%% with all 229 events, minimum 6.3%% "
                "around 150 events, rising again below ~100 events\n");
    return 0;
}

/**
 * @file
 * Shared plumbing for the figure/table benches: run collection with
 * cleaning, the profile pipeline pieces, and CSV result output.
 *
 * Every bench prints the regenerated rows/series to stdout through
 * util::TablePrinter and additionally writes a machine-readable CSV into
 * ./bench_results/.
 */

#ifndef CMINER_BENCH_COMMON_H
#define CMINER_BENCH_COMMON_H

#include <string>
#include <vector>

#include "core/cleaner.h"
#include "core/collector.h"
#include "core/error_metrics.h"
#include "core/importance.h"
#include "core/interaction.h"
#include "pmu/event.h"
#include "store/database.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "workload/suites.h"

namespace cminer::bench {

/** The ten-event set (ICACHE.MISSES first) used by the error figures. */
std::vector<pmu::EventId> errorFigureEvents();

/**
 * Collect `run_count` MLPX runs of a benchmark over all programmable
 * events and clean them (unless `clean` is false).
 */
std::vector<core::CollectedRun>
collectRuns(const workload::SyntheticBenchmark &benchmark,
            std::size_t run_count, util::Rng &rng, store::Database &db,
            bool clean = true);

/** Everything the importance/interaction figures need for one benchmark. */
struct ProfiledBenchmark
{
    ml::Dataset dataset;                 ///< full-event dataset
    core::ImportanceResult importance;   ///< EIR outcome
    ml::Gbrt mapm;                       ///< retrained MAPM oracle
    ml::Dataset mapmDataset;             ///< dataset over MAPM features
};

/**
 * Run collect -> clean -> EIR -> MAPM for one benchmark.
 *
 * @param benchmark what to profile
 * @param rng run/model randomness
 * @param runs MLPX runs to pool
 * @param min_events EIR stop point (fewer = longer loop)
 */
ProfiledBenchmark profileBenchmark(
    const workload::SyntheticBenchmark &benchmark, util::Rng &rng,
    std::size_t runs = 3, std::size_t min_events = 26);

/**
 * Raw-vs-cleaned measurement error of ICACHE.MISSES for one benchmark,
 * averaged over `reps` repetitions (the Figs. 1/6 measurement).
 */
struct ErrorPair
{
    double rawPercent = 0.0;
    double cleanedPercent = 0.0;
};
ErrorPair measureBenchmarkError(
    const workload::SyntheticBenchmark &benchmark, util::Rng &rng,
    int reps = 4);

/** Open ./bench_results/<name>.csv for writing (creates the dir). */
std::string resultCsvPath(const std::string &name);

/**
 * Effective pipeline thread count (the Parallelism resolution: --threads
 * / CMINER_THREADS / hardware). Benches report it next to their timings
 * so results from different machines or thread settings stay comparable.
 */
std::size_t activeThreads();

/**
 * One-line CSV comment recording the run context (currently the thread
 * count), e.g. "# threads=4". Benches prepend it to their result files.
 */
std::string runContextCsvComment();

} // namespace cminer::bench

#endif // CMINER_BENCH_COMMON_H

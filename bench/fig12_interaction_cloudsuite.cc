/**
 * @file
 * Figure 12: the ten most intense event-pair interactions per CloudSuite
 * benchmark.
 *
 * Paper shape: CloudSuite's dominant pairs are much stronger than
 * HiBench's — multi-tier services (WebServing: four tiers, dominant
 * pair ~64%) interact far more than single-algorithm benchmarks
 * (GraphAnalytics: ~19%).
 */

#include "common.h"
#include "util/csv.h"

using namespace cminer;

int
main()
{
    util::printBanner(
        "Figure 12: top-10 interaction pairs, CloudSuite benchmarks");

    const auto &suite = workload::BenchmarkSuite::instance();
    util::Rng rng(1212);
    util::CsvWriter csv(
        bench::resultCsvPath("fig12_interaction_cloudsuite"));
    csv.writeRow({"benchmark", "rank", "pair", "intensity_percent"});

    const core::InteractionRanker ranker;
    double dominant_sum = 0.0;
    double webserving_dominant = 0.0;
    double graphanalytics_dominant = 0.0;
    for (const auto *benchmark : suite.cloudsuite()) {
        const auto profiled =
            bench::profileBenchmark(*benchmark, rng, 3, 96);
        std::vector<std::string> top_events;
        for (std::size_t i = 0;
             i < 10 && i < profiled.importance.ranking.size(); ++i)
            top_events.push_back(
                profiled.importance.ranking[i].feature);
        const auto result = ranker.rankTopEvents(
            profiled.mapm, profiled.mapmDataset, top_events);

        util::TablePrinter table({"rank", "pair", "intensity %", ""});
        const auto top = result.top(10);
        for (std::size_t i = 0; i < top.size(); ++i) {
            const std::string pair = top[i].first + "-" + top[i].second;
            table.addRow({std::to_string(i + 1), pair,
                          util::formatDouble(top[i].importancePercent, 1),
                          util::asciiBar(top[i].importancePercent, 70.0,
                                         20)});
            csv.writeRow({benchmark->name(), std::to_string(i + 1),
                          pair,
                          util::formatDouble(top[i].importancePercent,
                                             3)});
        }
        const double dominant =
            top.empty() ? 0.0 : top[0].importancePercent;
        dominant_sum += dominant;
        if (benchmark->name() == "WebServing")
            webserving_dominant = dominant;
        if (benchmark->name() == "GraphAnalytics")
            graphanalytics_dominant = dominant;
        std::printf("%s (dominant pair share %.1f%%)\n",
                    benchmark->name().c_str(), dominant);
        table.print();
        std::printf("\n");
    }
    std::printf("CloudSuite average dominant-pair share: %.1f%%\n",
                dominant_sum / 8.0);
    std::printf("WebServing (4 tiers) dominant %.1f%% vs GraphAnalytics "
                "(1 algorithm) %.1f%% (paper: 64%% vs 19%%)\n",
                webserving_dominant, graphanalytics_dominant);
    return 0;
}
